"""Algebra hot-path benchmark: verify wall-clock and layer microbenchmarks.

Measures the end-to-end Mastrovito-vs-Montgomery verify at k in {16, 32, 64}
plus per-layer microbenchmarks (field multiply, polynomial reduction, the
full-Groebner ablation), compares against the recorded pre-overhaul
baseline (``benchmarks/baselines/algebra_pre_pr.json``), and writes a
``BENCH_algebra.json`` trajectory (respecting ``$REPRO_BENCH_OUT``).

Unlike the pytest-benchmark sweeps this is a standalone script so CI can
gate on it cheaply::

    PYTHONPATH=src python benchmarks/bench_algebra_hotpath.py --quick

``--quick`` restricts the sweep to k=16 and enforces ``--ceiling-seconds``
on the verify path (exit status 1 beyond it) — the CI perf-smoke contract.
Run without flags for the full k in {16, 32, 64} before/after table.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

from repro import kernels
from repro.algebra import LexOrder, Polynomial, PolynomialRing, reduce_polynomial
from repro.gf import GF2m, poly2
from repro.synth import mastrovito_multiplier, montgomery_multiplier
from repro.verify import verify_equivalence
from repro.verify.fullgb import abstract_via_full_groebner

BASELINE_PATH = Path(__file__).parent / "baselines" / "algebra_pre_pr.json"
PRE_BATCH_PATH = Path(__file__).parent / "baselines" / "algebra_pre_batch.json"

VERIFY_SIZES = (16, 32, 64)
QUICK_SIZES = (16,)
FIELD_SIZES = (8, 16, 32, 64)
FULLGB_SIZES = (3, 4)


def _median_seconds(fn, reps: int) -> float:
    samples = []
    for _ in range(reps):
        gc.collect()  # keep setup garbage out of the timed window
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def bench_verify(k: int, reps: int) -> float:
    """End-to-end verify wall-clock; circuits are rebuilt per repetition so
    per-circuit caches cannot leak between samples."""
    field = GF2m(k)
    samples = []
    for _ in range(reps):
        spec = mastrovito_multiplier(field)
        impl = montgomery_multiplier(field).flatten()
        gc.collect()  # circuit construction churns enough to trigger GC
        t0 = time.perf_counter()
        outcome = verify_equivalence(spec, impl, field)
        samples.append(time.perf_counter() - t0)
        assert outcome.equivalent, f"k={k} multipliers reported non-equivalent"
    return statistics.median(samples)


def bench_field_mul(k: int, n: int = 20000) -> dict:
    """ns/op of field.mul (whatever fast path is active) vs the raw poly2
    reference computation."""
    import random

    rng = random.Random(0xA1)
    field = GF2m(k)
    pairs = [
        (rng.randrange(1, field.order), rng.randrange(1, field.order))
        for _ in range(n)
    ]
    mul = field.mul
    t0 = time.perf_counter()
    for a, b in pairs:
        mul(a, b)
    fast = (time.perf_counter() - t0) / n
    modulus = field.modulus
    order = field.order
    t0 = time.perf_counter()
    for a, b in pairs:
        p = poly2.clmul(a, b)
        if p >= order:
            p = poly2.mod(p, modulus)
    reference = (time.perf_counter() - t0) / n
    return {"ns_per_op": fast * 1e9, "reference_ns_per_op": reference * 1e9}


def _random_reduction_workload(seed: int = 11):
    """A polynomial and divisor set heavy enough to expose O(T^2) scans."""
    import random

    rng = random.Random(seed)
    field = GF2m(8)
    names = [f"x{i}" for i in range(10)]
    ring = PolynomialRing(field, names, order=LexOrder(range(10)), fold=False)
    variables = [ring.var(n) for n in names]

    def random_poly(terms: int, max_deg: int) -> Polynomial:
        p = ring.zero()
        for _ in range(terms):
            m = ring.one()
            for v in rng.sample(variables, rng.randint(1, 3)):
                m = m * (v ** rng.randint(1, max_deg))
            p = p + m.scale(rng.randrange(1, field.order))
        return p

    f = random_poly(220, 3)
    divisors = [random_poly(3, 2) for _ in range(14)]
    return f, divisors


def bench_reduce(reps: int) -> dict:
    f, divisors = _random_reduction_workload()
    seconds = _median_seconds(lambda: reduce_polynomial(f, divisors), reps)
    result = {"seconds": seconds}
    try:
        from repro.algebra.division import reference_reduce_polynomial
    except ImportError:
        return result
    result["reference_seconds"] = _median_seconds(
        lambda: reference_reduce_polynomial(f, divisors), reps
    )
    return result


def bench_fullgb(k: int) -> float:
    field = GF2m(k)
    circuit = mastrovito_multiplier(field)
    t0 = time.perf_counter()
    res = abstract_via_full_groebner(circuit, field, deadline_seconds=300.0)
    elapsed = time.perf_counter() - t0
    assert res.completed, f"fullgb k={k} did not complete"
    return elapsed


def run_suite(quick: bool) -> dict:
    sizes = QUICK_SIZES if quick else VERIFY_SIZES
    results: dict = {"verify": {}, "field_mul": {}, "reduce": {}, "fullgb": {}}
    for k in sizes:
        reps = 9 if k <= 16 else (7 if k <= 32 else 5)
        results["verify"][str(k)] = {"seconds": bench_verify(k, reps)}
        print(f"verify k={k}: {results['verify'][str(k)]['seconds']*1e3:.1f} ms")
    for k in QUICK_SIZES if quick else FIELD_SIZES:
        results["field_mul"][str(k)] = bench_field_mul(k)
        row = results["field_mul"][str(k)]
        print(
            f"field mul k={k}: {row['ns_per_op']:.0f} ns/op "
            f"(poly2 reference {row['reference_ns_per_op']:.0f} ns/op)"
        )
    results["reduce"] = bench_reduce(reps=3 if quick else 5)
    line = f"reduce: {results['reduce']['seconds']*1e3:.1f} ms"
    if "reference_seconds" in results["reduce"]:
        line += f" (reference {results['reduce']['reference_seconds']*1e3:.1f} ms)"
    print(line)
    for k in FULLGB_SIZES if not quick else FULLGB_SIZES[:1]:
        results["fullgb"][str(k)] = {"seconds": bench_fullgb(k)}
        print(f"fullgb k={k}: {results['fullgb'][str(k)]['seconds']*1e3:.1f} ms")
    return results


def compute_speedups(baseline: dict, current: dict) -> dict:
    speedup: dict = {}
    for section in ("verify", "fullgb"):
        base = baseline.get(section, {})
        cur = current.get(section, {})
        speedup[section] = {
            k: round(base[k]["seconds"] / cur[k]["seconds"], 2)
            for k in cur
            if k in base and cur[k]["seconds"] > 0
        }
    base_mul = baseline.get("field_mul", {})
    speedup["field_mul"] = {
        k: round(base_mul[k]["ns_per_op"] / row["ns_per_op"], 2)
        for k, row in current.get("field_mul", {}).items()
        if k in base_mul and row["ns_per_op"] > 0
    }
    base_red = baseline.get("reduce", {})
    cur_red = current.get("reduce", {})
    if "seconds" in base_red and cur_red.get("seconds"):
        speedup["reduce"] = round(base_red["seconds"] / cur_red["seconds"], 2)
    return speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="k=16 sweep only, with the wall-clock ceiling enforced (CI mode)",
    )
    parser.add_argument(
        "--ceiling-seconds",
        type=float,
        default=30.0,
        help="--quick fails when the k=16 verify exceeds this (default 30s)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default $REPRO_BENCH_OUT or ./BENCH_algebra.json)",
    )
    parser.add_argument(
        "--capture-baseline",
        action="store_true",
        help=f"record this run as the comparison baseline ({BASELINE_PATH})",
    )
    args = parser.parse_args(argv)

    current = run_suite(args.quick)
    payload = {
        "meta": {
            "quick": args.quick,
            "kernel": kernels.active_kernel(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "current": current,
    }

    if args.capture_baseline:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline recorded to {BASELINE_PATH}")
        return 0

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        payload["baseline"] = baseline["current"]
        payload["baseline_meta"] = baseline["meta"]
        payload["speedup"] = compute_speedups(baseline["current"], current)
        print("speedup vs recorded baseline:", json.dumps(payload["speedup"]))

    if PRE_BATCH_PATH.exists():
        pre_batch = json.loads(PRE_BATCH_PATH.read_text())
        payload["speedup_vs_legacy_kernels"] = compute_speedups(
            pre_batch["current"], current
        )
        print(
            "speedup vs legacy kernels:",
            json.dumps(payload["speedup_vs_legacy_kernels"]),
        )

    out = args.out or os.environ.get("REPRO_BENCH_OUT") or "BENCH_algebra.json"
    out_path = Path(out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"trajectory written to {out_path}")

    if args.quick:
        k16 = current["verify"].get("16", {}).get("seconds")
        if k16 is None or k16 > args.ceiling_seconds:
            print(
                f"FAIL: k=16 verify took {k16:.2f}s "
                f"(ceiling {args.ceiling_seconds:.0f}s)",
                file=sys.stderr,
            )
            return 1
        print(f"OK: k=16 verify {k16*1e3:.1f} ms under ceiling")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
