"""Batch engine — parallel speedup and cache effectiveness on Table-1 pairs.

Ports the Table 1/2-style verification sweep through ``repro.jobs``: a
manifest of Mastrovito-vs-{Montgomery, Karatsuba} verify jobs runs three
ways —

1. ``--jobs 1`` with a cold cache (the sequential baseline),
2. ``--jobs N`` with a cold cache (parallel speedup; the spec abstraction
   is still computed once per distinct netlist thanks to per-key locking),
3. ``--jobs N`` again on the now-warm cache (every abstraction is a hit;
   only coefficient matching remains).

The reported row is wall-clock per configuration plus the measured
speedup and the warm run's cache-hit count.
"""

import json
import multiprocessing
import time

import pytest

from repro.circuits import write_verilog
from repro.gf import GF2m
from repro.jobs import load_manifest, run_batch
from repro.synth import (
    karatsuba_multiplier,
    mastrovito_multiplier,
    montgomery_multiplier,
)

from .conftest import FAST, report_row

TABLE = "Batch engine: parallel verification of Table-1 multiplier pairs"

SIZES = [8, 16] if FAST else [8, 16, 24, 32]
WORKERS = max(2, min(4, multiprocessing.cpu_count()))


def _build_manifest(tmp_path):
    jobs = []
    for k in SIZES:
        field = GF2m(k)
        spec_path = tmp_path / f"mastrovito_{k}.v"
        write_verilog(mastrovito_multiplier(field), str(spec_path))
        for arch, builder in (
            ("montgomery", lambda f: montgomery_multiplier(f).flatten()),
            ("karatsuba", karatsuba_multiplier),
        ):
            impl_path = tmp_path / f"{arch}_{k}.v"
            write_verilog(builder(field), str(impl_path))
            jobs.append(
                {
                    "id": f"{arch}-vs-mastrovito-k{k}",
                    "type": "verify",
                    "spec": spec_path.name,
                    "impl": impl_path.name,
                    "k": k,
                }
            )
    manifest_path = tmp_path / "manifest.json"
    manifest_path.write_text(json.dumps({"jobs": jobs}, indent=2))
    return manifest_path, len(jobs)


def test_batch_engine_speedup(benchmark, tmp_path):
    manifest_path, num_jobs = _build_manifest(tmp_path)
    manifest = load_manifest(str(manifest_path))
    cold_serial_dir = tmp_path / "cache-serial"
    cold_parallel_dir = tmp_path / "cache-parallel"

    t0 = time.perf_counter()
    serial = run_batch(manifest, workers=1, cache_dir=str(cold_serial_dir))
    serial_seconds = time.perf_counter() - t0
    assert serial.ok and all(r["verdict"] == "equivalent" for r in serial.results)

    def run_parallel_cold():
        return run_batch(manifest, workers=WORKERS, cache_dir=str(cold_parallel_dir))

    parallel = benchmark.pedantic(run_parallel_cold, rounds=1, iterations=1)
    parallel_seconds = parallel.wall_seconds
    assert parallel.ok

    t1 = time.perf_counter()
    warm = run_batch(manifest, workers=WORKERS, cache_dir=str(cold_parallel_dir))
    warm_seconds = time.perf_counter() - t1
    assert warm.ok
    assert warm.cache_hits == 2 * num_jobs, "warm run must hit on every abstraction"

    benchmark.extra_info["jobs"] = num_jobs
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["speedup"] = round(serial_seconds / parallel_seconds, 2)
    report_row(
        TABLE,
        {
            "jobs": num_jobs,
            "workers": WORKERS,
            "serial_s": f"{serial_seconds:.2f}",
            "parallel_s": f"{parallel_seconds:.2f}",
            "speedup": f"{serial_seconds / parallel_seconds:.2f}x",
            "warm_s": f"{warm_seconds:.2f}",
            "warm_hits": warm.cache_hits,
            "warm_misses": warm.cache_misses,
        },
    )
