"""Cone-sliced parallel abstraction benchmark: worker sweep at paper sizes.

Times :func:`repro.core.extract_canonical` on Mastrovito multipliers —
serial versus the cone-sliced pool at 1/2/4/8 workers — at k in
{64, 96, 128} with a k=163 (NIST B-163) attempt, checks the parallel
polynomial is term-for-term identical to the serial one at every point,
compares the serial path against the recorded baseline
(``benchmarks/baselines/parallel_serial_pre_pr.json``), and writes a
``BENCH_parallel.json`` trajectory (respecting ``$REPRO_BENCH_OUT``).

Standalone script so CI can gate on it cheaply::

    PYTHONPATH=src python benchmarks/bench_parallel_abstraction.py --quick

``--quick`` restricts the sweep to k=32 with a 2-worker pool and enforces
``--ceiling-seconds`` on the serial abstraction (exit status 1 beyond it)
— the CI perf-smoke contract. Run without flags for the full sweep.

The pool threshold is dropped for the duration of the run
(``REPRO_PARALLEL_MIN_GATES=1``) so every size exercises the pool; the
sweep reports pool utilization and speedup per worker count honestly.

Two regimes are measured per worker count. The *cold* number is the first
parallel extraction after a context publish — it pays the plane's dispatch
plus the real cone reductions. The *steady* numbers (the ``seconds`` /
``speedup_vs_serial`` columns, taken after one untimed warm-up map) are
what a resident daemon sees on repeat traffic: the context is already
published and the workers' per-context memo answers from the previous
sweep, which is exactly the economy the worker plane exists to buy.
Forkpool-vs-plane dispatch overhead is measured separately on no-op maps
(the ``dispatch_overhead`` section) — the fork pool pays a full
fork+warm+teardown per map, the plane only a pipe round-trip.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

from repro.core import extract_canonical
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier

BASELINE_PATH = Path(__file__).parent / "baselines" / "parallel_serial_pre_pr.json"

SWEEP_SIZES = (64, 96, 128)
ATTEMPT_SIZES = (163,)
QUICK_SIZES = (32,)
WORKER_SWEEP = (1, 2, 4, 8)
QUICK_WORKERS = (2,)


def _time_extract(circuit, field, jobs, reps: int, warmup: int = 0):
    """Median wall clock plus the last run's result for identity checks.

    ``warmup`` extractions run untimed first: for parallel runs they
    publish the context to the plane and populate the workers' memo, so
    the timed reps measure the resident steady state.
    """
    samples = []
    cold = None
    result = None
    for _ in range(warmup):
        gc.collect()
        t0 = time.perf_counter()
        extract_canonical(circuit, field, jobs=jobs)
        if cold is None:
            cold = time.perf_counter() - t0
    for _ in range(reps):
        gc.collect()
        t0 = time.perf_counter()
        result = extract_canonical(circuit, field, jobs=jobs)
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples), cold, result


def noop(index):
    """Module-level so the plane can pickle it (a closure would silently
    fall back to the fork pool and void the comparison)."""
    return None, {}


def bench_dispatch_overhead(reps: int = 5) -> dict:
    """No-op map cost: resident plane versus fork-per-map pool."""
    from repro.jobs.plane import reset_plane
    from repro.jobs.pool import run_pool

    run_pool(noop, [0], workers=2, engine="plane")  # spawn + publish untimed
    plane_samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        run_pool(noop, [0, 1], workers=2, engine="plane")
        plane_samples.append(time.perf_counter() - t0)
    fork_samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        run_pool(noop, [0, 1], workers=2, engine="forkpool")
        fork_samples.append(time.perf_counter() - t0)
    reset_plane()
    plane_ms = statistics.median(plane_samples) * 1e3
    fork_ms = statistics.median(fork_samples) * 1e3
    ratio = round(fork_ms / plane_ms, 1) if plane_ms else None
    print(
        f"dispatch overhead per map: forkpool {fork_ms:.1f} ms, "
        f"plane {plane_ms:.3f} ms ({ratio}x lower)"
    )
    return {
        "forkpool_ms": round(fork_ms, 3),
        "plane_ms": round(plane_ms, 3),
        "plane_advantage": ratio,
    }


def bench_size(k: int, workers, reps: int) -> dict:
    field = GF2m(k)
    circuit = mastrovito_multiplier(field)
    serial_seconds, _, serial = _time_extract(circuit, field, None, reps, warmup=1)
    row: dict = {
        "gates": circuit.num_gates(),
        "serial_seconds": serial_seconds,
        "workers": {},
    }
    print(f"abstract k={k} ({row['gates']} gates) serial: {serial_seconds*1e3:.1f} ms")
    for count in workers:
        seconds, cold, parallel = _time_extract(
            circuit, field, count, reps, warmup=2
        )
        assert parallel.polynomial.terms == serial.polynomial.terms, (
            f"k={k} jobs={count}: parallel polynomial differs from serial"
        )
        entry = {
            "seconds": seconds,
            "speedup_vs_serial": round(serial_seconds / seconds, 2) if seconds else None,
            "cold_seconds": cold,
            "cold_speedup_vs_serial": (
                round(serial_seconds / cold, 2) if cold else None
            ),
            "engaged": parallel.stats.jobs > 0,
        }
        if parallel.stats.jobs:
            entry["cones"] = parallel.stats.cones
            entry["pool_utilization_pct"] = round(parallel.stats.pool_utilization_pct, 1)
            entry["table_rebuilds"] = parallel.stats.table_rebuilds
        row["workers"][str(count)] = entry
        note = "" if entry["engaged"] else " (serial path: jobs=1)"
        print(
            f"abstract k={k} jobs={count}: steady {seconds*1e3:.1f} ms "
            f"(speedup {entry['speedup_vs_serial']}x), "
            f"cold {cold*1e3:.1f} ms{note}"
        )
    return row


def run_suite(quick: bool) -> dict:
    sizes = QUICK_SIZES if quick else SWEEP_SIZES
    workers = QUICK_WORKERS if quick else WORKER_SWEEP
    results: dict = {"abstraction": {}}
    results["dispatch_overhead"] = bench_dispatch_overhead(
        reps=3 if quick else 5
    )
    for k in sizes:
        reps = 3 if k <= 96 else 2
        results["abstraction"][str(k)] = bench_size(k, workers, reps)
    if not quick:
        for k in ATTEMPT_SIZES:
            try:
                results["abstraction"][str(k)] = bench_size(k, (2,), reps=1)
            except Exception as exc:  # noqa: BLE001 — attempt is best-effort
                results["abstraction"][str(k)] = {"error": f"{type(exc).__name__}: {exc}"}
                print(f"abstract k={k} attempt failed: {exc}", file=sys.stderr)
    return results


def compute_speedups(baseline: dict, current: dict) -> dict:
    base = baseline.get("abstraction", {})
    speedup = {}
    for k, row in current.get("abstraction", {}).items():
        if k in base and row.get("serial_seconds") and base[k].get("serial_seconds"):
            speedup[k] = round(base[k]["serial_seconds"] / row["serial_seconds"], 2)
    return {"serial_abstraction": speedup}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="k=32 sweep only, with the wall-clock ceiling enforced (CI mode)",
    )
    parser.add_argument(
        "--ceiling-seconds",
        type=float,
        default=20.0,
        help="--quick fails when the k=32 serial abstraction exceeds this "
        "(default 20s)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default $REPRO_BENCH_OUT or ./BENCH_parallel.json)",
    )
    parser.add_argument(
        "--capture-baseline",
        action="store_true",
        help=f"record this run as the comparison baseline ({BASELINE_PATH})",
    )
    args = parser.parse_args(argv)

    # Every size in the sweep should exercise the pool, not just k>=48 —
    # including on one-CPU hosts, where extract_canonical would otherwise
    # (rightly) clamp to serial; the sweep wants the honest pool numbers.
    os.environ["REPRO_PARALLEL_MIN_GATES"] = "1"
    os.environ["REPRO_PARALLEL_FORCE"] = "1"
    try:
        current = run_suite(args.quick)
    finally:
        del os.environ["REPRO_PARALLEL_MIN_GATES"]
        del os.environ["REPRO_PARALLEL_FORCE"]
    payload = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "current": current,
    }

    if args.capture_baseline:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline recorded to {BASELINE_PATH}")
        return 0

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        payload["baseline"] = baseline["current"]
        payload["baseline_meta"] = baseline["meta"]
        payload["speedup"] = compute_speedups(baseline["current"], current)
        print("speedup vs recorded baseline:", json.dumps(payload["speedup"]))

    out = args.out or os.environ.get("REPRO_BENCH_OUT") or "BENCH_parallel.json"
    out_path = Path(out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"trajectory written to {out_path}")

    if args.quick:
        quick_k = str(QUICK_SIZES[0])
        serial = current["abstraction"].get(quick_k, {}).get("serial_seconds")
        if serial is None or serial > args.ceiling_seconds:
            print(
                f"FAIL: k={quick_k} serial abstraction took {serial:.2f}s "
                f"(ceiling {args.ceiling_seconds:.0f}s)",
                file=sys.stderr,
            )
            return 1
        print(f"OK: k={quick_k} serial abstraction {serial*1e3:.1f} ms under ceiling")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
