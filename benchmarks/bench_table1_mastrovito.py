"""Table 1 — Abstraction of flattened Mastrovito multipliers.

Paper row format: field size k, gate count, abstraction time (s), memory.
The paper sweeps k = 163..571 on a 2014 Xeon with a custom C++ tool; the
default sweep here covers k = 8..128 (set ``REPRO_BENCH_NIST=1`` for the
full NIST range — every size through 571 completes on this substrate).
Expected shape: polynomial growth in k, far beyond the sizes where the
bit-level baselines of the comparison benchmarks die.
"""

import pytest

from repro.core import abstract_circuit
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier

from .conftest import max_rss_mb, report_row, table1_sizes

TABLE = "Table 1: abstraction of flattened Mastrovito multipliers"


@pytest.mark.parametrize("k", table1_sizes())
def test_table1_mastrovito_abstraction(benchmark, k):
    field = GF2m(k)
    circuit = mastrovito_multiplier(field)

    def run():
        return abstract_circuit(circuit, field)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = result.ring.var("A") * result.ring.var("B")
    assert result.polynomial == expected, "abstraction must derive Z = A*B"
    benchmark.extra_info["gates"] = circuit.num_gates()
    benchmark.extra_info["peak_terms"] = result.stats.peak_terms
    report_row(
        TABLE,
        {
            "size_k": k,
            "gates": circuit.num_gates(),
            "time_s": f"{result.stats.seconds:.3f}",
            "peak_terms": result.stats.peak_terms,
            "substitutions": result.stats.substitutions,
            "max_mem_mb": f"{max_rss_mb():.0f}",
            "polynomial": "Z = A*B",
        },
    )
