"""Section 6 in-text comparison — Lv et al. [5] ideal membership.

[5] reduces the *given* spec polynomial through the whole flattened
implementation; the paper's method abstracts blocks independently. Two
workloads expose the difference:

1. flattened Montgomery vs. the A*B spec — membership stays polynomial
   here because the constant-propagated input blocks are F2-linear (an
   honest negative result recorded in EXPERIMENTS.md);
2. cascades of multiplier blocks Z = W0*W1*...*Wn — each extra nonlinear
   stage multiplies the flattened reduction's intermediate term count by k
   (the k^depth remainder explosion [5] reports), while hierarchical
   abstraction handles each block in isolation and composes at word level.
"""

import pytest

from repro.circuits import HierarchicalCircuit
from repro.core import abstract_circuit, abstract_hierarchy, word_ring_for
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier, montgomery_multiplier
from repro.verify import check_ideal_membership

from .conftest import FAST, report_row

TABLE_FLAT = "Comparison: ideal membership [5] on flattened Montgomery"
TABLE_CASCADE = "Comparison: flattened vs hierarchical on multiplier cascades"


def product_cascade(field, n_inputs):
    """Z = W0 * W1 * ... * W_{n-1} as a chain of Mastrovito blocks."""
    hierarchy = HierarchicalCircuit(f"chain{n_inputs}", field.k)
    for i in range(n_inputs):
        hierarchy.add_input_word(f"W{i}")
    previous = "W0"
    for i in range(1, n_inputs):
        block = mastrovito_multiplier(field, name=f"mul{i}")
        hierarchy.add_block(
            f"M{i}", block, {"A": previous, "B": f"W{i}"}, {"Z": f"T{i}"}
        )
        previous = f"T{i}"
    hierarchy.set_output_words([previous])
    return hierarchy, previous


@pytest.mark.parametrize("k", [8, 16] if FAST else [8, 16, 32, 48, 64])
def test_lv_membership_flattened_montgomery(benchmark, k):
    field = GF2m(k)
    flat = montgomery_multiplier(field).flatten()
    ring = word_ring_for(field, ["A", "B"])
    spec = ring.var("A") * ring.var("B")

    def run():
        return check_ideal_membership(flat, field, spec, output_word="G")

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.equivalent
    report_row(
        TABLE_FLAT,
        {
            "size_k": k,
            "gates": flat.num_gates(),
            "time_s": f"{outcome.seconds:.3f}",
            "peak_terms": outcome.details["peak_terms"],
            "verdict": outcome.status,
        },
    )


@pytest.mark.parametrize("depth", [2, 3] if FAST else [2, 3, 4])
def test_cascade_flat_vs_hierarchical(benchmark, depth):
    field = GF2m(16)
    hierarchy, out_word = product_cascade(field, depth)
    flat = hierarchy.flatten()
    names = [f"W{i}" for i in range(depth)]
    ring = word_ring_for(field, names)
    spec = ring.one()
    for name in names:
        spec = spec * ring.var(name)

    membership = check_ideal_membership(flat, field, spec, output_word=out_word)
    assert membership.equivalent
    flat_abs = abstract_circuit(flat, field, output_word=out_word)

    def run():
        return abstract_hierarchy(hierarchy, field)

    hier = benchmark.pedantic(run, rounds=1, iterations=1)
    hier_poly = hier.polynomials[out_word]
    assert {
        tuple(sorted((hier.ring.variables[v], e) for v, e in m)): c
        for m, c in hier_poly.terms.items()
    } == {
        tuple(sorted((ring.variables[v], e) for v, e in m)): c
        for m, c in spec.terms.items()
    }

    report_row(
        TABLE_CASCADE,
        {
            "cascade_depth": depth,
            "gates": flat.num_gates(),
            "flat_membership_s": f"{membership.seconds:.3f}",
            "flat_peak_terms": membership.details["peak_terms"],
            "flat_abstraction_s": f"{flat_abs.stats.seconds:.3f}",
            "flat_abs_peak": flat_abs.stats.peak_terms,
            "hier_abstraction_s": f"{hier.total_seconds:.3f}",
        },
    )
