"""Kernel differential: batched vs legacy reduction kernels, end to end.

The ``REPRO_BATCH_KERNELS`` switch promises that both kernel paths are
observably identical except for speed. This script enforces that promise
the way CI consumes it::

    PYTHONPATH=src python benchmarks/kernel_differential.py --quick

Three checks, each fatal on divergence (exit status 1):

1. **canonical polynomials** — ``extract_canonical`` under each kernel on
   the Mastrovito and Montgomery multipliers at the chosen k must produce
   byte-identical polynomial renderings and identical work counters;
2. **verify** — ``verify_equivalence`` agrees under both kernels, and the
   per-kernel wall-clocks are reported (batched/legacy speedup);
3. **replay** — a REDTRACE recorded under the legacy kernels replays with
   zero diffs under the batched kernels, and vice versa (the
   ``repro replay --diff`` contract, exercised in-process).

``--quick`` runs k=16 (the CI perf-smoke step, well under its 2-minute
budget); the default is the heavier k=32 differential. Writes a JSON
summary (``--out``, default ``BENCH_kernel_differential.json`` honouring
``$REPRO_BENCH_OUT`` conventions) tagged with both kernels' timings.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

from repro.circuits.blif import to_blif
from repro.core import extract_canonical
from repro.gf import GF2m
from repro.obs import redtrace
from repro.obs.replay import diff_events, execute_header, netlist_sha256
from repro.synth import mastrovito_multiplier, montgomery_multiplier
from repro.verify import verify_equivalence

KERNELS = ("legacy", "batched")


def _set_kernel(name: str) -> None:
    os.environ["REPRO_BATCH_KERNELS"] = "1" if name == "batched" else "0"


def _circuits(k: int):
    field = GF2m(k)
    spec = mastrovito_multiplier(field)
    impl = montgomery_multiplier(field).flatten()
    return field, spec, impl


def check_canonical(k: int) -> dict:
    """Both kernels must render the identical canonical polynomial."""
    field, spec, impl = _circuits(k)
    failures = []
    timings: dict = {}
    for name, circuit in (("mastrovito", spec), ("montgomery", impl)):
        rendered = {}
        stats = {}
        for kernel in KERNELS:
            _set_kernel(kernel)
            t0 = time.perf_counter()
            result = extract_canonical(circuit, field)
            timings.setdefault(name, {})[kernel] = time.perf_counter() - t0
            rendered[kernel] = str(result.polynomial)
            stats[kernel] = (
                result.stats.substitutions,
                result.stats.term_traffic,
                result.stats.peak_terms,
            )
        if rendered["batched"] != rendered["legacy"]:
            failures.append(f"{name}: canonical polynomial renderings differ")
        if stats["batched"] != stats["legacy"]:
            failures.append(
                f"{name}: work counters differ "
                f"(legacy {stats['legacy']}, batched {stats['batched']})"
            )
    return {"timings": timings, "failures": failures}


def check_verify(k: int, reps: int) -> dict:
    """Same verdict under both kernels; report per-kernel wall-clock."""
    failures = []
    seconds = {}
    for kernel in KERNELS:
        _set_kernel(kernel)
        samples = []
        for _ in range(reps):
            field, spec, impl = _circuits(k)
            t0 = time.perf_counter()
            outcome = verify_equivalence(spec, impl, field)
            samples.append(time.perf_counter() - t0)
            if not outcome.equivalent:
                failures.append(f"{kernel}: verify reported non-equivalent")
                break
        seconds[kernel] = statistics.median(samples)
    return {"seconds": seconds, "failures": failures}


def check_replay(k: int) -> dict:
    """Cross-kernel replay must be byte-identical, both directions."""
    field, spec, _ = _circuits(k)
    text = to_blif(spec)
    failures = []
    for record_kernel, replay_kernel in (
        ("legacy", "batched"),
        ("batched", "legacy"),
    ):
        _set_kernel(record_kernel)
        writer = redtrace.start_recording(
            op="abstract",
            params={
                "k": field.k,
                "modulus": f"{field.modulus:#x}",
                "output_word": None,
                "case2": "linearized",
                "jobs": None,
                "netlist": "<mastrovito>",
                "netlist_text": text,
                "netlist_sha256": netlist_sha256(text),
            },
            ring=False,
        )
        try:
            extract_canonical(spec, field)
        finally:
            redtrace.stop_recording()
        recorded = writer.events()
        _set_kernel(replay_kernel)
        fresh = execute_header(recorded[0])
        diff = diff_events(recorded, fresh)
        if diff is not None:
            index, a, b = diff
            failures.append(
                f"record={record_kernel} replay={replay_kernel}: first "
                f"divergence at event {index}: {a!r} != {b!r}"
            )
    return {"failures": failures}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="k=16 differential (CI mode)"
    )
    parser.add_argument(
        "--k", type=int, default=None, help="field degree (default 32, 16 with --quick)"
    )
    parser.add_argument(
        "--out",
        default=None,
        help="JSON summary path (default $REPRO_BENCH_OUT dir conventions)",
    )
    args = parser.parse_args(argv)
    k = args.k if args.k is not None else (16 if args.quick else 32)
    prior = os.environ.get("REPRO_BATCH_KERNELS")

    try:
        canonical = check_canonical(k)
        verify = check_verify(k, reps=3 if args.quick else 5)
        replay = check_replay(k)
    finally:
        if prior is None:
            os.environ.pop("REPRO_BATCH_KERNELS", None)
        else:
            os.environ["REPRO_BATCH_KERNELS"] = prior

    failures = canonical["failures"] + verify["failures"] + replay["failures"]
    legacy = verify["seconds"]["legacy"]
    batched = verify["seconds"]["batched"]
    print(
        f"verify k={k}: legacy {legacy*1e3:.1f} ms, batched "
        f"{batched*1e3:.1f} ms ({legacy/batched:.2f}x)"
    )
    for name, row in canonical["timings"].items():
        print(
            f"abstract {name} k={k}: legacy {row['legacy']*1e3:.1f} ms, "
            f"batched {row['batched']*1e3:.1f} ms"
        )
    print("replay: cross-kernel diff clean both directions"
          if not replay["failures"] else "replay: DIVERGED")

    payload = {
        "meta": {
            "k": k,
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "verify_seconds": verify["seconds"],
        "abstract_seconds": canonical["timings"],
        "speedup": round(legacy / batched, 3) if batched else None,
        "failures": failures,
    }
    out = args.out or os.environ.get("REPRO_BENCH_OUT")
    if out and Path(out).is_dir():
        out = str(Path(out) / "BENCH_kernel_differential.json")
    out_path = Path(out or "BENCH_kernel_differential.json")
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"summary written to {out_path}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"OK: kernels identical at k={k}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
