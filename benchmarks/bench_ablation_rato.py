"""Ablation — the RATO refinement (Definition 5.1) vs. unrefined orders.

Definition 4.2 allows any relative order among circuit variables; the
refinement fixes reverse-topological ranking so the guided reduction is a
single forward sweep. This ablation abstracts the same Mastrovito circuits
under RATO and under structure-blind orders (alphabetical and shuffled) and
reports the work metrics. Both orders reach the same canonical polynomial
(Cor. 4.1); the refinement's value shows in the substitution traffic.
"""

import pytest

from repro.core import abstract_circuit, build_rato, build_unrefined_order
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier

from .conftest import FAST, report_row

TABLE = "Ablation: RATO vs unrefined variable orders (same circuit)"


@pytest.mark.parametrize("k", [8] if FAST else [8, 16, 32, 64])
def test_rato_vs_unrefined(benchmark, k):
    field = GF2m(k)
    circuit = mastrovito_multiplier(field)

    def run():
        return abstract_circuit(
            circuit, field, ordering=build_rato(circuit, output_words=["Z"])
        )

    rato = benchmark.pedantic(run, rounds=1, iterations=1)
    alpha = abstract_circuit(
        circuit, field, ordering=build_unrefined_order(circuit)
    )
    shuffled = abstract_circuit(
        circuit,
        field,
        ordering=build_unrefined_order(circuit, shuffle_seed=2014),
    )
    expected = rato.ring.var("A") * rato.ring.var("B")
    assert rato.polynomial == expected
    assert alpha.polynomial == expected
    assert shuffled.polynomial == expected

    report_row(
        TABLE,
        {
            "size_k": k,
            "rato_s": f"{rato.stats.seconds:.3f}",
            "rato_traffic": rato.stats.term_traffic,
            "alpha_s": f"{alpha.stats.seconds:.3f}",
            "alpha_traffic": alpha.stats.term_traffic,
            "shuffled_s": f"{shuffled.stats.seconds:.3f}",
            "shuffled_traffic": shuffled.stats.term_traffic,
        },
    )
