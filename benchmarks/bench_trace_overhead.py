"""REDTRACE overhead: enabled-vs-disabled recording at paper word widths.

The reduction-event hooks (``divisor_hit``, ``mask_sweep``,
``spoly_selected``, ...) live permanently inside the division and
abstraction hot loops, so they inherit the telemetry subsystem's core
promise: *disabled means free*. This benchmark measures both halves of
that promise on the Mastrovito-vs-Montgomery verify path:

1. **disabled guard** — census the events a run would emit, microbench
   the per-iteration disabled cost (one hoisted ``active_writer()`` local
   tested against ``None``), and assert
   ``events x per_check < 5% of the disabled verify wall time`` — the
   same budget ``bench_obs_overhead.py`` enforces for spans/counters;
2. **enabled ratio** — time the same verify with a stream recording
   active and report the slowdown honestly (recording is a diagnostic
   mode; it has no budget, only a measurement).

Standalone script so CI can gate on it cheaply::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py --quick

``--quick`` restricts the sweep to k=16 (the CI smoke contract); the
default sweep is k in {16, 32, 64}. Output JSON goes to ``--out``,
``$REPRO_BENCH_OUT``, or ``./BENCH_trace.json``.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import statistics
import sys
import time
from datetime import datetime
from pathlib import Path

from repro.gf import GF2m
from repro.obs import redtrace
from repro.synth import mastrovito_multiplier, montgomery_multiplier
from repro.verify import verify_equivalence

SWEEP_SIZES = (16, 32, 64)
QUICK_SIZES = (16,)
DISABLED_BUDGET = 0.05
_CHECK_LOOP = 1_000_000


def _build_pair(k: int):
    field = GF2m(k)
    return mastrovito_multiplier(field), montgomery_multiplier(field).flatten(), field


def _time_verify(spec, impl, field, reps: int) -> float:
    samples = []
    for _ in range(reps):
        gc.collect()
        t0 = time.perf_counter()
        outcome = verify_equivalence(spec, impl, field)
        samples.append(time.perf_counter() - t0)
        assert outcome.equivalent
    return statistics.median(samples)


def _per_check_disabled_seconds() -> float:
    """Cost of one hoisted-writer None test, the per-iteration disabled
    price every instrumented loop pays."""
    assert redtrace.active_writer() is None
    rtw = redtrace.active_writer()
    sink = 0
    t0 = time.perf_counter()
    for _ in range(_CHECK_LOOP):
        if rtw is not None:
            sink += 1
    per_iter = (time.perf_counter() - t0) / _CHECK_LOOP
    assert sink == 0
    return per_iter


def _census_events(spec, impl, field) -> int:
    """How many REDTRACE events does this verify emit when recording?"""
    writer = redtrace.start_recording(
        op="verify", params={"k": field.k}, ring=True, max_events=10_000_000
    )
    try:
        verify_equivalence(spec, impl, field)
    finally:
        redtrace.stop_recording()
    return writer.emitted


def bench_size(k: int, reps: int, trace_dir: Path) -> dict:
    spec, impl, field = _build_pair(k)
    gates = spec.num_gates() + impl.num_gates()

    disabled_seconds = _time_verify(spec, impl, field, reps)
    events = _census_events(spec, impl, field)
    per_check = _per_check_disabled_seconds()
    disabled_fraction = (events * per_check) / disabled_seconds

    # Enabled: stream recording to a real file, the verify --record path.
    trace_path = trace_dir / f"bench_k{k}.redtrace"
    samples = []
    for _ in range(reps):
        gc.collect()
        redtrace.start_recording(
            path=str(trace_path), op="verify", params={"k": k}
        )
        t0 = time.perf_counter()
        outcome = verify_equivalence(spec, impl, field)
        samples.append(time.perf_counter() - t0)
        redtrace.stop_recording()
        assert outcome.equivalent
    enabled_seconds = statistics.median(samples)
    trace_path.unlink(missing_ok=True)

    row = {
        "gates": gates,
        "events": events,
        "disabled_seconds": round(disabled_seconds, 6),
        "enabled_seconds": round(enabled_seconds, 6),
        "enabled_ratio": round(enabled_seconds / disabled_seconds, 4),
        "per_check_ns": round(per_check * 1e9, 3),
        "disabled_fraction": round(disabled_fraction, 8),
        "disabled_budget": DISABLED_BUDGET,
    }
    print(
        f"k={k:<3} ({gates} gates)  disabled {disabled_seconds * 1e3:8.1f} ms  "
        f"recording {enabled_seconds * 1e3:8.1f} ms "
        f"(x{row['enabled_ratio']:.2f})  {events} events  "
        f"disabled cost {disabled_fraction * 100:.5f}% of budget "
        f"{DISABLED_BUDGET * 100:.0f}%"
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="k=16 only (CI smoke)")
    parser.add_argument("--reps", type=int, default=3,
                        help="timing repetitions per configuration (default 3)")
    parser.add_argument("--out", default=None,
                        help="output JSON (default $REPRO_BENCH_OUT or "
                        "./BENCH_trace.json)")
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else SWEEP_SIZES
    trace_dir = Path(os.environ.get("TMPDIR", "/tmp"))
    results = {}
    failures = []
    for k in sizes:
        row = bench_size(k, args.reps, trace_dir)
        results[f"k{k}"] = row
        if row["disabled_fraction"] >= DISABLED_BUDGET:
            failures.append(
                f"k={k}: disabled REDTRACE checks cost "
                f"{row['disabled_fraction'] * 100:.2f}% of the verify path "
                f"(budget {DISABLED_BUDGET * 100:.0f}%)"
            )

    doc = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "timestamp": datetime.now().isoformat(timespec="seconds"),
        },
        "current": results,
    }
    out = args.out or os.environ.get("REPRO_BENCH_OUT") or "BENCH_trace.json"
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.exit(main())
