"""Table 2 — Abstraction of hierarchical Montgomery multipliers (Fig. 1).

Paper row format: per-block gate counts and abstraction times
(BLK A / BLK B / BLK Mid / BLK Out) plus the total; the word-level
re-composition is "solved trivially in < 1 second". Expected shape:
BLK Mid dominates both size and time (it is the only block with two
variable operands), the constant-propagated blocks are cheaper, and the
hierarchical total scales past where flattened abstraction struggles.
"""

import pytest

from repro.core import abstract_hierarchy
from repro.gf import GF2m
from repro.synth import montgomery_multiplier

from .conftest import max_rss_mb, report_row, table2_sizes

TABLE = "Table 2: abstraction of Montgomery blocks (hierarchical, Fig. 1)"


@pytest.mark.parametrize("k", table2_sizes())
def test_table2_montgomery_blocks(benchmark, k):
    field = GF2m(k)
    hierarchy = montgomery_multiplier(field)

    def run():
        return abstract_hierarchy(hierarchy, field)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = result.ring.var("A") * result.ring.var("B")
    assert result.polynomials["G"] == expected

    sizes = {b.name: b.circuit.num_gates() for b in hierarchy.blocks}
    times = result.block_seconds
    benchmark.extra_info["total_gates"] = hierarchy.num_gates()
    report_row(
        TABLE,
        {
            "size_k": k,
            "gates_A": sizes["BLK_A"],
            "gates_B": sizes["BLK_B"],
            "gates_Mid": sizes["BLK_Mid"],
            "gates_Out": sizes["BLK_Out"],
            "t_A": f"{times['BLK_A']:.3f}",
            "t_B": f"{times['BLK_B']:.3f}",
            "t_Mid": f"{times['BLK_Mid']:.3f}",
            "t_Out": f"{times['BLK_Out']:.3f}",
            "t_compose": f"{result.compose_seconds:.3f}",
            "t_total": f"{result.total_seconds:.3f}",
            "max_mem_mb": f"{max_rss_mb():.0f}",
        },
    )


@pytest.mark.parametrize("k", table2_sizes()[:4])
def test_table2_block_shape(benchmark, k):
    """Sanity row: the paper's block-size ordering (Mid > A = B > Out)."""
    field = GF2m(k)
    hierarchy = montgomery_multiplier(field)

    def run():
        return {b.name: b.circuit.num_gates() for b in hierarchy.blocks}

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sizes["BLK_Mid"] > sizes["BLK_A"] == sizes["BLK_B"] > sizes["BLK_Out"]
