"""Cluster benchmark: consistent-hash router over two shards on one box.

Boots two :class:`repro.service.VerificationService` daemons and a
:class:`repro.service.RouterService` in front of them — the smallest real
cluster — and measures what the router adds and what sharding buys:

- **routing locality**: a duplicate-heavy workload of ``distinct``
  submission keys, each repeated; the router's ``primary_routed`` share
  shows keys pinning to their owning shard (the property that keeps each
  shard's canonical-polynomial cache and in-flight dedup effective);
- **cache economy under sharding**: abstractions actually computed across
  the fleet versus requests served, read from the shards' own counters;
- **router overhead**: p50 submit→verdict latency through the router vs
  straight to a shard for the same key;
- **failover**: one shard is stopped mid-run, the next submissions must
  land on the survivor (and be counted ``failover_routed``).

Standalone script::

    PYTHONPATH=src python benchmarks/bench_cluster_router.py --quick

Output JSON goes to ``--out``, ``$REPRO_BENCH_OUT``, or
``./BENCH_cluster.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.circuits import write_verilog
from repro.circuits.mutate import substitute_gate_type
from repro.gf import GF2m
from repro.service import ServiceClient, ServiceConfig, VerificationService
from repro.service.router import RouterConfig, RouterService
from repro.synth import mastrovito_multiplier, montgomery_multiplier


def build_workload(k: int, variants: int, tmp_dir: Path):
    """Spec text plus ``variants`` distinct impl texts (1 good, rest buggy)."""
    field = GF2m(k)
    spec = mastrovito_multiplier(field)
    impl = montgomery_multiplier(field).flatten()
    write_verilog(spec, str(tmp_dir / "spec.v"))
    texts = [(tmp_dir / "spec.v").read_text()]
    write_verilog(impl, str(tmp_dir / "impl0.v"))
    impl_texts = [(tmp_dir / "impl0.v").read_text()]
    mutated = impl
    for i in range(1, variants):
        mutated, _ = substitute_gate_type(impl, impl.gates[i % len(impl.gates)].output)
        path = tmp_dir / f"impl{i}.v"
        write_verilog(mutated, str(path))
        impl_texts.append(path.read_text())
    return texts[0], impl_texts


def scrape(host, port, wanted):
    """Pull named samples out of a /metrics exposition."""
    client = ServiceClient(host=host, port=port, timeout=15.0, retries=2)
    try:
        text = client.metrics_text()
    finally:
        client.close()
    values = {}
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if name in wanted:
            values[name] = float(value)
    return values


def drive(router_address, spec_text, impl_texts, k, repeats):
    """Submit every (spec, impl) key ``repeats`` times; returns latencies."""
    host, port = router_address
    client = ServiceClient(host=host, port=port, timeout=60.0, retries=3)
    latencies = []
    try:
        for _ in range(repeats):
            for impl_text in impl_texts:
                t0 = time.perf_counter()
                doc = client.verify(spec_text, impl_text, k, poll_timeout=300.0)
                latencies.append(time.perf_counter() - t0)
                assert doc["status"] == "done", doc
    finally:
        client.close()
    return latencies


def percentile(samples, fraction):
    if not samples:
        return None
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def run_suite(k, variants, repeats, tmp_dir: Path) -> dict:
    spec_text, impl_texts = build_workload(k, variants, tmp_dir)
    shards = []
    for i in range(2):
        config = ServiceConfig(
            port=0, workers=1, cache_dir=str(tmp_dir / f"cache{i}"),
            drain_timeout=10.0, shard_of=f"{i}/2",
        )
        service = VerificationService(config)
        service.start()
        shards.append(service)
    backends = ["%s:%d" % s.address for s in shards]
    router = RouterService(RouterConfig(backends=backends, port=0,
                                        health_interval=0.5))
    router.start()
    results: dict = {"backends": backends, "k": k,
                     "distinct_keys": variants, "repeats": repeats}
    try:
        t0 = time.perf_counter()
        latencies = drive(router.address, spec_text, impl_texts, k, repeats)
        wall = time.perf_counter() - t0

        router_metrics = scrape(
            *router.address,
            wanted={
                "repro_router_requests", "repro_router_primary_routed",
                "repro_router_failover_routed", "repro_router_retries",
            },
        )
        requests = router_metrics.get("repro_router_requests", 0)
        primary = router_metrics.get("repro_router_primary_routed", 0)
        locality = round(primary / requests, 4) if requests else None
        # The collector is process-global, so the shard counters scraped
        # from either daemon reflect fleet-wide abstraction work.
        fleet = scrape(*shards[0].address,
                       wanted={"repro_abstraction_extractions"})
        extractions = fleet.get("repro_abstraction_extractions")
        results["routed"] = {
            "requests": requests,
            "wall_seconds": round(wall, 3),
            "requests_per_second": round(len(latencies) / wall, 2),
            "p50_seconds": round(percentile(latencies, 0.50), 4),
            "p95_seconds": round(percentile(latencies, 0.95), 4),
            "key_locality": locality,
            "failover_routed": router_metrics.get(
                "repro_router_failover_routed", 0),
            "abstraction_extractions": extractions,
            "verdicts_served": len(latencies),
        }
        print(
            f"routed: {len(latencies)} verdicts in {wall:.2f}s, "
            f"locality {locality}, {extractions:.0f} extraction(s) computed"
        )

        # Same repeated key straight to its owning shard, for the overhead
        # delta. The key is warm on both paths — this isolates proxy cost.
        direct_latencies = []
        owner = router.ring.primary(
            router.submission_key(
                "verify",
                json.dumps({"k": k, "spec_text": spec_text,
                            "impl_text": impl_texts[0],
                            "case2": "linearized"}).encode(),
            )
        )
        owner_backend = router.backends[owner]
        client = ServiceClient(host=owner_backend.host,
                               port=owner_backend.port,
                               timeout=60.0, retries=2)
        try:
            for _ in range(max(3, repeats)):
                t0 = time.perf_counter()
                client.verify(spec_text, impl_texts[0], k, poll_timeout=300.0)
                direct_latencies.append(time.perf_counter() - t0)
        finally:
            client.close()
        routed_same_key = []
        rhost, rport = router.address
        client = ServiceClient(host=rhost, port=rport, timeout=60.0, retries=2)
        try:
            for _ in range(max(3, repeats)):
                t0 = time.perf_counter()
                client.verify(spec_text, impl_texts[0], k, poll_timeout=300.0)
                routed_same_key.append(time.perf_counter() - t0)
        finally:
            client.close()
        direct_p50 = percentile(direct_latencies, 0.5)
        routed_p50 = percentile(routed_same_key, 0.5)
        results["router_overhead"] = {
            "direct_p50_seconds": round(direct_p50, 4),
            "routed_p50_seconds": round(routed_p50, 4),
            "added_ms_p50": round((routed_p50 - direct_p50) * 1e3, 2),
        }
        print(
            f"router overhead p50: direct {direct_p50*1e3:.1f} ms, "
            f"routed {routed_p50*1e3:.1f} ms "
            f"(+{(routed_p50-direct_p50)*1e3:.1f} ms)"
        )

        # Failover: kill the shard that OWNS impl0's key (so the re-drive
        # must actually fail over, not just keep hitting its primary).
        victim = next(s for s in shards if "%s:%d" % s.address == owner)
        victim.stop()
        router.probe_all()
        t0 = time.perf_counter()
        drive(router.address, spec_text, impl_texts[:1], k, 1)
        failover_latency = time.perf_counter() - t0
        after = scrape(*router.address,
                       wanted={"repro_router_failover_routed",
                               "repro_router_unroutable"})
        results["failover"] = {
            "survivors": router.healthy_count(),
            "first_verdict_seconds": round(failover_latency, 3),
            "failover_routed_total": after.get(
                "repro_router_failover_routed", 0),
            "unroutable_total": after.get("repro_router_unroutable", 0),
        }
        print(
            f"failover: {router.healthy_count()} shard(s) up, verdict in "
            f"{failover_latency:.2f}s"
        )
    finally:
        router.stop()
        for shard in shards:
            shard.stop()
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller field and workload (CI mode)")
    parser.add_argument("--k", type=int, default=None,
                        help="field degree (default 8, or 4 with --quick)")
    parser.add_argument("--variants", type=int, default=None,
                        help="distinct impl netlists (default 4; 2 quick)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="times each key is resubmitted (default 3; 2 quick)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default $REPRO_BENCH_OUT "
                        "or ./BENCH_cluster.json)")
    args = parser.parse_args(argv)

    k = args.k or (4 if args.quick else 8)
    variants = args.variants or (2 if args.quick else 4)
    repeats = args.repeats or (2 if args.quick else 3)

    with tempfile.TemporaryDirectory(prefix="repro-cluster-bench-") as tmp:
        results = run_suite(k, variants, repeats, Path(tmp))

    payload = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "current": results,
    }
    out = args.out or os.environ.get("REPRO_BENCH_OUT") or "BENCH_cluster.json"
    out_path = Path(out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"trajectory written to {out_path}")

    locality = results.get("routed", {}).get("key_locality")
    if locality is not None and locality < 0.95:
        print(f"FAIL: key locality {locality} below 0.95", file=sys.stderr)
        return 1
    if results.get("failover", {}).get("survivors") != 1:
        print("FAIL: failover did not leave exactly one survivor",
              file=sys.stderr)
        return 1
    print(f"OK: locality {locality}, failover served by the survivor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
