"""Verification-service throughput: resident daemon vs process-per-request.

Boots a :class:`repro.service.VerificationService` on an ephemeral port and
drives a *duplicate-heavy* workload — the regression/bug-hunt shape where
one golden spec is checked against a small set of candidate implementations
over and over — at client concurrency 1/4/16. Reports requests/second and
p50/p95 submit-to-verdict latency per concurrency level, plus the
single-flight/cache economy (abstractions actually computed vs requests
served, from the daemon's own ``/metrics``).

For contrast it times the same check as ``repro verify`` subprocesses —
the process-per-request deployment the service replaces, which pays
interpreter start-up, GF-table construction and netlist parsing on every
call.

Standalone script::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py --quick

``--quick`` (CI mode) shrinks the field, the request count, and the
concurrency sweep. Output JSON goes to ``--out``, ``$REPRO_BENCH_OUT``,
or ``./BENCH_service.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.circuits import write_verilog
from repro.circuits.mutate import substitute_gate_type
from repro.gf import GF2m
from repro.service import ServiceClient, ServiceConfig, VerificationService
from repro.synth import mastrovito_multiplier, montgomery_multiplier

CONCURRENCY_SWEEP = (1, 4, 16)
QUICK_CONCURRENCY = (1, 4)


def build_workload(k: int, variants: int, tmp_dir: Path):
    """One golden pair plus ``variants`` buggy mutants, as Verilog text.

    Returns (spec_text, [impl_texts...], spec_path, impl_path) — the paths
    feed the subprocess baseline.
    """
    field = GF2m(k)
    spec = mastrovito_multiplier(field)
    impl = montgomery_multiplier(field).flatten()
    spec_path = tmp_dir / "spec.v"
    impl_path = tmp_dir / "impl.v"
    write_verilog(spec, str(spec_path))
    write_verilog(impl, str(impl_path))

    impl_texts = [impl_path.read_text()]
    for index in range(variants):
        mutant, _ = substitute_gate_type(impl, impl.gates[index].output)
        mutant_path = tmp_dir / f"mutant_{index}.v"
        write_verilog(mutant, str(mutant_path))
        impl_texts.append(mutant_path.read_text())
    return spec_path.read_text(), impl_texts, spec_path, impl_path


def drive_clients(host, port, spec_text, impl_texts, k, requests, concurrency):
    """``requests`` submit+wait round trips spread over ``concurrency``
    client threads, cycling through the duplicate-heavy implementation set.
    Returns per-request latencies (seconds) and the wall clock."""
    latencies = []
    errors = []
    lock = threading.Lock()
    counter = iter(range(requests))

    def worker():
        client = ServiceClient(host=host, port=port, timeout=120.0)
        try:
            while True:
                with lock:
                    try:
                        index = next(counter)
                    except StopIteration:
                        return
                impl_text = impl_texts[index % len(impl_texts)]
                started = time.perf_counter()
                try:
                    doc = client.verify(
                        spec_text, impl_text, k, poll_timeout=300.0
                    )
                    if doc.get("status") != "done":
                        raise RuntimeError(f"job ended {doc.get('status')}")
                except Exception as exc:  # noqa: BLE001 — tally, keep driving
                    with lock:
                        errors.append(f"{type(exc).__name__}: {exc}")
                    continue
                elapsed = time.perf_counter() - started
                with lock:
                    latencies.append(elapsed)
        finally:
            client.close()

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_started
    return latencies, wall, errors


def percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def scrape_economy(host, port):
    client = ServiceClient(host=host, port=port)
    try:
        text = client.metrics_text()
    finally:
        client.close()
    values = {}
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        name, _, value = line.partition(" ")
        values[name] = float(value)
    return {
        "requests": values.get("repro_service_requests", 0),
        "abstractions_computed": values.get("repro_abstraction_extractions", 0),
        "singleflight_shared": values.get("repro_service_singleflight_shared", 0),
        "requests_deduplicated": values.get(
            "repro_service_requests_deduplicated", 0
        ),
        "cache_hits": values.get("repro_cache_hits", 0),
    }


def bench_subprocess_baseline(spec_path, impl_path, k, reps):
    """Cold ``repro verify`` subprocess per request: the replaced deployment."""
    src = str(Path(__file__).resolve().parents[1] / "src")
    env = dict(os.environ, PYTHONPATH=src)
    samples = []
    for _ in range(reps):
        started = time.perf_counter()
        result = subprocess.run(
            [sys.executable, "-m", "repro", "verify",
             str(spec_path), str(impl_path), "-k", str(k)],
            env=env, capture_output=True,
        )
        if result.returncode != 0:
            raise RuntimeError(
                f"baseline verify failed: {result.stderr.decode()[:500]}"
            )
        samples.append(time.perf_counter() - started)
    mean = statistics.mean(samples)
    return {
        "reps": reps,
        "mean_seconds": round(mean, 4),
        "req_per_s": round(1.0 / mean, 3) if mean else None,
    }


def run_suite(k, requests, variants, workers, concurrencies, baseline_reps):
    results = {"k": k, "requests_per_level": requests, "levels": {}}
    with tempfile.TemporaryDirectory() as tmp:
        tmp_dir = Path(tmp)
        spec_text, impl_texts, spec_path, impl_path = build_workload(
            k, variants, tmp_dir
        )
        print(f"workload: k={k}, {len(impl_texts)} distinct impls, "
              f"{requests} requests per level")

        service = VerificationService(
            ServiceConfig(
                port=0,
                workers=workers,
                queue_capacity=max(64, requests),
                cache_dir=str(tmp_dir / "cache"),
                prewarm=[(k, None)],
            )
        )
        host, port = service.start()
        try:
            for concurrency in concurrencies:
                latencies, wall, errors = drive_clients(
                    host, port, spec_text, impl_texts, k, requests, concurrency
                )
                if not latencies:
                    results["levels"][str(concurrency)] = {
                        "error": f"no request succeeded: {errors[:3]}"
                    }
                    continue
                level = {
                    "requests_ok": len(latencies),
                    "errors": len(errors),
                    "wall_seconds": round(wall, 4),
                    "req_per_s": round(len(latencies) / wall, 3),
                    "p50_seconds": round(percentile(latencies, 0.50), 4),
                    "p95_seconds": round(percentile(latencies, 0.95), 4),
                }
                results["levels"][str(concurrency)] = level
                print(
                    f"concurrency {concurrency:>2}: "
                    f"{level['req_per_s']:.2f} req/s, "
                    f"p50 {level['p50_seconds']*1e3:.1f} ms, "
                    f"p95 {level['p95_seconds']*1e3:.1f} ms"
                    + (f", {len(errors)} error(s)" if errors else "")
                )
            results["economy"] = scrape_economy(host, port)
            economy = results["economy"]
            print(
                f"economy: {economy['requests']:.0f} requests served by "
                f"{economy['abstractions_computed']:.0f} abstraction "
                f"computation(s) ({economy['cache_hits']:.0f} cache hits, "
                f"{economy['singleflight_shared']:.0f} single-flight shares)"
            )
        finally:
            service.stop()

        if baseline_reps:
            results["subprocess_baseline"] = bench_subprocess_baseline(
                spec_path, impl_path, k, baseline_reps
            )
            base = results["subprocess_baseline"]
            resident = max(
                (level.get("req_per_s") or 0)
                for level in results["levels"].values()
            )
            if base["req_per_s"]:
                results["resident_speedup_vs_subprocess"] = round(
                    resident / base["req_per_s"], 2
                )
                print(
                    f"process-per-request: {base['req_per_s']:.2f} req/s "
                    f"(mean {base['mean_seconds']*1e3:.0f} ms) -> resident "
                    f"speedup {results['resident_speedup_vs_subprocess']}x"
                )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small field, short sweep (CI mode)")
    parser.add_argument("-k", type=int, default=None,
                        help="field degree (default 16, quick 8)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per concurrency level (default 48, quick 12)")
    parser.add_argument("--variants", type=int, default=3,
                        help="distinct buggy mutants in the workload (default 3)")
    parser.add_argument("--workers", type=int, default=2,
                        help="daemon worker threads (default 2)")
    parser.add_argument("--baseline-reps", type=int, default=None,
                        help="subprocess repro verify timings (default 3, quick 2, "
                        "0 disables)")
    parser.add_argument("--out", default=None,
                        help="output JSON (default $REPRO_BENCH_OUT or "
                        "./BENCH_service.json)")
    args = parser.parse_args(argv)

    k = args.k if args.k is not None else (8 if args.quick else 16)
    requests = args.requests if args.requests is not None else (
        12 if args.quick else 48
    )
    baseline_reps = args.baseline_reps if args.baseline_reps is not None else (
        2 if args.quick else 3
    )
    concurrencies = QUICK_CONCURRENCY if args.quick else CONCURRENCY_SWEEP

    current = run_suite(
        k, requests, args.variants, args.workers, concurrencies, baseline_reps
    )
    payload = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "current": current,
    }
    out = args.out or os.environ.get("REPRO_BENCH_OUT") or "BENCH_service.json"
    out_path = Path(out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"trajectory written to {out_path}")

    economy = current.get("economy", {})
    if economy.get("requests") and not (
        economy["abstractions_computed"] < economy["requests"]
    ):
        print(
            "FAIL: duplicate-heavy workload did not deduplicate "
            f"(abstractions {economy['abstractions_computed']:.0f} >= "
            f"requests {economy['requests']:.0f})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
