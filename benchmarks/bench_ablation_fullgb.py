"""Section 6 in-text comparison — full Gröbner basis (SINGULAR ``slimgb``).

The paper: computing a *full* GB of J + J_0 under a generic elimination
order is "infeasible (memory explosion) beyond only 32-bit circuits",
which motivates both the abstraction term order and its RATO refinement.
This ablation separates the two effects on the same circuits:

- full Buchberger under a *structure-blind* (shuffled) elimination order —
  the SINGULAR-like configuration; explodes almost immediately;
- full Buchberger under RATO — the product criterion now kills nearly all
  pairs, taming the computation (but still computing a whole basis);
- the Section 5 guided reduction — one S-polynomial, milliseconds.

Budgets (basis size + wall clock) stand in for the paper's memory limit.
"""

import time

import pytest

from repro.algebra import GroebnerStats, reduced_groebner_basis
from repro.core import abstract_circuit, build_unrefined_order, circuit_ideal
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier
from repro.verify import abstract_via_full_groebner

from .conftest import FAST, report_row

TABLE = "Ablation: full GB (slimgb stand-in) by term order vs guided reduction"

BASIS_BUDGET = 600
DEADLINE_SECONDS = 20.0


def _unrefined_full_gb(circuit, field):
    ideal = circuit_ideal(
        circuit, field, ordering=build_unrefined_order(circuit, shuffle_seed=1)
    )
    stats = GroebnerStats()
    start = time.perf_counter()
    try:
        reduced_groebner_basis(
            ideal.generators + ideal.vanishing,
            max_basis=BASIS_BUDGET,
            stats=stats,
            deadline_seconds=DEADLINE_SECONDS,
        )
        return f"{time.perf_counter() - start:.2f}s", stats
    except RuntimeError:
        return "EXPLODED", stats


@pytest.mark.parametrize("k", [2] if FAST else [2, 3, 4, 5])
def test_fullgb_vs_guided(benchmark, k):
    field = GF2m(k)
    circuit = mastrovito_multiplier(field)

    def run():
        return abstract_via_full_groebner(
            circuit,
            field,
            max_basis=BASIS_BUDGET,
            deadline_seconds=DEADLINE_SECONDS,
        )

    rato_full = benchmark.pedantic(run, rounds=1, iterations=1)
    if rato_full.completed:
        assert str(rato_full.polynomial) == "Z + A*B"

    unrefined_text, unrefined_stats = _unrefined_full_gb(circuit, field)

    start = time.perf_counter()
    guided = abstract_circuit(circuit, field)
    guided_seconds = time.perf_counter() - start
    assert guided.polynomial == guided.ring.var("A") * guided.ring.var("B")

    report_row(
        TABLE,
        {
            "size_k": k,
            "gates": circuit.num_gates(),
            "fullgb_shuffled": unrefined_text,
            "shuffled_pairs": unrefined_stats.pairs_total,
            "fullgb_rato": (
                f"{rato_full.seconds:.2f}s" if rato_full.completed else "EXPLODED"
            ),
            "rato_pairs": rato_full.stats.pairs_total,
            "guided": f"{guided_seconds:.4f}s",
        },
    )
