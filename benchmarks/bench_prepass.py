"""Prepass economics: canonicalization cost vs. abstraction savings.

The structural prepass (:mod:`repro.prepass`) spends time up front —
canonicalize, fraig SAT-sweep, differential guard — to buy cache hits the
raw-structure key cannot see. This benchmark prices both sides of that
trade on the PR 6 workload (Mastrovito multipliers hidden behind the six
``reveng.obfuscate`` passes, singly and stacked):

1. **prepass cost** — median wall time of :func:`apply_prepass` on the
   clean multiplier, with the gate/merge/SAT statistics it produced;
2. **abstraction savings** — what an obfuscated variant costs without the
   prepass (a raw-key miss, so a full abstraction of the *inflated*
   netlist: ``cold_variant_seconds``) vs. the warm path it takes now
   (prepass + canonical-key hit: ``warm_variant_seconds``). The
   ``saved_ratio`` is the fraction of that cold re-abstraction each
   collapsed variant avoids; the clean design's own cold abstraction is
   reported alongside for scale;
3. **hit rates before/after** — for all six single-pass variants plus the
   stacked one: how many share the original's *raw* structural key
   (the pre-PR scheme; ``rename`` alone defeats it) vs. how many share
   its *canonical* key. The canonical rate must be 7/7 — that is the
   tentpole acceptance property and the benchmark fails otherwise.

Standalone script so CI can gate on it cheaply::

    PYTHONPATH=src python benchmarks/bench_prepass.py --quick

``--quick`` restricts the sweep to k=16 (the CI smoke contract); the
default sweep is k in {16, 32, 64}. Output JSON goes to ``--out``,
``$REPRO_BENCH_OUT``, or ``./BENCH_prepass.json``.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import statistics
import sys
import tempfile
import time
from datetime import datetime
from pathlib import Path

from repro.gf import GF2m
from repro.jobs.cache import CanonicalPolyCache, canonical_cache_key
from repro.prepass import abstract_canonical, apply_prepass, canonicalize
from repro.reveng import obfuscation_suite
from repro.synth import mastrovito_multiplier

SWEEP_SIZES = (16, 32, 64)
QUICK_SIZES = (16,)
SUITE_SEED = 2014


def _median(fn, reps: int) -> float:
    samples = []
    for _ in range(reps):
        gc.collect()
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def bench_size(k: int, reps: int) -> dict:
    field = GF2m(k)
    circuit = mastrovito_multiplier(field)
    suite = obfuscation_suite(circuit, seed=SUITE_SEED)

    # 1. prepass cost on the clean design (and its reduction statistics).
    prepass_seconds = _median(lambda: apply_prepass(circuit), reps)
    prepass_stats = apply_prepass(circuit).stats()

    # 2. what the stacked variant costs without the prepass (raw-key miss,
    #    full abstraction of the inflated netlist) vs. the warm path.
    stacked = next(v for v in suite if len(v.passes) > 1)
    with tempfile.TemporaryDirectory() as tmp:
        throwaway = CanonicalPolyCache(Path(tmp) / "cold")
        gc.collect()
        t0 = time.perf_counter()
        baseline = abstract_canonical(
            stacked.circuit, field, cache=throwaway, prepass=False
        )
        cold_variant_seconds = time.perf_counter() - t0
        assert not baseline.hit

        cache = CanonicalPolyCache(Path(tmp) / "cache")
        gc.collect()
        t0 = time.perf_counter()
        cold = abstract_canonical(circuit, field, cache=cache, prepass=True)
        cold_seconds = time.perf_counter() - t0
        assert not cold.hit

        def warm_probe():
            probe = abstract_canonical(
                stacked.circuit, field, cache=cache, prepass=True
            )
            assert probe.hit and probe.source == "canonical"

        warm_seconds = _median(warm_probe, reps)

    # 3. key convergence, before (raw structural key) and after (canonical).
    raw_reference = canonical_cache_key(circuit, field)
    canon_reference = canonical_cache_key(canonicalize(circuit), field)
    raw_hits = {}
    canonical_hits = {}
    for variant in suite:
        raw_hits[variant.name] = (
            canonical_cache_key(variant.circuit, field) == raw_reference
        )
        canonical_hits[variant.name] = (
            canonical_cache_key(canonicalize(variant.circuit), field)
            == canon_reference
        )

    row = {
        "gates": circuit.num_gates(),
        "stacked_gates": stacked.circuit.num_gates(),
        "variants": len(suite),
        "prepass_seconds": round(prepass_seconds, 6),
        "prepass_stats": prepass_stats,
        "cold_abstraction_seconds": round(cold_seconds, 6),
        "cold_variant_seconds": round(cold_variant_seconds, 6),
        "warm_variant_seconds": round(warm_seconds, 6),
        "saved_ratio": round(1.0 - warm_seconds / cold_variant_seconds, 4),
        "raw_key_hits": sum(raw_hits.values()),
        "canonical_key_hits": sum(canonical_hits.values()),
        "raw_key_hit_by_pass": raw_hits,
        "canonical_key_hit_by_pass": canonical_hits,
    }
    print(
        f"k={k:<3} ({row['gates']} -> {row['stacked_gates']} gates stacked)  "
        f"prepass {prepass_seconds * 1e3:7.1f} ms  "
        f"variant cold {cold_variant_seconds * 1e3:8.1f} ms  "
        f"warm {warm_seconds * 1e3:7.1f} ms "
        f"(saves {row['saved_ratio'] * 100:.1f}%)  "
        f"key hits raw {row['raw_key_hits']}/{len(suite)} -> "
        f"canonical {row['canonical_key_hits']}/{len(suite)}"
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="k=16 only (CI smoke)")
    parser.add_argument("--reps", type=int, default=3,
                        help="timing repetitions per configuration (default 3)")
    parser.add_argument("--out", default=None,
                        help="output JSON (default $REPRO_BENCH_OUT or "
                        "./BENCH_prepass.json)")
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else SWEEP_SIZES
    results = {}
    failures = []
    for k in sizes:
        row = bench_size(k, args.reps)
        results[f"k{k}"] = row
        if row["canonical_key_hits"] != row["variants"]:
            misses = [
                name
                for name, hit in row["canonical_key_hit_by_pass"].items()
                if not hit
            ]
            failures.append(
                f"k={k}: obfuscation variants escaped the canonical key: "
                f"{', '.join(misses)}"
            )
        if row["warm_variant_seconds"] >= row["cold_variant_seconds"]:
            failures.append(
                f"k={k}: warm variant path ({row['warm_variant_seconds']}s) "
                f"is not cheaper than the raw-key miss it replaces "
                f"({row['cold_variant_seconds']}s)"
            )

    doc = {
        "meta": {
            "quick": args.quick,
            "suite_seed": SUITE_SEED,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "timestamp": datetime.now().isoformat(timespec="seconds"),
        },
        "current": results,
    }
    out = args.out or os.environ.get("REPRO_BENCH_OUT") or "BENCH_prepass.json"
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.exit(main())
