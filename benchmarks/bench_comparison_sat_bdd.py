"""Section 6 in-text comparison — SAT and BDD miters vs. abstraction.

The paper: "[ABC and CSAT] cannot prove equivalence beyond 16-bit
multiplier circuits within 24 hours". The laptop-scale analogue gives each
bit-level engine a fixed budget (SAT conflicts / BDD nodes standing in for
the 24 h timeout) on Mastrovito-vs-Montgomery miters and sweeps k.
Expected shape: SAT exhausts its budget first (k around 8), BDDs blow up
shortly after (multiplier outputs have exponential ROBDDs), while
word-level abstraction decides every size instantly.
"""

import time

import pytest

from repro.gf import GF2m
from repro.synth import mastrovito_multiplier, montgomery_multiplier
from repro.verify import (
    check_equivalence_bdd,
    check_equivalence_fraig,
    check_equivalence_sat,
    verify_equivalence,
)

from .conftest import FAST, comparison_sizes, report_row

TABLE = "Comparison: SAT/fraig/BDD miters vs abstraction (TO = budget out)"
TABLE_SIMILAR = "Comparison: fraig CEC, similar vs dissimilar architectures"

SAT_CONFLICT_BUDGET = 15_000
BDD_NODE_BUDGET = 300_000


def _fmt(outcome):
    if outcome.status == "unknown":
        return "TO"
    return f"{outcome.seconds:.2f}s"


@pytest.mark.parametrize("k", comparison_sizes())
def test_comparison_sat_bdd_abstraction(benchmark, k):
    field = GF2m(k)
    spec = mastrovito_multiplier(field)
    hierarchy = montgomery_multiplier(field)
    flat = hierarchy.flatten()

    sat = check_equivalence_sat(
        spec, flat, max_conflicts=SAT_CONFLICT_BUDGET, output_map={"G": "Z"}
    )
    bdd = check_equivalence_bdd(
        spec, flat, max_nodes=BDD_NODE_BUDGET, output_map={"G": "Z"}
    )
    fraig = check_equivalence_fraig(
        spec,
        flat,
        max_conflicts_final=SAT_CONFLICT_BUDGET,
        output_map={"G": "Z"},
    )

    def run():
        return verify_equivalence(spec, hierarchy, field)

    abstraction = benchmark.pedantic(run, rounds=1, iterations=1)

    # Soundness: any method that finished must agree.
    for outcome in (sat, bdd, fraig):
        if outcome.decided:
            assert outcome.equivalent
    assert abstraction.equivalent

    report_row(
        TABLE,
        {
            "size_k": k,
            "miter_gates": spec.num_gates() + flat.num_gates(),
            "sat_miter": _fmt(sat),
            "sat_conflicts": sat.details["conflicts"],
            "fraig_cec": _fmt(fraig),
            "fraig_merged": f"{fraig.details['merged']}/{fraig.details['and_nodes']}",
            "bdd_miter": _fmt(bdd),
            "bdd_nodes": bdd.details.get("nodes", "-"),
            "abstraction": _fmt(abstraction),
        },
    )


@pytest.mark.parametrize("k", [4, 8] if FAST else [8, 16, 24, 32])
def test_fraig_similar_vs_dissimilar(benchmark, k):
    """Fraiging flies on similar architectures, dies on dissimilar ones.

    Section 2: structural methods "identify internal structural
    equivalences ... however, when the arithmetic circuits are structurally
    very dissimilar, these techniques are infeasible". Same tool, same
    budget, two instance families.
    """
    field = GF2m(k)
    tree = mastrovito_multiplier(field, tree=True)
    array = mastrovito_multiplier(field, tree=False)

    def run():
        return check_equivalence_fraig(tree, array, max_conflicts_final=20_000)

    similar = benchmark.pedantic(run, rounds=1, iterations=1)
    assert similar.equivalent

    if k <= 8:  # dissimilar instances beyond 8 bits exhaust any budget
        flat = montgomery_multiplier(field).flatten()
        dissimilar = check_equivalence_fraig(
            tree, flat, max_conflicts_final=15_000, output_map={"G": "Z"}
        )
        dissimilar_text = _fmt(dissimilar)
        dissimilar_merged = (
            f"{dissimilar.details['merged']}/{dissimilar.details['and_nodes']}"
        )
    else:
        dissimilar_text = "(skipped)"
        dissimilar_merged = "-"
    report_row(
        TABLE_SIMILAR,
        {
            "size_k": k,
            "similar": _fmt(similar),
            "similar_merged": f"{similar.details['merged']}/{similar.details['and_nodes']}",
            "dissimilar": dissimilar_text,
            "dissimilar_merged": dissimilar_merged,
        },
    )
