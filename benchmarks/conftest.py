"""Benchmark infrastructure: result tables printed at session end.

Each benchmark registers the row(s) it measured via :func:`report_row`;
a terminal-summary hook prints every table in paper layout after the
pytest-benchmark statistics, and writes ``benchmarks/results.json`` for
EXPERIMENTS.md bookkeeping.

Environment knobs:

- ``REPRO_BENCH_NIST=1``  — extend Table 1/2 sweeps to the NIST ECC field
  sizes (163..571); several minutes of runtime.
- ``REPRO_BENCH_FAST=1``  — shrink every sweep for smoke-testing.
- ``REPRO_BENCH_OUT=path`` — write the result tables there instead of
  ``benchmarks/results.json`` (CI and batch runs must not clobber the
  checked-in baseline).
"""

import json
import os
import resource
from collections import OrderedDict
from pathlib import Path

import pytest

_TABLES = OrderedDict()

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
NIST = os.environ.get("REPRO_BENCH_NIST") == "1"


def report_row(table: str, row: dict) -> None:
    """Record one row of a result table (insertion-ordered)."""
    _TABLES.setdefault(table, []).append(row)


def max_rss_mb() -> float:
    """Peak resident set size of this process in MB."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def table1_sizes():
    if FAST:
        return [8, 16]
    sizes = [8, 16, 32, 64, 96, 128]
    if NIST:
        sizes += [163, 233, 283, 409, 571]
    return sizes


def table2_sizes():
    if FAST:
        return [8, 16]
    sizes = [8, 16, 32, 64, 96, 128]
    if NIST:
        sizes += [163, 233, 283, 409, 571]
    return sizes


def comparison_sizes():
    return [2, 4] if FAST else [2, 4, 6, 8, 10, 12]


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    tr = terminalreporter
    tr.section("reproduction result tables")
    for name, rows in _TABLES.items():
        tr.write_line("")
        tr.write_line(name)
        tr.write_line("-" * len(name))
        if not rows:
            continue
        columns = list(rows[0].keys())
        widths = {
            c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
            for c in columns
        }
        tr.write_line("  ".join(str(c).rjust(widths[c]) for c in columns))
        for row in rows:
            tr.write_line(
                "  ".join(str(row.get(c, "")).rjust(widths[c]) for c in columns)
            )
    out_override = os.environ.get("REPRO_BENCH_OUT")
    out_path = (
        Path(out_override) if out_override else Path(__file__).parent / "results.json"
    )
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(_TABLES, indent=2, default=str) + "\n")
    tr.write_line("")
    tr.write_line(f"tables written to {out_path}")
