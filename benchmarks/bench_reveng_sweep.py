"""Reverse engineering — polynomial-recovery sweep cost and cache economy.

Measures the ``repro reveng poly`` workload end to end: for each word
width, a Mastrovito multiplier (built over the standard low-weight
modulus, but the sweep is *not told* that) is probed against candidate
irreducibles in (weight, value) order until its canonical polynomial
collapses to ``Z = A*B``. Three measurements per width:

1. cold sweep — candidate probes against an empty cache,
2. warm sweep — the identical sweep again; every probe must be a cache
   hit, so the row quantifies the cache economy an auditor re-running a
   recovery enjoys,
3. census (small widths only) — ``all_candidates`` over a bounded
   candidate budget, confirming the true modulus is the *only* match in
   that budget.

The reported row is candidates probed, cold/warm wall seconds, the warm
hit rate, and candidates/second on the cold pass.
"""

import pytest

from repro.gf import GF2m
from repro.jobs.cache import CanonicalPolyCache
from repro.reveng import recover_polynomial
from repro.synth import mastrovito_multiplier

from .conftest import FAST, report_row

TABLE = "Reveng: P(x) recovery sweep (Mastrovito, modulus withheld)"

SIZES = [8, 16] if FAST else [8, 16, 24, 32]

#: Candidate budget for the full-census row; kept small because a census
#: pays one abstraction per candidate and exists to show exclusivity, not
#: throughput.
CENSUS_LIMIT = 12


@pytest.mark.parametrize("k", SIZES)
def test_reveng_sweep(benchmark, tmp_path, k):
    field = GF2m(k)
    circuit = mastrovito_multiplier(field)
    cache = CanonicalPolyCache(tmp_path / f"cache-{k}")

    cold = recover_polynomial(circuit, cache=cache)
    assert cold.recovered == field.modulus
    assert cold.cache_hits == 0

    def warm_sweep():
        return recover_polynomial(circuit, cache=cache)

    warm = benchmark.pedantic(warm_sweep, rounds=3, iterations=1)
    assert warm.recovered == field.modulus
    assert warm.cache_hits == warm.candidates_tried, "warm sweep must be all hits"

    census_matches = None
    if k <= 16:
        census = recover_polynomial(
            circuit, cache=cache, all_candidates=True, limit=CENSUS_LIMIT
        )
        census_matches = len(census.matches)
        assert census.matches == [field.modulus], (
            "within the census budget only the true modulus may match"
        )

    benchmark.extra_info["candidates"] = cold.candidates_tried
    benchmark.extra_info["cold_seconds"] = round(cold.seconds, 4)
    report_row(
        TABLE,
        {
            "k": k,
            "candidates": cold.candidates_tried,
            "cold_s": f"{cold.seconds:.3f}",
            "warm_s": f"{warm.seconds:.3f}",
            "warm_hit_rate": f"{warm.cache_hits}/{warm.candidates_tried}",
            "cold_cand_per_s": (
                f"{cold.candidates_tried / cold.seconds:.1f}"
                if cold.seconds > 0
                else "inf"
            ),
            "census_matches": (
                f"{census_matches}/{CENSUS_LIMIT}"
                if census_matches is not None
                else "-"
            ),
        },
    )
