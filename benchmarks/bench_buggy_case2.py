"""Ablation — Case-2 cost on buggy circuits (Example 5.1 at scale).

Correct multipliers reduce to a word-only remainder (Case 1); injected
bugs leave primary-input bits in the remainder, triggering the Case-2
computation. This benchmark injects random gate-substitution bugs into
Mastrovito multipliers, measures abstraction cost by case, and checks the
bug is always detected against the golden polynomial with a replayable
counterexample.
"""

import random

import pytest

from repro.circuits import random_mutation, simulate_words
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier
from repro.verify import verify_equivalence

from .conftest import FAST, report_row

TABLE = "Ablation: Case-2 abstraction cost on buggy multipliers"


@pytest.mark.parametrize("k", [4] if FAST else [4, 8, 12, 16])
def test_buggy_case2_cost(benchmark, k):
    field = GF2m(k)
    spec = mastrovito_multiplier(field)
    rng = random.Random(k * 1000 + 7)
    mutant, mutation = random_mutation(mastrovito_multiplier(field), rng)

    def run():
        return verify_equivalence(spec, mutant, field)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.status == "not_equivalent"
    cex = outcome.counterexample
    assert cex is not None
    a, b = cex["A"], cex["B"]
    spec_z = simulate_words(spec, {"A": [a], "B": [b]})["Z"][0]
    bug_z = simulate_words(mutant, {"A": [a], "B": [b]})["Z"][0]
    assert spec_z != bug_z

    impl_stats = outcome.details["impl"]
    report_row(
        TABLE,
        {
            "size_k": k,
            "bug": f"{mutation.kind}@{mutation.net}",
            "case": impl_stats["case"],
            "verify_s": f"{outcome.seconds:.3f}",
            "buggy_poly_terms": outcome.details["impl_terms"],
            "counterexample": f"A={a:#x} B={b:#x}",
        },
    )
