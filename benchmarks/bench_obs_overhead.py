"""Telemetry overhead guard: disabled instrumentation must stay < 5%.

The span/counter call sites live permanently in the library hot paths
(``reduce_polynomial``, ``buchberger``, the abstraction engine), so the
subsystem's core promise — *disabled means free* — needs a regression
guard, not a code-review convention. The guard triangulates:

1. time the k=32 Mastrovito-vs-Montgomery verify path with tracing
   disabled (the product configuration);
2. census the instrumentation traffic that same path *would* generate by
   re-running it once under a counting collector (span opens + counter
   flushes + gauge updates);
3. microbenchmark the per-call disabled cost of ``span()`` and
   ``counter_add()`` in a tight loop;

and asserts ``traffic x per_call_cost < 5% of the verify wall time``.
Because the disabled fast path is one module-global read, the measured
budget fraction is typically far below 0.1% — the assert only trips if
someone makes the disabled path allocate or lock.
"""

import time

from repro import obs
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier, montgomery_multiplier
from repro.verify import verify_equivalence

from .conftest import FAST, report_row

TABLE = "Telemetry overhead: disabled-path cost on the verify pipeline"

K = 16 if FAST else 32
OVERHEAD_BUDGET = 0.05
_LOOP = 100_000


class _CountingCollector(obs.TraceCollector):
    """Tallies instrumentation traffic instead of storing it."""

    def __init__(self):
        super().__init__()
        self.span_opens = 0
        self.counter_calls = 0
        self.gauge_calls = 0

    def new_span_id(self):
        self.span_opens += 1
        return super().new_span_id()

    def counter_add(self, name, amount=1):
        self.counter_calls += 1
        super().counter_add(name, amount)

    def gauge_max(self, name, value):
        self.gauge_calls += 1
        super().gauge_max(name, value)


def _build_pair():
    field = GF2m(K)
    return mastrovito_multiplier(field), montgomery_multiplier(field).flatten(), field


def _per_call_disabled_seconds():
    """Mean cost of one disabled span() and one disabled counter_add()."""
    assert not obs.is_enabled()
    t0 = time.perf_counter()
    for _ in range(_LOOP):
        with obs.span("probe", k=K):
            pass
    span_cost = (time.perf_counter() - t0) / _LOOP
    t0 = time.perf_counter()
    for _ in range(_LOOP):
        obs.counter_add("probe", 1)
    counter_cost = (time.perf_counter() - t0) / _LOOP
    return span_cost, counter_cost


def test_disabled_telemetry_overhead_under_5_percent(benchmark):
    spec, impl, field = _build_pair()
    obs.disable()

    def verify_disabled():
        outcome = verify_equivalence(spec, impl, field)
        assert outcome.equivalent
        return outcome

    benchmark.pedantic(verify_disabled, rounds=3, iterations=1, warmup_rounds=1)
    verify_seconds = benchmark.stats["mean"]

    # Census: how many instrumentation calls does this path actually make?
    counting = _CountingCollector()
    obs.enable(counting)
    try:
        verify_disabled()
    finally:
        obs.disable()
    traffic = counting.span_opens + counting.counter_calls + counting.gauge_calls

    span_cost, counter_cost = _per_call_disabled_seconds()
    per_call = max(span_cost, counter_cost)
    overhead_seconds = traffic * per_call
    fraction = overhead_seconds / verify_seconds

    benchmark.extra_info["instrumentation_calls"] = traffic
    benchmark.extra_info["overhead_fraction"] = round(fraction, 6)
    report_row(
        TABLE,
        {
            "k": K,
            "verify_ms": f"{verify_seconds * 1e3:.1f}",
            "calls": traffic,
            "span_ns": f"{span_cost * 1e9:.0f}",
            "counter_ns": f"{counter_cost * 1e9:.0f}",
            "overhead": f"{fraction * 100:.4f}%",
            "budget": f"{OVERHEAD_BUDGET * 100:.0f}%",
        },
    )
    assert traffic > 0, "census run recorded no instrumentation traffic"
    assert fraction < OVERHEAD_BUDGET, (
        f"disabled telemetry costs {fraction * 100:.2f}% of the k={K} verify "
        f"path (budget {OVERHEAD_BUDGET * 100:.0f}%): the disabled fast path "
        f"must stay a single global read"
    )
