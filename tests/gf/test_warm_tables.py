"""Unit tests for the table-build counter and pool warm-up hook."""

from repro.gf import GF2m, logtables


def _evict(k, modulus):
    logtables._log_cache.pop((k, modulus), None)
    logtables._reduction_cache.pop((k, modulus), None)


class TestTableBuilds:
    def test_counter_moves_once_per_cold_field(self):
        field = GF2m(10)
        _evict(field.k, field.modulus)
        before = logtables.table_builds()
        logtables.log_tables(field.k, field.modulus)
        assert logtables.table_builds() == before + 1
        logtables.log_tables(field.k, field.modulus)  # cache hit
        assert logtables.table_builds() == before + 1

    def test_counter_counts_reduction_tables_too(self):
        field = GF2m(18)  # above MAX_LOG_K: byte-window reduction table
        assert field.k > logtables.MAX_LOG_K
        _evict(field.k, field.modulus)
        before = logtables.table_builds()
        logtables.reduction_table(field.k, field.modulus)
        assert logtables.table_builds() == before + 1


class TestWarm:
    def test_warm_small_field_builds_log_tables(self):
        field = GF2m(9)
        _evict(field.k, field.modulus)
        before = logtables.table_builds()
        logtables.warm(field.k, field.modulus)
        assert logtables.table_builds() == before + 1
        # Arithmetic after warm-up is all cache hits.
        logtables.log_tables(field.k, field.modulus)
        assert logtables.table_builds() == before + 1

    def test_warm_large_field_builds_reduction_table(self):
        field = GF2m(20)
        _evict(field.k, field.modulus)
        before = logtables.table_builds()
        logtables.warm(field.k, field.modulus)
        assert logtables.table_builds() == before + 1
        logtables.reduction_table(field.k, field.modulus)
        assert logtables.table_builds() == before + 1

    def test_warm_is_idempotent(self):
        field = GF2m(9)
        logtables.warm(field.k, field.modulus)
        before = logtables.table_builds()
        logtables.warm(field.k, field.modulus)
        assert logtables.table_builds() == before

    def test_warm_respects_disable_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_GF_TABLES", "0")
        field = GF2m(12)
        _evict(field.k, field.modulus)
        before = logtables.table_builds()
        logtables.warm(field.k, field.modulus)
        assert logtables.table_builds() == before
