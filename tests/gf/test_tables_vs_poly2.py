"""Differential tests for the arithmetic fast paths.

Two oracles, two implementations each:

- ``GF2m`` with lookup tables (log/antilog for k <= 16, byte-window
  reduction beyond) against the raw ``poly2`` carry-less reference, and
  against a ``REPRO_GF_TABLES=0`` field instance — exhaustively for small
  k, randomized for the larger ones;
- the heap-based ``reduce_polynomial`` against the retained scan-based
  ``reference_reduce_polynomial``, including ``DivisionTrace`` step/peak
  parity, on randomized polynomial workloads.

Everything is seeded: a failure here reproduces bit-for-bit.
"""

import random

import pytest

from repro.algebra import LexOrder, PolynomialRing, reduce_polynomial
from repro.algebra.division import (
    DivisionTrace,
    DivisorIndex,
    reference_reduce_polynomial,
)
from repro.gf import GF2m, poly2
from repro.gf.logtables import MAX_LOG_K, tables_enabled


def _ref_mul(field: GF2m, a: int, b: int) -> int:
    product = poly2.clmul(a, b)
    if product < field.order:
        return product
    return poly2.mod(product, field.modulus)


@pytest.fixture
def no_tables_field(monkeypatch):
    """A field construction context with the table fast paths disabled."""

    def build(k: int) -> GF2m:
        monkeypatch.setenv("REPRO_GF_TABLES", "0")
        field = GF2m(k)
        assert field._exp is None and field._red is None
        return field

    return build


class TestTablesVsPoly2Exhaustive:
    """k <= 8: every operand pair, tables vs the poly2 reference."""

    @pytest.mark.parametrize("k", range(1, 9))
    def test_mul_all_pairs(self, k):
        field = GF2m(k)
        for a in range(field.order):
            for b in range(field.order):
                assert field.mul(a, b) == _ref_mul(field, a, b), (k, a, b)

    @pytest.mark.parametrize("k", range(1, 9))
    def test_square_matches_mul(self, k):
        field = GF2m(k)
        for a in range(field.order):
            assert field.square(a) == _ref_mul(field, a, a)

    @pytest.mark.parametrize("k", range(1, 9))
    def test_inv_and_div(self, k):
        field = GF2m(k)
        for a in range(1, field.order):
            inv = field.inv(a)
            assert inv == poly2.invmod(a, field.modulus)
            assert field.mul(a, inv) == 1
        for a in range(field.order):
            for b in range(1, field.order):
                assert field.div(a, b) == _ref_mul(field, a, field.inv(b))

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_pow_small_grid(self, k):
        field = GF2m(k)
        for a in range(1, field.order):
            for e in (-3, -1, 0, 1, 2, 5, field.order - 1, field.order):
                if e >= 0:
                    expected = poly2.powmod(a, e, field.modulus)
                else:
                    expected = poly2.powmod(
                        poly2.invmod(a, field.modulus), -e, field.modulus
                    )
                assert field.pow(a, e) == expected, (k, a, e)


class TestTablesVsPoly2Randomized:
    """k in {12, 16}: log/antilog paths on random operands."""

    @pytest.mark.parametrize("k", [12, 16])
    def test_mul_random(self, k):
        rng = random.Random(0xC0DE + k)
        field = GF2m(k)
        assert k <= MAX_LOG_K
        for _ in range(2000):
            a = rng.randrange(field.order)
            b = rng.randrange(field.order)
            assert field.mul(a, b) == _ref_mul(field, a, b), (a, b)

    @pytest.mark.parametrize("k", [12, 16])
    def test_inv_pow_random(self, k):
        rng = random.Random(0xBEEF + k)
        field = GF2m(k)
        for _ in range(300):
            a = rng.randrange(1, field.order)
            assert field.mul(a, field.inv(a)) == 1
            e = rng.randrange(-50, 50)
            if e >= 0:
                expected = poly2.powmod(a, e, field.modulus)
            else:
                expected = poly2.powmod(
                    poly2.invmod(a, field.modulus), -e, field.modulus
                )
            assert field.pow(a, e) == expected, (a, e)

    def test_zero_handling(self):
        for k in (8, 12, 16, 32):
            field = GF2m(k)
            x = 0b101 % field.order
            assert field.mul(0, x) == 0
            assert field.mul(x, 0) == 0
            assert field.div(0, 1) == 0
            assert field.pow(0, 0) == 1
            assert field.pow(0, 5) == 0
            with pytest.raises(ZeroDivisionError):
                field.pow(0, -1)


class TestWindowedReductionK32:
    """k = 32 exceeds MAX_LOG_K: the byte-window reduction path."""

    def test_mul_random(self):
        rng = random.Random(0x32)
        field = GF2m(32)
        assert field.k > MAX_LOG_K
        for _ in range(1000):
            a = rng.randrange(field.order)
            b = rng.randrange(field.order)
            assert field.mul(a, b) == _ref_mul(field, a, b), (a, b)

    def test_square_random(self):
        rng = random.Random(0x3232)
        field = GF2m(32)
        for _ in range(500):
            a = rng.randrange(field.order)
            assert field.square(a) == _ref_mul(field, a, a)


class TestEscapeHatch:
    """REPRO_GF_TABLES=0 must produce bit-identical arithmetic."""

    @pytest.mark.parametrize("k", [8, 16, 32])
    def test_disabled_field_agrees(self, k, no_tables_field):
        plain = no_tables_field(k)
        fast = GF2m(k)
        rng = random.Random(0xD15A + k)
        for _ in range(500):
            a = rng.randrange(plain.order)
            b = rng.randrange(plain.order)
            assert plain.mul(a, b) == fast.mul(a, b)
        for _ in range(100):
            a = rng.randrange(1, plain.order)
            assert plain.inv(a) == fast.inv(a)
            assert plain.square(a) == fast.square(a)

    def test_flag_read_at_construction(self, monkeypatch):
        monkeypatch.delenv("REPRO_GF_TABLES", raising=False)
        assert tables_enabled()
        monkeypatch.setenv("REPRO_GF_TABLES", "0")
        assert not tables_enabled()


def _random_workload(seed: int, nvars: int = 8, terms: int = 120, ndiv: int = 10):
    rng = random.Random(seed)
    field = GF2m(8)
    names = [f"x{i}" for i in range(nvars)]
    ring = PolynomialRing(field, names, order=LexOrder(range(nvars)), fold=False)
    variables = [ring.var(n) for n in names]

    def random_poly(nterms: int, max_deg: int):
        p = ring.zero()
        for _ in range(nterms):
            m = ring.one()
            for v in rng.sample(variables, rng.randint(1, 3)):
                m = m * (v ** rng.randint(1, max_deg))
            p = p + m.scale(rng.randrange(1, field.order))
        return p

    f = random_poly(terms, 3)
    divisors = [random_poly(rng.randint(2, 4), 2) for _ in range(ndiv)]
    return f, divisors


class TestHeapVsReferenceReducer:
    """The lazy-deletion heap reducer against the scan-based oracle."""

    @pytest.mark.parametrize("seed", [1, 7, 42, 1234, 99991])
    def test_remainders_identical(self, seed):
        f, divisors = _random_workload(seed)
        assert reduce_polynomial(f, divisors) == reference_reduce_polynomial(
            f, divisors
        )

    @pytest.mark.parametrize("seed", [3, 17, 2024])
    def test_trace_parity(self, seed):
        f, divisors = _random_workload(seed)
        heap_trace = DivisionTrace()
        ref_trace = DivisionTrace()
        heap_r = reduce_polynomial(f, divisors, trace=heap_trace)
        ref_r = reference_reduce_polynomial(f, divisors, trace=ref_trace)
        assert heap_r == ref_r
        assert heap_trace.steps == ref_trace.steps
        assert heap_trace.peak_terms == ref_trace.peak_terms

    @pytest.mark.parametrize("seed", [5, 55])
    def test_prebuilt_index_identical(self, seed):
        f, divisors = _random_workload(seed)
        index = DivisorIndex(f.ring, divisors)
        assert reduce_polynomial(
            f, divisors, index=index
        ) == reference_reduce_polynomial(f, divisors)

    def test_remainder_is_fully_reduced(self):
        f, divisors = _random_workload(271828)
        r = reduce_polynomial(f, divisors)
        ring = f.ring
        leads = [g.leading_monomial() for g in divisors if not g.is_zero()]
        for monomial in r.terms:
            assert not any(ring.monomial_divides(lm, monomial) for lm in leads)
