"""Unit tests for dual bases and coordinate polynomials."""

import pytest

from repro.gf import GF2m, coordinate_coefficients, dual_basis
from repro.gf.dualbasis import _invert_f2_matrix


class TestMatrixInverse:
    def test_identity(self):
        rows = [1 << i for i in range(4)]
        assert _invert_f2_matrix(rows, 4) == rows

    def test_inverse_property(self):
        rows = [0b1101, 0b0110, 0b0011, 0b1001]
        inv = _invert_f2_matrix(rows, 4)

        def matmul(a, b, k):
            out = []
            for i in range(k):
                row = 0
                for j in range(k):
                    bit = 0
                    for t in range(k):
                        bit ^= ((a[i] >> t) & 1) & ((b[t] >> j) & 1)
                    row |= bit << j
                out.append(row)
            return out

        assert matmul(rows, inv, 4) == [1 << i for i in range(4)]

    def test_singular_rejected(self):
        with pytest.raises(ValueError):
            _invert_f2_matrix([0b11, 0b11], 2)


class TestDualBasis:
    def test_duality_relation(self, any_field):
        field = any_field
        betas = dual_basis(field)
        for i in range(field.k):
            for j in range(field.k):
                trace = field.trace(
                    field.mul(field.pow(field.alpha, i), betas[j])
                )
                assert trace == (1 if i == j else 0)

    def test_basis_is_spanning(self, f16):
        # The dual basis must itself be linearly independent over F2.
        betas = dual_basis(f16)
        seen = set()
        for mask in range(16):
            combo = 0
            for i in range(4):
                if (mask >> i) & 1:
                    combo ^= betas[i]
            seen.add(combo)
        assert len(seen) == 16


class TestCoordinateCoefficients:
    def test_recovers_every_bit(self, any_field):
        field = any_field
        for bit in range(field.k):
            coeffs = coordinate_coefficients(field, bit)
            for a in field.elements():
                value = 0
                for j, c in enumerate(coeffs):
                    value ^= field.mul(c, field.pow(a, 1 << j))
                assert value == (a >> bit) & 1

    def test_coefficients_are_frobenius_orbit(self, f16):
        coeffs = coordinate_coefficients(f16, 2)
        for j in range(1, 4):
            assert coeffs[j] == f16.square(coeffs[j - 1])

    def test_bad_bit_rejected(self, f16):
        with pytest.raises(ValueError):
            coordinate_coefficients(f16, 4)
        with pytest.raises(ValueError):
            coordinate_coefficients(f16, -1)
