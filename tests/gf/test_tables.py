"""Unit tests for the standard-polynomial tables."""

import pytest

from repro.gf import NIST_POLYNOMIALS, STANDARD_POLYNOMIALS, nist_polynomial, poly2
from repro.gf.irreducible import is_irreducible


class TestNistTable:
    def test_all_nist_degrees_present(self):
        assert sorted(NIST_POLYNOMIALS) == [163, 233, 283, 409, 571]

    @pytest.mark.parametrize("k", [163, 233, 283, 409, 571])
    def test_degree(self, k):
        assert poly2.degree(NIST_POLYNOMIALS[k]) == k

    @pytest.mark.parametrize("k", [163, 233, 283, 409, 571])
    def test_irreducible(self, k):
        assert is_irreducible(NIST_POLYNOMIALS[k])

    def test_233_is_the_nist_trinomial(self):
        assert NIST_POLYNOMIALS[233] == poly2.from_exponents([233, 74, 0])

    def test_571_is_the_nist_pentanomial(self):
        assert NIST_POLYNOMIALS[571] == poly2.from_exponents([571, 10, 5, 2, 0])


class TestStandardTable:
    @pytest.mark.parametrize("k", sorted(STANDARD_POLYNOMIALS))
    def test_valid(self, k):
        poly = STANDARD_POLYNOMIALS[k]
        assert poly2.degree(poly) == k
        assert is_irreducible(poly)

    def test_aes_polynomial(self):
        assert STANDARD_POLYNOMIALS[8] == 0b100011011


class TestLookup:
    def test_prefers_nist(self):
        assert nist_polynomial(163) == NIST_POLYNOMIALS[163]

    def test_falls_back_to_standard(self):
        assert nist_polynomial(8) == STANDARD_POLYNOMIALS[8]

    def test_searches_unknown_degrees(self):
        poly = nist_polynomial(13)
        assert poly2.degree(poly) == 13
        assert is_irreducible(poly)
