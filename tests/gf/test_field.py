"""Unit tests for GF2m fields and elements."""

import pytest

from repro.gf import GF2m, nist_polynomial


class TestConstruction:
    def test_default_modulus(self):
        field = GF2m(8)
        assert field.modulus == nist_polynomial(8)
        assert field.order == 256

    def test_explicit_modulus(self):
        field = GF2m(2, modulus=0b111)
        assert field.k == 2

    def test_wrong_degree_rejected(self):
        with pytest.raises(ValueError):
            GF2m(3, modulus=0b111)

    def test_reducible_rejected(self):
        with pytest.raises(ValueError):
            GF2m(2, modulus=0b101)  # (x+1)^2

    def test_bad_k(self):
        with pytest.raises(ValueError):
            GF2m(0)

    def test_equality(self):
        assert GF2m(4) == GF2m(4)
        assert GF2m(4) != GF2m(5)
        assert GF2m(4, 0b10011) != GF2m(4, 0b11001)

    def test_hashable(self):
        assert len({GF2m(4), GF2m(4), GF2m(5)}) == 2


class TestRawArithmetic:
    def test_aes_multiplication(self, f256):
        # The canonical AES example: 0x57 * 0x83 = 0xc1.
        assert f256.mul(0x57, 0x83) == 0xC1

    def test_add_is_xor(self, f16):
        assert f16.add(0b1010, 0b0110) == 0b1100

    def test_mul_identity(self, any_field):
        for a in any_field.elements():
            assert any_field.mul(a, 1) == a

    def test_mul_zero(self, any_field):
        for a in any_field.elements():
            assert any_field.mul(a, 0) == 0

    def test_inverse(self, any_field):
        for a in range(1, any_field.order):
            assert any_field.mul(a, any_field.inv(a)) == 1

    def test_inv_zero_raises(self, f16):
        with pytest.raises(ZeroDivisionError):
            f16.inv(0)

    def test_fermat(self, any_field):
        q = any_field.order
        for a in any_field.elements():
            assert any_field.pow(a, q) == a

    def test_pow_negative(self, f16):
        for a in range(1, 16):
            assert f16.mul(f16.pow(a, -1), a) == 1

    def test_square_matches_mul(self, any_field):
        for a in any_field.elements():
            assert any_field.square(a) == any_field.mul(a, a)

    def test_frobenius_is_automorphism(self, f16):
        for a in range(16):
            for b in range(16):
                assert f16.frobenius(f16.mul(a, b)) == f16.mul(
                    f16.frobenius(a), f16.frobenius(b)
                )

    def test_frobenius_order_k(self, f16):
        for a in range(16):
            assert f16.frobenius(a, times=4) == a

    def test_trace_is_f2_valued_and_linear(self, f16):
        for a in range(16):
            assert f16.trace(a) in (0, 1)
        for a in range(16):
            for b in range(16):
                assert f16.trace(a ^ b) == f16.trace(a) ^ f16.trace(b)

    def test_trace_not_identically_zero(self, any_field):
        assert any(any_field.trace(a) for a in any_field.elements())

    def test_reduce(self, f16):
        # alpha^4 = alpha + 1 for P = x^4 + x + 1
        assert f16.reduce(0b10000) == 0b0011

    def test_range_check(self, f16):
        with pytest.raises(ValueError):
            f16.inv(16)

    def test_bits_roundtrip(self, f256):
        for value in (0, 1, 0x57, 0xFF):
            assert f256.element_from_bits(f256.bits_of(value)) == value

    def test_element_from_bits_validates(self, f16):
        with pytest.raises(ValueError):
            f16.element_from_bits([0, 2])
        with pytest.raises(ValueError):
            f16.element_from_bits([0] * 5)


class TestFieldAxioms:
    """Exhaustive field-axiom checks on F_16."""

    def test_additive_group(self, f16):
        for a in range(16):
            assert f16.add(a, 0) == a
            assert f16.add(a, a) == 0  # characteristic 2: self-inverse

    def test_multiplicative_associativity(self, f16):
        import itertools

        for a, b, c in itertools.product(range(16), repeat=3):
            assert f16.mul(f16.mul(a, b), c) == f16.mul(a, f16.mul(b, c))

    def test_distributivity(self, f16):
        import itertools

        for a, b, c in itertools.product(range(16), repeat=3):
            assert f16.mul(a, b ^ c) == f16.mul(a, b) ^ f16.mul(a, c)

    def test_commutativity(self, f16):
        for a in range(16):
            for b in range(16):
                assert f16.mul(a, b) == f16.mul(b, a)

    def test_no_zero_divisors(self, f16):
        for a in range(1, 16):
            for b in range(1, 16):
                assert f16.mul(a, b) != 0

    def test_multiplicative_group_order(self, f16):
        # alpha generates the full group for the primitive x^4 + x + 1
        seen = set()
        x = 1
        for _ in range(15):
            seen.add(x)
            x = f16.mul(x, f16.alpha)
        assert len(seen) == 15


class TestGFElement:
    def test_operator_overloads(self, f256):
        a, b = f256(0x57), f256(0x83)
        assert (a * b).value == 0xC1
        assert (a + b).value == 0x57 ^ 0x83
        assert (a - b) == (a + b)  # characteristic 2
        assert (a / a).value == 1
        assert (a ** 2).value == f256.square(0x57)
        assert (-a) == a

    def test_int_coercion(self, f16):
        a = f16(3)
        assert (a + 1).value == 2
        assert (1 + a).value == 2
        assert (a * 2).value == f16.mul(3, 2)
        assert a == 3

    def test_rtruediv(self, f16):
        a = f16(5)
        assert (1 / a) == a.inverse()

    def test_cross_field_rejected(self, f16, f256):
        with pytest.raises(ValueError):
            f16(1) + f256(1)

    def test_bool_and_int(self, f16):
        assert not f16(0)
        assert f16(1)
        assert int(f16(9)) == 9

    def test_str_polynomial_form(self, f16):
        assert str(f16(0b0110)) == "a^2 + a"

    def test_hash_consistency(self, f16):
        assert len({f16(3), f16(3), f16(4)}) == 2

    def test_out_of_range_rejected(self, f16):
        from repro.gf.field import GFElement

        with pytest.raises(ValueError):
            GFElement(f16, 16)


class TestDegenerateFieldK1:
    """F_2 itself, constructed as F2[x]/(x+1) — the k=1 edge case."""

    def test_alpha_is_one(self, f2):
        # The residue of x modulo x+1 is 1.
        assert f2.alpha == 1

    def test_arithmetic(self, f2):
        assert f2.mul(1, 1) == 1
        assert f2.add(1, 1) == 0
        assert f2.inv(1) == 1
        assert f2.order == 2

    def test_trace_is_identity(self, f2):
        assert f2.trace(0) == 0
        assert f2.trace(1) == 1

    def test_multiplier_circuit_is_single_and(self, f2):
        from repro.synth import mastrovito_multiplier

        circuit = mastrovito_multiplier(f2)
        assert circuit.gate_counts() == {"and": 1, "buf": 1}

    def test_abstraction(self, f2):
        from repro.core import abstract_circuit
        from repro.synth import mastrovito_multiplier

        result = abstract_circuit(mastrovito_multiplier(f2), f2)
        assert result.polynomial == result.ring.var("A") * result.ring.var("B")
