"""Unit tests for F2[x] arithmetic (repro.gf.poly2)."""

import pytest

from repro.gf import poly2


class TestDegree:
    def test_zero_polynomial(self):
        assert poly2.degree(0) == -1

    def test_constant_one(self):
        assert poly2.degree(1) == 0

    def test_x(self):
        assert poly2.degree(0b10) == 1

    def test_general(self):
        assert poly2.degree(0b10011) == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            poly2.degree(-1)


class TestExponentConversions:
    def test_from_exponents(self):
        assert poly2.from_exponents([3, 1, 0]) == 0b1011

    def test_from_exponents_cancels_duplicates(self):
        assert poly2.from_exponents([3, 1, 1, 0]) == 0b1001

    def test_roundtrip(self):
        poly = 0b110101
        assert poly2.from_exponents(poly2.to_exponents(poly)) == poly

    def test_to_exponents_decreasing(self):
        exps = poly2.to_exponents(0b10011)
        assert exps == sorted(exps, reverse=True) == [4, 1, 0]

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            poly2.from_exponents([-1])


class TestToString:
    def test_zero(self):
        assert poly2.to_string(0) == "0"

    def test_one(self):
        assert poly2.to_string(1) == "1"

    def test_x(self):
        assert poly2.to_string(0b10) == "x"

    def test_full(self):
        assert poly2.to_string(0b1011) == "x^3 + x + 1"

    def test_custom_var(self):
        assert poly2.to_string(0b110, var="a") == "a^2 + a"


class TestClmul:
    def test_by_zero(self):
        assert poly2.clmul(0b1011, 0) == 0

    def test_by_one(self):
        assert poly2.clmul(0b1011, 1) == 0b1011

    def test_shift(self):
        assert poly2.clmul(0b1011, 0b10) == 0b10110

    def test_known_product(self):
        # (x + 1)(x + 1) = x^2 + 1 over F2
        assert poly2.clmul(0b11, 0b11) == 0b101

    def test_commutative(self):
        assert poly2.clmul(0b1101, 0b1011) == poly2.clmul(0b1011, 0b1101)

    def test_degrees_add(self):
        a, b = 0b1101, 0b101101
        assert poly2.degree(poly2.clmul(a, b)) == poly2.degree(a) + poly2.degree(b)


class TestDivision:
    def test_divmod_identity(self):
        a, b = 0b110101011, 0b1011
        q, r = poly2.divmod2(a, b)
        assert poly2.clmul(q, b) ^ r == a
        assert poly2.degree(r) < poly2.degree(b)

    def test_mod_matches_divmod(self):
        a, b = 0b111100101, 0b10011
        assert poly2.mod(a, b) == poly2.divmod2(a, b)[1]

    def test_exact_division(self):
        b = 0b1011
        product = poly2.clmul(b, 0b1101)
        q, r = poly2.divmod2(product, b)
        assert r == 0 and q == 0b1101

    def test_divide_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            poly2.divmod2(0b101, 0)
        with pytest.raises(ZeroDivisionError):
            poly2.mod(0b101, 0)

    def test_small_by_large(self):
        assert poly2.mod(0b11, 0b10011) == 0b11


class TestSquare:
    def test_square_is_bit_interleave(self):
        # (x + 1)^2 = x^2 + 1
        assert poly2.square(0b11) == 0b101

    def test_matches_clmul(self):
        for poly in (0, 1, 0b10, 0b1011, 0b110101):
            assert poly2.square(poly) == poly2.clmul(poly, poly)


class TestPowmod:
    def test_power_zero(self):
        assert poly2.powmod(0b10, 0, 0b111) == 1

    def test_power_one(self):
        assert poly2.powmod(0b10, 1, 0b111) == 0b10

    def test_fermat(self):
        # x^(2^2) = x mod irreducible of degree 2
        assert poly2.powmod(0b10, 4, 0b111) == 0b10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            poly2.powmod(0b10, -1, 0b111)


class TestGcd:
    def test_gcd_with_zero(self):
        assert poly2.gcd(0b1011, 0) == 0b1011

    def test_gcd_of_multiples(self):
        g = 0b111
        a = poly2.clmul(g, 0b101)
        b = poly2.clmul(g, 0b110001)
        assert poly2.gcd(a, b) % g == 0  # g divides the gcd
        assert poly2.mod(poly2.gcd(a, b), g) == 0

    def test_coprime(self):
        assert poly2.gcd(0b111, 0b1011) == 1


class TestExtGcd:
    def test_bezout_identity(self):
        a, b = 0b110101, 0b10011
        g, s, t = poly2.ext_gcd(a, b)
        assert poly2.clmul(s, a) ^ poly2.clmul(t, b) == g


class TestInvmod:
    def test_inverse_times_self(self):
        modulus = 0b10011  # x^4 + x + 1, irreducible
        for a in range(1, 16):
            inv = poly2.invmod(a, modulus)
            assert poly2.mulmod(a, inv, modulus) == 1

    def test_zero_not_invertible(self):
        with pytest.raises(ZeroDivisionError):
            poly2.invmod(0, 0b10011)

    def test_non_coprime_rejected(self):
        # x is not invertible modulo x^2 (reducible modulus)
        with pytest.raises(ValueError):
            poly2.invmod(0b10, 0b100)


class TestDerivative:
    def test_constant(self):
        assert poly2.derivative(1) == 0

    def test_x(self):
        assert poly2.derivative(0b10) == 1

    def test_even_powers_vanish(self):
        assert poly2.derivative(0b101) == 0  # d/dx (x^2 + 1) = 2x = 0

    def test_mixed(self):
        # d/dx (x^3 + x^2 + x + 1) = 3x^2 + 2x + 1 = x^2 + 1
        assert poly2.derivative(0b1111) == 0b101


class TestEvaluate:
    def test_at_zero(self):
        assert poly2.evaluate(0b1011, 0) == 1
        assert poly2.evaluate(0b1010, 0) == 0

    def test_at_one_is_parity(self):
        assert poly2.evaluate(0b1011, 1) == 1
        assert poly2.evaluate(0b1111, 1) == 0

    def test_bad_point(self):
        with pytest.raises(ValueError):
            poly2.evaluate(0b1011, 2)
