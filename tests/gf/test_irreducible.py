"""Unit tests for irreducibility/primitivity testing and search."""

import pytest

from repro.gf import poly2
from repro.gf import STANDARD_POLYNOMIALS
from repro.gf.irreducible import (
    count_irreducible,
    find_irreducible,
    irreducible_polynomials,
    find_primitive,
    is_irreducible,
    is_primitive,
    prime_factors,
)


class TestPrimeFactors:
    def test_small(self):
        assert prime_factors(12) == {2: 2, 3: 1}

    def test_prime(self):
        assert prime_factors(31) == {31: 1}

    def test_mersenne_15(self):
        assert prime_factors(15) == {3: 1, 5: 1}


class TestIsIrreducible:
    @pytest.mark.parametrize(
        "poly",
        [0b111, 0b1011, 0b1101, 0b10011, 0b100101, 0b1000011],
    )
    def test_known_irreducibles(self, poly):
        assert is_irreducible(poly)

    @pytest.mark.parametrize(
        "poly,factors",
        [
            (0b101, "x^2+1 = (x+1)^2"),
            (0b110, "x^2+x = x(x+1)"),
            (0b1001, "x^3+1 = (x+1)(x^2+x+1)"),
            (0b1111, "x^3+x^2+x+1 = (x+1)^3"),
        ],
    )
    def test_known_reducibles(self, poly, factors):
        assert not is_irreducible(poly)

    def test_constants_not_irreducible(self):
        assert not is_irreducible(0)
        assert not is_irreducible(1)

    def test_degree_one(self):
        assert is_irreducible(0b10)  # x
        assert is_irreducible(0b11)  # x + 1

    def test_exhaustive_degree_4(self):
        """Cross-check Rabin's test against trial division for degree 4."""
        smaller = [p for p in range(2, 16) if is_irreducible(p)]
        for candidate in range(16, 32):
            has_factor = any(
                poly2.mod(candidate, f) == 0 for f in smaller
            )
            assert is_irreducible(candidate) == (not has_factor), bin(candidate)


class TestIsPrimitive:
    def test_primitive_examples(self):
        assert is_primitive(0b111)  # x^2+x+1 over F4: order 3 element
        assert is_primitive(0b1011)  # x^3+x+1
        assert is_primitive(0b10011)  # x^4+x+1

    def test_irreducible_but_not_primitive(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible; its root has order 5 != 15
        assert is_irreducible(0b11111)
        assert not is_primitive(0b11111)

    def test_reducible_not_primitive(self):
        assert not is_primitive(0b101)


class TestFindIrreducible:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6, 7, 8, 12, 16])
    def test_finds_correct_degree(self, k):
        poly = find_irreducible(k)
        assert poly2.degree(poly) == k
        assert is_irreducible(poly)

    def test_prefers_trinomials(self):
        # Degree 4 has the trinomial x^4 + x + 1.
        assert find_irreducible(4) == 0b10011

    def test_pentanomial_fallback(self):
        # Degree 8 has no irreducible trinomial; expect weight 5.
        poly = find_irreducible(8)
        assert bin(poly).count("1") == 5

    def test_bad_degree(self):
        with pytest.raises(ValueError):
            find_irreducible(0)


class TestFindPrimitive:
    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_is_primitive(self, k):
        assert is_primitive(find_primitive(k))

    def test_bad_degree(self):
        with pytest.raises(ValueError):
            find_primitive(1)


class TestCountIrreducible:
    @pytest.mark.parametrize(
        "m,expected",
        [(1, 2), (2, 1), (3, 2), (4, 3), (5, 6), (6, 9), (7, 18), (8, 30)],
    )
    def test_gauss_necklace_values(self, m, expected):
        assert count_irreducible(m) == expected

    def test_bad_degree(self):
        with pytest.raises(ValueError):
            count_irreducible(0)


class TestIrreduciblePolynomials:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_full_census_matches_count(self, m):
        polys = list(irreducible_polynomials(m))
        assert len(polys) == count_irreducible(m)
        assert len(set(polys)) == len(polys)

    @pytest.mark.parametrize("m", [2, 3, 4, 5, 6, 7, 8])
    def test_every_yield_is_irreducible_of_degree_m(self, m):
        for poly in irreducible_polynomials(m):
            assert poly2.degree(poly) == m
            assert is_irreducible(poly)

    @pytest.mark.parametrize("m", [4, 8, 10])
    def test_weight_then_value_order(self, m):
        keys = [
            (bin(poly).count("1"), poly)
            for poly in irreducible_polynomials(m)
        ]
        assert keys == sorted(keys)

    @pytest.mark.parametrize("m", [8, 16, 32])
    def test_standard_polynomial_is_first_candidate(self, m):
        """The weight-ordered sweep probes the fielded modulus first."""
        first = next(iter(irreducible_polynomials(m)))
        assert first == STANDARD_POLYNOMIALS[m]

    def test_lazy_for_large_degree(self):
        """Large degrees must yield a prefix without a full census."""
        gen = irreducible_polynomials(64)
        first = next(gen)
        assert poly2.degree(first) == 64
        assert is_irreducible(first)

    def test_bad_degree(self):
        with pytest.raises(ValueError):
            list(irreducible_polynomials(0))
