"""Unit tests for the Lagrange interpolation oracle."""

import random

import pytest

from repro.gf import GF2m
from repro.interp import indicator_polynomial, interpolate, interpolate_univariate


class TestIndicator:
    def test_is_point_indicator(self, f16):
        from repro.algebra import LexOrder, PolynomialRing

        ring = PolynomialRing(f16, ["A"], order=LexOrder([0]))
        for point in (0, 1, 7, 15):
            ind = indicator_polynomial(ring, "A", point)
            for a in range(16):
                assert ind.evaluate({"A": a}) == (1 if a == point else 0)

    def test_canonical_degree(self, f16):
        from repro.algebra import LexOrder, PolynomialRing

        ring = PolynomialRing(f16, ["A"], order=LexOrder([0]))
        assert indicator_polynomial(ring, "A", 3).degree_in("A") == 15


class TestUnivariate:
    def test_square_function(self, f16):
        poly = interpolate_univariate(f16, [f16.square(a) for a in range(16)])
        assert poly == poly.ring.var("A", 2)

    def test_inverse_function(self, f4):
        values = [0] + [f4.inv(a) for a in range(1, 4)]
        poly = interpolate_univariate(f4, values)
        assert poly == poly.ring.var("A", 2)  # A^{-1} = A^{q-2} = A^2 over F_4

    def test_constant_function(self, f16):
        poly = interpolate_univariate(f16, [5] * 16)
        assert poly == poly.ring.constant(5)

    def test_identity(self, f16):
        poly = interpolate_univariate(f16, list(range(16)))
        assert poly == poly.ring.var("A")

    def test_random_function_agrees(self, f16):
        rng = random.Random(10)
        values = [rng.randrange(16) for _ in range(16)]
        poly = interpolate_univariate(f16, values)
        for a in range(16):
            assert poly.evaluate({"A": a}) == values[a]

    def test_wrong_length_rejected(self, f16):
        with pytest.raises(ValueError):
            interpolate_univariate(f16, [0, 1])

    def test_canonical_uniqueness(self, f8):
        """Two interpolations of the same function are identical."""
        rng = random.Random(3)
        values = [rng.randrange(8) for _ in range(8)]
        assert interpolate_univariate(f8, values) == interpolate_univariate(
            f8, list(values)
        )


class TestMultivariate:
    def test_multiplication(self, f4):
        poly = interpolate(f4, f4.mul, ["A", "B"])
        ring = poly.ring
        assert poly == ring.var("A") * ring.var("B")

    def test_addition(self, f8):
        poly = interpolate(f8, lambda a, b: a ^ b, ["A", "B"])
        ring = poly.ring
        assert poly == ring.var("A") + ring.var("B")

    def test_three_variables(self, f4):
        poly = interpolate(
            f4, lambda a, b, c: f4.mul(a, b) ^ c, ["A", "B", "C"]
        )
        ring = poly.ring
        assert poly == ring.var("A") * ring.var("B") + ring.var("C")

    def test_random_bivariate_agrees(self, f4):
        rng = random.Random(17)
        table = {
            (a, b): rng.randrange(4) for a in range(4) for b in range(4)
        }
        poly = interpolate(f4, lambda a, b: table[(a, b)], ["A", "B"])
        for (a, b), value in table.items():
            assert poly.evaluate({"A": a, "B": b}) == value

    def test_domain_guard(self):
        big = GF2m(12)
        with pytest.raises(ValueError):
            interpolate(big, lambda a, b: 0, ["A", "B"])
