"""Unit tests for circuit-to-BDD construction."""

import itertools

import pytest

from repro.bdd import BddManager, build_circuit_bdds
from repro.circuits import Circuit, GateType, simulate
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier

from ..circuits.test_circuit import two_bit_multiplier


class TestBuild:
    def test_matches_simulation_exhaustively(self):
        c = two_bit_multiplier()
        mgr = BddManager(4)
        values = build_circuit_bdds(c, mgr)
        for bits in itertools.product((0, 1), repeat=4):
            stim = dict(zip(c.inputs, bits))
            expected = simulate(c, stim)
            for net in c.nets():
                assert mgr.evaluate(values[net], list(bits)) == expected[net]

    def test_custom_input_order(self):
        c = two_bit_multiplier()
        mgr = BddManager(4)
        order = ["b1", "b0", "a1", "a0"]
        values = build_circuit_bdds(c, mgr, input_order=order)
        stim = {"a0": 1, "a1": 1, "b0": 1, "b1": 0}
        vector = [stim[n] for n in order]
        expected = simulate(c, stim)
        assert mgr.evaluate(values["z0"], vector) == expected["z0"]

    def test_shared_input_vars(self):
        c1 = two_bit_multiplier().renamed("u_")
        c2 = two_bit_multiplier().renamed("v_")
        mgr = BddManager(4)
        shared = {net: mgr.var(i) for i, net in enumerate(c1.inputs)}
        aliased = {
            f"v_{net[2:]}": shared[net] for net in c1.inputs
        }
        v1 = build_circuit_bdds(c1, mgr, input_vars=shared)
        v2 = build_circuit_bdds(c2, mgr, input_vars=aliased)
        # Identical circuits on shared inputs -> identical output nodes.
        assert v1["u_z0"] == v2["v_z0"]
        assert v1["u_z1"] == v2["v_z1"]

    def test_missing_input_var_rejected(self):
        c = two_bit_multiplier()
        mgr = BddManager(4)
        with pytest.raises(ValueError):
            build_circuit_bdds(c, mgr, input_vars={"a0": mgr.var(0)})

    def test_all_gate_types(self):
        c = Circuit("allgates")
        c.add_inputs(["a", "b"])
        for gate_type in (
            GateType.AND,
            GateType.OR,
            GateType.XOR,
            GateType.NAND,
            GateType.NOR,
            GateType.XNOR,
        ):
            c.add_gate(f"g_{gate_type.value}", gate_type, ("a", "b"))
        c.NOT("a", out="g_not")
        c.BUF("b", out="g_buf")
        c.CONST(0, out="g_c0")
        c.CONST(1, out="g_c1")
        c.set_outputs([g.output for g in c.gates])
        mgr = BddManager(2)
        values = build_circuit_bdds(c, mgr)
        for bits in itertools.product((0, 1), repeat=2):
            expected = simulate(c, dict(zip(["a", "b"], bits)))
            for net in c.outputs:
                assert mgr.evaluate(values[net], list(bits)) == expected[net]

    def test_multiplier_bdd_grows_with_k(self):
        """The expected exponential blow-up on multiplier outputs."""
        sizes = {}
        for k in (2, 3, 4, 5):
            field = GF2m(k)
            c = mastrovito_multiplier(field)
            mgr = BddManager(2 * k)
            values = build_circuit_bdds(c, mgr)
            msb = c.output_words["Z"][-1]
            sizes[k] = mgr.size(values[msb])
        assert sizes[5] > sizes[4] > sizes[3]
        # Super-linear growth: size more than doubles per extra bit.
        assert sizes[5] > 2 * sizes[3]
