"""Unit tests for the ROBDD manager."""

import itertools

import pytest

from repro.bdd import FALSE, TRUE, BddManager, BddOverflow


class TestBasics:
    def test_terminals(self):
        mgr = BddManager(2)
        assert mgr.evaluate(TRUE, [0, 0]) == 1
        assert mgr.evaluate(FALSE, [1, 1]) == 0

    def test_var(self):
        mgr = BddManager(2)
        x0 = mgr.var(0)
        assert mgr.evaluate(x0, [1, 0]) == 1
        assert mgr.evaluate(x0, [0, 1]) == 0

    def test_var_out_of_range(self):
        mgr = BddManager(2)
        with pytest.raises(ValueError):
            mgr.var(2)

    def test_hash_consing(self):
        mgr = BddManager(2)
        assert mgr.var(0) == mgr.var(0)
        a = mgr.apply_and(mgr.var(0), mgr.var(1))
        b = mgr.apply_and(mgr.var(0), mgr.var(1))
        assert a == b


class TestCanonicity:
    def test_equivalent_formulas_same_node(self):
        mgr = BddManager(3)
        x, y, z = mgr.var(0), mgr.var(1), mgr.var(2)
        # De Morgan: !(x & y) == !x | !y
        lhs = mgr.apply_not(mgr.apply_and(x, y))
        rhs = mgr.apply_or(mgr.apply_not(x), mgr.apply_not(y))
        assert lhs == rhs

    def test_xor_associativity(self):
        mgr = BddManager(3)
        x, y, z = mgr.var(0), mgr.var(1), mgr.var(2)
        assert mgr.apply_xor(mgr.apply_xor(x, y), z) == mgr.apply_xor(
            x, mgr.apply_xor(y, z)
        )

    def test_tautology_collapses_to_true(self):
        mgr = BddManager(2)
        x = mgr.var(0)
        assert mgr.apply_or(x, mgr.apply_not(x)) == TRUE

    def test_contradiction_collapses_to_false(self):
        mgr = BddManager(2)
        x = mgr.var(0)
        assert mgr.apply_and(x, mgr.apply_not(x)) == FALSE


class TestConnectives:
    @pytest.mark.parametrize(
        "name,func",
        [
            ("and", lambda a, b: a & b),
            ("or", lambda a, b: a | b),
            ("xor", lambda a, b: a ^ b),
            ("nand", lambda a, b: 1 - (a & b)),
            ("nor", lambda a, b: 1 - (a | b)),
            ("xnor", lambda a, b: 1 - (a ^ b)),
        ],
    )
    def test_binary_semantics(self, name, func):
        mgr = BddManager(2)
        x, y = mgr.var(0), mgr.var(1)
        node = getattr(mgr, f"apply_{name}")(x, y)
        for a, b in itertools.product((0, 1), repeat=2):
            assert mgr.evaluate(node, [a, b]) == func(a, b)

    def test_ite_semantics(self):
        mgr = BddManager(3)
        f, g, h = mgr.var(0), mgr.var(1), mgr.var(2)
        node = mgr.ite(f, g, h)
        for a, b, c in itertools.product((0, 1), repeat=3):
            assert mgr.evaluate(node, [a, b, c]) == (b if a else c)


class TestQueries:
    def test_sat_count(self):
        mgr = BddManager(4)
        x, y = mgr.var(0), mgr.var(1)
        assert mgr.sat_count(TRUE) == 16
        assert mgr.sat_count(FALSE) == 0
        assert mgr.sat_count(x) == 8
        assert mgr.sat_count(mgr.apply_and(x, y)) == 4
        assert mgr.sat_count(mgr.apply_xor(x, y)) == 8

    def test_sat_count_skipped_levels(self):
        mgr = BddManager(5)
        node = mgr.apply_and(mgr.var(0), mgr.var(4))
        assert mgr.sat_count(node) == 8

    def test_any_sat(self):
        mgr = BddManager(3)
        node = mgr.apply_and(mgr.var(0), mgr.apply_not(mgr.var(2)))
        witness = mgr.any_sat(node)
        assert mgr.evaluate(node, witness) == 1

    def test_any_sat_false(self):
        mgr = BddManager(2)
        assert mgr.any_sat(FALSE) is None

    def test_size(self):
        mgr = BddManager(3)
        parity = mgr.apply_xor(mgr.apply_xor(mgr.var(0), mgr.var(1)), mgr.var(2))
        # Parity of n variables: n internal nodes... with complement-free
        # BDDs it is 2n - 1 internal nodes plus 2 terminals.
        assert mgr.size(parity) == 2 * 3 - 1 + 2


class TestOverflow:
    def test_node_budget_enforced(self):
        mgr = BddManager(16, max_nodes=24)
        with pytest.raises(BddOverflow):
            node = TRUE
            for i in range(16):
                node = mgr.apply_and(node, mgr.apply_xor(mgr.var(i), TRUE))
                node = mgr.apply_or(node, mgr.var((i * 7) % 16))
