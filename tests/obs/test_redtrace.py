"""REDTRACE writer semantics: stream/ring modes, drops, lifecycle,
fork hygiene, and determinism of the engine instrumentation."""

import json

import pytest

from repro.algebra import LexOrder, PolynomialRing
from repro.algebra.division import reduce_polynomial, reference_reduce_polynomial
from repro.core import extract_canonical
from repro.gf import GF2m
from repro.obs import redtrace
from repro.synth import mastrovito_multiplier
from repro.verify import verify_equivalence


def _events_from(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestWriter:
    def test_stream_mode_writes_header_events_and_end(self, tmp_path):
        path = str(tmp_path / "t.redtrace")
        writer = redtrace.RedTraceWriter(path=path)
        writer.begin("verify", {"k": 4})
        writer.emit("mask_sweep", var=1, groups=2, tail=3, live=4)
        writer.close()
        events = _events_from(path)
        assert events[0]["ev"] == "header"
        assert events[0]["redtrace"] == redtrace.REDTRACE_VERSION
        assert events[0]["seq"] == 0
        assert events[1] == {
            "ev": "mask_sweep", "seq": 1, "var": 1, "groups": 2,
            "tail": 3, "live": 4,
        }
        assert events[-1]["ev"] == "end"
        assert events[-1]["emitted"] == 3
        assert events[-1]["dropped"] == 0

    def test_seq_is_strictly_monotonic(self, tmp_path):
        path = str(tmp_path / "t.redtrace")
        writer = redtrace.RedTraceWriter(path=path, flush_batch=7)
        writer.begin("abstract", {})
        for i in range(50):
            writer.emit("divisor_hit", slot=i, m=[])
        writer.close()
        seqs = [e["seq"] for e in _events_from(path)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs) == 52

    def test_unknown_event_kind_rejected(self):
        writer = redtrace.RedTraceWriter(ring=True)
        with pytest.raises(ValueError, match="unknown event kind"):
            writer.emit("bogus_kind")

    def test_emit_after_close_is_a_silent_noop(self):
        writer = redtrace.RedTraceWriter(ring=True)
        writer.begin("service", {})
        writer.close()
        emitted = writer.emitted
        writer.emit("cache_probe", key="x", hit=True)
        assert writer.emitted == emitted
        assert writer.events()[-1]["ev"] == "end"

    def test_ring_mode_drops_oldest_but_keeps_header(self):
        writer = redtrace.RedTraceWriter(ring=True, max_events=4)
        writer.begin("service", {})
        for i in range(10):
            writer.emit("cache_probe", key=f"{i:04d}", hit=False)
        writer.close()
        events = writer.events()
        assert events[0]["ev"] == "header"
        assert events[-1]["ev"] == "end"
        assert events[-1]["dropped"] == 7
        assert writer.dropped == 7
        # the survivors are the most recent probes
        keys = [e["key"] for e in events if e["ev"] == "cache_probe"]
        assert keys == ["0007", "0008", "0009"]

    def test_ring_plus_path_is_an_error(self, tmp_path):
        with pytest.raises(ValueError):
            redtrace.RedTraceWriter(path=str(tmp_path / "x"), ring=True)


class TestModuleLifecycle:
    def test_start_stop_install_and_uninstall(self, tmp_path):
        assert redtrace.active_writer() is None
        writer = redtrace.start_recording(
            path=str(tmp_path / "t.redtrace"), op="verify", params={"k": 4}
        )
        assert redtrace.active_writer() is writer
        stopped = redtrace.stop_recording()
        assert stopped is writer
        assert stopped.closed
        assert redtrace.active_writer() is None

    def test_nested_recording_rejected(self, tmp_path):
        redtrace.start_recording(
            path=str(tmp_path / "a.redtrace"), op="verify", params={}
        )
        try:
            with pytest.raises(RuntimeError, match="already active"):
                redtrace.start_recording(
                    path=str(tmp_path / "b.redtrace"), op="verify", params={}
                )
        finally:
            redtrace.stop_recording()

    def test_stop_without_start_returns_none(self):
        assert redtrace.stop_recording() is None

    def test_reset_after_fork_discards_inherited_writer(self, tmp_path):
        redtrace.start_recording(
            path=str(tmp_path / "t.redtrace"), op="verify", params={}
        )
        redtrace.reset_after_fork()
        assert redtrace.active_writer() is None

    def test_read_trace_roundtrip_and_bad_line(self, tmp_path):
        path = str(tmp_path / "t.redtrace")
        writer = redtrace.start_recording(path=path, op="abstract", params={"k": 8})
        writer.emit("spoly_selected", source="abstraction", gates=1)
        redtrace.stop_recording()
        events = redtrace.read_trace(path)
        assert [e["ev"] for e in events] == ["header", "spoly_selected", "end"]
        bad = tmp_path / "bad.redtrace"
        bad.write_text('{"ev": "header", "seq": 0}\nnot json\n')
        with pytest.raises(ValueError, match="bad.redtrace:2"):
            redtrace.read_trace(str(bad))


class TestEngineInstrumentation:
    def test_disabled_recording_leaves_no_writer(self):
        field = GF2m(8)
        extract_canonical(mastrovito_multiplier(field), field)
        assert redtrace.active_writer() is None

    def test_abstraction_emits_expected_kinds(self, tmp_path):
        field = GF2m(8)
        path = str(tmp_path / "t.redtrace")
        redtrace.start_recording(path=path, op="abstract", params={"k": 8})
        extract_canonical(mastrovito_multiplier(field), field)
        redtrace.stop_recording()
        kinds = {e["ev"] for e in redtrace.read_trace(path)}
        assert "spoly_selected" in kinds
        assert "mask_sweep" in kinds
        assert kinds <= redtrace.EVENT_KINDS

    def _record_extract(self, tmp_path, name, jobs=None):
        from repro.obs.replay import canonical_event

        field = GF2m(8)
        path = str(tmp_path / f"{name}.redtrace")
        redtrace.start_recording(path=path, op="abstract", params={"k": 8})
        extract_canonical(mastrovito_multiplier(field), field, jobs=jobs)
        redtrace.stop_recording()
        return [canonical_event(e) for e in redtrace.read_trace(path)]

    def test_two_recordings_of_same_run_are_identical(self, tmp_path):
        assert self._record_extract(tmp_path, "a") == self._record_extract(
            tmp_path, "b"
        )

    def test_parallel_cone_events_are_deterministic(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MIN_GATES", "1")
        monkeypatch.setenv("REPRO_PARALLEL_FORCE", "1")
        first = self._record_extract(tmp_path, "a", jobs=2)
        assert first == self._record_extract(tmp_path, "b", jobs=2)
        events = [json.loads(line) for line in first]
        starts = [e for e in events if e["ev"] == "cone_start"]
        ends = [e for e in events if e["ev"] == "cone_end"]
        assert len(starts) == len(ends) == 8
        # cone_end records arrive in bit order regardless of worker timing
        assert [e["bit"] for e in ends] == sorted(e["bit"] for e in ends)

    def test_verify_records_both_sides(self, tmp_path):
        field = GF2m(8)
        spec = mastrovito_multiplier(field)
        impl = mastrovito_multiplier(field, name="impl", tree=False)
        path = str(tmp_path / "v.redtrace")
        redtrace.start_recording(path=path, op="verify", params={"k": 8})
        outcome = verify_equivalence(spec, impl, field)
        redtrace.stop_recording()
        assert outcome.status == "equivalent"
        events = redtrace.read_trace(path)
        assert sum(1 for e in events if e["ev"] == "spoly_selected") >= 2

    def test_divisor_hit_parity_heap_vs_reference(self):
        """The indexed reducer and the reference scan agree on which
        divisor slot answers each monomial."""
        field = GF2m(16)
        ring = PolynomialRing(
            field, ["x", "y", "z"], order=LexOrder([0, 1, 2]), fold=False
        )
        x, y, z = ring.var("x"), ring.var("y"), ring.var("z")
        divisors = [x * y + z, y * z + 1, z * z + z]
        target = x * x * y + x * y * z + y * z * z + z

        def record(fn):
            writer = redtrace.start_recording(op="abstract", params={}, ring=True)
            try:
                fn(target, divisors)
            finally:
                redtrace.stop_recording()
            return [
                (e["slot"], e["m"])
                for e in writer.events()
                if e["ev"] == "divisor_hit"
            ]

        heap_hits = record(reduce_polynomial)
        ref_hits = record(reference_reduce_polynomial)
        assert heap_hits == ref_hits
        assert heap_hits  # the target really is reducible
