"""End-to-end CLI telemetry: verify --trace/--metrics, batch --trace-dir,
repro report, and the multiprocess span handoff."""

import json
import os

import pytest

from repro.cli import main
from repro.obs.schema import validate_trace_file


@pytest.fixture
def netlists(tmp_path):
    spec = str(tmp_path / "spec.v")
    impl = str(tmp_path / "impl.v")
    assert main(["gen", "mastrovito", "-k", "4", "-o", spec]) == 0
    assert main(["gen", "montgomery", "-k", "4", "-o", impl]) == 0
    return spec, impl


class TestVerifyTrace:
    def test_chrome_trace_with_nested_pipeline_spans(self, netlists, tmp_path, capsys):
        spec, impl = netlists
        trace = str(tmp_path / "out.trace.json")
        assert main(["verify", spec, impl, "-k", "4", "--trace", trace]) == 0
        assert "trace:" in capsys.readouterr().out
        assert validate_trace_file(trace) == []
        with open(trace) as handle:
            doc = json.load(handle)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {}
        for event in spans:
            by_name.setdefault(event["name"], []).append(event)
        # The acceptance flow: parse -> RATO setup -> S-poly reduction ->
        # coefficient match, all nested under the root verify span.
        for name in ("verify", "parse", "rato_setup", "spoly_reduction", "coeff_match"):
            assert name in by_name, sorted(by_name)
        root = by_name["verify"][0]["args"]["span_id"]
        assert all(e["args"]["parent_id"] == root for e in by_name["parse"])
        assert doc["otherData"]["counters"]["abstraction.substitutions"] > 0

    def test_metrics_flag_prints_summary(self, netlists, capsys):
        spec, impl = netlists
        assert main(["verify", spec, impl, "-k", "4", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "spans" in out
        assert "spoly_reduction" in out
        assert "abstraction.substitutions" in out

    def test_jsonl_extension_selects_event_log(self, netlists, tmp_path):
        spec, impl = netlists
        trace = str(tmp_path / "out.jsonl")
        assert main(["verify", spec, impl, "-k", "4", "--trace", trace]) == 0
        lines = [json.loads(l) for l in open(trace) if l.strip()]
        assert lines[0]["event"] == "meta"
        assert any(l.get("name") == "spoly_reduction" for l in lines)

    def test_sat_method_traces_miter_span(self, netlists, tmp_path):
        spec, impl = netlists
        trace = str(tmp_path / "sat.trace.json")
        assert (
            main(
                ["verify", spec, impl, "-k", "4", "--method", "sat", "--trace", trace]
            )
            == 0
        )
        with open(trace) as handle:
            doc = json.load(handle)
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "sat_miter" in names
        assert doc["otherData"]["counters"].get("sat.conflicts", 0) >= 0

    def test_untraced_run_leaves_no_file(self, netlists, tmp_path):
        spec, impl = netlists
        assert main(["verify", spec, impl, "-k", "4"]) == 0
        assert not list(tmp_path.glob("*.json"))


class TestBatchTraceDir:
    def _manifest(self, tmp_path, spec, impl, jobs=None):
        path = tmp_path / "m.json"
        path.write_text(
            json.dumps(
                {
                    "jobs": jobs
                    or [
                        {
                            "id": "pair",
                            "type": "verify",
                            "spec": spec,
                            "impl": impl,
                            "k": 4,
                        }
                    ]
                }
            )
        )
        return str(path)

    def test_per_job_trace_proves_worker_process_handoff(self, netlists, tmp_path):
        spec, impl = netlists
        manifest = self._manifest(tmp_path, spec, impl)
        trace_dir = str(tmp_path / "traces")
        log = str(tmp_path / "run.jsonl")
        rc = main(
            [
                "batch",
                manifest,
                "--no-cache",
                "--trace-dir",
                trace_dir,
                "--log",
                log,
            ]
        )
        assert rc == 0
        trace_file = os.path.join(trace_dir, "pair.trace.json")
        assert validate_trace_file(trace_file) == []
        with open(trace_file) as handle:
            doc = json.load(handle)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert {"job", "parse", "rato_setup", "spoly_reduction", "coeff_match"} <= names
        # The spans were recorded in the worker process and shipped back
        # over the result pipe: their pid differs from this (parent) process.
        assert all(e["pid"] != os.getpid() for e in spans)
        # The run log notes where each job's trace landed.
        records = [json.loads(l) for l in open(log) if l.strip()]
        job = next(r for r in records if r.get("event") == "job")
        assert job["trace_file"] == trace_file
        assert "telemetry" not in job  # raw snapshot stays out of the log

    def test_warm_cache_trace_has_zero_phases(self, netlists, tmp_path, capsys):
        spec, impl = netlists
        manifest = self._manifest(tmp_path, spec, impl)
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", manifest, "--cache-dir", cache_dir]) == 0
        log = str(tmp_path / "warm.jsonl")
        assert (
            main(["batch", manifest, "--cache-dir", cache_dir, "--log", log]) == 0
        )
        capsys.readouterr()
        records = [json.loads(l) for l in open(log) if l.strip()]
        job = next(r for r in records if r.get("event") == "job")
        assert job["spec_cache_hit"] is True
        assert job["phases"]["rato_setup"] == 0.0
        assert job["phases"]["spoly_reduction"] == 0.0


class TestReportCommand:
    def test_report_aggregates_batch_log(self, netlists, tmp_path, capsys):
        spec, impl = netlists
        manifest = tmp_path / "m.json"
        manifest.write_text(
            json.dumps(
                {
                    "jobs": [
                        {
                            "id": f"j{i}",
                            "type": "verify",
                            "spec": spec,
                            "impl": impl,
                            "k": 4,
                        }
                        for i in range(2)
                    ]
                }
            )
        )
        log = str(tmp_path / "run.jsonl")
        assert main(["batch", str(manifest), "--no-cache", "--log", log]) == 0
        capsys.readouterr()
        assert main(["report", log]) == 0
        out = capsys.readouterr().out
        assert "jobs: 2" in out
        assert "spoly_reduction" in out
        assert "abstraction.substitutions" in out

    def test_report_json_mode(self, netlists, tmp_path, capsys):
        spec, impl = netlists
        manifest = tmp_path / "m.json"
        manifest.write_text(
            json.dumps(
                {
                    "jobs": [
                        {
                            "id": "j",
                            "type": "verify",
                            "spec": spec,
                            "impl": impl,
                            "k": 4,
                        }
                    ]
                }
            )
        )
        log = str(tmp_path / "run.jsonl")
        assert main(["batch", str(manifest), "--no-cache", "--log", log]) == 0
        capsys.readouterr()
        assert main(["report", log, "--json"]) == 0
        aggregate = json.loads(capsys.readouterr().out)
        assert aggregate["jobs"] == 1
        assert aggregate["phases"]["spoly_reduction"]["count"] == 1

    def test_report_on_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestLoggingFlags:
    def test_flags_accepted_before_and_after_subcommand(self, tmp_path):
        out = str(tmp_path / "a.v")
        assert main(["--quiet", "gen", "adder", "-k", "4", "-o", out]) == 0
        assert main(["gen", "adder", "-k", "4", "-o", out, "--verbose"]) == 0
        assert main(["-q", "gen", "adder", "-k", "4", "-o", out]) == 0

    def test_verbose_batch_logs_job_completion(self, netlists, tmp_path, caplog):
        import logging

        spec, impl = netlists
        manifest = tmp_path / "m.json"
        manifest.write_text(
            json.dumps(
                {
                    "jobs": [
                        {
                            "id": "j",
                            "type": "verify",
                            "spec": spec,
                            "impl": impl,
                            "k": 4,
                        }
                    ]
                }
            )
        )
        with caplog.at_level(logging.DEBUG, logger="repro.jobs"):
            assert main(["batch", str(manifest), "--no-cache", "--verbose"]) == 0
        assert any("job j ok" in message for message in caplog.messages)
