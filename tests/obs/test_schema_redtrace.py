"""Schema validation for REDTRACE/1 JSONL traces (satellite of the
replayable-traces work): kinds, header contract, sequence ordering, and
the per-file format sniffing in ``python -m repro.obs.schema``."""

import json

from repro.obs.redtrace import REDTRACE_VERSION
from repro.obs.schema import (
    main,
    validate_redtrace,
    validate_redtrace_file,
)


def _lines(*records):
    return [json.dumps(r) for r in records]


HEADER = {"ev": "header", "seq": 0, "redtrace": REDTRACE_VERSION, "op": "verify"}
END = {"ev": "end", "seq": 2, "emitted": 3, "dropped": 0}


class TestValidateRedtrace:
    def test_valid_stream_passes(self):
        lines = _lines(HEADER, {"ev": "mask_sweep", "seq": 1, "var": 0}, END)
        assert validate_redtrace(lines) == []

    def test_seq_gaps_are_legal_ring_drops(self):
        lines = _lines(
            HEADER,
            {"ev": "cache_probe", "seq": 900, "hit": True},
            {"ev": "end", "seq": 901, "emitted": 902, "dropped": 899},
        )
        assert validate_redtrace(lines) == []

    def test_unknown_event_kind(self):
        lines = _lines(HEADER, {"ev": "wat", "seq": 1}, END)
        errors = validate_redtrace(lines)
        assert any("unknown event kind 'wat'" in e for e in errors)

    def test_missing_header(self):
        lines = _lines({"ev": "mask_sweep", "seq": 0, "var": 0}, END)
        errors = validate_redtrace(lines)
        assert any("first record must be the 'header'" in e for e in errors)

    def test_missing_version_field(self):
        headerless = {"ev": "header", "seq": 0, "op": "verify"}
        errors = validate_redtrace(_lines(headerless, END))
        assert any("missing the 'redtrace' version" in e for e in errors)

    def test_wrong_version(self):
        wrong = dict(HEADER, redtrace="REDTRACE/99")
        errors = validate_redtrace(_lines(wrong, END))
        assert any("header version is 'REDTRACE/99'" in e for e in errors)

    def test_header_must_carry_seq_zero(self):
        shifted = dict(HEADER, seq=5)
        errors = validate_redtrace(_lines(shifted, END))
        assert any("header must carry seq 0" in e for e in errors)

    def test_out_of_order_seq(self):
        lines = _lines(
            HEADER,
            {"ev": "mask_sweep", "seq": 7, "var": 0},
            {"ev": "mask_sweep", "seq": 3, "var": 1},
        )
        errors = validate_redtrace(lines)
        assert any("out-of-order sequence number" in e for e in errors)
        assert any("seq 3 after seq 7" in e for e in errors)

    def test_duplicate_seq_is_out_of_order(self):
        lines = _lines(HEADER, {"ev": "mask_sweep", "seq": 0, "var": 0})
        errors = validate_redtrace(lines)
        assert any("out-of-order" in e for e in errors)

    def test_negative_and_bool_seq_rejected(self):
        lines = _lines(HEADER, {"ev": "mask_sweep", "seq": -1})
        assert any("non-negative integer" in e for e in validate_redtrace(lines))
        lines = _lines(HEADER, {"ev": "mask_sweep", "seq": True})
        assert any("non-negative integer" in e for e in validate_redtrace(lines))

    def test_non_object_line_and_bad_json(self):
        errors = validate_redtrace(["[1, 2]", "not json"])
        assert any("must be a JSON object" in e for e in errors)
        assert any("not valid JSON" in e for e in errors)

    def test_empty_trace(self):
        assert validate_redtrace([]) == ["trace: empty trace (no event records)"]

    def test_file_wrapper_reports_unreadable_path(self, tmp_path):
        errors = validate_redtrace_file(str(tmp_path / "missing.redtrace"))
        assert errors and "cannot read" in errors[0]


class TestSchemaMain:
    def _write(self, tmp_path, name, lines):
        path = tmp_path / name
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_main_accepts_valid_redtrace(self, tmp_path, capsys):
        path = self._write(
            tmp_path, "t.redtrace",
            _lines(HEADER, {"ev": "mask_sweep", "seq": 1, "var": 0}, END),
        )
        assert main([path]) == 0
        assert "redtrace event(s)" in capsys.readouterr().out

    def test_main_rejects_corrupt_redtrace(self, tmp_path, capsys):
        path = self._write(tmp_path, "t.redtrace", _lines(HEADER, {"ev": "wat", "seq": 1}))
        assert main([path]) == 1
        assert "invalid:" in capsys.readouterr().err

    def test_sniffing_dispatches_without_extension(self, tmp_path, capsys):
        path = self._write(
            tmp_path, "trace.jsonl",
            _lines(HEADER, {"ev": "mask_sweep", "seq": 1, "var": 0}, END),
        )
        assert main([path]) == 0
        assert "redtrace event(s)" in capsys.readouterr().out

    def test_headerless_event_stream_still_validated_as_redtrace(self, tmp_path):
        # sniffs as redtrace via its "ev" key, then fails the header check
        path = self._write(
            tmp_path, "headerless.jsonl", _lines({"ev": "mask_sweep", "seq": 0})
        )
        assert main([path]) == 1

    def test_chrome_trace_still_validates(self, tmp_path, capsys):
        doc = {
            "traceEvents": [
                {"name": "verify", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 5}
            ]
        }
        path = tmp_path / "chrome.trace.json"
        path.write_text(json.dumps(doc, indent=1))
        assert main([str(path)]) == 0
        assert "span event(s)" in capsys.readouterr().out
