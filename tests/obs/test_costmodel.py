"""Fitted cost model + online (op, k) estimator tests."""

import json

import pytest

from repro.obs.costmodel import (
    CostEstimator,
    CostModel,
    collect_job_records,
    fit_from_run_logs,
)


def _synthetic_records(n=24):
    """Jobs whose runtime is an exact linear function of the features."""
    records = []
    for i in range(n):
        gates, k, cones = 100 + 40 * i, 8 + (i % 3) * 8, 4 + i % 5
        seconds = 0.01 + 0.0005 * gates + 0.002 * k + 0.003 * cones
        records.append(
            {
                "op": "verify",
                "seconds": seconds,
                "gates": gates,
                "k": k,
                "cones": cones,
                "phases": {"spoly_reduction": 0.8 * seconds},
            }
        )
    return records


class TestFit:
    def test_least_squares_recovers_linear_law(self):
        model = CostModel.fit(_synthetic_records())
        predicted = model.predict("verify", k=16, gates=500, cones=6)
        expected = 0.01 + 0.0005 * 500 + 0.002 * 16 + 0.003 * 6
        assert predicted == pytest.approx(expected, rel=1e-6)
        assert model.ops["verify"]["r2"]["total"] > 0.999

    def test_per_phase_regression(self):
        model = CostModel.fit(_synthetic_records())
        total = model.predict("verify", k=16, gates=500, cones=6)
        phase = model.predict(
            "verify", k=16, gates=500, cones=6, phase="spoly_reduction"
        )
        assert phase == pytest.approx(0.8 * total, rel=1e-6)

    def test_unknown_phase_without_gates_returns_none(self):
        model = CostModel.fit(_synthetic_records())
        assert model.predict("verify", k=16, phase="spoly_reduction") is None

    def test_bucket_fallback_without_gates(self):
        model = CostModel.fit(_synthetic_records())
        bucketed = model.predict("verify", k=16)
        assert bucketed == pytest.approx(model.bucket_mean("verify", 16))

    def test_op_mean_fallback_for_unseen_k(self):
        model = CostModel.fit(_synthetic_records())
        assert model.predict("verify", k=999) == pytest.approx(
            model.ops["verify"]["mean"]
        )

    def test_unknown_op_returns_none(self):
        model = CostModel.fit(_synthetic_records())
        assert model.predict("mystery") is None

    def test_too_few_samples_skips_regression_keeps_buckets(self):
        records = _synthetic_records()[:3]
        model = CostModel.fit(records)
        assert "total" not in model.ops["verify"]["coef"]
        assert model.predict("verify", k=8) is not None

    def test_predictions_are_floored(self):
        # A fit from constant-zero runtimes must not predict <= 0.
        records = [
            {"op": "abstract", "seconds": 0.0, "k": 8, "gates": g, "cones": 1}
            for g in range(10)
        ]
        model = CostModel.fit(records)
        assert model.predict("abstract", k=8, gates=5) > 0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        model = CostModel.fit(_synthetic_records())
        path = str(tmp_path / "model.json")
        model.save(path)
        loaded = CostModel.load(path)
        assert loaded.fitted_from == model.fitted_from
        assert loaded.predict("verify", k=16, gates=500, cones=6) == pytest.approx(
            model.predict("verify", k=16, gates=500, cones=6)
        )

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": "other", "ops": {}}))
        with pytest.raises(ValueError, match="version"):
            CostModel.load(str(path))

    def test_missing_ops_rejected(self):
        with pytest.raises(ValueError, match="ops"):
            CostModel.from_dict({"version": "repro-costmodel-v1"})


class TestRunLogIngestion:
    def _write_log(self, tmp_path, records):
        path = tmp_path / "run.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        return str(path)

    def test_collects_only_ok_jobs_with_seconds(self, tmp_path):
        path = self._write_log(
            tmp_path,
            [
                {"event": "start", "jobs": 3},
                {"event": "job", "status": "ok", "type": "verify", "seconds": 1.5,
                 "k": 16, "gates": 500, "cones": 8},
                {"event": "job", "status": "failed", "type": "verify", "seconds": 9.9},
                {"event": "job", "status": "ok", "type": "abstract"},
                {"event": "summary"},
            ],
        )
        records = collect_job_records([path])
        assert len(records) == 1
        assert records[0]["op"] == "verify"
        assert records[0]["k"] == 16

    def test_fit_from_run_logs(self, tmp_path):
        jobs = [
            {"event": "job", "status": "ok", "type": "verify",
             "seconds": r["seconds"], "k": r["k"], "gates": r["gates"],
             "cones": r["cones"]}
            for r in _synthetic_records()
        ]
        model = fit_from_run_logs([self._write_log(tmp_path, jobs)])
        assert model.predict("verify", k=16, gates=500, cones=6) > 0


class TestCostEstimator:
    def test_global_fallback_before_any_observation(self):
        estimator = CostEstimator(default_seconds=0.5)
        seconds, source = estimator.estimate("verify", 64)
        assert seconds == 0.5
        assert source == "global"

    def test_bucket_answers_after_observation(self):
        estimator = CostEstimator(default_seconds=0.5)
        estimator.observe("verify", 64, 10.0)
        seconds, source = estimator.estimate("verify", 64)
        assert seconds == 10.0  # first observation seeds the bucket directly
        assert source == "bucket"
        # a different k still falls back
        _, source = estimator.estimate("verify", 16)
        assert source == "global"

    def test_buckets_are_isolated_per_op_and_k(self):
        estimator = CostEstimator()
        estimator.observe("verify", 16, 0.01)
        estimator.observe("verify", 64, 60.0)
        fast, _ = estimator.estimate("verify", 16)
        slow, _ = estimator.estimate("verify", 64)
        assert fast < 1.0 < slow

    def test_ema_converges_toward_recent_observations(self):
        estimator = CostEstimator()
        estimator.observe("verify", 16, 1.0)
        for _ in range(50):
            estimator.observe("verify", 16, 3.0)
        seconds, _ = estimator.estimate("verify", 16)
        assert seconds == pytest.approx(3.0, abs=1e-3)

    def test_model_answers_between_global_and_bucket(self):
        model = CostModel.fit(_synthetic_records())
        estimator = CostEstimator(default_seconds=0.5, model=model)
        seconds, source = estimator.estimate("verify", 16)
        assert source == "model"
        assert seconds == pytest.approx(model.predict("verify", k=16))
        estimator.observe("verify", 16, 42.0)
        seconds, source = estimator.estimate("verify", 16)
        assert (seconds, source) == (42.0, "bucket")

    def test_non_numeric_k_collapses_to_none_bucket(self):
        estimator = CostEstimator()
        estimator.observe("verify", "not-a-k", 2.0)
        seconds, source = estimator.estimate("verify", None)
        assert (seconds, source) == (2.0, "bucket")
