"""Fixtures for the telemetry tests: keep the process-global collector clean."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_collector():
    """Tracing state is process-global; never leak it across tests."""
    obs.disable()
    obs.reset_context()
    obs.redtrace.reset_after_fork()
    yield
    obs.disable()
    obs.reset_context()
    obs.redtrace.reset_after_fork()
