"""Span core: nesting, exception safety, enable/disable, counters, merge."""

import os
import threading

import pytest

from repro import obs
from repro.obs import metrics


def _by_name(collector):
    return {record["name"]: record for record in collector.snapshot()["spans"]}


class TestNesting:
    def test_child_records_parent_id(self):
        collector = obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        spans = _by_name(collector)
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None

    def test_siblings_share_a_parent(self):
        collector = obs.enable()
        with obs.span("root"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        spans = _by_name(collector)
        assert spans["a"]["parent"] == spans["b"]["parent"] == spans["root"]["id"]

    def test_threads_get_independent_current_spans(self):
        collector = obs.enable()
        ready = threading.Event()

        def worker():
            # Fresh thread => fresh contextvar: this span must be a root,
            # not a child of the main thread's open span.
            with obs.span("thread_root"):
                ready.set()

        with obs.span("main_root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert ready.is_set()
        spans = _by_name(collector)
        assert spans["thread_root"]["parent"] is None
        assert spans["thread_root"]["tid"] != spans["main_root"]["tid"]

    def test_decorator_uses_function_name(self):
        collector = obs.enable()

        @obs.traced()
        def do_work():
            return 7

        assert do_work() == 7
        (record,) = collector.snapshot()["spans"]
        assert "do_work" in record["name"]


class TestExceptionSafety:
    def test_span_closed_by_exception_records_duration_and_error(self):
        collector = obs.enable()
        with pytest.raises(RuntimeError):
            with obs.span("doomed", k=8):
                raise RuntimeError("boom")
        (record,) = collector.snapshot()["spans"]
        assert record["error"] == "RuntimeError"
        assert record["dur"] >= 0.0
        assert record["tags"] == {"k": 8}

    def test_exception_does_not_corrupt_nesting(self):
        collector = obs.enable()
        with obs.span("outer"):
            with pytest.raises(ValueError):
                with obs.span("failed_child"):
                    raise ValueError()
            with obs.span("next_child"):
                pass
        spans = _by_name(collector)
        assert spans["next_child"]["parent"] == spans["outer"]["id"]
        assert "error" not in spans["outer"]


class TestEnableDisable:
    def test_disabled_span_is_shared_noop(self):
        assert not obs.is_enabled()
        first = obs.span("anything", k=1)
        second = obs.span("other")
        assert first is second  # the shared null span: no allocation per call
        with first:
            first.set_tag("ignored", True)

    def test_disabled_counters_are_noops(self):
        obs.counter_add("x", 5)
        obs.gauge_max("y", 5.0)
        collector = obs.enable()
        assert collector.snapshot()["counters"] == {}

    def test_enable_records_disable_stops(self):
        collector = obs.enable()
        with obs.span("recorded"):
            pass
        obs.disable()
        with obs.span("dropped"):
            pass
        assert [r["name"] for r in collector.snapshot()["spans"]] == ["recorded"]

    def test_set_tag_after_entry(self):
        collector = obs.enable()
        with obs.span("tagged") as live:
            live.set_tag("verdict", "sat")
        (record,) = collector.snapshot()["spans"]
        assert record["tags"]["verdict"] == "sat"


class TestCountersAndGauges:
    def test_counters_accumulate_gauges_max(self):
        collector = obs.enable()
        metrics.counter_add(metrics.DIVISION_STEPS, 10)
        metrics.counter_add(metrics.DIVISION_STEPS, 5)
        metrics.gauge_max(metrics.DIVISION_PEAK_TERMS, 100)
        metrics.gauge_max(metrics.DIVISION_PEAK_TERMS, 40)
        snapshot = collector.snapshot()
        assert snapshot["counters"][metrics.DIVISION_STEPS] == 15
        assert snapshot["gauges"][metrics.DIVISION_PEAK_TERMS] == 100

    def test_thread_safety_of_counter_adds(self):
        collector = obs.enable()

        def hammer():
            for _ in range(1000):
                obs.counter_add("hits")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert collector.snapshot()["counters"]["hits"] == 4000


class TestSnapshotMerge:
    def test_merge_adds_counters_maxes_gauges_extends_spans(self):
        worker = obs.TraceCollector()
        worker.counter_add("division.steps", 7)
        worker.gauge_max("peak", 50)
        worker.add_span(
            {
                "name": "remote",
                "id": 1,
                "parent": None,
                "pid": 99999,
                "tid": 1,
                "ts": 0.0,
                "dur": 0.5,
                "tags": {},
            }
        )
        parent = obs.TraceCollector()
        parent.counter_add("division.steps", 3)
        parent.gauge_max("peak", 80)
        parent.merge(worker.snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"]["division.steps"] == 10
        assert snapshot["gauges"]["peak"] == 80
        assert snapshot["spans"][0]["name"] == "remote"
        assert snapshot["spans"][0]["pid"] == 99999

    def test_snapshot_is_schema_stamped_and_deep_copied(self):
        collector = obs.enable()
        with obs.span("s"):
            pass
        snapshot = collector.snapshot()
        assert snapshot["schema"] == obs.SCHEMA_VERSION
        snapshot["spans"][0]["name"] = "mutated"
        assert collector.snapshot()["spans"][0]["name"] == "s"

    def test_spans_carry_this_process_pid(self):
        collector = obs.enable()
        with obs.span("here"):
            pass
        (record,) = collector.snapshot()["spans"]
        assert record["pid"] == os.getpid()


class TestPipelineInstrumentation:
    """The library hot paths actually emit the documented spans/counters."""

    def test_verify_emits_nested_pipeline_spans(self, tmp_path):
        from repro.circuits import write_verilog
        from repro.gf import GF2m
        from repro.synth import mastrovito_multiplier, montgomery_multiplier
        from repro.verify import verify_equivalence

        field = GF2m(4)
        spec = mastrovito_multiplier(field)
        impl = montgomery_multiplier(field).flatten()
        collector = obs.enable()
        with obs.span("verify"):
            outcome = verify_equivalence(spec, impl, field)
        assert outcome.equivalent
        snapshot = collector.snapshot()
        names = [record["name"] for record in snapshot["spans"]]
        for expected in ("rato_setup", "spoly_reduction", "abstract", "coeff_match"):
            assert expected in names, names
        assert snapshot["counters"][metrics.ABSTRACTION_SUBSTITUTIONS] > 0
        assert snapshot["gauges"][metrics.ABSTRACTION_PEAK_TERMS] > 0
        # abstract spans parent the reduction spans; verify parents abstract.
        spans = snapshot["spans"]
        verify_id = next(r["id"] for r in spans if r["name"] == "verify")
        abstract_ids = {r["id"] for r in spans if r["name"] == "abstract"}
        for record in spans:
            if record["name"] == "abstract":
                assert record["parent"] == verify_id
            if record["name"] == "spoly_reduction":
                assert record["parent"] in abstract_ids

    def test_buchberger_counters_survive_instrumentation(self):
        from repro.algebra import LexOrder, PolynomialRing, buchberger
        from repro.gf import GF2m

        field = GF2m(4)
        ring = PolynomialRing(
            field, ["x", "y", "z"], order=LexOrder([0, 1, 2]), fold=False
        )
        x, y, z = ring.var("x"), ring.var("y"), ring.var("z")
        collector = obs.enable()
        basis = buchberger([x * y + z, y * y + 1, x * z + y])
        assert basis
        counters = collector.snapshot()["counters"]
        assert counters.get(metrics.BUCHBERGER_PAIRS_CONSIDERED, 0) > 0
        assert counters.get(metrics.BUCHBERGER_REDUCTIONS, 0) > 0


class TestBoundedSpanBuffer:
    """``max_spans`` keeps long-running daemons from accumulating unbounded
    span memory: the buffer trims oldest-first and counts what it dropped."""

    def _span(self, index):
        return {
            "name": f"s{index}",
            "id": index,
            "parent": None,
            "pid": 1,
            "tid": 1,
            "ts": float(index),
            "dur": 0.1,
            "tags": {},
        }

    def test_unbounded_by_default(self):
        collector = obs.TraceCollector()
        for index in range(100):
            collector.add_span(self._span(index))
        assert len(collector.snapshot()["spans"]) == 100
        assert collector.spans_dropped == 0

    def test_oldest_spans_trim_first(self):
        collector = obs.TraceCollector(max_spans=3)
        for index in range(10):
            collector.add_span(self._span(index))
        names = [record["name"] for record in collector.snapshot()["spans"]]
        assert names == ["s7", "s8", "s9"]
        assert collector.spans_dropped == 7

    def test_merge_respects_the_bound(self):
        worker = obs.TraceCollector()
        for index in range(10):
            worker.add_span(self._span(index))
        parent = obs.TraceCollector(max_spans=4)
        parent.merge(worker.snapshot())
        snapshot = parent.snapshot()
        assert len(snapshot["spans"]) == 4
        assert parent.spans_dropped == 6
        # Counters still merged in full despite span trimming.
        assert snapshot["counters"] == {}

    def test_counters_survive_trimming(self):
        collector = obs.TraceCollector(max_spans=1)
        collector.counter_add("hits", 5)
        for index in range(5):
            collector.add_span(self._span(index))
        assert collector.snapshot()["counters"]["hits"] == 5
