"""Exporters and schema validation: Chrome trace, JSONL log, summary table."""

import json

import pytest

from repro import obs
from repro.obs.schema import main as schema_main, validate_trace


def _sample_snapshot():
    collector = obs.TraceCollector()
    base = 1000.0
    collector.add_span(
        {
            "name": "verify",
            "id": 1,
            "parent": None,
            "pid": 10,
            "tid": 1,
            "ts": base,
            "dur": 1.0,
            "tags": {"k": 8},
        }
    )
    collector.add_span(
        {
            "name": "spoly_reduction",
            "id": 2,
            "parent": 1,
            "pid": 10,
            "tid": 1,
            "ts": base + 0.25,
            "dur": 0.5,
            "tags": {},
            "error": "RuntimeError",
        }
    )
    collector.counter_add("division.steps", 42)
    collector.gauge_max("abstraction.peak_terms", 99)
    return collector.snapshot()


class TestChromeTrace:
    def test_round_trip_passes_validator(self, tmp_path):
        path = str(tmp_path / "out.trace.json")
        obs.write_chrome_trace(_sample_snapshot(), path)
        with open(path) as handle:
            doc = json.load(handle)
        assert validate_trace(doc) == []

    def test_timestamps_rebase_to_zero_microseconds(self):
        doc = obs.to_chrome_trace(_sample_snapshot())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in spans}
        assert by_name["verify"]["ts"] == 0.0
        assert by_name["spoly_reduction"]["ts"] == pytest.approx(0.25e6)
        assert by_name["verify"]["dur"] == pytest.approx(1e6)

    def test_parentage_error_and_aggregates_travel_in_args(self):
        doc = obs.to_chrome_trace(_sample_snapshot())
        child = next(
            e for e in doc["traceEvents"] if e["name"] == "spoly_reduction"
        )
        assert child["args"]["parent_id"] == 1
        assert child["args"]["error"] == "RuntimeError"
        assert doc["otherData"]["counters"]["division.steps"] == 42
        assert doc["otherData"]["gauges"]["abstraction.peak_terms"] == 99
        assert doc["otherData"]["schema"] == obs.SCHEMA_VERSION

    def test_metadata_names_each_process_lane(self):
        doc = obs.to_chrome_trace(_sample_snapshot())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["pid"] == 10 for e in meta)


class TestJsonl:
    def test_every_line_is_json_with_meta_first(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        obs.write_jsonl(_sample_snapshot(), path)
        lines = [json.loads(l) for l in open(path) if l.strip()]
        assert lines[0]["event"] == "meta"
        assert lines[0]["schema"] == obs.SCHEMA_VERSION
        assert lines[0]["spans"] == 2
        events = [l["event"] for l in lines]
        assert events.count("span") == 2
        assert "counters" in events and "gauges" in events


class TestSummaryTable:
    def test_contains_spans_counters_and_error_counts(self):
        table = obs.summary_table(_sample_snapshot())
        assert "verify" in table
        assert "spoly_reduction" in table
        assert "division.steps" in table
        assert "abstraction.peak_terms" in table

    def test_empty_snapshot_renders(self):
        table = obs.summary_table(obs.TraceCollector().snapshot())
        assert "(none)" in table


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_trace([]) != []

    def test_rejects_missing_dur_on_complete_event(self):
        doc = {
            "traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0}
            ]
        }
        errors = validate_trace(doc)
        assert any("dur" in e for e in errors)

    def test_rejects_wrong_schema_version(self):
        doc = {"traceEvents": [], "otherData": {"schema": "bogus-v9"}}
        errors = validate_trace(doc)
        assert any("schema" in e for e in errors)

    def test_cli_ok_and_invalid_paths(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        obs.write_chrome_trace(_sample_snapshot(), str(good))
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": "nope"}')
        assert schema_main([str(good)]) == 0
        assert "ok:" in capsys.readouterr().out
        assert schema_main([str(bad)]) == 1
        assert "invalid" in capsys.readouterr().err
        assert schema_main([str(good), str(bad)]) == 1
        assert schema_main([]) == 2


class TestPrometheusRendering:
    def test_counters_and_gauges_with_type_lines(self):
        snapshot = _sample_snapshot()
        text = obs.render_prometheus(snapshot)
        assert "# TYPE repro_division_steps counter" in text
        assert "repro_division_steps 42" in text
        assert "# TYPE repro_abstraction_peak_terms gauge" in text
        assert "repro_abstraction_peak_terms 99" in text
        assert text.endswith("\n")

    def test_dots_map_to_underscores(self):
        text = obs.render_prometheus({"counters": {"a.b-c.d": 1}, "gauges": {}})
        assert "repro_a_b_c_d 1" in text

    def test_extra_gauges_are_appended(self):
        text = obs.render_prometheus(
            {"counters": {}, "gauges": {}},
            extra_gauges={"service.queue_depth": 3, "service.uptime_seconds": 1.5},
        )
        assert "repro_service_queue_depth 3" in text
        assert "repro_service_uptime_seconds 1.5" in text

    def test_integral_floats_render_without_decimal_point(self):
        text = obs.render_prometheus(
            {"counters": {}, "gauges": {"g": 4.0}}
        )
        assert "repro_g 4\n" in text

    def test_empty_snapshot_renders_empty_exposition(self):
        assert obs.render_prometheus({}) == "\n"

    def test_spans_are_not_exported(self):
        snapshot = _sample_snapshot()
        text = obs.render_prometheus(snapshot)
        assert "verify" not in text


class TestTagEscaping:
    """Non-JSON-safe tag values must be escaped, not crash the exporter."""

    def _snapshot_with_tags(self, tags):
        collector = obs.TraceCollector()
        collector.add_span(
            {
                "name": "verify", "id": 1, "parent": None, "pid": 1,
                "tid": 1, "ts": 0.0, "dur": 1.0, "tags": tags,
            }
        )
        return collector.snapshot()

    def test_bytes_tags_become_hex_strings(self, tmp_path):
        snapshot = self._snapshot_with_tags({"digest": b"\x00\xff\x10"})
        path = str(tmp_path / "t.trace.json")
        obs.write_chrome_trace(snapshot, path)
        with open(path) as handle:
            doc = json.load(handle)
        assert validate_trace(doc) == []
        args = doc["traceEvents"][0]["args"]
        assert args["digest"] == "0x00ff10"

    def test_nested_containers_and_sets_are_sanitized(self, tmp_path):
        snapshot = self._snapshot_with_tags(
            {
                "nested": {"raw": b"\x01", "seq": [b"\x02", 3]},
                "mask_set": {3, 1, 2},
                "pair": (1, b"\x04"),
            }
        )
        path = str(tmp_path / "t.trace.json")
        obs.write_chrome_trace(snapshot, path)
        with open(path) as handle:
            doc = json.load(handle)
        args = doc["traceEvents"][0]["args"]
        assert args["nested"] == {"raw": "0x01", "seq": ["0x02", 3]}
        assert args["mask_set"] == [1, 2, 3]
        assert args["pair"] == [1, "0x04"]

    def test_non_finite_floats_become_strings(self, tmp_path):
        snapshot = self._snapshot_with_tags({"ratio": float("inf"), "x": float("nan")})
        path = str(tmp_path / "t.trace.json")
        obs.write_chrome_trace(snapshot, path)  # allow_nan=False would raise
        with open(path) as handle:
            doc = json.load(handle)
        args = doc["traceEvents"][0]["args"]
        assert args["ratio"] == "inf"
        assert args["x"] == "nan"

    def test_arbitrary_objects_fall_back_to_str(self, tmp_path):
        class Weird:
            def __repr__(self):
                return "<weird>"

        snapshot = self._snapshot_with_tags({"obj": Weird()})
        path = str(tmp_path / "t.trace.json")
        obs.write_chrome_trace(snapshot, path)
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["traceEvents"][0]["args"]["obj"] == "<weird>"

    def test_jsonl_export_sanitizes_tags_too(self, tmp_path):
        snapshot = self._snapshot_with_tags({"digest": b"\xab"})
        path = str(tmp_path / "t.jsonl")
        obs.write_jsonl(snapshot, path)
        lines = [json.loads(l) for l in open(path) if l.strip()]
        span = next(l for l in lines if l.get("event") == "span")
        assert span["tags"]["digest"] == "0xab"
