"""Run-log aggregation math behind ``repro report``."""

import json

import pytest

from repro.obs import aggregate_run_log, format_report


def _write_log(tmp_path, records, name="run.jsonl"):
    path = tmp_path / name
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return str(path)


@pytest.fixture
def sample_log(tmp_path):
    return _write_log(
        tmp_path,
        [
            {"event": "start", "jobs": 3, "workers": 2},
            {
                "event": "job",
                "id": "a",
                "status": "ok",
                "verdict": "equivalent",
                "seconds": 1.0,
                "phases": {"parse": 0.2, "spoly_reduction": 0.6},
                "counters": {"division.steps": 10},
                "gauges": {"abstraction.peak_terms": 50},
                "cache": {"hits": 0, "misses": 2},
            },
            {"event": "retry", "id": "b", "attempt": 1},
            {
                "event": "job",
                "id": "b",
                "status": "ok",
                "verdict": "not_equivalent",
                "seconds": 3.0,
                "phases": {"parse": 0.4, "spoly_reduction": 0.0},
                "counters": {"division.steps": 5},
                "gauges": {"abstraction.peak_terms": 80},
                "cache": {"hits": 2, "misses": 0},
            },
            {"event": "job", "id": "c", "status": "timeout", "seconds": 9.0},
            {"event": "summary", "wall_seconds": 8.5, "workers": 2},
        ],
    )


class TestAggregation:
    def test_phase_totals_means_and_maxes(self, sample_log):
        aggregate = aggregate_run_log(sample_log)
        parse = aggregate["phases"]["parse"]
        assert parse["total"] == pytest.approx(0.6)
        assert parse["mean"] == pytest.approx(0.3)
        assert parse["max"] == pytest.approx(0.4)
        assert parse["count"] == 2
        # Zero-valued phases (warm cache) keep their denominator slot.
        spoly = aggregate["phases"]["spoly_reduction"]
        assert spoly["count"] == 2
        assert spoly["mean"] == pytest.approx(0.3)

    def test_counters_sum_gauges_max(self, sample_log):
        aggregate = aggregate_run_log(sample_log)
        assert aggregate["counters"]["division.steps"] == 15
        assert aggregate["gauges"]["abstraction.peak_terms"] == 80

    def test_statuses_verdicts_retries_cache(self, sample_log):
        aggregate = aggregate_run_log(sample_log)
        assert aggregate["jobs"] == 3
        assert aggregate["statuses"] == {"ok": 2, "timeout": 1}
        assert aggregate["verdicts"] == {"equivalent": 1, "not_equivalent": 1}
        assert aggregate["retries"] == 1
        assert aggregate["workers"] == 2
        assert aggregate["wall_seconds"] == 8.5
        assert aggregate["job_seconds_total"] == pytest.approx(13.0)
        assert aggregate["cache"] == {"hits": 2, "misses": 2, "hit_rate": 0.5}

    def test_legacy_records_without_event_key(self, tmp_path):
        path = _write_log(
            tmp_path,
            [{"id": "old", "status": "ok", "seconds": 1.5, "phases": {"parse": 0.1}}],
        )
        aggregate = aggregate_run_log(path)
        assert aggregate["jobs"] == 1
        assert aggregate["cache"]["hit_rate"] is None

    def test_missing_file_garbled_line_and_empty_log_raise(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            aggregate_run_log(str(tmp_path / "absent.jsonl"))
        garbled = tmp_path / "garbled.jsonl"
        garbled.write_text('{"event": "job", "status": "ok"}\nnot json\n')
        with pytest.raises(ValueError, match="not valid JSON"):
            aggregate_run_log(str(garbled))
        empty = _write_log(tmp_path, [{"event": "start"}], name="empty.jsonl")
        with pytest.raises(ValueError, match="no job records"):
            aggregate_run_log(empty)


class TestFormatting:
    def test_report_mentions_all_sections(self, sample_log):
        text = format_report(aggregate_run_log(sample_log))
        assert "phase timings" in text
        assert "spoly_reduction" in text
        assert "algebraic work counters" in text
        assert "division.steps" in text
        assert "hit rate 50.0%" in text
        assert "retries: 1" in text


class TestCostModelSection:
    def _log_with_predictions(self, tmp_path):
        return _write_log(
            tmp_path,
            [
                {"event": "job", "id": "a", "type": "verify", "status": "ok",
                 "seconds": 2.0, "predicted_seconds": 1.5, "k": 16},
                {"event": "job", "id": "b", "type": "abstract", "status": "ok",
                 "seconds": 1.0, "predicted_seconds": 1.0, "k": 16},
                {"event": "job", "id": "c", "type": "verify", "status": "timeout",
                 "seconds": 9.0, "predicted_seconds": 0.1},
            ],
            name="predicted.jsonl",
        )

    def test_logged_predictions_scored_without_model(self, tmp_path):
        aggregate = aggregate_run_log(self._log_with_predictions(tmp_path))
        section = aggregate["cost_model"]
        # the timed-out job is not scored
        assert section["overall"]["jobs"] == 2
        assert section["ops"]["verify"]["abs_error_s"] == pytest.approx(0.5)
        assert section["ops"]["abstract"]["abs_error_s"] == pytest.approx(0.0)
        assert section["overall"]["mape_pct"] == pytest.approx(
            100.0 * 0.5 / 3.0
        )

    def test_model_scores_jobs_without_logged_predictions(self, tmp_path):
        from repro.obs.costmodel import CostModel

        log = _write_log(
            tmp_path,
            [
                {"event": "job", "id": "a", "type": "verify", "status": "ok",
                 "seconds": 2.0, "k": 16},
            ],
            name="bare.jsonl",
        )
        model = CostModel.fit(
            [{"op": "verify", "seconds": 1.6, "k": 16} for _ in range(2)]
        )
        aggregate = aggregate_run_log(log, cost_model=model)
        verify = aggregate["cost_model"]["ops"]["verify"]
        assert verify["predicted_s"] == pytest.approx(1.6)
        assert verify["abs_error_s"] == pytest.approx(0.4)

    def test_section_absent_without_predictions(self, sample_log):
        aggregate = aggregate_run_log(sample_log)
        assert aggregate["cost_model"] is None
        assert "cost model" not in format_report(aggregate)

    def test_report_renders_predicted_vs_actual_table(self, tmp_path):
        text = format_report(
            aggregate_run_log(self._log_with_predictions(tmp_path))
        )
        assert "cost model: predicted vs actual" in text
        assert "(all)" in text
        assert "err_pct" in text
