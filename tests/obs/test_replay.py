"""Record/replay round trips through the CLI: the byte-identical-replay
contract, divergence reporting, and header integrity checks."""

import json

import pytest

from repro.cli import main
from repro.obs import redtrace
from repro.obs.replay import (
    ReplayError,
    canonical_event,
    diff_events,
    execute_header,
    netlist_sha256,
    replay_file,
)


@pytest.fixture
def recorded(tmp_path):
    spec = str(tmp_path / "spec.v")
    impl = str(tmp_path / "impl.v")
    trace = str(tmp_path / "run.redtrace")
    assert main(["gen", "mastrovito", "-k", "8", "-o", spec]) == 0
    assert main(["gen", "montgomery", "-k", "8", "-o", impl]) == 0
    assert main(["verify", spec, impl, "-k", "8", "--record", trace]) == 0
    return trace


class TestCanonicalization:
    def test_exempt_fields_are_stripped(self):
        a = {"ev": "header", "seq": 0, "recorded_at": "2026-01-01", "op": "x"}
        b = {"ev": "header", "seq": 0, "recorded_at": "2026-02-02", "op": "x"}
        assert canonical_event(a) == canonical_event(b)

    def test_tuple_vs_list_monomials_compare_equal(self):
        fresh = {"ev": "divisor_hit", "seq": 1, "slot": 0, "m": ((3, 1), (5, 1))}
        loaded = json.loads(json.dumps(fresh))
        assert canonical_event(fresh) == canonical_event(loaded)

    def test_diff_events_finds_first_divergence(self):
        base = [{"ev": "header", "seq": 0}, {"ev": "mask_sweep", "seq": 1, "var": 2}]
        other = [dict(base[0]), dict(base[1], var=3)]
        index, rec, new = diff_events(base, other)
        assert index == 1
        assert rec["var"] == 2 and new["var"] == 3
        assert diff_events(base, [dict(e) for e in base]) is None

    def test_diff_events_reports_truncated_stream(self):
        base = [{"ev": "header", "seq": 0}, {"ev": "end", "seq": 1}]
        index, rec, new = diff_events(base, base[:1])
        assert index == 1 and rec is not None and new is None


class TestCliRoundTrip:
    def test_verify_record_then_diff_is_identical(self, recorded, capsys):
        assert main(["replay", recorded, "--diff"]) == 0
        out = capsys.readouterr().out
        assert "diff: identical" in out

    def test_summary_mode_without_diff(self, recorded, capsys):
        assert main(["replay", recorded]) == 0
        out = capsys.readouterr().out
        assert "op=verify k=8" in out

    def test_mutated_event_diffs_nonzero_with_both_records(
        self, recorded, tmp_path, capsys
    ):
        lines = open(recorded).read().splitlines()
        for i, line in enumerate(lines):
            record = json.loads(line)
            if record["ev"] == "mask_sweep":
                record["groups"] += 1
                lines[i] = json.dumps(record)
                break
        else:
            pytest.fail("no mask_sweep event recorded")
        corrupt = str(tmp_path / "corrupt.redtrace")
        with open(corrupt, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        assert main(["replay", corrupt, "--diff"]) == 1
        err = capsys.readouterr().err
        assert "divergence at event" in err
        assert "recorded:" in err and "replayed:" in err

    def test_tampered_netlist_text_fails_sha_check(self, recorded, tmp_path, capsys):
        lines = open(recorded).read().splitlines()
        header = json.loads(lines[0])
        header["params"]["impl_text"] = header["params"]["impl_text"] + "\n// x\n"
        lines[0] = json.dumps(header)
        tampered = str(tmp_path / "tampered.redtrace")
        with open(tampered, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        assert main(["replay", tampered, "--diff"]) == 2
        assert "sha256" in capsys.readouterr().err

    def test_structurally_invalid_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.redtrace"
        bad.write_text('{"ev": "mask_sweep", "seq": 0}\n')
        assert main(["replay", str(bad), "--diff"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_abstract_record_replays_identically(self, tmp_path, capsys):
        netlist = str(tmp_path / "m.v")
        trace = str(tmp_path / "abs.redtrace")
        assert main(["gen", "mastrovito", "-k", "8", "-o", netlist]) == 0
        assert main(["abstract", netlist, "-k", "8", "--record", trace]) == 0
        assert main(["replay", trace, "--diff"]) == 0
        assert "diff: identical" in capsys.readouterr().out

    def test_record_requires_abstraction_method(self, tmp_path, capsys):
        spec = str(tmp_path / "spec.v")
        impl = str(tmp_path / "impl.v")
        assert main(["gen", "mastrovito", "-k", "4", "-o", spec]) == 0
        assert main(["gen", "mastrovito", "-k", "4", "-o", impl]) == 0
        code = main(
            ["verify", spec, impl, "-k", "4", "--method", "sat",
             "--record", str(tmp_path / "t.redtrace")]
        )
        assert code == 2
        assert "abstraction" in capsys.readouterr().err


class TestExecuteHeader:
    def test_rejects_missing_params(self):
        with pytest.raises(ReplayError, match="missing 'k'"):
            execute_header({"op": "verify", "params": {"method": "abstraction"}})

    def test_rejects_unknown_op(self):
        with pytest.raises(ReplayError, match="cannot replay op"):
            execute_header({"op": "mystery", "params": {"k": 4}})

    def test_rejects_bitlevel_method(self):
        with pytest.raises(ReplayError, match="abstraction"):
            execute_header({"op": "verify", "params": {"k": 4, "method": "sat"}})

    def test_rejects_while_recording_active(self, tmp_path):
        redtrace.start_recording(
            path=str(tmp_path / "t.redtrace"), op="verify", params={}
        )
        try:
            with pytest.raises(ReplayError, match="active"):
                execute_header(
                    {"op": "verify", "params": {"k": 4, "method": "abstraction"}}
                )
        finally:
            redtrace.stop_recording()

    def test_replay_file_end_counters_match(self, recorded):
        recorded_events, fresh = replay_file(recorded)
        assert recorded_events[-1]["ev"] == fresh[-1]["ev"] == "end"
        assert recorded_events[-1]["emitted"] == fresh[-1]["emitted"]

    def test_netlist_sha256_is_stable(self):
        assert netlist_sha256("abc") == netlist_sha256("abc")
        assert netlist_sha256("abc") != netlist_sha256("abd")
