"""Manifest parsing: defaults, path resolution, validation errors."""

import json

import pytest

from repro.jobs import ManifestError, load_manifest, manifest_from_dict


def test_defaults_merge_and_id_assignment(tmp_path):
    path = tmp_path / "m.json"
    path.write_text(
        json.dumps(
            {
                "defaults": {"k": 8, "timeout": 42, "retries": 3},
                "jobs": [
                    {"type": "verify", "spec": "a.v", "impl": "b.v"},
                    {"id": "named", "type": "abstract", "netlist": "a.v", "k": 4},
                ],
            }
        )
    )
    manifest = load_manifest(str(path))
    assert len(manifest) == 2
    first, second = manifest.jobs
    assert first.id == "job000"
    assert first.params["k"] == 8
    assert first.timeout == 42.0
    assert first.retries == 3
    assert second.id == "named"
    assert second.params["k"] == 4  # job field wins over default


def test_relative_paths_resolve_against_manifest_dir(tmp_path):
    sub = tmp_path / "nested"
    sub.mkdir()
    path = sub / "m.json"
    path.write_text(
        json.dumps(
            {"jobs": [{"type": "verify", "spec": "s.v", "impl": "/abs/i.v", "k": 4}]}
        )
    )
    manifest = load_manifest(str(path))
    job = manifest.jobs[0]
    assert job.params["spec"] == str(sub / "s.v")
    assert job.params["impl"] == "/abs/i.v"


def test_shared_defaults_do_not_poison_other_types():
    # A field like "k" is meaningless for sleep jobs; the default must not
    # trip their validation.
    manifest = manifest_from_dict(
        {
            "defaults": {"k": 8, "case2": "groebner"},
            "jobs": [
                {"type": "sleep", "seconds": 0.1},
                {"type": "abstract", "netlist": "a.v"},
            ],
        }
    )
    assert "k" not in manifest.jobs[0].params
    assert manifest.jobs[1].params["case2"] == "groebner"


@pytest.mark.parametrize(
    "jobs, fragment",
    [
        ([{"type": "nope"}], "unknown type"),
        ([{"type": "verify", "spec": "a.v", "k": 4}], "missing required field 'impl'"),
        ([{"type": "abstract", "netlist": "a.v", "k": 4, "bogus": 1}], "unknown field"),
        (
            [
                {"id": "x", "type": "sleep", "seconds": 1},
                {"id": "x", "type": "sleep", "seconds": 1},
            ],
            "duplicate job id",
        ),
        ([], "non-empty"),
    ],
)
def test_validation_errors(jobs, fragment):
    with pytest.raises(ManifestError, match=fragment):
        manifest_from_dict({"jobs": jobs})


def test_missing_file_and_bad_json(tmp_path):
    with pytest.raises(ManifestError, match="not found"):
        load_manifest(str(tmp_path / "absent.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("{")
    with pytest.raises(ManifestError, match="not valid JSON"):
        load_manifest(str(bad))
