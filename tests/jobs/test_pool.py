"""Unit tests for the fork pool behind cone-sliced parallel abstraction."""

import os
import time

import pytest

from repro import obs
from repro.gf import GF2m, logtables
from repro.jobs import PoolError, run_pool


def double(index):
    return index * 2, {"tag": index}


def slow(index):
    time.sleep(5.0)
    return index, {}


def napper(index):
    time.sleep(1.0)
    return index, {}


def hard_crash(index):
    os._exit(1)


def soft_fail(index):
    raise RuntimeError("coefficient invariant violated")


class TestRunPool:
    def test_basic_map(self):
        results = run_pool(double, range(6), workers=2)
        assert len(results) == 6
        by_index = {r.index: r for r in results}
        assert sorted(by_index) == list(range(6))
        for index, result in by_index.items():
            assert result.payload == index * 2
            assert result.stats["tag"] == index
            assert result.stats["seconds"] >= 0.0
            assert result.stats["pid"] > 0

    def test_dispatch_order_is_caller_controlled(self):
        heavy_first = [5, 4, 3, 2, 1, 0]
        results = run_pool(double, heavy_first, workers=1)
        assert {r.index for r in results} == set(heavy_first)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            run_pool(double, [0], workers=0)

    def test_empty_map(self):
        assert run_pool(double, [], workers=2) == []


class TestWarmTables:
    def test_warm_workers_never_rebuild(self):
        field = GF2m(8)

        def use_field(index):
            logtables.log_tables(field.k, field.modulus)
            return index, {}

        results = run_pool(
            use_field, range(4), workers=2, field_key=(field.k, field.modulus)
        )
        assert all(r.stats["table_rebuilds"] == 0 for r in results)

    def test_cold_worker_rebuild_is_reported(self):
        # A field the initializer did NOT warm and the parent has never
        # built: evict it so the forked children cannot inherit it either.
        field = GF2m(11)
        logtables._log_cache.pop((field.k, field.modulus), None)

        def use_cold_field(index):
            logtables.log_tables(field.k, field.modulus)
            return index, {}

        results = run_pool(use_cold_field, range(2), workers=1, field_key=None)
        assert all(r.stats["table_rebuilds"] >= 1 for r in results)


class TestFailureContainment:
    def test_timeout_raises_pool_error(self):
        with pytest.raises(PoolError, match="TimeoutError"):
            run_pool(slow, range(2), workers=2, timeout=0.2, retries=0)

    def test_crashed_pool_retried_then_raises(self):
        started = time.perf_counter()
        with pytest.raises(PoolError, match="attempt"):
            run_pool(hard_crash, range(2), workers=1, retries=1)
        # Two fresh-pool attempts, both fast hard-crashes.
        assert time.perf_counter() - started < 30.0

    def test_task_exception_wrapped_in_pool_error(self):
        # A deterministic exception raised by fn itself must reach the
        # caller as PoolError (so serial fallbacks engage) and must NOT
        # burn fresh-pool retries — the "task failed" message proves the
        # wrap happened before the retry loop's "after N attempt(s)" path.
        with pytest.raises(
            PoolError, match=r"task failed: RuntimeError: coefficient"
        ):
            run_pool(soft_fail, range(2), workers=1, retries=3)

    def test_timeout_terminates_inflight_workers(self):
        import multiprocessing

        from repro.jobs.plane import reset_plane

        # Start from an empty plane so every child alive during the map is
        # one of the two workers stuck in a 5 s `slow` task. Idle plane
        # workers are *supposed* to persist; busy ones computing results
        # nobody will read are not.
        reset_plane()
        with pytest.raises(PoolError, match="TimeoutError"):
            run_pool(slow, range(2), workers=2, timeout=0.3, retries=0)
        deadline = time.monotonic() + 3.0
        while time.monotonic() < deadline:
            if not any(p.is_alive() for p in multiprocessing.active_children()):
                break
            time.sleep(0.05)
        assert not any(p.is_alive() for p in multiprocessing.active_children())


class TestThreadSafety:
    def test_concurrent_maps_are_correct(self):
        # The legacy fork pool serialised concurrent maps on its _CTX
        # module lock; the plane runs them on disjoint workers. Either
        # way, interleaved maps must never see each other's context.
        import threading

        errors = []

        def one_map():
            try:
                results = run_pool(double, range(4), workers=2)
                assert {r.payload for r in results} == {0, 2, 4, 6}
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=one_map) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors

    def test_concurrent_maps_overlap_in_time(self):
        # Regression for the module-lock removal: two threads each mapping
        # a 1 s sleep must *overlap* on the plane. A schedule serialised on
        # a module lock needs >= 2 s wall; disjoint workers need ~1 s.
        import threading

        errors = []
        barrier = threading.Barrier(2)

        def one_map():
            try:
                barrier.wait(timeout=10)
                results = run_pool(napper, [0], workers=1)
                assert [r.payload for r in results] == [0]
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=one_map) for _ in range(2)]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        wall = time.monotonic() - started
        assert not errors
        assert wall < 1.9, f"concurrent maps serialised: {wall:.2f}s wall"


class TestTracing:
    def test_spans_ship_back_when_parent_traces(self):
        def traced(index):
            with obs.span("cone_task", index=index):
                pass
            return index, {}

        collector = obs.enable(obs.TraceCollector())
        try:
            results = run_pool(traced, range(2), workers=2)
        finally:
            obs.disable()
        del collector
        for result in results:
            assert result.spans is not None
            assert [s["name"] for s in result.spans] == ["cone_task"]

    def test_no_spans_without_tracing(self):
        assert obs.active_collector() is None
        results = run_pool(double, range(2), workers=1)
        assert all(r.spans is None for r in results)
