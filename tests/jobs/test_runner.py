"""Worker-pool engine: parallel completion, deadlines, crash retries, logs."""

import json
import time

from repro.jobs import load_manifest, run_batch


def _results_by_id(report):
    return {result["id"]: result for result in report.results}


class TestHappyPath:
    def test_verify_batch_completes_with_phases(self, write_manifest, tmp_path):
        manifest = load_manifest(
            write_manifest(
                [
                    {
                        "id": "equiv",
                        "type": "verify",
                        "spec": "mastrovito_4.v",
                        "impl": "montgomery_4.v",
                        "k": 4,
                    },
                    {
                        "id": "self",
                        "type": "verify",
                        "spec": "mastrovito_4.v",
                        "impl": "mastrovito_4.v",
                        "k": 4,
                    },
                    {
                        "id": "abs",
                        "type": "abstract",
                        "netlist": "montgomery_4.v",
                        "k": 4,
                    },
                    {
                        "id": "spec",
                        "type": "check-spec",
                        "netlist": "mastrovito_4.v",
                        "spec_poly": "A*B",
                        "k": 4,
                    },
                ]
            )
        )
        report = run_batch(
            manifest, workers=2, cache_dir=str(tmp_path / "cache")
        )
        assert report.ok
        by_id = _results_by_id(report)
        assert by_id["equiv"]["verdict"] == "equivalent"
        assert by_id["self"]["verdict"] == "equivalent"
        assert by_id["spec"]["verdict"] == "equivalent"
        assert by_id["abs"]["terms"] == 1  # Z = A*B
        # Phase records cover the paper's pipeline on at least one cold job.
        cold = by_id["equiv"]["phases"]
        assert {"parse", "rato_setup", "spoly_reduction", "coeff_match"} <= set(cold)
        assert cold["spoly_reduction"] > 0
        assert by_id["equiv"]["peak_rss_mb"] > 0
        # Per-job algebraic work counters ride along with the record.
        assert by_id["equiv"]["counters"].get("abstraction.substitutions", 0) > 0

    def test_buggy_impl_gets_counterexample(self, netlist_dir, write_manifest):
        from repro.circuits import read_verilog, write_verilog
        from repro.circuits.mutate import substitute_gate_type

        circuit = read_verilog(str(netlist_dir / "mastrovito_4.v"))
        net = next(g.output for g in circuit.gates if g.gate_type.value == "and")
        mutant, _ = substitute_gate_type(circuit, net)
        write_verilog(mutant, str(netlist_dir / "buggy_4.v"))
        manifest = load_manifest(
            write_manifest(
                [
                    {
                        "id": "buggy",
                        "type": "verify",
                        "spec": "mastrovito_4.v",
                        "impl": "buggy_4.v",
                        "k": 4,
                        "seed": 7,
                    }
                ]
            )
        )
        report = run_batch(manifest, workers=1)
        (result,) = report.results
        assert result["status"] == "ok"
        assert result["verdict"] == "not_equivalent"
        assert result["counterexample"] is not None

    def test_jobs_param_survives_daemonic_worker(self, write_manifest, monkeypatch):
        # Batch workers are daemonic and cannot fork a cone pool; a verify
        # job asking for parallel abstraction (jobs>=2 on a circuit above
        # the parallel threshold) must fall back to serial inside the
        # worker instead of dying on pool startup.
        monkeypatch.setenv("REPRO_PARALLEL_MIN_GATES", "1")
        manifest = load_manifest(
            write_manifest(
                [
                    {
                        "id": "par",
                        "type": "verify",
                        "spec": "mastrovito_4.v",
                        "impl": "montgomery_4.v",
                        "k": 4,
                        "jobs": 2,
                    }
                ]
            )
        )
        report = run_batch(manifest, workers=1)
        assert report.ok
        (result,) = report.results
        assert result["status"] == "ok"
        assert result["verdict"] == "equivalent"


class TestDeadlines:
    def test_stuck_job_is_killed_siblings_complete(self, write_manifest, tmp_path):
        manifest = load_manifest(
            write_manifest(
                [
                    {"id": "stuck", "type": "sleep", "seconds": 60, "timeout": 1},
                    {
                        "id": "fine",
                        "type": "verify",
                        "spec": "mastrovito_4.v",
                        "impl": "montgomery_4.v",
                        "k": 4,
                    },
                    {"id": "quick", "type": "sleep", "seconds": 0.05},
                ]
            )
        )
        start = time.monotonic()
        report = run_batch(manifest, workers=3, default_timeout=30.0)
        wall = time.monotonic() - start
        by_id = _results_by_id(report)
        assert by_id["stuck"]["status"] == "timeout"
        assert by_id["fine"]["status"] == "ok"
        assert by_id["quick"]["status"] == "ok"
        assert not report.ok
        # The 60 s sleeper must die at its 1 s deadline, not run to completion.
        assert wall < 30, f"stuck job was not killed at its deadline ({wall:.1f}s)"
        assert by_id["stuck"]["seconds"] < 15

    def test_cli_timeout_applies_as_default(self, write_manifest):
        manifest = load_manifest(
            write_manifest([{"id": "s", "type": "sleep", "seconds": 60}])
        )
        report = run_batch(manifest, workers=1, default_timeout=0.5)
        assert report.results[0]["status"] == "timeout"


class TestCrashRetry:
    def test_crash_then_success_accounts_attempts(self, write_manifest):
        manifest = load_manifest(
            write_manifest(
                [{"id": "flaky", "type": "crash", "fail_attempts": 1, "retries": 2}]
            )
        )
        report = run_batch(manifest, workers=1)
        (result,) = report.results
        assert result["status"] == "ok"
        assert result["attempt"] == 2
        assert result["survived_attempt"] == 2

    def test_persistent_crash_fails_after_budget(self, write_manifest):
        manifest = load_manifest(
            write_manifest([{"id": "dead", "type": "crash", "retries": 1}])
        )
        report = run_batch(manifest, workers=1)
        (result,) = report.results
        assert result["status"] == "crashed"
        assert result["attempt"] == 2  # initial try + one retry
        assert "exit code" in result["error"]
        assert not report.ok

    def test_crash_does_not_abort_siblings(self, write_manifest):
        manifest = load_manifest(
            write_manifest(
                [
                    {"id": "dead", "type": "crash", "retries": 0},
                    {"id": "quick", "type": "sleep", "seconds": 0.05},
                ]
            )
        )
        report = run_batch(manifest, workers=2)
        by_id = _results_by_id(report)
        assert by_id["dead"]["status"] == "crashed"
        assert by_id["quick"]["status"] == "ok"


class TestCacheIntegration:
    def test_second_run_hits_and_skips_reduction(self, write_manifest, tmp_path):
        jobs = [
            {
                "id": f"pair{i}",
                "type": "verify",
                "spec": "mastrovito_4.v",
                "impl": "montgomery_4.v",
                "k": 4,
            }
            for i in range(3)
        ]
        manifest = load_manifest(write_manifest(jobs))
        cache_dir = str(tmp_path / "cache")

        cold = run_batch(manifest, workers=1, cache_dir=cache_dir)
        assert cold.ok
        # 3 jobs x 2 sides, but only 2 distinct netlists: 2 misses, 4 hits.
        assert cold.cache_misses == 2
        assert cold.cache_hits == 4

        warm = run_batch(manifest, workers=2, cache_dir=cache_dir)
        assert warm.ok
        assert warm.cache_misses == 0
        assert warm.cache_hits == 6
        for result in warm.results:
            # Gröbner-basis work is skipped entirely on a warm cache; the
            # phases still appear — as explicit zeros — so downstream
            # aggregation never KeyErrors and averages keep their denominators.
            assert result["phases"]["rato_setup"] == 0.0
            assert result["phases"]["spoly_reduction"] == 0.0
            assert result["phases"]["coeff_match"] > 0
            assert result["spec_cache_hit"] is True
            assert result["impl_cache_hit"] is True


class TestRunLog:
    def test_jsonl_records_start_jobs_summary(self, write_manifest, tmp_path):
        manifest = load_manifest(
            write_manifest(
                [
                    {
                        "id": "v",
                        "type": "verify",
                        "spec": "mastrovito_4.v",
                        "impl": "montgomery_4.v",
                        "k": 4,
                    },
                    {"id": "flaky", "type": "crash", "fail_attempts": 1, "retries": 1},
                ]
            )
        )
        log_path = tmp_path / "runs" / "run.jsonl"
        report = run_batch(
            manifest,
            workers=2,
            cache_dir=str(tmp_path / "cache"),
            log_path=str(log_path),
        )
        assert report.log_path == str(log_path)
        records = [json.loads(line) for line in log_path.read_text().splitlines()]
        events = [record["event"] for record in records]
        assert events[0] == "start"
        assert events[-1] == "summary"
        assert events.count("job") == 2
        assert "retry" in events
        summary = records[-1]
        assert summary["status_counts"] == {"ok": 2}
        assert summary["cache_hits"] + summary["cache_misses"] == 2
        job_records = [r for r in records if r["event"] == "job"]
        assert all("seconds" in r for r in job_records)


class _StubModel:
    """Minimal cost-model stand-in: prices (op, k) from a fixed table."""

    def __init__(self, table):
        self.table = table

    def predict(self, op, k=None, gates=None, cones=None, phase="total"):
        return self.table.get((op, k))


class TestCostModelOrdering:
    def test_order_pending_shortest_predicted_last_for_tail_pop(self):
        from repro.jobs.runner import _order_pending

        model = _StubModel(
            {("verify", 64): 9.0, ("verify", 16): 1.0, ("abstract", 16): 0.5}
        )
        pending = [
            ({"id": "slow", "type": "verify", "params": {"k": 64}}, 1, None, 1),
            ({"id": "fast", "type": "verify", "params": {"k": 16}}, 1, None, 1),
            ({"id": "faster", "type": "abstract", "params": {"k": 16}}, 1, None, 1),
            ({"id": "unknown", "type": "verify", "params": {"k": 128}}, 1, None, 1),
        ]
        ordered, predicted = _order_pending(pending, model)
        # dispatch pops from the tail: smallest prediction first, unpriced last
        dispatch = [entry[0]["id"] for entry in reversed(ordered)]
        assert dispatch == ["faster", "fast", "slow", "unknown"]
        assert predicted == {"slow": 9.0, "fast": 1.0, "faster": 0.5}

    def test_unpriced_ties_keep_manifest_order(self):
        from repro.jobs.runner import _order_pending

        model = _StubModel({})
        pending = [
            ({"id": f"j{i}", "type": "verify", "params": {}}, 1, None, 1)
            for i in range(4)
        ]
        ordered, predicted = _order_pending(pending, model)
        assert [e[0]["id"] for e in reversed(ordered)] == ["j0", "j1", "j2", "j3"]
        assert predicted == {}

    def test_batch_logs_predicted_seconds_and_order(
        self, write_manifest, tmp_path
    ):
        from repro.obs.costmodel import CostModel

        manifest = load_manifest(
            write_manifest(
                [
                    {
                        "id": "v",
                        "type": "verify",
                        "spec": "mastrovito_4.v",
                        "impl": "montgomery_4.v",
                        "k": 4,
                    },
                    {"id": "a", "type": "abstract", "netlist": "mastrovito_4.v", "k": 4},
                ]
            )
        )
        model = CostModel.fit(
            [
                {"op": "verify", "seconds": 2.0, "k": 4},
                {"op": "abstract", "seconds": 0.5, "k": 4},
            ]
        )
        log_path = tmp_path / "run.jsonl"
        report = run_batch(
            manifest, workers=1, log_path=str(log_path), cost_model=model
        )
        assert report.ok
        records = [json.loads(line) for line in log_path.read_text().splitlines()]
        start = records[0]
        assert start["order"] == "shortest-predicted-first"
        job_records = [r for r in records if r["event"] == "job"]
        # abstract is predicted cheaper, so it dispatches (and finishes) first
        assert [r["id"] for r in job_records] == ["a", "v"]
        assert job_records[0]["predicted_seconds"] == 0.5
        assert job_records[1]["predicted_seconds"] == 2.0

    def test_job_records_carry_feature_fields(self, write_manifest, tmp_path):
        manifest = load_manifest(
            write_manifest(
                [
                    {
                        "id": "v",
                        "type": "verify",
                        "spec": "mastrovito_4.v",
                        "impl": "montgomery_4.v",
                        "k": 4,
                    }
                ]
            )
        )
        log_path = tmp_path / "run.jsonl"
        run_batch(manifest, workers=1, log_path=str(log_path))
        job = next(
            json.loads(line)
            for line in log_path.read_text().splitlines()
            if json.loads(line).get("event") == "job"
        )
        assert job["k"] == 4
        assert job["gates"] > 0
        assert "cones" in job
