"""Shared fixtures for the batch-engine tests: tiny multiplier netlists."""

import json

import pytest

from repro.circuits import write_verilog
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier, montgomery_multiplier


@pytest.fixture()
def netlist_dir(tmp_path):
    """A directory holding mastrovito/montgomery netlists over F_16."""
    field = GF2m(4)
    write_verilog(mastrovito_multiplier(field), str(tmp_path / "mastrovito_4.v"))
    write_verilog(
        montgomery_multiplier(field).flatten(), str(tmp_path / "montgomery_4.v")
    )
    return tmp_path


@pytest.fixture()
def write_manifest(netlist_dir):
    """Write a manifest next to the netlists and return its path."""

    def _write(jobs, defaults=None, name="manifest.json"):
        path = netlist_dir / name
        document = {"jobs": jobs}
        if defaults:
            document["defaults"] = defaults
        path.write_text(json.dumps(document, indent=2))
        return str(path)

    return _write
