"""Batch-executor op dispatch: mixed manifests and unknown-op hygiene."""

from repro.jobs import load_manifest, run_batch
from repro.jobs.manifest import BatchJob, BatchManifest


def _results_by_id(report):
    return {result["id"]: result for result in report.results}


class TestMixedManifest:
    def test_verify_abstract_and_reveng_run_end_to_end(
        self, write_manifest, tmp_path
    ):
        """One manifest mixing all op families completes on shared workers."""
        manifest = load_manifest(
            write_manifest(
                [
                    {
                        "id": "equiv",
                        "type": "verify",
                        "spec": "mastrovito_4.v",
                        "impl": "montgomery_4.v",
                        "k": 4,
                    },
                    {
                        "id": "abs",
                        "type": "abstract",
                        "netlist": "mastrovito_4.v",
                        "k": 4,
                    },
                    {
                        "id": "rec",
                        "type": "reveng",
                        "netlist": "mastrovito_4.v",
                        "mode": "poly",
                    },
                    {
                        "id": "ident",
                        "type": "reveng",
                        "netlist": "montgomery_4.v",
                        "mode": "func",
                        "k": 4,
                    },
                ]
            )
        )
        report = run_batch(manifest, workers=2, cache_dir=str(tmp_path / "cache"))
        assert report.ok
        by_id = _results_by_id(report)
        assert by_id["equiv"]["verdict"] == "equivalent"
        assert by_id["abs"]["terms"] == 1
        assert by_id["rec"]["mode"] == "poly"
        assert by_id["rec"]["recovered"] == "0x13"  # x^4 + x + 1
        assert by_id["ident"]["mode"] == "func"
        assert by_id["ident"]["identified"] == "mul"

    def test_reveng_defaults_apply(self, write_manifest, tmp_path):
        manifest = load_manifest(
            write_manifest(
                [{"id": "rec", "type": "reveng", "netlist": "mastrovito_4.v"}],
                defaults={"mode": "poly"},
            )
        )
        report = run_batch(manifest, workers=1, cache_dir=str(tmp_path / "cache"))
        assert report.ok
        assert _results_by_id(report)["rec"]["candidates_tried"] == 1


class TestDispatchHygiene:
    def test_unknown_op_fails_cleanly(self, netlist_dir):
        """An unknown op yields a per-job failed record, not a traceback,
        and does not take sibling jobs down with it."""
        manifest = BatchManifest(
            jobs=[
                BatchJob(id="bogus", type="frobnicate", params={}),
                BatchJob(
                    id="rec",
                    type="reveng",
                    params={
                        "netlist": str(netlist_dir / "mastrovito_4.v"),
                        "mode": "poly",
                    },
                ),
            ]
        )
        report = run_batch(manifest, workers=2)
        assert not report.ok
        by_id = _results_by_id(report)
        assert by_id["bogus"]["status"] == "failed"
        assert "frobnicate" in by_id["bogus"]["error"]
        assert "Traceback" not in by_id["bogus"]["error"]
        assert by_id["rec"]["status"] == "ok"
        assert by_id["rec"]["recovered"] == "0x13"

    def test_reveng_func_without_k_fails_cleanly(self, netlist_dir):
        manifest = BatchManifest(
            jobs=[
                BatchJob(
                    id="ident",
                    type="reveng",
                    params={
                        "netlist": str(netlist_dir / "mastrovito_4.v"),
                        "mode": "func",
                    },
                ),
            ]
        )
        report = run_batch(manifest, workers=1)
        (result,) = report.results
        assert result["status"] == "failed"
        assert "'k'" in result["error"]

    def test_reveng_bad_mode_fails_cleanly(self, netlist_dir):
        manifest = BatchManifest(
            jobs=[
                BatchJob(
                    id="weird",
                    type="reveng",
                    params={
                        "netlist": str(netlist_dir / "mastrovito_4.v"),
                        "mode": "sideways",
                    },
                ),
            ]
        )
        report = run_batch(manifest, workers=1)
        (result,) = report.results
        assert result["status"] == "failed"
        assert "sideways" in result["error"]
