"""Fault-injection and lifecycle tests for the resident worker plane."""

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.jobs.plane import (
    PoolError,
    WorkerPlane,
    get_plane,
    pack_context,
    reset_plane,
)


def echo(context, index):
    return (context, index), {"tag": index}


def nap(context, index):
    time.sleep(context)
    return index, {}


def report_pid(context, index):
    return os.getpid(), {}


def always_crash(context, index):
    os.kill(os.getpid(), signal.SIGKILL)


def crash_once(context, index):
    # context names a flag file: crash hard the first time each worker
    # sees it, succeed on the retry (the respawned worker starts fresh but
    # the flag file persists across the respawn).
    flag = f"{context}.{index}"
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("seen")
        os.kill(os.getpid(), signal.SIGKILL)
    return index * 10, {}


@pytest.fixture
def plane():
    fresh = WorkerPlane()
    yield fresh
    fresh.shutdown()


class TestPlaneLifecycle:
    def test_workers_survive_across_maps(self, plane):
        first = plane.map(report_pid, None, [0, 1], workers=2)
        second = plane.map(report_pid, None, [0, 1], workers=2)
        assert {r.payload for r in first} == {r.payload for r in second}
        assert plane.workers_alive >= 2

    def test_context_published_once_per_circuit(self, plane):
        packed = pack_context(echo, "ctx-a", tracing=False)
        plane.map(echo, "ctx-a", [0], workers=1, packed=packed)
        epoch_before = plane._ctx[1]
        plane.map(echo, "ctx-a", [1], workers=1, packed=packed)
        assert plane._ctx[1] == epoch_before  # same blob, same epoch
        plane.map(echo, "ctx-b", [0], workers=1)
        assert plane._ctx[1] != epoch_before  # new circuit, new epoch

    def test_shutdown_drains_under_load(self, plane):
        # Drain while a map is mid-flight: shutdown must wait for the
        # checked-out workers, and the map must complete normally.
        results = []

        def mapper():
            results.extend(plane.map(nap, 0.4, [0, 1], workers=2))

        thread = threading.Thread(target=mapper)
        thread.start()
        time.sleep(0.15)  # let the map check its workers out
        plane.shutdown(timeout=10.0)
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert {r.payload for r in results} == {0, 1}
        assert plane.workers_alive == 0

    def test_map_after_shutdown_raises(self, plane):
        plane.map(echo, "ctx", [0], workers=1)
        plane.shutdown()
        with pytest.raises(PoolError):
            plane.map(echo, "ctx", [1], workers=1)


class TestPlaneCrashContainment:
    def test_sigkilled_worker_respawned_and_task_retried(self, plane, tmp_path):
        flag = str(tmp_path / "crash_once")
        results = plane.map(
            crash_once, flag, [0, 1, 2], workers=2, retries=1, timeout=30.0
        )
        assert sorted(r.index for r in results) == [0, 1, 2]
        assert {r.index: r.payload for r in results} == {0: 0, 1: 10, 2: 20}

    def test_crash_budget_exhausted_raises(self, plane):
        with pytest.raises(PoolError, match="attempt"):
            plane.map(always_crash, None, [0], workers=1, retries=1)

    def test_all_workers_dead_with_queue_raises_not_hangs(self, plane):
        started = time.monotonic()
        with pytest.raises(PoolError):
            plane.map(
                always_crash,
                None,
                list(range(4)),
                workers=2,
                retries=0,
                timeout=30.0,
            )
        assert time.monotonic() - started < 25.0


class TestDaemonicFallback:
    def test_daemonic_child_gets_pool_error(self):
        # A daemonic process (a plane worker, a batch-runner job) cannot
        # fork children; asking for a plane must raise PoolError so callers
        # fall back to serial — same contract the fork pool's failure had.
        def probe(queue):
            try:
                get_plane()
                queue.put("plane")
            except PoolError:
                queue.put("poolerror")

        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        proc = ctx.Process(target=probe, args=(queue,), daemon=True)
        proc.start()
        proc.join(timeout=10)
        assert queue.get(timeout=5) == "poolerror"

    def test_daemonic_parity_with_serial(self):
        # End to end: extract_canonical inside a daemonic process silently
        # runs serial and produces the same polynomial.
        from repro.core.abstraction import extract_canonical
        from repro.gf import GF2m
        from repro.synth.mastrovito import mastrovito_multiplier

        field = GF2m(8)
        circuit = mastrovito_multiplier(field)
        parent = extract_canonical(circuit, field)

        def probe(queue):
            result = extract_canonical(circuit, field, jobs=2)
            queue.put(str(result.polynomial))

        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        proc = ctx.Process(target=probe, args=(queue,), daemon=True)
        proc.start()
        proc.join(timeout=60)
        assert queue.get(timeout=5) == str(parent.polynomial)


class TestForkHygiene:
    def test_global_plane_not_reused_across_fork(self):
        reset_plane()
        plane = get_plane()
        plane.map(echo, "ctx", [0], workers=1)

        def probe(queue):
            child_plane = get_plane()
            queue.put(child_plane is not plane and child_plane._pid == os.getpid())

        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        proc = ctx.Process(target=probe, args=(queue,))
        proc.start()
        proc.join(timeout=10)
        assert queue.get(timeout=5) is True
        reset_plane()
