"""Content-addressed canonical-polynomial cache: keys, hits, invalidation."""

import json

import pytest

from repro.circuits import read_verilog, write_verilog
from repro.circuits.mutate import substitute_gate_type
from repro.core import abstract_circuit
from repro.gf import GF2m
import repro.jobs.cache as cache_module
from repro.jobs import (
    CanonicalPolyCache,
    canonical_cache_key,
    locking_available,
    normalize_circuit_text,
    polynomial_payload,
    rehydrate_polynomial,
)
from repro.synth import mastrovito_multiplier


@pytest.fixture(scope="module")
def field():
    return GF2m(4)


@pytest.fixture(scope="module")
def circuit(field):
    return mastrovito_multiplier(field)


class TestCacheKey:
    def test_key_survives_serialization_roundtrip(self, circuit, field, tmp_path):
        """Formatting/comment differences in the file must not change the key."""
        path = tmp_path / "c.v"
        write_verilog(circuit, str(path))
        reloaded = read_verilog(str(path))
        assert canonical_cache_key(reloaded, field) == canonical_cache_key(
            circuit, field
        )

    def test_key_ignores_circuit_name(self, circuit, field):
        renamed = circuit.clone("some_other_name")
        assert canonical_cache_key(renamed, field) == canonical_cache_key(
            circuit, field
        )

    def test_key_changes_on_netlist_edit(self, circuit, field):
        mutant, _ = substitute_gate_type(
            circuit, circuit.gates[0].output
        )
        assert canonical_cache_key(mutant, field) != canonical_cache_key(
            circuit, field
        )

    def test_key_depends_on_field_modulus(self, circuit):
        # F_16 has several irreducible degree-4 polynomials.
        f_a = GF2m(4, modulus=0b10011)
        f_b = GF2m(4, modulus=0b11001)
        assert canonical_cache_key(circuit, f_a) != canonical_cache_key(
            circuit, f_b
        )

    def test_key_depends_on_case2_mode(self, circuit, field):
        assert canonical_cache_key(
            circuit, field, case2="linearized"
        ) != canonical_cache_key(circuit, field, case2="groebner")

    def test_normalized_text_is_order_insensitive(self, circuit, field):
        text = normalize_circuit_text(circuit)
        assert "gate" in text and "word_in A" in text


class TestPayloadRoundtrip:
    def test_polynomial_rehydrates_identically(self, circuit, field):
        result = abstract_circuit(circuit, field)
        payload = polynomial_payload(result)
        payload = json.loads(json.dumps(payload))  # force a JSON round-trip
        rebuilt = rehydrate_polynomial(payload, field)
        assert rebuilt == result.polynomial
        assert payload["output_word"] == result.output_word


class TestCacheStore:
    def test_miss_then_hit(self, circuit, field, tmp_path):
        cache = CanonicalPolyCache(tmp_path / "cache")
        key = canonical_cache_key(circuit, field)
        assert cache.get(key) is None

        calls = []

        def compute():
            calls.append(1)
            return polynomial_payload(abstract_circuit(circuit, field))

        payload1, hit1 = cache.get_or_compute(key, compute)
        payload2, hit2 = cache.get_or_compute(key, compute)
        assert (hit1, hit2) == (False, True)
        assert len(calls) == 1
        assert payload1["terms"] == payload2["terms"]

    def test_edited_netlist_misses(self, circuit, field, tmp_path):
        cache = CanonicalPolyCache(tmp_path / "cache")
        cache.put(
            canonical_cache_key(circuit, field),
            polynomial_payload(abstract_circuit(circuit, field)),
        )
        mutant, _ = substitute_gate_type(circuit, circuit.gates[0].output)
        assert cache.get(canonical_cache_key(mutant, field)) is None

    def test_stats_and_clear(self, circuit, field, tmp_path):
        cache = CanonicalPolyCache(tmp_path / "cache")
        cache.put(
            canonical_cache_key(circuit, field),
            polynomial_payload(abstract_circuit(circuit, field)),
        )
        cache.record(hits=3, misses=1)
        cache.record(hits=2)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["hits"] == 5
        assert stats["misses"] == 1

        assert cache.clear() == 1
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["hits"] == 0

    def test_corrupt_entry_is_a_miss(self, circuit, field, tmp_path):
        cache = CanonicalPolyCache(tmp_path / "cache")
        key = canonical_cache_key(circuit, field)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_locked_mode_creates_lock_files(self, circuit, field, tmp_path):
        assert locking_available()  # POSIX box: fcntl must be present
        cache = CanonicalPolyCache(tmp_path / "cache")
        key = canonical_cache_key(circuit, field)
        cache.get_or_compute(key, lambda: {"terms": []})
        assert (cache.locks / f"{key}.lock").exists()


class TestDegradedLockFreeMode:
    """The cache without ``fcntl`` (exotic platforms): weaker but correct.

    Exactly-once becomes at-least-once for concurrent racers, but every
    caller must still get a correct value, reads must never be torn, and
    no lock files may be created.
    """

    @pytest.fixture()
    def degraded(self, monkeypatch):
        monkeypatch.setattr(cache_module, "fcntl", None)
        assert not locking_available()

    def test_miss_then_hit_still_works(self, degraded, circuit, field, tmp_path):
        cache = CanonicalPolyCache(tmp_path / "cache")
        key = canonical_cache_key(circuit, field)
        calls = []

        def compute():
            calls.append(1)
            return polynomial_payload(abstract_circuit(circuit, field))

        payload1, hit1 = cache.get_or_compute(key, compute)
        payload2, hit2 = cache.get_or_compute(key, compute)
        assert (hit1, hit2) == (False, True)
        assert len(calls) == 1
        assert payload1["terms"] == payload2["terms"]

    def test_no_lock_files_are_created(self, degraded, circuit, field, tmp_path):
        cache = CanonicalPolyCache(tmp_path / "cache")
        cache.get_or_compute(
            canonical_cache_key(circuit, field), lambda: {"terms": []}
        )
        cache.record(hits=1)
        assert not cache.locks.exists()
        assert not (cache.root / "stats.lock").exists()

    def test_concurrent_racers_compute_at_least_once_consistently(
        self, degraded, tmp_path
    ):
        """Racing threads may each compute, but all reads are complete docs."""
        import threading

        cache = CanonicalPolyCache(tmp_path / "cache")
        key = "0" * 64
        barrier = threading.Barrier(4, timeout=10.0)
        calls = []
        results = []
        errors = []

        def compute():
            calls.append(threading.get_ident())
            return {"terms": [[[["A", 1]], 1]], "payload": "x" * 4096}

        def racer():
            try:
                barrier.wait()
                payload, _hit = cache.get_or_compute(key, compute)
                results.append(payload)
            except Exception as exc:  # pragma: no cover - the failure signal
                errors.append(exc)

        threads = [threading.Thread(target=racer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)

        assert not errors
        assert len(results) == 4
        assert 1 <= len(calls) <= 4  # at-least-once, not exactly-once
        # Every caller saw a complete, identical document — atomic rename
        # publishing means no torn reads even when writers race.
        for payload in results:
            assert payload["terms"] == [[[["A", 1]], 1]]
            assert payload["payload"] == "x" * 4096
        final, hit = cache.get_or_compute(key, compute)
        assert hit is True
        assert final["terms"] == [[[["A", 1]], 1]]

    def test_stats_counters_still_accumulate(self, degraded, tmp_path):
        cache = CanonicalPolyCache(tmp_path / "cache")
        cache.record(hits=2, misses=1)
        cache.record(hits=1)
        stats = cache.stats()
        assert (stats["hits"], stats["misses"]) == (3, 1)

    def test_executor_single_flight_restores_once_only(
        self, degraded, circuit, field, tmp_path
    ):
        """The service's in-process single-flight group compensates for the
        lost lock: threads racing through ``get_or_compute`` wrapped in
        ``SingleFlight.do`` compute exactly once even in degraded mode."""
        import threading

        from repro.service import SingleFlight

        cache = CanonicalPolyCache(tmp_path / "cache")
        key = "1" * 64
        group = SingleFlight()
        barrier = threading.Barrier(4, timeout=10.0)
        calls = []
        results = []

        def compute():
            calls.append(1)
            return {"terms": []}

        def racer():
            barrier.wait()
            (payload, _hit), _shared = group.do(
                key, lambda: cache.get_or_compute(key, compute)
            )
            results.append(payload)

        threads = [threading.Thread(target=racer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert len(calls) == 1  # exactly-once restored in-process
        assert len(results) == 4
