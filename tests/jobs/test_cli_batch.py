"""End-to-end CLI coverage: repro batch / repro cache / netlist sniffing."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def in_netlist_dir(netlist_dir, monkeypatch):
    monkeypatch.chdir(netlist_dir)
    return netlist_dir


def _manifest(netlist_dir, jobs):
    path = netlist_dir / "m.json"
    path.write_text(json.dumps({"jobs": jobs}))
    return str(path)


class TestBatchCommand:
    def test_end_to_end_with_cache_rerun(self, in_netlist_dir, capsys):
        manifest = _manifest(
            in_netlist_dir,
            [
                {
                    "id": "mont",
                    "type": "verify",
                    "spec": "mastrovito_4.v",
                    "impl": "montgomery_4.v",
                    "k": 4,
                },
                {"id": "abs", "type": "abstract", "netlist": "mastrovito_4.v", "k": 4},
            ],
        )
        rc = main(
            [
                "batch",
                manifest,
                "--jobs",
                "2",
                "--cache-dir",
                "cache",
                "--log",
                "run.jsonl",
                "--seed",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "mont" in out and "equivalent" in out
        assert "ok=2" in out
        assert (in_netlist_dir / "run.jsonl").exists()

        # Second run: every abstraction must come from the cache — via the
        # canonical key, since both runs had the prepass on.
        rc = main(["batch", manifest, "--jobs", "2", "--cache-dir", "cache"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "3 hit(s) [3 canonical-key, 0 raw-key], 0 miss(es)" in out

        rc = main(["cache", "stats", "--cache-dir", "cache"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "entries:   2" in out
        hits_line = next(l for l in out.splitlines() if l.startswith("hits:"))
        assert int(hits_line.split()[1]) >= 3

        rc = main(["cache", "clear", "--cache-dir", "cache"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cleared 2" in out

    def test_failing_job_sets_exit_code(self, in_netlist_dir, capsys):
        manifest = _manifest(
            in_netlist_dir,
            [{"id": "stuck", "type": "sleep", "seconds": 30, "timeout": 1}],
        )
        rc = main(["batch", manifest, "--no-cache"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "timeout" in out

    def test_bad_manifest_reports_cleanly(self, in_netlist_dir, capsys):
        bad = in_netlist_dir / "bad.json"
        bad.write_text(json.dumps({"jobs": [{"type": "wat"}]}))
        rc = main(["batch", str(bad)])
        err = capsys.readouterr().err
        assert rc == 2
        assert "error:" in err and "unknown type" in err


class TestNetlistSniffing:
    def test_verilog_content_with_odd_extension(self, in_netlist_dir, capsys):
        source = (in_netlist_dir / "mastrovito_4.v").read_text()
        (in_netlist_dir / "renamed.netlist").write_text(source)
        rc = main(["stats", "renamed.netlist"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "inputs:  8" in out

    def test_blif_content_with_odd_extension(self, in_netlist_dir, capsys):
        from repro.circuits import read_verilog, write_blif

        circuit = read_verilog(str(in_netlist_dir / "mastrovito_4.v"))
        write_blif(circuit, str(in_netlist_dir / "renamed.txt"))
        rc = main(["stats", "renamed.txt"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "inputs:  8" in out

    def test_unrecognizable_content_fails_clearly(self, in_netlist_dir, capsys):
        (in_netlist_dir / "junk.txt").write_text("this is not a netlist\n")
        rc = main(["stats", "junk.txt"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "cannot determine netlist format" in err

    def test_missing_file_fails_clearly(self, in_netlist_dir, capsys):
        rc = main(["stats", "absent.v"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "not found" in err
