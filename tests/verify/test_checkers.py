"""Unit tests for the SAT- and BDD-based equivalence baselines."""

import random

import pytest

from repro.circuits import random_mutation, simulate_words, substitute_gate_type
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier, montgomery_multiplier
from repro.verify import check_equivalence_bdd, check_equivalence_sat


@pytest.fixture(scope="module", params=[2, 3, 4])
def setup(request):
    k = request.param
    field = GF2m(k)
    spec = mastrovito_multiplier(field)
    impl = montgomery_multiplier(field).flatten()
    return field, spec, impl


class TestSatChecker:
    def test_equivalent_pair(self, setup):
        field, spec, impl = setup
        outcome = check_equivalence_sat(
            spec, impl, max_conflicts=500000, output_map={"G": "Z"}
        )
        assert outcome.equivalent
        assert outcome.method == "sat-miter"
        assert outcome.details["clauses"] > 0

    def test_buggy_pair_with_valid_counterexample(self, setup):
        field, spec, _ = setup
        buggy, _ = random_mutation(
            mastrovito_multiplier(field), random.Random(field.k)
        )
        outcome = check_equivalence_sat(spec, buggy, max_conflicts=500000)
        assert outcome.status == "not_equivalent"
        a, b = outcome.counterexample["A"], outcome.counterexample["B"]
        spec_z = simulate_words(spec, {"A": [a], "B": [b]})["Z"][0]
        bug_z = simulate_words(buggy, {"A": [a], "B": [b]})["Z"][0]
        assert spec_z != bug_z

    def test_budget_exhaustion_unknown(self):
        field = GF2m(6)
        spec = mastrovito_multiplier(field)
        impl = montgomery_multiplier(field).flatten()
        outcome = check_equivalence_sat(
            spec, impl, max_conflicts=10, output_map={"G": "Z"}
        )
        assert outcome.status == "unknown"
        assert not outcome.decided


class TestBddChecker:
    def test_equivalent_pair(self, setup):
        field, spec, impl = setup
        outcome = check_equivalence_bdd(
            spec, impl, max_nodes=2_000_000, output_map={"G": "Z"}
        )
        assert outcome.equivalent
        assert outcome.method == "bdd-miter"
        assert outcome.details["nodes"] > 0

    def test_buggy_pair_with_valid_counterexample(self, setup):
        field, spec, _ = setup
        buggy, _ = random_mutation(
            mastrovito_multiplier(field), random.Random(field.k + 100)
        )
        outcome = check_equivalence_bdd(spec, buggy, max_nodes=2_000_000)
        assert outcome.status == "not_equivalent"
        a, b = outcome.counterexample["A"], outcome.counterexample["B"]
        spec_z = simulate_words(spec, {"A": [a], "B": [b]})["Z"][0]
        bug_z = simulate_words(buggy, {"A": [a], "B": [b]})["Z"][0]
        assert spec_z != bug_z

    def test_node_budget_unknown(self):
        field = GF2m(8)
        spec = mastrovito_multiplier(field)
        impl = montgomery_multiplier(field).flatten()
        outcome = check_equivalence_bdd(
            spec, impl, max_nodes=500, output_map={"G": "Z"}
        )
        assert outcome.status == "unknown"

    def test_word_interface_mismatch_rejected(self, f4, f16):
        from repro.synth import gf_adder

        with pytest.raises(ValueError):
            check_equivalence_bdd(gf_adder(f4), gf_adder(f16))


class TestSingleGateBugsAlwaysCaught:
    """Sweep every gate of a small multiplier with a substitution error."""

    def test_all_gate_substitutions_detected(self):
        field = GF2m(2)
        spec = mastrovito_multiplier(field)
        for gate in spec.gates:
            if gate.gate_type.value not in ("and", "xor"):
                continue
            buggy, _ = substitute_gate_type(spec, gate.output)
            sat = check_equivalence_sat(spec, buggy, max_conflicts=100000)
            bdd = check_equivalence_bdd(spec, buggy, max_nodes=100000)
            assert sat.status == "not_equivalent", gate.output
            assert bdd.status == "not_equivalent", gate.output
