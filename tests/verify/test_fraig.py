"""Unit tests for the fraiging-based equivalence checker."""

import random

import pytest

from repro.circuits import random_mutation, simulate_words
from repro.gf import GF2m
from repro.synth import (
    karatsuba_multiplier,
    mastrovito_multiplier,
    montgomery_multiplier,
)
from repro.verify import check_equivalence_fraig


class TestSimilarArchitectures:
    def test_tree_vs_array_mastrovito(self, f256):
        tree = mastrovito_multiplier(f256, tree=True)
        array = mastrovito_multiplier(f256, tree=False)
        outcome = check_equivalence_fraig(tree, array)
        assert outcome.equivalent
        assert outcome.method == "fraig-cec"

    def test_identical_circuits_strash_away(self, f16):
        spec = mastrovito_multiplier(f16)
        outcome = check_equivalence_fraig(spec, spec.clone("copy"))
        assert outcome.equivalent
        # Structural hashing alone proves it: zero SAT queries needed for
        # the outputs beyond the sweep.
        assert outcome.details["and_nodes"] > 0

    def test_karatsuba_vs_mastrovito_small(self):
        field = GF2m(5)
        outcome = check_equivalence_fraig(
            mastrovito_multiplier(field),
            karatsuba_multiplier(field, threshold=2),
            max_conflicts_final=200_000,
        )
        assert outcome.equivalent


class TestDissimilarArchitectures:
    def test_montgomery_small(self):
        field = GF2m(4)
        outcome = check_equivalence_fraig(
            mastrovito_multiplier(field),
            montgomery_multiplier(field).flatten(),
            output_map={"G": "Z"},
            max_conflicts_final=200_000,
        )
        assert outcome.equivalent
        # The paper's point: almost nothing merges across these designs.
        assert outcome.details["merged"] < outcome.details["and_nodes"] / 4

    def test_budget_exhaustion_unknown(self):
        field = GF2m(8)
        outcome = check_equivalence_fraig(
            mastrovito_multiplier(field),
            montgomery_multiplier(field).flatten(),
            output_map={"G": "Z"},
            max_conflicts_final=20,
        )
        assert outcome.status == "unknown"


class TestBugDetection:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_counterexample_replays(self, seed):
        field = GF2m(4)
        spec = mastrovito_multiplier(field)
        buggy, _ = random_mutation(mastrovito_multiplier(field), random.Random(seed))
        outcome = check_equivalence_fraig(spec, buggy, max_conflicts_final=100_000)
        assert outcome.status == "not_equivalent"
        a, b = outcome.counterexample["A"], outcome.counterexample["B"]
        spec_z = simulate_words(spec, {"A": [a], "B": [b]})["Z"][0]
        bug_z = simulate_words(buggy, {"A": [a], "B": [b]})["Z"][0]
        assert spec_z != bug_z


class TestInterfaceChecks:
    def test_word_mismatch_rejected(self, f16, f256):
        from repro.synth import gf_adder

        with pytest.raises(ValueError):
            check_equivalence_fraig(gf_adder(f16), gf_adder(f256))
