"""Unit tests for the full-Gröbner-basis abstraction baseline."""

import pytest

from repro.gf import GF2m
from repro.synth import gf_adder, mastrovito_multiplier
from repro.verify import abstract_via_full_groebner

from ..circuits.test_circuit import two_bit_multiplier


class TestFullGroebner:
    def test_fig2_multiplier(self, f4):
        """Example 4.2: the full GB contains g7 = Z + A*B."""
        result = abstract_via_full_groebner(two_bit_multiplier(), f4)
        assert result.completed
        assert str(result.polynomial) == "Z + A*B"
        assert result.basis_size > 0
        assert result.stats.pairs_total > 0

    def test_product_criterion_skips_most_pairs(self, f4):
        """Under RATO almost every pair has coprime leading terms."""
        result = abstract_via_full_groebner(two_bit_multiplier(), f4)
        stats = result.stats
        assert stats.pairs_skipped_coprime > stats.pairs_total / 2

    def test_small_adder(self, f4):
        result = abstract_via_full_groebner(gf_adder(f4), f4)
        assert result.completed
        assert str(result.polynomial) == "Z + A + B"

    def test_matches_fast_abstraction(self, f4):
        from repro.core import abstract_circuit

        circuit = two_bit_multiplier()
        full = abstract_via_full_groebner(circuit, f4)
        fast = abstract_circuit(circuit, f4)
        # Z + G from the basis vs G from the engine: strip Z and compare
        # by evaluating both on all points.
        for a in range(4):
            for b in range(4):
                z_fast = fast.polynomial.evaluate({"A": a, "B": b})
                # full polynomial is Z + G: G(a,b) is the Z making it vanish.
                assert (
                    full.polynomial.evaluate({"Z": z_fast, "A": a, "B": b}) == 0
                )

    def test_basis_budget_aborts(self, f4):
        """The memory-explosion guard: tiny budget -> incomplete."""
        field = GF2m(3)
        result = abstract_via_full_groebner(
            mastrovito_multiplier(field), field, max_basis=5
        )
        assert not result.completed
        assert result.polynomial is None

    def test_multi_output_needs_name(self, f4):
        c = two_bit_multiplier()
        c.add_output_word("Z2", ["z0", "z1"])
        with pytest.raises(ValueError):
            abstract_via_full_groebner(c, f4)
