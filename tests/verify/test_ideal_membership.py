"""Unit tests for the Lv-style ideal-membership baseline."""

import random

import pytest

from repro.circuits import random_mutation, simulate_words
from repro.core import word_ring_for
from repro.gf import GF2m
from repro.synth import (
    gf_adder,
    gf_squarer,
    mastrovito_multiplier,
    montgomery_block,
    montgomery_multiplier,
    montgomery_r,
)
from repro.verify import check_ideal_membership


class TestCorrectCircuits:
    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_mastrovito_against_ab(self, k):
        field = GF2m(k)
        ring = word_ring_for(field, ["A", "B"])
        spec = ring.var("A") * ring.var("B")
        outcome = check_ideal_membership(mastrovito_multiplier(field), field, spec)
        assert outcome.equivalent
        assert outcome.details["remainder_terms"] == 0

    def test_adder_against_sum(self, f16):
        ring = word_ring_for(f16, ["A", "B"])
        outcome = check_ideal_membership(
            gf_adder(f16), f16, ring.var("A") + ring.var("B")
        )
        assert outcome.equivalent

    def test_squarer_against_a2(self, f16):
        ring = word_ring_for(f16, ["A"])
        outcome = check_ideal_membership(gf_squarer(f16), f16, ring.var("A", 2))
        assert outcome.equivalent

    def test_montgomery_block_against_abrinv(self, f16):
        ring = word_ring_for(f16, ["A", "B"])
        r_inv = f16.inv(montgomery_r(f16))
        spec = (ring.var("A") * ring.var("B")).scale(r_inv)
        outcome = check_ideal_membership(montgomery_block(f16), f16, spec)
        assert outcome.equivalent

    def test_flattened_montgomery_against_ab(self, f16):
        """The expensive case for [5]: the whole flattened cascade."""
        ring = word_ring_for(f16, ["A", "B"])
        flat = montgomery_multiplier(f16).flatten()
        outcome = check_ideal_membership(
            flat, f16, ring.var("A") * ring.var("B"), output_word="G"
        )
        assert outcome.equivalent


class TestWrongSpecs:
    def test_multiplier_is_not_an_adder(self, f16):
        ring = word_ring_for(f16, ["A", "B"])
        outcome = check_ideal_membership(
            mastrovito_multiplier(f16), f16, ring.var("A") + ring.var("B")
        )
        assert outcome.status == "not_equivalent"

    def test_counterexample_is_valid(self, f16):
        ring = word_ring_for(f16, ["A", "B"])
        buggy, _ = random_mutation(mastrovito_multiplier(f16), random.Random(1))
        spec = ring.var("A") * ring.var("B")
        outcome = check_ideal_membership(buggy, f16, spec)
        assert outcome.status == "not_equivalent"
        if outcome.counterexample is not None:
            a = outcome.counterexample["A"]
            b = outcome.counterexample["B"]
            got = simulate_words(buggy, {"A": [a], "B": [b]})["Z"][0]
            assert got != f16.mul(a, b)

    def test_every_gate_bug_detected(self):
        field = GF2m(3)
        ring = word_ring_for(field, ["A", "B"])
        spec = ring.var("A") * ring.var("B")
        golden = mastrovito_multiplier(field)
        from repro.circuits import substitute_gate_type

        for gate in golden.gates:
            if gate.gate_type.value not in ("and", "xor"):
                continue
            buggy, _ = substitute_gate_type(golden, gate.output)
            outcome = check_ideal_membership(buggy, field, spec)
            assert outcome.status == "not_equivalent", gate.output


class TestDiagnostics:
    def test_stats_populated(self, f16):
        ring = word_ring_for(f16, ["A", "B"])
        outcome = check_ideal_membership(
            mastrovito_multiplier(f16), f16, ring.var("A") * ring.var("B")
        )
        assert outcome.details["substitutions"] > 0
        assert outcome.details["peak_terms"] > 0

    def test_multi_output_needs_name(self, f16):
        flat = montgomery_multiplier(f16).flatten()
        flat.add_output_word("G2", flat.output_words["G"])
        ring = word_ring_for(f16, ["A", "B"])
        with pytest.raises(ValueError):
            check_ideal_membership(flat, f16, ring.var("A") * ring.var("B"))
