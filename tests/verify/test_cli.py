"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def spec_path(tmp_path):
    path = str(tmp_path / "spec.v")
    assert main(["gen", "mastrovito", "-k", "4", "-o", path]) == 0
    return path


@pytest.fixture
def impl_path(tmp_path):
    path = str(tmp_path / "impl.v")
    assert main(["gen", "montgomery", "-k", "4", "-o", path]) == 0
    return path


class TestGen:
    @pytest.mark.parametrize(
        "architecture",
        ["mastrovito", "montgomery", "montgomery-block", "karatsuba", "squarer", "adder"],
    )
    def test_all_architectures(self, tmp_path, architecture):
        path = str(tmp_path / f"{architecture}.v")
        assert main(["gen", architecture, "-k", "4", "-o", path]) == 0
        from repro.circuits import read_verilog

        read_verilog(path).validate()

    def test_blif_output(self, tmp_path):
        path = str(tmp_path / "c.blif")
        assert main(["gen", "adder", "-k", "4", "-o", path]) == 0
        from repro.circuits import read_blif

        assert read_blif(path).num_gates() == 4

    def test_custom_modulus(self, tmp_path, capsys):
        path = str(tmp_path / "c.v")
        assert (
            main(["gen", "mastrovito", "-k", "4", "--modulus", "0b11001", "-o", path])
            == 0
        )
        assert "wrote" in capsys.readouterr().out


class TestStats(object):
    def test_prints_summary(self, spec_path, capsys):
        assert main(["stats", spec_path]) == 0
        out = capsys.readouterr().out
        assert "gates:" in out
        assert "word in:  A [4 bits]" in out


class TestAbstract:
    def test_derives_polynomial(self, spec_path, capsys):
        assert main(["abstract", spec_path, "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "polynomial: Z = A*B" in out
        assert "case:       1" in out

    def test_groebner_case2(self, tmp_path, capsys):
        path = str(tmp_path / "sq.v")
        main(["gen", "squarer", "-k", "3", "-o", path])
        assert main(["abstract", path, "-k", "3", "--case2", "groebner"]) == 0
        assert "Z = A^2" in capsys.readouterr().out


class TestVerify:
    def test_equivalent_designs_exit_zero(self, spec_path, impl_path, capsys):
        assert main(["verify", spec_path, impl_path, "-k", "4"]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_inequivalent_designs_exit_one(self, spec_path, tmp_path, capsys):
        adder = str(tmp_path / "add.v")
        main(["gen", "adder", "-k", "4", "-o", adder])
        assert main(["verify", spec_path, adder, "-k", "4"]) == 1
        assert "not_equivalent" in capsys.readouterr().out

    def test_check_spec(self, spec_path, capsys):
        assert main(["check-spec", spec_path, "-k", "4", "--spec", "A*B"]) == 0
        assert "equivalent" in capsys.readouterr().out
        assert main(["check-spec", spec_path, "-k", "4", "--spec", "A+B"]) == 1

    @pytest.mark.parametrize("method", ["sat", "bdd"])
    def test_bit_level_methods(self, spec_path, impl_path, method):
        assert (
            main(
                [
                    "verify",
                    spec_path,
                    impl_path,
                    "-k",
                    "4",
                    "--method",
                    method,
                    "--budget",
                    "500000",
                ]
            )
            == 0
        )

    def test_fraig_method(self, spec_path, impl_path):
        assert (
            main(
                [
                    "verify",
                    spec_path,
                    impl_path,
                    "-k",
                    "4",
                    "--method",
                    "fraig",
                    "--budget",
                    "500000",
                ]
            )
            == 0
        )

    def test_budget_exhaustion_exit_two(self, tmp_path):
        spec = str(tmp_path / "s.v")
        impl = str(tmp_path / "i.v")
        main(["gen", "mastrovito", "-k", "8", "-o", spec])
        main(["gen", "montgomery", "-k", "8", "-o", impl])
        assert (
            main(
                ["verify", spec, impl, "-k", "8", "--method", "sat", "--budget", "10"]
            )
            == 2
        )
