"""Unit tests for counterexample extraction from polynomial differences."""

import pytest

from repro.core import word_ring_for
from repro.gf import GF2m
from repro.verify import find_nonzero_point


class TestFindNonzeroPoint:
    def test_zero_polynomial_has_no_witness(self, f16):
        ring = word_ring_for(f16, ["A"])
        assert find_nonzero_point(ring.zero()) is None

    def test_constant_polynomial(self, f16):
        ring = word_ring_for(f16, ["A"])
        point = find_nonzero_point(ring.constant(3))
        assert point == {"A": 0}

    def test_univariate(self, f16):
        ring = word_ring_for(f16, ["A"])
        poly = ring.var("A") + ring.constant(5)
        point = find_nonzero_point(poly)
        assert poly.evaluate(point) != 0

    def test_multivariate(self, f16):
        ring = word_ring_for(f16, ["A", "B"])
        poly = ring.var("A") * ring.var("B") + ring.var("A") + ring.var("B")
        point = find_nonzero_point(poly)
        assert poly.evaluate(point) != 0

    def test_unused_variables_default_zero(self, f16):
        ring = word_ring_for(f16, ["A", "B", "C"])
        poly = ring.var("B") + 1
        point = find_nonzero_point(poly)
        assert point["A"] == 0 and point["C"] == 0
        assert poly.evaluate(point) != 0

    def test_sparse_function_found_exhaustively(self, f16):
        # Nonzero only at A == 7: the indicator polynomial.
        from repro.interp import indicator_polynomial

        ring = word_ring_for(f16, ["A"])
        poly = indicator_polynomial(ring, "A", 7)
        point = find_nonzero_point(poly)
        assert point == {"A": 7}

    def test_random_sampling_path(self):
        """Large domain forces the sampling branch."""
        field = GF2m(12)
        ring = word_ring_for(field, ["A", "B"])
        poly = ring.var("A") * ring.var("B") + 1
        point = find_nonzero_point(poly, exhaustive_limit=16)
        assert point is not None
        assert poly.evaluate(point) != 0
