"""Unit tests for the top-level abstraction-based verification flow."""

import random

import pytest

from repro.circuits import random_mutation, simulate_words, substitute_gate_type
from repro.gf import GF2m
from repro.synth import (
    gf_adder,
    mastrovito_multiplier,
    montgomery_block,
    montgomery_multiplier,
)
from repro.verify import canonical_polynomial, verify_equivalence


class TestMainFlow:
    @pytest.mark.parametrize("k", [2, 3, 4, 8, 16])
    def test_mastrovito_vs_montgomery_hierarchy(self, k):
        """The paper's headline experiment at laptop scale."""
        field = GF2m(k)
        outcome = verify_equivalence(
            mastrovito_multiplier(field), montgomery_multiplier(field), field
        )
        assert outcome.equivalent
        assert outcome.details["spec_polynomial"] == "A*B"
        assert outcome.details["impl_polynomial"] == "A*B"

    def test_flat_vs_flat(self, f16):
        outcome = verify_equivalence(
            mastrovito_multiplier(f16),
            montgomery_multiplier(f16).flatten(),
            f16,
        )
        assert outcome.equivalent

    def test_hierarchy_vs_hierarchy(self, f16):
        outcome = verify_equivalence(
            montgomery_multiplier(f16), montgomery_multiplier(f16), f16
        )
        assert outcome.equivalent

    def test_different_functions_rejected(self, f16):
        outcome = verify_equivalence(
            mastrovito_multiplier(f16), gf_adder(f16), f16
        )
        assert outcome.status == "not_equivalent"
        cex = outcome.counterexample
        assert cex is not None
        assert f16.mul(cex["A"], cex["B"]) != cex["A"] ^ cex["B"]

    def test_montgomery_block_alone_differs_from_multiplier(self, f16):
        """MontMul computes A*B*R^-1, not A*B: must be caught."""
        outcome = verify_equivalence(
            mastrovito_multiplier(f16), montgomery_block(f16), f16
        )
        assert outcome.status == "not_equivalent"


class TestBuggyDesigns:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_bug_detected_with_counterexample(self, seed, f16):
        spec = mastrovito_multiplier(f16)
        buggy, mutation = random_mutation(
            mastrovito_multiplier(f16), random.Random(seed)
        )
        outcome = verify_equivalence(spec, buggy, f16)
        assert outcome.status == "not_equivalent", str(mutation)
        a, b = outcome.counterexample["A"], outcome.counterexample["B"]
        spec_z = simulate_words(spec, {"A": [a], "B": [b]})["Z"][0]
        bug_z = simulate_words(buggy, {"A": [a], "B": [b]})["Z"][0]
        assert spec_z != bug_z

    def test_bug_in_hierarchy_block(self, f16):
        spec = mastrovito_multiplier(f16)
        impl = montgomery_multiplier(f16)
        target = impl.blocks[2].circuit  # BLK_Mid
        gate = next(g for g in target.gates if g.gate_type.value == "xor")
        buggy_block, _ = substitute_gate_type(target, gate.output)
        impl.blocks[2].circuit = buggy_block
        outcome = verify_equivalence(spec, impl, f16)
        assert outcome.status == "not_equivalent"

    def test_exhaustive_single_gate_bugs_small(self):
        field = GF2m(2)
        spec = mastrovito_multiplier(field)
        for gate in spec.gates:
            if gate.gate_type.value not in ("and", "xor"):
                continue
            buggy, _ = substitute_gate_type(spec, gate.output)
            outcome = verify_equivalence(spec, buggy, field)
            assert outcome.status == "not_equivalent", gate.output


class TestWordMapping:
    def test_word_map_renames_inputs(self, f16):
        impl = mastrovito_multiplier(f16)
        impl.input_words["X"] = impl.input_words.pop("A")
        impl.input_words["Y"] = impl.input_words.pop("B")
        outcome = verify_equivalence(
            mastrovito_multiplier(f16),
            impl,
            f16,
            word_map={"X": "A", "Y": "B"},
        )
        assert outcome.equivalent

    def test_mismatched_words_rejected(self, f16):
        impl = mastrovito_multiplier(f16)
        impl.input_words["X"] = impl.input_words.pop("A")
        with pytest.raises(ValueError):
            verify_equivalence(mastrovito_multiplier(f16), impl, f16)


class TestCanonicalPolynomial:
    def test_flat_circuit(self, f16):
        poly, stats = canonical_polynomial(mastrovito_multiplier(f16), f16)
        assert str(poly) == "A*B"
        assert stats["case"] == 1
        assert stats["gates"] > 0

    def test_hierarchy(self, f16):
        poly, stats = canonical_polynomial(montgomery_multiplier(f16), f16)
        assert str(poly) == "A*B"
        assert set(stats["blocks"]) == {"BLK_A", "BLK_B", "BLK_Mid", "BLK_Out"}

    def test_details_include_polynomials(self, f16):
        outcome = verify_equivalence(
            mastrovito_multiplier(f16), montgomery_multiplier(f16), f16
        )
        assert outcome.details["spec_terms"] == 1
        assert "blocks" in outcome.details["impl"]


class TestOutcomeType:
    def test_str_rendering(self, f16):
        outcome = verify_equivalence(
            mastrovito_multiplier(f16), gf_adder(f16), f16
        )
        text = str(outcome)
        assert "not_equivalent" in text and "A=" in text

    def test_bad_status_rejected(self):
        from repro.verify import EquivalenceOutcome

        with pytest.raises(ValueError):
            EquivalenceOutcome("perhaps", "m")
