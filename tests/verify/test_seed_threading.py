"""Reproducibility: explicit seeds thread through every random-using path."""

import random

from repro.circuits import random_mutation
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier, random_netlist, random_word_function
from repro.verify import find_nonzero_point, verify_equivalence
from repro.verify.equivalence import counterexample_by_simulation


def test_verify_equivalence_seed_is_reproducible():
    field = GF2m(3)
    spec = mastrovito_multiplier(field)
    buggy, _ = random_mutation(spec, seed=11)
    first = verify_equivalence(spec, buggy, field, seed=123)
    second = verify_equivalence(spec, buggy, field, seed=123)
    assert first.status == second.status == "not_equivalent"
    assert first.counterexample == second.counterexample


def test_counterexample_by_simulation_accepts_rng():
    field = GF2m(3)
    spec = mastrovito_multiplier(field)
    buggy, _ = random_mutation(spec, seed=5)
    words = sorted(spec.input_words)
    a = counterexample_by_simulation(
        spec, buggy, field, words, {}, rng=random.Random(9)
    )
    b = counterexample_by_simulation(
        spec, buggy, field, words, {}, rng=random.Random(9)
    )
    assert a == b is not None


def test_find_nonzero_point_rng_overrides_seed():
    from repro.core import word_ring_for

    field = GF2m(12)  # large enough to force the sampling path for 2 vars
    ring = word_ring_for(field, ["A", "B"])
    difference = ring.var("A") * ring.var("B") + ring.var("A")
    a = find_nonzero_point(difference, exhaustive_limit=4, rng=random.Random(3))
    b = find_nonzero_point(difference, exhaustive_limit=4, rng=random.Random(3))
    assert a == b is not None
    assert difference.evaluate(a)


def test_random_mutation_seed_matches_rng():
    circuit = mastrovito_multiplier(GF2m(3))
    by_seed, mut_seed = random_mutation(circuit, seed=42)
    by_rng, mut_rng = random_mutation(circuit, rng=random.Random(42))
    assert mut_seed.net == mut_rng.net
    assert mut_seed.after.gate_type == mut_rng.after.gate_type


def test_random_word_function_seed_is_reproducible():
    field = GF2m(2)
    _, table_a = random_word_function(field, 1, seed=7)
    _, table_b = random_word_function(field, 1, seed=7)
    assert table_a == table_b


def test_random_netlist_seed_is_reproducible():
    # Net names come from a global counter, so compare the structure under
    # a canonical renaming (declaration order) instead of raw names.
    def signature(circuit):
        rename = {net: f"v{i}" for i, net in enumerate(circuit.nets())}
        return [
            (rename[g.output], g.gate_type, tuple(rename[n] for n in g.inputs))
            for g in circuit.gates
        ]

    a = random_netlist(3, 10, seed=13)
    b = random_netlist(3, 10, seed=13)
    assert signature(a) == signature(b)
