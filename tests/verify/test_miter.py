"""Unit tests for miter construction."""

import itertools

import pytest

from repro.circuits import simulate, simulate_words
from repro.gf import GF2m
from repro.synth import gf_adder, mastrovito_multiplier, montgomery_multiplier
from repro.verify import build_miter

from ..circuits.test_circuit import two_bit_multiplier


class TestBuildMiter:
    def test_diff_zero_for_identical_circuits(self, f4):
        c = two_bit_multiplier()
        miter, diff = build_miter(c, c.clone("copy"))
        for bits in itertools.product((0, 1), repeat=4):
            stim = {f"A_{i}": bits[i] for i in range(2)}
            stim.update({f"B_{i}": bits[2 + i] for i in range(2)})
            assert simulate(miter, stim)[diff] == 0

    def test_diff_fires_on_differing_circuits(self, f4):
        mult = two_bit_multiplier()
        add = gf_adder(f4)
        # Rename adder output word to match.
        add.output_words["Z"] = add.output_words.pop("Z")
        miter, diff = build_miter(mult, add)
        fired = False
        for bits in itertools.product((0, 1), repeat=4):
            stim = {f"A_{i}": bits[i] for i in range(2)}
            stim.update({f"B_{i}": bits[2 + i] for i in range(2)})
            if simulate(miter, stim)[diff]:
                fired = True
        assert fired

    def test_shared_inputs_are_word_named(self, f4):
        miter, _ = build_miter(two_bit_multiplier(), two_bit_multiplier())
        assert set(miter.inputs) == {"A_0", "A_1", "B_0", "B_1"}
        assert miter.input_words == {"A": ["A_0", "A_1"], "B": ["B_0", "B_1"]}

    def test_mismatched_inputs_rejected(self, f4, f16):
        with pytest.raises(ValueError):
            build_miter(two_bit_multiplier(), gf_adder(f16))

    def test_output_map(self, f4):
        field = GF2m(2)
        spec = mastrovito_multiplier(field)
        impl = montgomery_multiplier(field).flatten()
        miter, diff = build_miter(spec, impl, output_map={"G": "Z"})
        for bits in itertools.product((0, 1), repeat=4):
            stim = {f"A_{i}": bits[i] for i in range(2)}
            stim.update({f"B_{i}": bits[2 + i] for i in range(2)})
            assert simulate(miter, stim)[diff] == 0

    def test_width_mismatch_rejected(self, f4):
        c1 = two_bit_multiplier()
        c2 = two_bit_multiplier()
        c2.input_words["A"] = c2.input_words["A"][:1]
        with pytest.raises(ValueError):
            build_miter(c1, c2)

    def test_miter_validates(self, f4):
        miter, _ = build_miter(two_bit_multiplier(), two_bit_multiplier())
        miter.validate()
