"""Unit tests for the Refined Abstraction Term Order (Definition 5.1)."""

import pytest

from repro.core import build_rato, build_unrefined_order
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier

from ..circuits.test_circuit import two_bit_multiplier


class TestBuildRato:
    def test_variable_partitions(self):
        c = two_bit_multiplier()
        rato = build_rato(c)
        assert set(rato.gate_nets) == {"s0", "s1", "s2", "s3", "r0", "z0", "z1"}
        assert rato.input_bits == ["a0", "a1", "b0", "b1"]
        assert rato.output_words == ["Z"]
        assert rato.input_words == ["A", "B"]

    def test_outputs_rank_highest(self):
        c = two_bit_multiplier()
        rato = build_rato(c)
        # z0, z1 are at reverse-topo level 0: they must come first.
        assert set(rato.gate_nets[:2]) == {"z0", "z1"}

    def test_levels_monotone(self):
        c = two_bit_multiplier()
        rato = build_rato(c)
        levels = c.reverse_topological_levels()
        ranks = [levels[net] for net in rato.gate_nets]
        assert ranks == sorted(ranks)

    def test_gate_bits_above_words(self):
        c = two_bit_multiplier()
        rato = build_rato(c)
        assert all(
            rato.id_of(net) < rato.id_of("Z") for net in rato.gate_nets
        )
        assert rato.id_of("Z") < rato.id_of("A") < rato.id_of("B")

    def test_ids_dense_and_ordered(self):
        c = two_bit_multiplier()
        rato = build_rato(c)
        assert sorted(rato.var_ids.values()) == list(range(len(rato.variables)))
        assert rato.variables[rato.id_of("r0")] == "r0"

    def test_tails_only_mention_lower_ranked_vars(self, f256):
        """The property the single forward sweep relies on."""
        c = mastrovito_multiplier(f256)
        rato = build_rato(c)
        for gate in c.gates:
            out_rank = rato.id_of(gate.output)
            for src in gate.inputs:
                assert rato.id_of(src) > out_rank, (gate.output, src)

    def test_explicit_output_words(self):
        c = two_bit_multiplier()
        rato = build_rato(c, output_words=["Z"])
        assert rato.output_words == ["Z"]

    def test_name_collision_rejected(self):
        from repro.circuits import Circuit

        c = Circuit("clash")
        c.add_inputs(["a0", "a1"])
        c.XOR("a0", "a1", out="A")  # net named like the word
        c.set_outputs(["A"])
        c.add_input_word("A", ["a0", "a1"])
        c.add_output_word("Z", ["A", "A"])
        with pytest.raises(ValueError):
            build_rato(c)


class TestUnrefinedOrder:
    def test_same_variable_set(self):
        c = two_bit_multiplier()
        rato = build_rato(c)
        unrefined = build_unrefined_order(c)
        assert set(unrefined.variables) == set(rato.variables)

    def test_alphabetical_default(self):
        c = two_bit_multiplier()
        unrefined = build_unrefined_order(c)
        assert unrefined.gate_nets == sorted(unrefined.gate_nets)

    def test_shuffle_deterministic(self):
        c = two_bit_multiplier()
        s1 = build_unrefined_order(c, shuffle_seed=42)
        s2 = build_unrefined_order(c, shuffle_seed=42)
        assert s1.gate_nets == s2.gate_nets

    def test_shuffle_differs_from_rato(self, f256):
        c = mastrovito_multiplier(f256)
        rato = build_rato(c)
        shuffled = build_unrefined_order(c, shuffle_seed=1)
        assert shuffled.gate_nets != rato.gate_nets
