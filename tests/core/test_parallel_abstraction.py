"""Cone-sliced parallel abstraction: bit-identity with the serial path.

The parallel path slices the circuit into per-output-bit fanin cones,
reduces each cone in a worker process, and merges the per-bit masks under
alpha-power weights before the trailing word-relation division. Its one
contract is that the resulting canonical polynomial is *term-for-term
identical* to the serial sweep's — these tests pin that, plus the cost
model (threshold / worker resolution / fallbacks) and the parallel stats.
"""

import pytest

from repro.circuits import random_mutation
from repro.core import extract_canonical
from repro.core.abstraction import (
    DEFAULT_PARALLEL_MIN_GATES,
    _resolve_workers,
)
from repro.gf import GF2m
from repro.synth import gf_squarer, mastrovito_multiplier
from repro.verify import verify_equivalence


@pytest.fixture
def force_parallel(monkeypatch):
    """Drop the gate-count threshold so tiny circuits take the pool path.

    Also overrides the single-CPU serial clamp — these tests exercise the
    pool machinery itself and must engage it even on one-CPU hosts.
    """
    monkeypatch.setenv("REPRO_PARALLEL_MIN_GATES", "1")
    monkeypatch.setenv("REPRO_PARALLEL_FORCE", "1")


def assert_same_abstraction(serial, parallel):
    assert parallel.polynomial.terms == serial.polynomial.terms
    assert parallel.output_word == serial.output_word
    assert parallel.input_words == serial.input_words
    assert parallel.stats.case == serial.stats.case
    assert parallel.stats.remainder_bits == serial.stats.remainder_bits


class TestBitIdentity:
    @pytest.mark.parametrize("k", [4, 8])
    def test_multiplier_case1(self, k, force_parallel):
        field = GF2m(k)
        circuit = mastrovito_multiplier(field)
        serial = extract_canonical(circuit, field)
        parallel = extract_canonical(circuit, field, jobs=2)
        assert_same_abstraction(serial, parallel)
        assert serial.stats.jobs == 0
        assert parallel.stats.jobs == 2

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mutated_multiplier(self, seed, force_parallel):
        field = GF2m(8)
        circuit, _ = random_mutation(mastrovito_multiplier(field), seed=seed)
        serial = extract_canonical(circuit, field)
        parallel = extract_canonical(circuit, field, jobs=2)
        assert_same_abstraction(serial, parallel)

    @pytest.mark.parametrize("k", [4, 8])
    def test_squarer_case2_linearized(self, k, force_parallel):
        # gf_squarer abstracts through Case 2 (vanishing monomials), so this
        # exercises the shared Case-2 finish after the parallel merge.
        field = GF2m(k)
        circuit = gf_squarer(field)
        serial = extract_canonical(circuit, field, case2="linearized")
        parallel = extract_canonical(circuit, field, case2="linearized", jobs=2)
        assert serial.stats.case == 2
        assert_same_abstraction(serial, parallel)

    def test_case2_groebner_parity(self, force_parallel):
        field = GF2m(4)
        circuit = gf_squarer(field)
        serial = extract_canonical(circuit, field, case2="groebner")
        parallel = extract_canonical(circuit, field, case2="groebner", jobs=2)
        assert serial.stats.case == 2
        assert_same_abstraction(serial, parallel)

    def test_array_multiplier_topology(self, force_parallel):
        field = GF2m(4)
        circuit = mastrovito_multiplier(field, tree=False)
        serial = extract_canonical(circuit, field)
        parallel = extract_canonical(circuit, field, jobs=3)
        assert_same_abstraction(serial, parallel)


class TestCostModel:
    def test_serial_below_threshold(self):
        # Default threshold (4000 gates) keeps a k=8 multiplier serial even
        # when jobs are requested.
        field = GF2m(8)
        circuit = mastrovito_multiplier(field)
        assert circuit.num_gates() < DEFAULT_PARALLEL_MIN_GATES
        result = extract_canonical(circuit, field, jobs=2)
        assert result.stats.jobs == 0
        assert result.stats.cones == 0

    def test_jobs_none_and_one_stay_serial(self, force_parallel):
        field = GF2m(4)
        circuit = mastrovito_multiplier(field)
        for jobs in (None, 1):
            result = extract_canonical(circuit, field, jobs=jobs)
            assert result.stats.jobs == 0

    def test_custom_ordering_stays_serial(self, force_parallel):
        from repro.core import build_rato

        field = GF2m(4)
        circuit = mastrovito_multiplier(field)
        ordering = build_rato(circuit)
        result = extract_canonical(circuit, field, ordering=ordering, jobs=2)
        assert result.stats.jobs == 0

    def test_resolve_workers(self):
        import os

        assert _resolve_workers(None) == 1
        assert _resolve_workers(1) == 1
        assert _resolve_workers(4) == 4
        assert _resolve_workers(0) == (os.cpu_count() or 1)
        with pytest.raises(ValueError):
            _resolve_workers(-1)

    def test_single_cpu_host_stays_serial(self, monkeypatch):
        # On a one-CPU box the pool's fork cost buys no parallelism (the
        # BENCH_parallel sweep measured it ~6x slower than serial), so an
        # explicit jobs=4 must quietly stay serial there.
        import os

        from repro.core import abstraction

        monkeypatch.setenv("REPRO_PARALLEL_MIN_GATES", "1")
        monkeypatch.delenv("REPRO_PARALLEL_FORCE", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        field = GF2m(4)
        circuit = mastrovito_multiplier(field)
        serial = extract_canonical(circuit, field)
        result = extract_canonical(circuit, field, jobs=4)
        assert result.stats.jobs == 0
        assert result.polynomial.terms == serial.polynomial.terms
        # The escape hatch still engages the pool for tests and honest
        # single-CPU benchmark sweeps.
        monkeypatch.setenv("REPRO_PARALLEL_FORCE", "1")
        forced = extract_canonical(circuit, field, jobs=2)
        assert forced.stats.jobs == 2
        assert forced.polynomial.terms == serial.polynomial.terms

    def test_jobs_zero_on_single_cpu_skips_pool(self, monkeypatch):
        # jobs=0 ("one worker per CPU") resolves to a single worker on a
        # one-CPU host; no pool may be created for it even when forced.
        import os

        from repro.core import abstraction

        monkeypatch.setenv("REPRO_PARALLEL_MIN_GATES", "1")
        monkeypatch.setenv("REPRO_PARALLEL_FORCE", "1")
        monkeypatch.setattr(os, "cpu_count", lambda: 1)

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool path engaged for one effective worker")

        monkeypatch.setattr(abstraction, "_extract_parallel", explode)
        field = GF2m(4)
        circuit = mastrovito_multiplier(field)
        result = extract_canonical(circuit, field, jobs=0)
        assert result.stats.jobs == 0

    def test_daemonic_process_stays_serial(self, force_parallel):
        # Batch-runner job workers are daemonic, and daemonic processes
        # cannot fork children — requesting jobs>=2 there must quietly take
        # the serial path instead of blowing up the cone pool on startup.
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        recv, send = ctx.Pipe(duplex=False)

        def child(conn):
            try:
                field = GF2m(4)
                circuit = mastrovito_multiplier(field)
                result = extract_canonical(circuit, field, jobs=2)
                conn.send(("ok", result.stats.jobs, str(result.polynomial)))
            except BaseException as exc:  # pragma: no cover - failure path
                conn.send(("error", repr(exc), None))
            finally:
                conn.close()

        process = ctx.Process(target=child, args=(send,), daemon=True)
        process.start()
        send.close()
        assert recv.poll(60), "daemonic child never reported"
        status, jobs_used, poly_str = recv.recv()
        process.join(timeout=30)
        assert status == "ok", f"daemonic extract_canonical failed: {jobs_used}"
        assert jobs_used == 0
        field = GF2m(4)
        serial = extract_canonical(mastrovito_multiplier(field), field)
        assert poly_str == str(serial.polynomial)

    def test_pool_failure_falls_back_to_serial(self, force_parallel, monkeypatch):
        from repro.core import abstraction
        from repro.jobs.pool import PoolError

        def broken_pool(*args, **kwargs):
            raise PoolError("simulated pool failure")

        field = GF2m(4)
        circuit = mastrovito_multiplier(field)
        serial = extract_canonical(circuit, field)

        monkeypatch.setattr(abstraction, "_extract_parallel", broken_pool)
        result = extract_canonical(circuit, field, jobs=2)
        assert result.stats.jobs == 0
        assert result.polynomial.terms == serial.polynomial.terms


class TestParallelStats:
    def test_stats_populated(self, force_parallel):
        field = GF2m(8)
        circuit = mastrovito_multiplier(field)
        result = extract_canonical(circuit, field, jobs=2)
        stats = result.stats
        assert stats.jobs == 2
        assert stats.cones == field.k
        assert len(stats.cone_division_steps) == field.k
        assert all(steps >= 0 for steps in stats.cone_division_steps)
        assert 0.0 <= stats.pool_utilization_pct <= 100.0
        assert stats.pool_idle_seconds >= 0.0
        # The pool initializer warms the GF tables, so no worker rebuilds.
        assert stats.table_rebuilds == 0
        assert stats.gate_count == circuit.num_gates()

    def test_serial_stats_stay_zero(self):
        field = GF2m(4)
        circuit = mastrovito_multiplier(field)
        stats = extract_canonical(circuit, field).stats
        assert stats.jobs == 0
        assert stats.cones == 0
        assert stats.cone_division_steps == []
        assert stats.table_rebuilds == 0


class TestVerifyThreading:
    def test_verify_equivalence_with_jobs(self, force_parallel):
        field = GF2m(4)
        spec = mastrovito_multiplier(field, tree=True)
        impl = mastrovito_multiplier(field, tree=False)
        outcome = verify_equivalence(spec, impl, field, jobs=2)
        assert outcome.equivalent
        for side in ("spec", "impl"):
            parallel = outcome.details[side]["parallel"]
            assert parallel["jobs"] == 2
            assert parallel["cones"] == field.k
            assert parallel["table_rebuilds"] == 0

    def test_verify_serial_has_no_parallel_details(self):
        field = GF2m(4)
        spec = mastrovito_multiplier(field)
        outcome = verify_equivalence(spec, spec.clone(), field)
        assert outcome.equivalent
        assert "parallel" not in outcome.details["spec"]
