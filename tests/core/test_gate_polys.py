"""Unit tests for gate-to-polynomial modeling (Section 4)."""

import itertools

import pytest

from repro.circuits import Gate, GateType, eval_gate
from repro.core import gate_tail
from repro.gf import GF2m

IDS = {"a": 0, "b": 1, "c": 2, "z": 9}


def evaluate_tail(tail, assignment, field):
    """Evaluate a BitTerms polynomial on an F2 assignment by variable id."""
    total = 0
    for monomial, coeff in tail.items():
        if all(assignment[var] for var in monomial):
            total ^= coeff
    return total


class TestTailShapes:
    def test_and_is_product(self):
        tail = gate_tail(Gate("z", GateType.AND, ("a", "b")), IDS)
        assert tail == {frozenset({0, 1}): 1}

    def test_xor_is_sum(self):
        tail = gate_tail(Gate("z", GateType.XOR, ("a", "b")), IDS)
        assert tail == {frozenset({0}): 1, frozenset({1}): 1}

    def test_or_matches_paper_form(self):
        # OR: x + y + x*y
        tail = gate_tail(Gate("z", GateType.OR, ("a", "b")), IDS)
        assert tail == {
            frozenset({0}): 1,
            frozenset({1}): 1,
            frozenset({0, 1}): 1,
        }

    def test_not_is_complement(self):
        tail = gate_tail(Gate("z", GateType.NOT, ("a",)), IDS)
        assert tail == {frozenset(): 1, frozenset({0}): 1}

    def test_buf_is_identity(self):
        tail = gate_tail(Gate("z", GateType.BUF, ("a",)), IDS)
        assert tail == {frozenset({0}): 1}

    def test_constants(self):
        assert gate_tail(Gate("z", GateType.CONST0, ()), IDS) == {}
        assert gate_tail(Gate("z", GateType.CONST1, ()), IDS) == {frozenset(): 1}

    def test_repeated_input_and(self):
        # AND(a, a) = a by idempotence.
        tail = gate_tail(Gate("z", GateType.AND, ("a", "a")), IDS)
        assert tail == {frozenset({0}): 1}

    def test_repeated_input_xor(self):
        # XOR(a, a) = 0.
        tail = gate_tail(Gate("z", GateType.XOR, ("a", "a")), IDS)
        assert tail == {}


class TestSemantics:
    """Every tail must agree with the gate's Boolean function pointwise."""

    BINARY = [
        GateType.AND,
        GateType.OR,
        GateType.XOR,
        GateType.NAND,
        GateType.NOR,
        GateType.XNOR,
    ]

    @pytest.mark.parametrize("gate_type", BINARY)
    def test_binary_gates(self, gate_type, f16):
        tail = gate_tail(Gate("z", gate_type, ("a", "b")), IDS)
        for a, b in itertools.product((0, 1), repeat=2):
            expected = eval_gate(gate_type, (a, b))
            assert evaluate_tail(tail, {0: a, 1: b}, f16) == expected

    @pytest.mark.parametrize("gate_type", BINARY)
    def test_ternary_gates(self, gate_type, f16):
        tail = gate_tail(Gate("z", gate_type, ("a", "b", "c")), IDS)
        for a, b, c in itertools.product((0, 1), repeat=3):
            expected = eval_gate(gate_type, (a, b, c))
            assert evaluate_tail(tail, {0: a, 1: b, 2: c}, f16) == expected

    def test_unary_gates(self, f16):
        for gate_type in (GateType.NOT, GateType.BUF):
            tail = gate_tail(Gate("z", gate_type, ("a",)), IDS)
            for a in (0, 1):
                assert evaluate_tail(tail, {0: a}, f16) == eval_gate(gate_type, (a,))

    def test_wide_or_has_full_expansion(self, f16):
        tail = gate_tail(Gate("z", GateType.OR, ("a", "b", "c")), IDS)
        # 1 + (1+a)(1+b)(1+c): 7 nonempty subsets.
        assert len(tail) == 7
