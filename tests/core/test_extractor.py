"""Unit tests for circuit-to-ideal extraction (Problem Setup 4.1)."""

import pytest

from repro.core import circuit_ideal
from repro.gf import GF2m

from ..circuits.test_circuit import two_bit_multiplier


@pytest.fixture
def ideal(f4):
    return circuit_ideal(two_bit_multiplier(), f4)


class TestStructure:
    def test_one_polynomial_per_gate(self, ideal):
        assert len(ideal.gate_polynomials) == 7

    def test_word_relations_present(self, ideal):
        assert set(ideal.output_relations) == {"Z"}
        assert set(ideal.input_relations) == {"A", "B"}

    def test_ring_is_unfolded(self, ideal):
        assert not ideal.ring.fold

    def test_domains(self, ideal):
        ring = ideal.ring
        assert ring.domains[ring.index["s0"]] == 2
        assert ring.domains[ring.index["a0"]] == 2
        assert ring.domains[ring.index["Z"]] == 4
        assert ring.domains[ring.index["A"]] == 4

    def test_vanishing_generators(self, ideal):
        # One x^q - x per ring variable.
        assert len(ideal.vanishing) == len(ideal.ring.variables)

    def test_generators_property(self, ideal):
        assert len(ideal.generators) == 7 + 1 + 2


class TestPolynomialForms:
    def test_gate_polynomials_match_example_4_2(self, ideal):
        """The generators must be exactly the f_4..f_10 of Example 4.2."""
        ring = ideal.ring
        texts = {str(p) for p in ideal.gate_polynomials}
        assert "s0 + a0*b0" in texts
        assert "s1 + a0*b1" in texts
        assert "r0 + s1 + s2" in texts
        assert "z0 + s0 + s3" in texts
        assert "z1 + r0 + s3" in texts

    def test_output_relation_is_eqn_1(self, ideal):
        # f_1 : z0 + z1*alpha + Z
        assert str(ideal.output_relations["Z"]) == "z0 + a*z1 + Z"

    def test_input_relation_is_eqn_1(self, ideal):
        assert str(ideal.input_relations["A"]) == "a0 + a*a1 + A"

    def test_gate_polys_have_output_leading_term(self, ideal):
        """Under RATO, lt of each gate polynomial is the gate output."""
        ring = ideal.ring
        for gate_poly, gate in zip(
            ideal.gate_polynomials, two_bit_multiplier().topological_order()
        ):
            lm = gate_poly.leading_monomial()
            assert lm == ((ring.index[gate.output], 1),)

    def test_pairwise_coprime_leads_except_fw_fg(self, ideal):
        """Section 5's key structural fact about RATO."""
        from repro.algebra import leading_monomials_coprime

        polys = ideal.generators
        non_coprime = [
            (str(p), str(q))
            for i, p in enumerate(polys)
            for q in polys[i + 1 :]
            if not leading_monomials_coprime(p, q)
        ]
        # Exactly one non-coprime pair: (f_w, gate poly of the lead z bit).
        assert len(non_coprime) == 1
        pair_text = " | ".join(non_coprime[0])
        assert "Z" in pair_text and "z0 + s0 + s3" in pair_text


class TestConsistency:
    def test_generators_vanish_on_circuit_executions(self, ideal, f4):
        """Every consistent simulation assignment is a zero of the ideal."""
        from repro.circuits import simulate

        circuit = two_bit_multiplier()
        import itertools

        for bits in itertools.product((0, 1), repeat=4):
            stim = dict(zip(["a0", "a1", "b0", "b1"], bits))
            values = simulate(circuit, stim)
            assignment = {net: values[net] for net in circuit.nets()}
            assignment["A"] = bits[0] | (bits[1] << 1)
            assignment["B"] = bits[2] | (bits[3] << 1)
            assignment["Z"] = values["z0"] | (values["z1"] << 1)
            for poly in ideal.generators:
                assert poly.evaluate(assignment) == 0, str(poly)

    def test_invalid_assignment_violates_some_generator(self, ideal):
        assignment = {v: 0 for v in ideal.ring.variables}
        assignment["z0"] = 1  # z0 must be 0 when all inputs are 0
        assert any(p.evaluate(assignment) != 0 for p in ideal.generators)
