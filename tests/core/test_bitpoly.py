"""Unit tests for the substitution engine."""

import pytest

from repro.core import SubstitutionEngine
from repro.gf import GF2m

E = frozenset()


def fs(*ids):
    return frozenset(ids)


class TestAddTerm:
    def test_accumulates_xor(self, f16):
        eng = SubstitutionEngine(f16)
        eng.add_term(fs(1), 0b0101)
        eng.add_term(fs(1), 0b0011)
        assert eng.terms == {fs(1): 0b0110}

    def test_cancellation_removes_monomial(self, f16):
        eng = SubstitutionEngine(f16)
        eng.add_term(fs(1, 2), 7)
        eng.add_term(fs(1, 2), 7)
        assert not eng.terms
        assert not eng.contains_var(1)

    def test_zero_coefficient_ignored(self, f16):
        eng = SubstitutionEngine(f16)
        eng.add_term(fs(1), 0)
        assert not eng.terms

    def test_occurrence_index(self, f16):
        eng = SubstitutionEngine(f16)
        eng.add_term(fs(1, 2), 1)
        eng.add_term(fs(2, 3), 1)
        assert eng.contains_var(2)
        assert eng.variables_present() == {1, 2, 3}


class TestSubstitute:
    def test_xor_tail(self, f16):
        # poly = x1; substitute x1 -> x2 + x3
        eng = SubstitutionEngine(f16)
        eng.add_term(fs(1), 1)
        eng.substitute(1, {fs(2): 1, fs(3): 1})
        assert eng.terms == {fs(2): 1, fs(3): 1}

    def test_and_tail_in_context(self, f16):
        # poly = x1 * x4; substitute x1 -> x2*x3 yields x2*x3*x4
        eng = SubstitutionEngine(f16)
        eng.add_term(fs(1, 4), 5)
        eng.substitute(1, {fs(2, 3): 1})
        assert eng.terms == {fs(2, 3, 4): 5}

    def test_idempotent_merge(self, f16):
        # poly = x1 * x2; substitute x1 -> x2 yields x2 (x2*x2 = x2)
        eng = SubstitutionEngine(f16)
        eng.add_term(fs(1, 2), 1)
        eng.substitute(1, {fs(2): 1})
        assert eng.terms == {fs(2): 1}

    def test_coefficient_multiplication(self, f16):
        eng = SubstitutionEngine(f16)
        eng.add_term(fs(1), 0b0010)  # alpha * x1
        eng.substitute(1, {fs(2): 0b0010})  # x1 -> alpha*x2
        assert eng.terms == {fs(2): f16.mul(0b0010, 0b0010)}

    def test_constant_tail(self, f16):
        # x1 -> 1 (CONST1): poly x1*x2 + x1 becomes x2 + 1
        eng = SubstitutionEngine(f16)
        eng.add_term(fs(1, 2), 1)
        eng.add_term(fs(1), 1)
        eng.substitute(1, {E: 1})
        assert eng.terms == {fs(2): 1, E: 1}

    def test_empty_tail_zeroes_var(self, f16):
        # x1 -> 0 (CONST0): terms containing x1 vanish.
        eng = SubstitutionEngine(f16)
        eng.add_term(fs(1, 2), 1)
        eng.add_term(fs(3), 1)
        eng.substitute(1, {})
        assert eng.terms == {fs(3): 1}

    def test_absent_variable_is_noop(self, f16):
        eng = SubstitutionEngine(f16)
        eng.add_term(fs(2), 1)
        assert eng.substitute(1, {fs(3): 1}) == 0
        assert eng.terms == {fs(2): 1}

    def test_cancellation_through_substitution(self, f16):
        # poly = x1 + x2; substitute x1 -> x2: everything cancels.
        eng = SubstitutionEngine(f16)
        eng.add_term(fs(1), 1)
        eng.add_term(fs(2), 1)
        eng.substitute(1, {fs(2): 1})
        assert not eng.terms

    def test_stats_tracked(self, f16):
        eng = SubstitutionEngine(f16)
        eng.add_term(fs(1), 1)
        eng.substitute(1, {fs(2): 1, fs(3): 1})
        assert eng.substitutions == 1
        assert eng.peak_terms >= 2
        assert eng.term_traffic >= 3

    def test_snapshot_is_copy(self, f16):
        eng = SubstitutionEngine(f16)
        eng.add_term(fs(1), 1)
        snap = eng.snapshot()
        eng.add_term(fs(2), 1)
        assert fs(2) not in snap

    def test_len(self, f16):
        eng = SubstitutionEngine(f16)
        eng.add_term(fs(1), 1)
        eng.add_term(fs(2), 3)
        assert len(eng) == 2


class TestAgainstBooleanSemantics:
    def test_substitution_preserves_function(self, f16):
        """Random substitution chains keep the represented function intact."""
        import itertools
        import random

        rng = random.Random(4)
        for trial in range(20):
            eng = SubstitutionEngine(f16)
            # Random poly in vars 5..8, then substitute 5 -> poly in 1..4.
            base_vars = [5, 6, 7, 8]
            for _ in range(6):
                mono = frozenset(rng.sample(base_vars, rng.randint(1, 3)))
                eng.add_term(mono, rng.randrange(1, 16))
            tail = {}
            for _ in range(3):
                mono = frozenset(rng.sample([1, 2, 3, 4], rng.randint(1, 2)))
                tail[mono] = rng.randrange(1, 16)
            before = eng.snapshot()
            eng.substitute(5, tail)

            def eval_terms(terms, assignment):
                total = 0
                for monomial, coeff in terms.items():
                    if all(assignment[v] for v in monomial):
                        total ^= coeff
                return total

            for bits in itertools.product((0, 1), repeat=8):
                assignment = {i + 1: bits[i] for i in range(8)}
                tail_value = eval_terms(tail, assignment)
                # tail is F2-polynomial of bits: value in the field; the
                # substituted variable takes that value (0/1 in practice).
                ref_assignment = dict(assignment)
                ref_assignment[5] = tail_value
                if tail_value in (0, 1):
                    assert eval_terms(eng.terms, assignment) == eval_terms(
                        before, ref_assignment
                    ), trial
