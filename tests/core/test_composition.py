"""Unit tests for hierarchical word-level composition."""

import pytest

from repro.algebra import LexOrder, PolynomialRing
from repro.circuits import HierarchicalCircuit
from repro.core import abstract_hierarchy, compose_polynomials, word_ring_for
from repro.gf import GF2m
from repro.synth import (
    gf_adder,
    gf_squarer,
    montgomery_multiplier,
)


class TestComposePolynomials:
    def test_identity_binding(self, f16):
        ring = word_ring_for(f16, ["A", "B"])
        block_ring = word_ring_for(f16, ["X", "Y"])
        poly = block_ring.var("X") * block_ring.var("Y")
        composed = compose_polynomials(
            poly, {"X": ring.var("A"), "Y": ring.var("B")}, ring
        )
        assert composed == ring.var("A") * ring.var("B")

    def test_nested_expression(self, f16):
        ring = word_ring_for(f16, ["A"])
        block_ring = word_ring_for(f16, ["X"])
        square = block_ring.var("X", 2)
        composed = compose_polynomials(
            square, {"X": ring.var("A", 2)}, ring
        )
        assert composed == ring.var("A", 4)

    def test_folding_applies(self, f4):
        ring = word_ring_for(f4, ["A"])
        block_ring = word_ring_for(f4, ["X"])
        square = block_ring.var("X", 2)
        composed = compose_polynomials(square, {"X": ring.var("A", 2)}, ring)
        assert composed == ring.var("A")  # A^4 = A over F_4

    def test_constant_term_passthrough(self, f16):
        ring = word_ring_for(f16, ["A"])
        block_ring = word_ring_for(f16, ["X"])
        poly = block_ring.var("X") + block_ring.constant(7)
        composed = compose_polynomials(poly, {"X": ring.var("A")}, ring)
        assert composed == ring.var("A") + ring.constant(7)


class TestAbstractHierarchy:
    def test_montgomery_fig1(self, f16):
        """The headline hierarchy: Fig. 1 composes to G = A*B."""
        hier = montgomery_multiplier(f16)
        result = abstract_hierarchy(hier, f16)
        assert result.polynomials["G"] == result.ring.var("A") * result.ring.var("B")

    def test_block_results_exposed(self, f16):
        result = abstract_hierarchy(montgomery_multiplier(f16), f16)
        assert set(result.block_results) == {"BLK_A", "BLK_B", "BLK_Mid", "BLK_Out"}
        assert set(result.block_seconds) == set(result.block_results)
        assert result.total_seconds >= result.compose_seconds

    def test_squarer_chain_composes_with_folding(self, f4):
        """A^2 composed with A^2 folds to A over F_4."""
        hier = HierarchicalCircuit("sq2", 2)
        hier.add_input_word("A")
        hier.add_block("s1", gf_squarer(f4, name="s1"), {"A": "A"}, {"Z": "T"})
        hier.add_block("s2", gf_squarer(f4, name="s2"), {"A": "T"}, {"Z": "Z"})
        hier.set_output_words(["Z"])
        result = abstract_hierarchy(hier, f4)
        assert result.polynomials["Z"] == result.ring.var("A")

    def test_adder_tree(self, f16):
        hier = HierarchicalCircuit("addtree", 4)
        hier.add_input_word("A")
        hier.add_input_word("B")
        hier.add_input_word("C")
        hier.add_block(
            "a1", gf_adder(f16, name="a1"), {"A": "A", "B": "B"}, {"Z": "T"}
        )
        hier.add_block(
            "a2", gf_adder(f16, name="a2"), {"A": "T", "B": "C"}, {"Z": "Z"}
        )
        hier.set_output_words(["Z"])
        result = abstract_hierarchy(hier, f16)
        ring = result.ring
        assert result.polynomials["Z"] == (
            ring.var("A") + ring.var("B") + ring.var("C")
        )

    def test_reused_block_results(self, f16):
        hier = montgomery_multiplier(f16)
        first = abstract_hierarchy(hier, f16)
        second = abstract_hierarchy(
            hier, f16, block_results=first.block_results
        )
        assert second.polynomials["G"] == first.polynomials["G"]

    def test_composition_matches_simulation(self, f16):
        import random

        hier = montgomery_multiplier(f16)
        result = abstract_hierarchy(hier, f16)
        rng = random.Random(6)
        for _ in range(20):
            a, b = rng.randrange(16), rng.randrange(16)
            sim = hier.simulate_words({"A": [a], "B": [b]})["G"][0]
            assert result.polynomials["G"].evaluate({"A": a, "B": b}) == sim
