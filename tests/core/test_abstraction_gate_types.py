"""Abstraction over circuits that use the full gate library.

The arithmetic generators only emit AND/XOR; these tests build word
functions out of OR/NOR/NAND/XNOR/NOT gates and check the derived
canonical polynomial against exhaustive simulation — covering the
remaining rows of the Section 4 gate-modeling table end to end.
"""

import itertools

import pytest

from repro.circuits import Circuit, GateType, exhaustive_word_table
from repro.core import abstract_circuit
from repro.gf import GF2m


def build_wordwise(field, gate_type, name):
    """Z_i = gate(A_i, B_i) bitwise, as a word circuit."""
    k = field.k
    c = Circuit(name)
    a = [c.add_input(f"a{i}") for i in range(k)]
    b = [c.add_input(f"b{i}") for i in range(k)]
    c.add_input_word("A", a)
    c.add_input_word("B", b)
    z = [c.add_gate(f"z{i}", gate_type, (a[i], b[i])) for i in range(k)]
    c.set_outputs(z)
    c.add_output_word("Z", z)
    return c


class TestBitwiseWordOperators:
    @pytest.mark.parametrize(
        "gate_type",
        [GateType.OR, GateType.NOR, GateType.NAND, GateType.XNOR, GateType.AND],
    )
    @pytest.mark.parametrize("k", [2, 3])
    def test_abstraction_matches_simulation(self, gate_type, k):
        field = GF2m(k)
        circuit = build_wordwise(field, gate_type, f"bw_{gate_type.value}_{k}")
        result = abstract_circuit(circuit, field)
        table = exhaustive_word_table(circuit, k)
        for (a, b), outs in table.items():
            assert result.polynomial.evaluate({"A": a, "B": b}) == outs["Z"], (
                gate_type,
                a,
                b,
            )

    def test_bitwise_or_polynomial_shape(self, f4):
        """Bitwise OR is not F_{2^k}-linear: its polynomial has cross terms."""
        circuit = build_wordwise(f4, GateType.OR, "bw_or")
        result = abstract_circuit(circuit, f4)
        assert result.polynomial.total_degree() > 1


class TestMixedGateCircuits:
    def test_mux_based_circuit(self, f4):
        """Z = (s ? A : B) bitwise, built from AND/OR/NOT."""
        k = 2
        c = Circuit("mux")
        a = [c.add_input(f"a{i}") for i in range(k)]
        b = [c.add_input(f"b{i}") for i in range(k)]
        s = [c.add_input(f"s{i}") for i in range(k)]
        c.add_input_word("A", a)
        c.add_input_word("B", b)
        c.add_input_word("S", s)
        z = []
        for i in range(k):
            ns = c.NOT(s[i])
            z.append(
                c.add_gate(
                    f"z{i}",
                    GateType.OR,
                    (c.AND(s[i], a[i]), c.AND(ns, b[i])),
                )
            )
        c.set_outputs(z)
        c.add_output_word("Z", z)
        result = abstract_circuit(c, f4)
        table = exhaustive_word_table(c, k)
        for (av, bv, sv), outs in table.items():
            assert (
                result.polynomial.evaluate({"A": av, "B": bv, "S": sv})
                == outs["Z"]
            )

    def test_nand_nand_multiplier(self, f4):
        """Fig. 2 rebuilt with NAND-NAND logic (AND = NAND + NOT)."""
        c = Circuit("nandmult")
        for n in ["a0", "a1", "b0", "b1"]:
            c.add_input(n)
        def and_via_nand(x, y, out=None):
            n = c.add_gate(c.fresh_net("nd"), GateType.NAND, (x, y))
            return c.NOT(n, out=out) if out else c.NOT(n)
        s0 = and_via_nand("a0", "b0")
        s1 = and_via_nand("a0", "b1")
        s2 = and_via_nand("a1", "b0")
        s3 = and_via_nand("a1", "b1")
        r0 = c.XOR(s1, s2)
        z0 = c.XOR(s0, s3, out="z0")
        z1 = c.XOR(r0, s3, out="z1")
        c.set_outputs([z0, z1])
        c.add_input_word("A", ["a0", "a1"])
        c.add_input_word("B", ["b0", "b1"])
        c.add_output_word("Z", [z0, z1])
        result = abstract_circuit(c, f4)
        assert result.polynomial == result.ring.var("A") * result.ring.var("B")

    def test_or_based_adder_false_friend(self, f4):
        """Bitwise OR is NOT field addition; the polynomials must differ."""
        or_circuit = build_wordwise(f4, GateType.OR, "or_add")
        from repro.synth import gf_adder

        or_poly = abstract_circuit(or_circuit, f4).polynomial
        add_poly = abstract_circuit(gf_adder(f4), f4).polynomial

        def comparable(poly):
            ring = poly.ring
            return {
                tuple(sorted((ring.variables[v], e) for v, e in m)): c
                for m, c in poly.terms.items()
            }

        assert comparable(or_poly) != comparable(add_poly)
