"""Unit tests for the word-level abstraction algorithm (Sections 4-5)."""

import pytest

from repro.circuits import Circuit
from repro.core import (
    abstract_all_outputs,
    abstract_circuit,
    build_rato,
    build_unrefined_order,
)
from repro.gf import GF2m
from repro.synth import (
    constant_multiplier,
    gf_adder,
    gf_squarer,
    mastrovito_multiplier,
    montgomery_block,
    montgomery_r,
)

from ..circuits.test_circuit import two_bit_multiplier


class TestMultipliers:
    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_mastrovito_abstracts_to_ab(self, k):
        field = GF2m(k)
        result = abstract_circuit(mastrovito_multiplier(field), field)
        ring = result.ring
        assert result.polynomial == ring.var("A") * ring.var("B")
        assert result.stats.case == 1
        assert result.output_word == "Z"

    def test_fig2_circuit(self, f4):
        result = abstract_circuit(two_bit_multiplier(), f4)
        ring = result.ring
        assert result.polynomial == ring.var("A") * ring.var("B")

    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_montgomery_block_abstracts_to_abr_inv(self, k):
        field = GF2m(k)
        result = abstract_circuit(montgomery_block(field), field)
        ring = result.ring
        r_inv = field.inv(montgomery_r(field))
        assert result.polynomial == (ring.var("A") * ring.var("B")).scale(r_inv)


class TestLinearCircuits:
    def test_adder(self, f256):
        result = abstract_circuit(gf_adder(f256), f256)
        ring = result.ring
        assert result.polynomial == ring.var("A") + ring.var("B")

    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_squarer_needs_case2(self, k):
        field = GF2m(k)
        result = abstract_circuit(gf_squarer(field), field)
        assert result.polynomial == result.ring.var("A", 2)
        assert result.stats.case == 2

    @pytest.mark.parametrize("constant", [1, 2, 3, 9])
    def test_constant_multiplier(self, constant, f16):
        result = abstract_circuit(constant_multiplier(f16, constant), f16)
        assert result.polynomial == result.ring.var("A").scale(constant)


class TestCase2Methods:
    def test_linearized_equals_groebner_squarer(self, f8):
        sq = gf_squarer(f8)
        lin = abstract_circuit(sq, f8, case2="linearized")
        gro = abstract_circuit(sq, f8, case2="groebner")
        assert lin.polynomial == gro.polynomial
        assert lin.stats.case2_method == "linearized"
        assert gro.stats.case2_method == "groebner"

    def test_linearized_equals_groebner_buggy_multiplier(self, f4):
        from repro.circuits import rewire_gate_input

        buggy, _ = rewire_gate_input(two_bit_multiplier(), "r0", 0, "s0")
        lin = abstract_circuit(buggy, f4, case2="linearized")
        gro = abstract_circuit(buggy, f4, case2="groebner")
        assert lin.polynomial == gro.polynomial

    def test_unknown_method_rejected(self, f4):
        with pytest.raises(ValueError):
            abstract_circuit(two_bit_multiplier(), f4, case2="magic")

    def test_remainder_bits_reported(self, f8):
        result = abstract_circuit(gf_squarer(f8), f8)
        assert result.stats.remainder_bits
        assert all(b.startswith("a") for b in result.stats.remainder_bits)


class TestAbstractionMatchesSimulation:
    """Theorem 4.2(ii): G and the circuit agree as functions."""

    @pytest.mark.parametrize("k", [2, 3])
    def test_random_functions(self, k):
        import random

        from repro.circuits import exhaustive_word_table
        from repro.synth import random_word_function

        field = GF2m(k)
        rng = random.Random(k * 31)
        for trial in range(4):
            circuit, table = random_word_function(field, 1, rng, name=f"fn{trial}")
            result = abstract_circuit(circuit, field)
            for (a,), value in table.items():
                assert result.polynomial.evaluate({"A": a}) == value, trial

    def test_two_input_random_function(self, f4):
        import random

        from repro.synth import random_word_function

        circuit, table = random_word_function(f4, 2, random.Random(99))
        result = abstract_circuit(circuit, f4)
        for (a, b), value in table.items():
            assert result.polynomial.evaluate({"A": a, "B": b}) == value

    def test_canonical_degree_bound(self, f4):
        """Definition 3.1: canonical exponents stay below q."""
        import random

        from repro.synth import random_word_function

        circuit, _ = random_word_function(f4, 1, random.Random(5))
        result = abstract_circuit(circuit, f4)
        assert result.polynomial.degree_in("A") <= 3


class TestOrderingVariants:
    def test_unrefined_order_same_result(self, f16):
        """Any abstraction order yields the same canonical polynomial."""
        circuit = mastrovito_multiplier(f16)
        rato = abstract_circuit(circuit, f16)
        unrefined = abstract_circuit(
            circuit, f16, ordering=build_unrefined_order(circuit, shuffle_seed=3)
        )
        assert rato.polynomial == unrefined.polynomial

    def test_explicit_rato_matches_default(self, f16):
        circuit = mastrovito_multiplier(f16)
        default = abstract_circuit(circuit, f16)
        explicit = abstract_circuit(
            circuit, f16, ordering=build_rato(circuit, output_words=["Z"])
        )
        assert default.polynomial == explicit.polynomial


class TestValidation:
    def test_no_output_word_rejected(self, f4):
        c = Circuit("noword")
        c.add_inputs(["a", "b"])
        c.AND("a", "b", out="z")
        c.set_outputs(["z"])
        with pytest.raises(ValueError):
            abstract_circuit(c, f4)

    def test_wrong_width_rejected(self, f4):
        c = two_bit_multiplier()
        field8 = GF2m(3)
        with pytest.raises(ValueError):
            abstract_circuit(c, field8)

    def test_multi_output_needs_name(self, f4):
        c = two_bit_multiplier()
        c.add_output_word("Z2", ["z0", "z1"])
        with pytest.raises(ValueError):
            abstract_circuit(c, f4)
        result = abstract_circuit(c, f4, output_word="Z2")
        assert result.output_word == "Z2"

    def test_stats_recorded(self, f16):
        result = abstract_circuit(mastrovito_multiplier(f16), f16)
        stats = result.stats
        assert stats.gate_count == 31
        assert stats.substitutions > 0
        assert stats.peak_terms >= 16
        assert stats.seconds > 0

    def test_str_renders_relation(self, f4):
        result = abstract_circuit(two_bit_multiplier(), f4)
        assert str(result) == "Z = A*B"


class TestMultiOutputCircuits:
    def test_separate_words_abstract_independently(self, f4):
        """One circuit computing both A*B and A+B."""
        c = Circuit("double")
        a = [c.add_input(f"a{i}") for i in range(2)]
        b = [c.add_input(f"b{i}") for i in range(2)]
        c.add_input_word("A", a)
        c.add_input_word("B", b)
        s0 = c.AND(a[0], b[0])
        s1 = c.AND(a[0], b[1])
        s2 = c.AND(a[1], b[0])
        s3 = c.AND(a[1], b[1])
        r0 = c.XOR(s1, s2)
        m0 = c.XOR(s0, s3, out="m0")
        m1 = c.XOR(r0, s3, out="m1")
        p0 = c.XOR(a[0], b[0], out="p0")
        p1 = c.XOR(a[1], b[1], out="p1")
        c.set_outputs(["m0", "m1", "p0", "p1"])
        c.add_output_word("M", ["m0", "m1"])
        c.add_output_word("P", ["p0", "p1"])
        mult = abstract_circuit(c, f4, output_word="M")
        add = abstract_circuit(c, f4, output_word="P")
        assert mult.polynomial == mult.ring.var("A") * mult.ring.var("B")
        assert add.polynomial == add.ring.var("A") + add.ring.var("B")

    def test_abstract_all_outputs(self, f4):
        c = Circuit("double2")
        a = [c.add_input(f"a{i}") for i in range(2)]
        b = [c.add_input(f"b{i}") for i in range(2)]
        c.add_input_word("A", a)
        c.add_input_word("B", b)
        p = [c.XOR(a[i], b[i], out=f"p{i}") for i in range(2)]
        c.set_outputs(p)
        c.add_output_word("P", p)
        c.add_output_word("P2", list(reversed(p)))  # bit-reversed word
        results = abstract_all_outputs(c, f4)
        assert set(results) == {"P", "P2"}
        assert results["P"].polynomial == results["P"].ring.var("A") + results[
            "P"
        ].ring.var("B")
        # The bit-reversed word implements a different (linear) function.
        assert results["P2"].polynomial != results["P"].polynomial
