"""Property tests: the batched kernels are indistinguishable from legacy.

Three invariants, each the contract the ``REPRO_BATCH_KERNELS`` switch
promises:

- **term exactness** — ``extract_canonical`` under the batched kernels
  produces the identical polynomial, case and work counters as the legacy
  kernels, on clean and on randomly mutated multipliers (mutations give
  dense, irregular, sometimes Case-2 canonical polynomials — where a
  parity bug in the set-batched frontier would surface);
- **oracle agreement** — the batched ``reduce_polynomial`` matches both
  the legacy heap reducer and the scan-based
  ``reference_reduce_polynomial`` remainder-for-remainder and
  step-for-step on random polynomial systems;
- **replay byte-identity** — a REDTRACE recorded under one kernel replays
  with zero diffs under the other, at k in {8, 16, 32}.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import Polynomial, PolynomialRing
from repro.algebra.division import (
    DivisionTrace,
    reduce_polynomial,
    reference_reduce_polynomial,
)
from repro.circuits import random_mutation
from repro.circuits.blif import to_blif
from repro.core import extract_canonical
from repro.gf import GF2m
from repro.obs import redtrace
from repro.obs.replay import diff_events, execute_header, netlist_sha256
from repro.synth import mastrovito_multiplier, montgomery_multiplier

F256 = GF2m(8)


def _with_kernel(value):
    os.environ["REPRO_BATCH_KERNELS"] = value


def _extract_both_kernels(circuit, field):
    prior = os.environ.get("REPRO_BATCH_KERNELS")
    try:
        _with_kernel("0")
        legacy = extract_canonical(circuit, field)
        _with_kernel("1")
        batched = extract_canonical(circuit, field)
    finally:
        if prior is None:
            os.environ.pop("REPRO_BATCH_KERNELS", None)
        else:
            os.environ["REPRO_BATCH_KERNELS"] = prior
    return legacy, batched


def _assert_identical(legacy, batched):
    assert batched.polynomial.terms == legacy.polynomial.terms
    assert batched.stats.case == legacy.stats.case
    assert batched.stats.remainder_bits == legacy.stats.remainder_bits
    assert batched.stats.substitutions == legacy.stats.substitutions
    assert batched.stats.term_traffic == legacy.stats.term_traffic
    assert batched.stats.peak_terms == legacy.stats.peak_terms


class TestExtractionTermExact:
    @pytest.mark.parametrize("synth", [mastrovito_multiplier, montgomery_multiplier])
    def test_clean_multiplier(self, synth):
        circuit = synth(F256)
        if hasattr(circuit, "flatten"):
            circuit = circuit.flatten()
        _assert_identical(*_extract_both_kernels(circuit, F256))

    @given(seed=st.integers(0, 2**20))
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_mutated_mastrovito(self, seed):
        circuit, _ = random_mutation(mastrovito_multiplier(F256), seed=seed)
        _assert_identical(*_extract_both_kernels(circuit, F256))

    @given(seed=st.integers(0, 2**20))
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_mutated_montgomery(self, seed):
        circuit = montgomery_multiplier(F256)
        if hasattr(circuit, "flatten"):
            circuit = circuit.flatten()
        circuit, _ = random_mutation(circuit, seed=seed)
        _assert_identical(*_extract_both_kernels(circuit, F256))


@st.composite
def poly_data(draw, num_vars=4, max_terms=8, order=256):
    terms = {}
    for _ in range(draw(st.integers(1, max_terms))):
        nv = draw(st.integers(1, num_vars))
        variables = draw(
            st.lists(
                st.integers(0, num_vars - 1),
                min_size=nv, max_size=nv, unique=True,
            )
        )
        monomial = tuple(
            sorted((v, draw(st.integers(1, 2))) for v in variables)
        )
        terms[monomial] = draw(st.integers(1, order - 1))
    return terms


class TestDivisionOracleAgreement:
    @given(
        f_data=poly_data(),
        g_data=st.lists(poly_data(max_terms=4), min_size=1, max_size=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_batched_matches_legacy_and_reference(self, f_data, g_data):
        ring = PolynomialRing(F256, ["a", "b", "c", "d"])
        f = Polynomial(ring, f_data)
        divisors = [Polynomial(ring, d) for d in g_data]
        prior = os.environ.get("REPRO_BATCH_KERNELS")
        traces = [DivisionTrace() for _ in range(3)]
        try:
            _with_kernel("1")
            batched = reduce_polynomial(f, divisors, trace=traces[0])
            _with_kernel("0")
            legacy = reduce_polynomial(f, divisors, trace=traces[1])
        finally:
            if prior is None:
                os.environ.pop("REPRO_BATCH_KERNELS", None)
            else:
                os.environ["REPRO_BATCH_KERNELS"] = prior
        reference = reference_reduce_polynomial(f, divisors, trace=traces[2])
        assert batched.terms == legacy.terms == reference.terms
        assert (
            (traces[0].steps, traces[0].peak_terms)
            == (traces[1].steps, traces[1].peak_terms)
            == (traces[2].steps, traces[2].peak_terms)
        )


def _record_abstract(circuit, field, kernel, tmp_path, tag):
    """Record an ``abstract`` REDTRACE under the given kernel path."""
    text = to_blif(circuit)
    path = str(tmp_path / f"{tag}.redtrace")
    _with_kernel(kernel)
    redtrace.start_recording(
        path=path,
        op="abstract",
        params={
            "k": field.k,
            "modulus": f"{field.modulus:#x}",
            "output_word": None,
            "case2": "linearized",
            "jobs": None,
            "netlist": f"<{tag}>",
            "netlist_text": text,
            "netlist_sha256": netlist_sha256(text),
        },
    )
    try:
        extract_canonical(circuit, field)
    finally:
        redtrace.stop_recording()
    return redtrace.read_trace(path)


class TestReplayCrossKernel:
    @pytest.mark.parametrize("k", [8, 16, 32])
    def test_legacy_recording_replays_on_batched(self, k, tmp_path):
        field = GF2m(k)
        circuit = mastrovito_multiplier(field)
        if hasattr(circuit, "flatten"):
            circuit = circuit.flatten()
        prior = os.environ.get("REPRO_BATCH_KERNELS")
        try:
            recorded = _record_abstract(circuit, field, "0", tmp_path, f"m{k}")
            _with_kernel("1")
            fresh = execute_header(recorded[0])
        finally:
            if prior is None:
                os.environ.pop("REPRO_BATCH_KERNELS", None)
            else:
                os.environ["REPRO_BATCH_KERNELS"] = prior
        assert diff_events(recorded, fresh) is None

    @pytest.mark.parametrize("k", [8, 16])
    def test_batched_recording_replays_on_legacy(self, k, tmp_path):
        field = GF2m(k)
        circuit = montgomery_multiplier(field)
        if hasattr(circuit, "flatten"):
            circuit = circuit.flatten()
        prior = os.environ.get("REPRO_BATCH_KERNELS")
        try:
            recorded = _record_abstract(circuit, field, "1", tmp_path, f"g{k}")
            _with_kernel("0")
            fresh = execute_header(recorded[0])
        finally:
            if prior is None:
                os.environ.pop("REPRO_BATCH_KERNELS", None)
            else:
                os.environ["REPRO_BATCH_KERNELS"] = prior
        assert diff_events(recorded, fresh) is None
