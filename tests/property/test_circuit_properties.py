"""Property-based tests for circuit structure, simulation and I/O."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    from_blif,
    from_verilog,
    simulate,
    to_blif,
    to_verilog,
)
from repro.circuits.opt import constant_propagate, simplify, strip_dead_logic
from repro.synth import random_netlist


@st.composite
def netlists(draw):
    seed = draw(st.integers(0, 10_000))
    num_inputs = draw(st.integers(2, 6))
    num_gates = draw(st.integers(1, 25))
    return random_netlist(num_inputs, num_gates, random.Random(seed))


def sample_patterns(circuit, seed, count=16):
    rng = random.Random(seed)
    return [
        {net: rng.randint(0, 1) for net in circuit.inputs} for _ in range(count)
    ]


class TestStructuralInvariants:
    @given(netlists())
    @settings(max_examples=60)
    def test_topological_order_is_consistent(self, circuit):
        order = [g.output for g in circuit.topological_order()]
        position = {net: i for i, net in enumerate(order)}
        for gate in circuit.gates:
            for src in gate.inputs:
                if src in position:
                    assert position[src] < position[gate.output]

    @given(netlists())
    @settings(max_examples=60)
    def test_levels_decrease_toward_outputs(self, circuit):
        levels = circuit.reverse_topological_levels()
        for gate in circuit.gates:
            for src in gate.inputs:
                if src in levels:
                    assert levels[src] >= levels[gate.output] + 1

    @given(netlists())
    @settings(max_examples=60)
    def test_renamed_is_isomorphic(self, circuit):
        renamed = circuit.renamed("p_")
        assert renamed.num_gates() == circuit.num_gates()
        for stim in sample_patterns(circuit, 1):
            v1 = simulate(circuit, stim)
            v2 = simulate(renamed, {f"p_{n}": v for n, v in stim.items()})
            for out in circuit.outputs:
                assert v1[out] == v2[f"p_{out}"]


class TestSimplificationPreservesFunction:
    @given(netlists())
    @settings(max_examples=60)
    def test_constant_propagation(self, circuit):
        simplified = constant_propagate(circuit)
        for stim in sample_patterns(circuit, 2):
            v1 = simulate(circuit, stim)
            v2 = simulate(simplified, stim)
            for out in circuit.outputs:
                assert v1[out] == v2[out]

    @given(netlists())
    @settings(max_examples=60)
    def test_dead_logic_removal(self, circuit):
        stripped = strip_dead_logic(circuit)
        assert stripped.num_gates() <= circuit.num_gates()
        for stim in sample_patterns(circuit, 3):
            v1 = simulate(circuit, stim)
            v2 = simulate(stripped, stim)
            for out in circuit.outputs:
                assert v1[out] == v2[out]

    @given(netlists())
    @settings(max_examples=30)
    def test_simplify_fixpoint(self, circuit):
        simplified = simplify(circuit)
        again = simplify(simplified)
        assert again.num_gates() == simplified.num_gates()


class TestSerialisationRoundTrips:
    @given(netlists())
    @settings(max_examples=40)
    def test_verilog(self, circuit):
        reparsed = from_verilog(to_verilog(circuit))
        assert reparsed.num_gates() == circuit.num_gates()
        for stim in sample_patterns(circuit, 4):
            v1 = simulate(circuit, stim)
            v2 = simulate(reparsed, stim)
            for out in circuit.outputs:
                assert v1[out] == v2[out]

    @given(netlists())
    @settings(max_examples=40)
    def test_blif(self, circuit):
        reparsed = from_blif(to_blif(circuit))
        for stim in sample_patterns(circuit, 5):
            v1 = simulate(circuit, stim)
            v2 = simulate(reparsed, stim)
            for out in circuit.outputs:
                assert v1[out] == v2[out]
