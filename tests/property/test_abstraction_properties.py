"""Property-based tests for the abstraction pipeline's core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import random_mutation
from repro.core import abstract_circuit
from repro.gf import GF2m
from repro.synth import random_word_function, synthesize_word_function

F4 = GF2m(2)
F8 = GF2m(3)


@st.composite
def univariate_tables(draw, field=F4):
    return {
        (a,): draw(st.integers(0, field.order - 1)) for a in range(field.order)
    }


@st.composite
def bivariate_tables(draw, field=F4):
    return {
        (a, b): draw(st.integers(0, field.order - 1))
        for a in range(field.order)
        for b in range(field.order)
    }


class TestAbstractionSoundness:
    """Theorem 4.2(ii): the abstraction IS the circuit's function."""

    @given(univariate_tables())
    @settings(max_examples=40, deadline=None)
    def test_univariate_f4(self, table):
        circuit = synthesize_word_function(F4, table, 1)
        result = abstract_circuit(circuit, F4)
        for (a,), value in table.items():
            assert result.polynomial.evaluate({"A": a}) == value

    @given(bivariate_tables())
    @settings(max_examples=15, deadline=None)
    def test_bivariate_f4(self, table):
        circuit = synthesize_word_function(F4, table, 2)
        result = abstract_circuit(circuit, F4)
        for (a, b), value in table.items():
            assert result.polynomial.evaluate({"A": a, "B": b}) == value


class TestCanonicity:
    """Corollary 4.1: one function, one canonical polynomial."""

    @given(univariate_tables())
    @settings(max_examples=25, deadline=None)
    def test_degree_bound(self, table):
        circuit = synthesize_word_function(F4, table, 1)
        result = abstract_circuit(circuit, F4)
        assert result.polynomial.degree_in("A") <= F4.order - 1

    @given(univariate_tables())
    @settings(max_examples=25, deadline=None)
    def test_case2_methods_agree(self, table):
        circuit = synthesize_word_function(F4, table, 1)
        lin = abstract_circuit(circuit, F4, case2="linearized")
        gro = abstract_circuit(circuit, F4, case2="groebner")
        assert lin.polynomial == gro.polynomial

    @given(univariate_tables(), st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_interpolation_agreement(self, table, _):
        from repro.interp import interpolate

        circuit = synthesize_word_function(F4, table, 1)
        result = abstract_circuit(circuit, F4)
        oracle = interpolate(F4, lambda a: table[(a,)], ["A"])
        lhs = {
            tuple(sorted((result.ring.variables[v], e) for v, e in m)): c
            for m, c in result.polynomial.terms.items()
        }
        rhs = {
            tuple(sorted((oracle.ring.variables[v], e) for v, e in m)): c
            for m, c in oracle.terms.items()
        }
        assert lhs == rhs


class TestEquivalenceDecisions:
    """Coefficient matching never produces false verdicts."""

    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_mutant_detection_is_sound(self, seed):
        """If polynomials differ, the circuits really differ (and vice versa)."""
        from repro.circuits import exhaustive_word_table
        from repro.synth import mastrovito_multiplier

        spec = mastrovito_multiplier(F4)
        mutant, _ = random_mutation(mastrovito_multiplier(F4), random.Random(seed))
        spec_poly = abstract_circuit(spec, F4).polynomial
        mutant_poly = abstract_circuit(mutant, F4).polynomial
        functionally_equal = exhaustive_word_table(
            spec, 2
        ) == exhaustive_word_table(mutant, 2)
        assert (spec_poly == mutant_poly) == functionally_equal
