"""Property test: parallel abstraction is bit-identical to the serial sweep.

Randomized gate-substitution errors give circuits whose canonical
polynomials are irregular (often dense, sometimes Case 2), which is where
a merge bug in the cone-sliced path would show. The invariant under test
is exact: same terms, same case, same remainder bits.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import random_mutation
from repro.core import extract_canonical
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier

F256 = GF2m(8)


def _extract_both(circuit, field, case2="linearized"):
    serial = extract_canonical(circuit, field, case2=case2)
    os.environ["REPRO_PARALLEL_MIN_GATES"] = "1"
    os.environ["REPRO_PARALLEL_FORCE"] = "1"  # engage the pool on 1-CPU hosts
    try:
        parallel = extract_canonical(circuit, field, case2=case2, jobs=2)
    finally:
        del os.environ["REPRO_PARALLEL_MIN_GATES"]
        del os.environ["REPRO_PARALLEL_FORCE"]
    assert parallel.stats.jobs == 2, "parallel path did not engage"
    return serial, parallel


@given(seed=st.integers(0, 2**20))
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_mutated_multiplier_parallel_matches_serial(seed):
    circuit, _ = random_mutation(mastrovito_multiplier(F256), seed=seed)
    serial, parallel = _extract_both(circuit, F256)
    assert parallel.polynomial.terms == serial.polynomial.terms
    assert parallel.stats.case == serial.stats.case
    assert parallel.stats.remainder_bits == serial.stats.remainder_bits


@given(seed=st.integers(0, 2**20), k=st.sampled_from([4, 5, 6]))
@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_small_fields_parallel_matches_serial(seed, k):
    field = GF2m(k)
    circuit, _ = random_mutation(mastrovito_multiplier(field), seed=seed)
    serial, parallel = _extract_both(circuit, field)
    assert parallel.polynomial.terms == serial.polynomial.terms
    assert str(parallel.polynomial) == str(serial.polynomial)
