"""Property-based tests for the SAT substrate."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import simulate
from repro.sat import CNF, solve, tseitin_encode
from repro.synth import random_netlist


@st.composite
def cnfs(draw):
    num_vars = draw(st.integers(1, 8))
    cnf = CNF()
    cnf.new_vars(num_vars)
    num_clauses = draw(st.integers(0, 20))
    for _ in range(num_clauses):
        width = draw(st.integers(1, 3))
        clause = [
            draw(st.sampled_from([1, -1])) * draw(st.integers(1, num_vars))
            for _ in range(width)
        ]
        cnf.add_clause(clause)
    return cnf


def brute_force(cnf):
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        if cnf.evaluate({v: bits[v - 1] for v in range(1, cnf.num_vars + 1)}):
            return True
    return False


class TestSolverCorrectness:
    @given(cnfs())
    @settings(max_examples=120, deadline=None)
    def test_verdict_matches_brute_force(self, cnf):
        result = solve(cnf)
        assert result.status == ("sat" if brute_force(cnf) else "unsat")

    @given(cnfs())
    @settings(max_examples=120, deadline=None)
    def test_models_are_genuine(self, cnf):
        result = solve(cnf)
        if result.status == "sat":
            assert cnf.evaluate(result.model)

    @given(cnfs())
    @settings(max_examples=40, deadline=None)
    def test_dimacs_roundtrip_same_verdict(self, cnf):
        reparsed = CNF.from_dimacs(cnf.to_dimacs())
        assert solve(cnf).status == solve(reparsed).status


class TestTseitinEquisatisfiability:
    @given(st.integers(0, 2000))
    @settings(max_examples=40, deadline=None)
    def test_encoding_consistent_with_simulation(self, seed):
        rng = random.Random(seed)
        circuit = random_netlist(rng.randint(2, 4), rng.randint(1, 12), rng)
        enc = tseitin_encode(circuit)
        stim = {n: rng.randint(0, 1) for n in circuit.inputs}
        assumptions = [
            enc.variable(n) if stim[n] else -enc.variable(n)
            for n in circuit.inputs
        ]
        result = solve(enc.cnf, assumptions=assumptions)
        assert result.status == "sat"  # circuits are total functions
        expected = simulate(circuit, stim)
        assignment = enc.assignment_of(result.model)
        for net in circuit.nets():
            assert assignment[net] == bool(expected[net])

    @given(st.integers(0, 2000))
    @settings(max_examples=25, deadline=None)
    def test_forced_disagreement_unsat(self, seed):
        """Asserting output != simulated value must be unsatisfiable."""
        rng = random.Random(seed)
        circuit = random_netlist(rng.randint(2, 4), rng.randint(1, 10), rng)
        out = circuit.outputs[0]
        enc = tseitin_encode(circuit)
        stim = {n: rng.randint(0, 1) for n in circuit.inputs}
        expected = simulate(circuit, stim)[out]
        assumptions = [
            enc.variable(n) if stim[n] else -enc.variable(n)
            for n in circuit.inputs
        ]
        assumptions.append(-enc.variable(out) if expected else enc.variable(out))
        assert solve(enc.cnf, assumptions=assumptions).status == "unsat"
