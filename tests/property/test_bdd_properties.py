"""Property-based tests for the ROBDD substrate."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, TRUE, BddManager, build_circuit_bdds
from repro.circuits import simulate
from repro.synth import random_netlist


@st.composite
def boolean_exprs(draw, num_vars=4, depth=4):
    """A random Boolean expression tree as a nested tuple."""
    if depth == 0 or draw(st.booleans()):
        return ("var", draw(st.integers(0, num_vars - 1)))
    op = draw(st.sampled_from(["and", "or", "xor", "not"]))
    if op == "not":
        return ("not", draw(boolean_exprs(num_vars=num_vars, depth=depth - 1)))
    return (
        op,
        draw(boolean_exprs(num_vars=num_vars, depth=depth - 1)),
        draw(boolean_exprs(num_vars=num_vars, depth=depth - 1)),
    )


def build_bdd(mgr, expr):
    if expr[0] == "var":
        return mgr.var(expr[1])
    if expr[0] == "not":
        return mgr.apply_not(build_bdd(mgr, expr[1]))
    op = {"and": mgr.apply_and, "or": mgr.apply_or, "xor": mgr.apply_xor}[expr[0]]
    return op(build_bdd(mgr, expr[1]), build_bdd(mgr, expr[2]))


def eval_expr(expr, assignment):
    if expr[0] == "var":
        return assignment[expr[1]]
    if expr[0] == "not":
        return 1 - eval_expr(expr[1], assignment)
    a = eval_expr(expr[1], assignment)
    b = eval_expr(expr[2], assignment)
    return {"and": a & b, "or": a | b, "xor": a ^ b}[expr[0]]


NUM_VARS = 4


class TestSemantics:
    @given(boolean_exprs())
    @settings(max_examples=80, deadline=None)
    def test_bdd_evaluates_like_expression(self, expr):
        mgr = BddManager(NUM_VARS)
        node = build_bdd(mgr, expr)
        for bits in itertools.product((0, 1), repeat=NUM_VARS):
            assert mgr.evaluate(node, list(bits)) == eval_expr(expr, list(bits))

    @given(boolean_exprs())
    @settings(max_examples=80, deadline=None)
    def test_sat_count_matches_truth_table(self, expr):
        mgr = BddManager(NUM_VARS)
        node = build_bdd(mgr, expr)
        expected = sum(
            eval_expr(expr, list(bits))
            for bits in itertools.product((0, 1), repeat=NUM_VARS)
        )
        assert mgr.sat_count(node) == expected

    @given(boolean_exprs())
    @settings(max_examples=60, deadline=None)
    def test_any_sat_is_genuine(self, expr):
        mgr = BddManager(NUM_VARS)
        node = build_bdd(mgr, expr)
        witness = mgr.any_sat(node)
        if witness is None:
            assert node == FALSE
        else:
            assert mgr.evaluate(node, witness) == 1


class TestCanonicity:
    @given(boolean_exprs(), boolean_exprs())
    @settings(max_examples=80, deadline=None)
    def test_equal_functions_equal_nodes(self, e1, e2):
        """ROBDD canonicity: same truth table iff same node id."""
        mgr = BddManager(NUM_VARS)
        n1, n2 = build_bdd(mgr, e1), build_bdd(mgr, e2)
        same_function = all(
            eval_expr(e1, list(bits)) == eval_expr(e2, list(bits))
            for bits in itertools.product((0, 1), repeat=NUM_VARS)
        )
        assert (n1 == n2) == same_function

    @given(boolean_exprs())
    @settings(max_examples=60, deadline=None)
    def test_double_negation(self, expr):
        mgr = BddManager(NUM_VARS)
        node = build_bdd(mgr, expr)
        assert mgr.apply_not(mgr.apply_not(node)) == node

    @given(boolean_exprs())
    @settings(max_examples=60, deadline=None)
    def test_xor_with_self_is_false(self, expr):
        mgr = BddManager(NUM_VARS)
        node = build_bdd(mgr, expr)
        assert mgr.apply_xor(node, node) == FALSE


class TestCircuitBdds:
    @given(st.integers(0, 3000))
    @settings(max_examples=40, deadline=None)
    def test_circuit_bdds_match_simulation(self, seed):
        rng = random.Random(seed)
        circuit = random_netlist(rng.randint(2, 5), rng.randint(1, 15), rng)
        mgr = BddManager(len(circuit.inputs))
        values = build_circuit_bdds(circuit, mgr)
        for _ in range(8):
            stim = {n: rng.randint(0, 1) for n in circuit.inputs}
            expected = simulate(circuit, stim)
            vector = [stim[n] for n in circuit.inputs]
            for out in circuit.outputs:
                assert mgr.evaluate(values[out], vector) == expected[out]
