"""Property-based tests: field axioms and F2[x] identities (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF2m, poly2

FIELDS = {k: GF2m(k) for k in (2, 4, 8, 16, 32)}

field_and_elements = st.sampled_from(sorted(FIELDS)).flatmap(
    lambda k: st.tuples(
        st.just(FIELDS[k]),
        st.integers(0, FIELDS[k].order - 1),
        st.integers(0, FIELDS[k].order - 1),
        st.integers(0, FIELDS[k].order - 1),
    )
)

polys = st.integers(0, (1 << 64) - 1)
nonzero_polys = st.integers(1, (1 << 64) - 1)


class TestPolyTwoProperties:
    @given(polys, polys)
    def test_clmul_commutative(self, a, b):
        assert poly2.clmul(a, b) == poly2.clmul(b, a)

    @given(polys, polys, polys)
    def test_clmul_associative(self, a, b, c):
        assert poly2.clmul(poly2.clmul(a, b), c) == poly2.clmul(a, poly2.clmul(b, c))

    @given(polys, polys, polys)
    def test_clmul_distributes_over_xor(self, a, b, c):
        assert poly2.clmul(a, b ^ c) == poly2.clmul(a, b) ^ poly2.clmul(a, c)

    @given(polys, nonzero_polys)
    def test_divmod_identity(self, a, b):
        q, r = poly2.divmod2(a, b)
        assert poly2.clmul(q, b) ^ r == a
        assert poly2.degree(r) < poly2.degree(b)

    @given(polys)
    def test_square_matches_self_product(self, a):
        assert poly2.square(a) == poly2.clmul(a, a)

    @given(polys, polys)
    def test_gcd_divides_both(self, a, b):
        g = poly2.gcd(a, b)
        if g:
            assert poly2.mod(a, g) == 0
            assert poly2.mod(b, g) == 0

    @given(polys, nonzero_polys)
    def test_ext_gcd_bezout(self, a, b):
        g, s, t = poly2.ext_gcd(a, b)
        assert poly2.clmul(s, a) ^ poly2.clmul(t, b) == g

    @given(polys, polys)
    def test_derivative_of_product(self, a, b):
        # (fg)' = f'g + fg' holds formally in characteristic 2 too.
        lhs = poly2.derivative(poly2.clmul(a, b))
        rhs = poly2.clmul(poly2.derivative(a), b) ^ poly2.clmul(
            a, poly2.derivative(b)
        )
        assert lhs == rhs


class TestFieldAxioms:
    @given(field_and_elements)
    def test_mul_commutative(self, data):
        field, a, b, _ = data
        assert field.mul(a, b) == field.mul(b, a)

    @given(field_and_elements)
    def test_mul_associative(self, data):
        field, a, b, c = data
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    @given(field_and_elements)
    def test_distributive(self, data):
        field, a, b, c = data
        assert field.mul(a, b ^ c) == field.mul(a, b) ^ field.mul(a, c)

    @given(field_and_elements)
    def test_inverse(self, data):
        field, a, _, _ = data
        if a:
            assert field.mul(a, field.inv(a)) == 1

    @given(field_and_elements)
    def test_fermat_small(self, data):
        field, a, _, _ = data
        assert field.pow(a, field.order) == a

    @given(field_and_elements)
    def test_frobenius_additive(self, data):
        field, a, b, _ = data
        assert field.square(a ^ b) == field.square(a) ^ field.square(b)

    @given(field_and_elements)
    def test_trace_in_prime_field(self, data):
        field, a, _, _ = data
        assert field.trace(a) in (0, 1)

    @given(field_and_elements)
    def test_pow_adds_exponents(self, data):
        field, a, _, _ = data
        if a:
            e1, e2 = 5, 9
            assert field.mul(field.pow(a, e1), field.pow(a, e2)) == field.pow(
                a, e1 + e2
            )

    @given(field_and_elements)
    def test_division_consistent(self, data):
        field, a, b, _ = data
        if b:
            assert field.mul(field.div(a, b), b) == a
