"""Property-based tests for polynomial rings, division and Gröbner bases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    LexOrder,
    Polynomial,
    PolynomialRing,
    divmod_polynomial,
    reduce_polynomial,
)
from repro.gf import GF2m

FIELD = GF2m(4)
RING = PolynomialRing(
    FIELD,
    ["x", "y", "Z"],
    order=LexOrder([0, 1, 2]),
    domains={"x": 2, "y": 2},
)
UNFOLDED = PolynomialRing(
    FIELD, ["x", "y", "Z"], order=LexOrder([0, 1, 2]), domains={"x": 2, "y": 2},
    fold=False,
)


@st.composite
def polynomials(draw, ring=RING, max_terms=5):
    terms = []
    for _ in range(draw(st.integers(0, max_terms))):
        coeff = draw(st.integers(0, FIELD.order - 1))
        powers = {}
        for name in ring.variables:
            e = draw(st.integers(0, 3))
            if e:
                powers[name] = e
        terms.append((coeff, powers))
    return ring.from_terms(terms)


@st.composite
def points(draw):
    return {
        "x": draw(st.integers(0, 1)),
        "y": draw(st.integers(0, 1)),
        "Z": draw(st.integers(0, FIELD.order - 1)),
    }


class TestRingAxioms:
    @given(polynomials(), polynomials())
    def test_addition_commutative(self, p, q):
        assert p + q == q + p

    @given(polynomials(), polynomials(), polynomials())
    def test_addition_associative(self, p, q, r):
        assert (p + q) + r == p + (q + r)

    @given(polynomials())
    def test_additive_self_inverse(self, p):
        assert (p + p).is_zero()

    @given(polynomials(), polynomials())
    def test_multiplication_commutative(self, p, q):
        assert p * q == q * p

    @given(polynomials(), polynomials(), polynomials())
    def test_multiplication_associative(self, p, q, r):
        assert (p * q) * r == p * (q * r)

    @given(polynomials(), polynomials(), polynomials())
    def test_distributivity(self, p, q, r):
        assert p * (q + r) == p * q + p * r

    @given(polynomials())
    def test_one_is_identity(self, p):
        assert p * RING.one() == p

    @given(polynomials(), polynomials())
    def test_evaluation_is_homomorphism(self, p, q):
        point = {"x": 1, "y": 0, "Z": 3}
        assert (p + q).evaluate(point) == p.evaluate(point) ^ q.evaluate(point)
        assert (p * q).evaluate(point) == FIELD.mul(
            p.evaluate(point), q.evaluate(point)
        )

    @given(polynomials(), points())
    def test_folding_preserves_function(self, p, point):
        """Folded arithmetic only ever changes the syntax, not the function."""
        # Build the same polynomial in the unfolded ring and compare values.
        unfolded = Polynomial(
            UNFOLDED,
            {m: c for m, c in p.terms.items()},
        )
        assert p.evaluate(point) == unfolded.evaluate(point)


class TestLeadingTermProperties:
    @given(polynomials(), polynomials())
    def test_lead_of_sum(self, p, q):
        """lm(p + q) <= max(lm p, lm q) whenever everything is nonzero."""
        if p.is_zero() or q.is_zero() or (p + q).is_zero():
            return
        order = RING.order
        biggest = min(
            [p.leading_monomial(), q.leading_monomial()], key=order.sort_key
        )
        s = (p + q).leading_monomial()
        assert not order.greater(s, biggest)

    @given(polynomials())
    def test_monic_has_unit_lead(self, p):
        if not p.is_zero():
            assert p.monic().leading_coefficient() == 1


class TestDivisionProperties:
    @given(polynomials(UNFOLDED), polynomials(UNFOLDED), polynomials(UNFOLDED))
    @settings(max_examples=50)
    def test_divmod_certificate(self, f, g1, g2):
        divisors = [g for g in (g1, g2) if not g.is_zero()]
        quotients, r = divmod_polynomial(f, divisors)
        recombined = r
        for q, g in zip(quotients, divisors):
            recombined = recombined + q * g
        assert recombined == f

    @given(polynomials(UNFOLDED), polynomials(UNFOLDED))
    @settings(max_examples=50)
    def test_remainder_irreducible(self, f, g):
        if g.is_zero():
            return
        r = reduce_polynomial(f, [g])
        lm = g.leading_monomial()
        for monomial in r.terms:
            assert not UNFOLDED.monomial_divides(lm, monomial)

    @given(polynomials(UNFOLDED), polynomials(UNFOLDED))
    @settings(max_examples=50)
    def test_reduction_stays_in_coset(self, f, g):
        """f - r must be a multiple of g (single-divisor case)."""
        if g.is_zero():
            return
        r = reduce_polynomial(f, [g])
        difference = f + r
        # Divide the difference by g: remainder must vanish.
        assert reduce_polynomial(difference, [g]).is_zero()
