"""Cross-method agreement: every decision procedure returns one truth.

For random word functions and random mutants, the abstraction-based
checker, the SAT miter, the fraig sweep and the BDD miter must all agree
with exhaustive simulation — a differential test across four independent
decision procedures and the simulator.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import exhaustive_word_table, random_mutation
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier, synthesize_word_function
from repro.verify import (
    check_equivalence_bdd,
    check_equivalence_fraig,
    check_equivalence_sat,
    verify_equivalence,
)

F4 = GF2m(2)


@st.composite
def table_pairs(draw):
    """Two univariate tables over F_4, biased toward being equal."""
    t1 = {(a,): draw(st.integers(0, 3)) for a in range(4)}
    if draw(st.booleans()):
        t2 = dict(t1)
    else:
        t2 = {(a,): draw(st.integers(0, 3)) for a in range(4)}
    return t1, t2


class TestAllMethodsAgreeWithTruth:
    @given(table_pairs())
    @settings(max_examples=30, deadline=None)
    def test_random_functions(self, tables):
        t1, t2 = tables
        c1 = synthesize_word_function(F4, t1, 1, name="f1")
        c2 = synthesize_word_function(F4, t2, 1, name="f2")
        truth = t1 == t2
        assert verify_equivalence(c1, c2, F4).equivalent == truth
        assert (
            check_equivalence_sat(c1, c2, max_conflicts=100_000).equivalent
            == truth
        )
        assert (
            check_equivalence_fraig(c1, c2, max_conflicts_final=100_000).equivalent
            == truth
        )
        assert (
            check_equivalence_bdd(c1, c2, max_nodes=100_000).equivalent == truth
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_mutants(self, seed):
        spec = mastrovito_multiplier(F4)
        mutant, _ = random_mutation(mastrovito_multiplier(F4), random.Random(seed))
        truth = exhaustive_word_table(spec, 2) == exhaustive_word_table(mutant, 2)
        verdicts = {
            "abstraction": verify_equivalence(spec, mutant, F4).equivalent,
            "sat": check_equivalence_sat(spec, mutant, max_conflicts=100_000).equivalent,
            "fraig": check_equivalence_fraig(
                spec, mutant, max_conflicts_final=100_000
            ).equivalent,
            "bdd": check_equivalence_bdd(spec, mutant, max_nodes=100_000).equivalent,
        }
        assert all(v == truth for v in verdicts.values()), (seed, verdicts, truth)
