"""Unit tests for the Montgomery multiplier generators."""

import random

import pytest

from repro.circuits import simulate_words
from repro.gf import GF2m
from repro.synth import (
    montgomery_block,
    montgomery_constant_block,
    montgomery_multiplier,
    montgomery_r,
    montgomery_r2,
)


class TestRadix:
    def test_r_is_alpha_to_k(self, f16):
        assert montgomery_r(f16) == f16.pow(f16.alpha, 4)

    def test_r2_is_r_squared(self, f16):
        r = montgomery_r(f16)
        assert montgomery_r2(f16) == f16.mul(r, r)

    def test_r_invertible(self, any_field):
        r = montgomery_r(any_field)
        assert any_field.mul(r, any_field.inv(r)) == 1


class TestBlock:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_computes_abr_inverse_exhaustive(self, k):
        field = GF2m(k)
        block = montgomery_block(field)
        r_inv = field.inv(montgomery_r(field))
        points = [(a, b) for a in range(field.order) for b in range(field.order)]
        result = simulate_words(
            block, {"A": [p[0] for p in points], "B": [p[1] for p in points]}
        )
        for (a, b), g in zip(points, result["G"]):
            assert g == field.mul(field.mul(a, b), r_inv)

    def test_random_k8(self, f256):
        block = montgomery_block(f256)
        r_inv = f256.inv(montgomery_r(f256))
        rng = random.Random(8)
        points = [(rng.randrange(256), rng.randrange(256)) for _ in range(100)]
        result = simulate_words(
            block, {"A": [p[0] for p in points], "B": [p[1] for p in points]}
        )
        for (a, b), g in zip(points, result["G"]):
            assert g == f256.mul(f256.mul(a, b), r_inv)

    def test_structure(self, f256):
        block = montgomery_block(f256)
        assert block.gate_counts()["and"] == 64  # k^2 partial products
        block.validate()


class TestConstantBlock:
    def test_smaller_than_generic(self, f256):
        generic = montgomery_block(f256)
        const = montgomery_constant_block(f256, montgomery_r2(f256))
        assert const.num_gates() < generic.num_gates()
        assert "and" not in const.gate_counts()  # all partial products folded

    def test_single_input_word(self, f16):
        const = montgomery_constant_block(f16, 1)
        assert list(const.input_words) == ["A"]

    def test_function_matches_generic(self, f16):
        constant = montgomery_r2(f16)
        generic = montgomery_block(f16)
        const = montgomery_constant_block(f16, constant)
        for a in range(16):
            full = simulate_words(generic, {"A": [a], "B": [constant]})["G"][0]
            slim = simulate_words(const, {"A": [a]})["G"][0]
            assert full == slim

    def test_identity_block_tiny(self, f256):
        # MontMul(A, 1) = A * R^-1: a pure XOR/shift network.
        block = montgomery_constant_block(f256, 1)
        assert block.num_gates() < montgomery_block(f256).num_gates() // 4


class TestHierarchy:
    def test_fig1_block_names(self, f16):
        hier = montgomery_multiplier(f16)
        assert [b.name for b in hier.blocks] == [
            "BLK_A",
            "BLK_B",
            "BLK_Mid",
            "BLK_Out",
        ]

    def test_block_size_shape(self, f256):
        """Paper Table 2: Mid is the largest block, Out the smallest."""
        hier = montgomery_multiplier(f256)
        sizes = {b.name: b.circuit.num_gates() for b in hier.blocks}
        assert sizes["BLK_Mid"] > sizes["BLK_A"] > sizes["BLK_Out"]
        assert sizes["BLK_A"] == sizes["BLK_B"]

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_computes_product_exhaustive(self, k):
        field = GF2m(k)
        hier = montgomery_multiplier(field)
        points = [(a, b) for a in range(field.order) for b in range(field.order)]
        result = hier.simulate_words(
            {"A": [p[0] for p in points], "B": [p[1] for p in points]}
        )
        for (a, b), g in zip(points, result["G"]):
            assert g == field.mul(a, b)

    def test_random_k8(self, f256):
        hier = montgomery_multiplier(f256)
        rng = random.Random(88)
        points = [(rng.randrange(256), rng.randrange(256)) for _ in range(64)]
        result = hier.simulate_words(
            {"A": [p[0] for p in points], "B": [p[1] for p in points]}
        )
        for (a, b), g in zip(points, result["G"]):
            assert g == f256.mul(a, b)

    def test_structurally_dissimilar_from_mastrovito(self, f256):
        """The whole premise: same function, very different structure."""
        from repro.synth import mastrovito_multiplier

        mast = mastrovito_multiplier(f256)
        flat = montgomery_multiplier(f256).flatten()
        assert flat.num_gates() > 1.5 * mast.num_gates()
        assert flat.logic_depth() > 2 * mast.logic_depth()


class TestMontgomerySquarer:
    """Wu [2]: the Montgomery squarer G = A^2 * R^-1 (no AND gates)."""

    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_function_exhaustive(self, k):
        from repro.synth import montgomery_squarer

        field = GF2m(k)
        squarer = montgomery_squarer(field)
        r_inv = field.inv(montgomery_r(field))
        values = list(range(field.order))
        result = simulate_words(squarer, {"A": values})
        for a, g in zip(values, result["G"]):
            assert g == field.mul(field.square(a), r_inv)

    def test_pure_xor_network(self, f256):
        from repro.synth import montgomery_squarer

        counts = montgomery_squarer(f256).gate_counts()
        assert "and" not in counts

    def test_abstracts_to_scaled_square(self, f256):
        from repro.core import abstract_circuit
        from repro.synth import montgomery_squarer

        result = abstract_circuit(montgomery_squarer(f256), f256)
        r_inv = f256.inv(montgomery_r(f256))
        assert result.polynomial == result.ring.var("A", 2).scale(r_inv)

    def test_agrees_with_multiplier_block_on_diagonal(self, f16):
        from repro.synth import montgomery_squarer

        squarer = montgomery_squarer(f16)
        block = montgomery_block(f16)
        for a in range(16):
            sq = simulate_words(squarer, {"A": [a]})["G"][0]
            mul = simulate_words(block, {"A": [a], "B": [a]})["G"][0]
            assert sq == mul
