"""Unit tests for the ECC point-doubling datapath."""

import pytest

from repro.core import abstract_hierarchy
from repro.gf import GF2m
from repro.synth import (
    constant_adder,
    point_double_datapath,
    point_double_reference,
    point_double_spec,
)


def comparable(poly):
    ring = poly.ring
    return {
        tuple(sorted((ring.variables[v], e) for v, e in m)): c
        for m, c in poly.terms.items()
    }


class TestConstantAdder:
    @pytest.mark.parametrize("constant", [0, 1, 5, 15])
    def test_function(self, f16, constant):
        from repro.circuits import simulate_words

        circuit = constant_adder(f16, constant)
        result = simulate_words(circuit, {"A": list(range(16))})
        for a, z in zip(range(16), result["Z"]):
            assert z == a ^ constant

    def test_structure(self, f16):
        counts = constant_adder(f16, 0b0101).gate_counts()
        assert counts == {"not": 2, "buf": 2}

    def test_out_of_range_rejected(self, f16):
        with pytest.raises(ValueError):
            constant_adder(f16, 16)


class TestReferenceFormula:
    def test_doubles_points_on_curve(self, f16):
        """2P stays on the curve y^2 + xy = x^3 + a2 x^2 + a6."""
        a2 = 1
        found = 0
        for a6 in range(1, 16):
            for x in range(1, 16):
                for y in range(16):
                    lhs = f16.square(y) ^ f16.mul(x, y)
                    rhs = f16.pow(x, 3) ^ f16.mul(a2, f16.square(x)) ^ a6
                    if lhs != rhs:
                        continue
                    x3, y3 = point_double_reference(f16, x, y, a2)
                    if x3 == 0:
                        continue  # doubled to a 2-torsion-adjacent point
                    lhs3 = f16.square(y3) ^ f16.mul(x3, y3)
                    rhs3 = f16.pow(x3, 3) ^ f16.mul(a2, f16.square(x3)) ^ a6
                    assert lhs3 == rhs3, (a6, x, y)
                    found += 1
        assert found > 10  # the sweep exercised real curve points

    def test_x_zero_rejected(self, f16):
        with pytest.raises(ZeroDivisionError):
            point_double_reference(f16, 0, 3)


class TestDatapath:
    @pytest.mark.parametrize("k", [3, 4, 8])
    def test_matches_reference_formula(self, k):
        field = GF2m(k)
        datapath = point_double_datapath(field)
        xs = list(range(1, field.order))
        ys = [(x * 7) % field.order for x in xs]
        sim = datapath.simulate_words({"X": xs, "Y": ys})
        for x, y, x3, y3 in zip(xs, ys, sim["X3"], sim["Y3"]):
            assert (x3, y3) == point_double_reference(field, x, y)

    def test_contains_nested_inverter(self, f16):
        datapath = point_double_datapath(f16)
        inv = next(b for b in datapath.blocks if b.name == "INV")
        assert inv.is_nested

    def test_flatten_through_nesting(self, f16):
        from repro.circuits import simulate_words

        datapath = point_double_datapath(f16)
        flat = datapath.flatten()
        xs = list(range(1, 16))
        ys = [(x * 5) % 16 for x in xs]
        assert simulate_words(flat, {"X": xs, "Y": ys}) == datapath.simulate_words(
            {"X": xs, "Y": ys}
        )


class TestAbstractionVsSpec:
    @pytest.mark.parametrize("k", [3, 4, 8, 16])
    def test_datapath_equals_affine_spec(self, k):
        field = GF2m(k)
        datapath = point_double_datapath(field, a2=1)
        ring, spec = point_double_spec(field, a2=1)
        result = abstract_hierarchy(datapath, field)
        for word in ("X3", "Y3"):
            assert comparable(result.polynomials[word]) == comparable(spec[word]), word

    def test_different_a2_detected(self, f16):
        """Datapath with a2=1 must not match the a2=2 spec."""
        datapath = point_double_datapath(f16, a2=1)
        _, wrong_spec = point_double_spec(f16, a2=2)
        result = abstract_hierarchy(datapath, f16)
        assert comparable(result.polynomials["X3"]) != comparable(wrong_spec["X3"])

    def test_buggy_multiplier_detected(self, f16):
        from repro.circuits import substitute_gate_type

        datapath = point_double_datapath(f16)
        block = next(b for b in datapath.blocks if b.name == "MUL_LX3")
        gate = next(g for g in block.circuit.gates if g.gate_type.value == "and")
        block.circuit, _ = substitute_gate_type(block.circuit, gate.output)
        _, spec = point_double_spec(f16)
        result = abstract_hierarchy(datapath, f16)
        assert comparable(result.polynomials["Y3"]) != comparable(spec["Y3"])

    def test_spec_agrees_with_reference_numerically(self, f16):
        ring, spec = point_double_spec(f16)
        for x in range(1, 16):
            for y in (0, 3, 9):
                x3, y3 = point_double_reference(f16, x, y)
                assert spec["X3"].evaluate({"X": x, "Y": y}) == x3
                assert spec["Y3"].evaluate({"X": x, "Y": y}) == y3
