"""Unit tests for truth-table synthesis and random workloads."""

import random

import pytest

from repro.circuits import exhaustive_word_table
from repro.gf import GF2m
from repro.synth import (
    random_netlist,
    random_word_function,
    synthesize_word_function,
)


class TestSynthesizeWordFunction:
    def test_univariate_square(self, f4):
        table = {(a,): f4.square(a) for a in range(4)}
        circuit = synthesize_word_function(f4, table, 1)
        realised = exhaustive_word_table(circuit, 2)
        for (a,), value in table.items():
            assert realised[(a,)]["Z"] == value

    def test_bivariate_multiplication(self, f4):
        table = {(a, b): f4.mul(a, b) for a in range(4) for b in range(4)}
        circuit = synthesize_word_function(f4, table, 2)
        realised = exhaustive_word_table(circuit, 2)
        for point, value in table.items():
            assert realised[point]["Z"] == value

    def test_constant_function(self, f4):
        table = {(a,): 3 for a in range(4)}
        circuit = synthesize_word_function(f4, table, 1)
        realised = exhaustive_word_table(circuit, 2)
        assert all(out["Z"] == 3 for out in realised.values())

    def test_incomplete_table_rejected(self, f4):
        with pytest.raises(ValueError):
            synthesize_word_function(f4, {(0,): 1}, 1)

    def test_word_names(self, f4):
        table = {(a, b): a ^ b for a in range(4) for b in range(4)}
        circuit = synthesize_word_function(f4, table, 2)
        assert list(circuit.input_words) == ["A", "B"]


class TestRandomWordFunction:
    def test_circuit_matches_returned_table(self, f4):
        circuit, table = random_word_function(f4, 1, random.Random(1))
        realised = exhaustive_word_table(circuit, 2)
        for point, value in table.items():
            assert realised[point]["Z"] == value

    def test_two_inputs(self, f4):
        circuit, table = random_word_function(f4, 2, random.Random(2))
        realised = exhaustive_word_table(circuit, 2)
        for point, value in table.items():
            assert realised[point]["Z"] == value

    def test_deterministic_with_seed(self, f4):
        _, t1 = random_word_function(f4, 1, random.Random(9))
        _, t2 = random_word_function(f4, 1, random.Random(9))
        assert t1 == t2


class TestRandomNetlist:
    def test_valid_and_acyclic(self):
        for seed in range(5):
            circuit = random_netlist(4, 30, random.Random(seed))
            circuit.validate()
            assert circuit.num_gates() == 30

    def test_has_outputs(self):
        circuit = random_netlist(3, 8, random.Random(0))
        assert circuit.outputs
