"""Unit tests for the Mastrovito multiplier generator."""

import random

import pytest

from repro.circuits import simulate_words
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier, reduction_matrix


class TestReductionMatrix:
    def test_first_rows_are_identity(self, f16):
        rows = reduction_matrix(f16)
        for t in range(4):
            assert rows[t] == 1 << t

    def test_row_count(self, f16):
        assert len(reduction_matrix(f16)) == 2 * 4 - 1

    def test_high_rows_reduce(self, f16):
        rows = reduction_matrix(f16)
        # alpha^4 = alpha + 1 for x^4 + x + 1
        assert rows[4] == 0b0011
        assert rows[5] == 0b0110

    def test_rows_match_field_powers(self, f256):
        rows = reduction_matrix(f256)
        for t, row in enumerate(rows):
            assert row == f256.pow(f256.alpha, t)


class TestStructure:
    def test_gate_count_quadratic(self, f16):
        k = 4
        c = mastrovito_multiplier(f16)
        counts = c.gate_counts()
        assert counts["and"] == k * k

    def test_words_declared(self, f16):
        c = mastrovito_multiplier(f16)
        assert list(c.input_words) == ["A", "B"]
        assert list(c.output_words) == ["Z"]
        assert len(c.output_words["Z"]) == 4

    def test_validates(self, f256):
        mastrovito_multiplier(f256).validate()

    def test_depth_logarithmic(self, f256):
        # Balanced trees: depth should be O(log k), far below k.
        assert mastrovito_multiplier(f256).logic_depth() <= 12

    def test_array_variant_deeper(self, f256):
        tree = mastrovito_multiplier(f256, tree=True)
        array = mastrovito_multiplier(f256, tree=False)
        assert array.logic_depth() >= tree.logic_depth()

    def test_custom_name(self, f16):
        assert mastrovito_multiplier(f16, name="mymul").name == "mymul"


class TestFunction:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_exhaustive_small(self, k):
        field = GF2m(k)
        c = mastrovito_multiplier(field)
        points = [(a, b) for a in range(field.order) for b in range(field.order)]
        result = simulate_words(
            c, {"A": [p[0] for p in points], "B": [p[1] for p in points]}
        )
        for (a, b), z in zip(points, result["Z"]):
            assert z == field.mul(a, b)

    @pytest.mark.parametrize("k", [8, 12, 16])
    def test_random_larger(self, k):
        field = GF2m(k)
        c = mastrovito_multiplier(field)
        rng = random.Random(k)
        points = [
            (rng.randrange(field.order), rng.randrange(field.order))
            for _ in range(100)
        ]
        result = simulate_words(
            c, {"A": [p[0] for p in points], "B": [p[1] for p in points]}
        )
        for (a, b), z in zip(points, result["Z"]):
            assert z == field.mul(a, b)

    def test_array_variant_same_function(self, f16):
        tree = mastrovito_multiplier(f16, tree=True)
        array = mastrovito_multiplier(f16, tree=False)
        stim = {
            "A": [a for a in range(16) for _ in range(16)],
            "B": [b for _ in range(16) for b in range(16)],
        }
        assert simulate_words(tree, stim) == simulate_words(array, stim)

    def test_nonstandard_modulus(self):
        field = GF2m(4, modulus=0b11001)  # x^4 + x^3 + 1
        c = mastrovito_multiplier(field)
        stim = {
            "A": [a for a in range(16) for _ in range(16)],
            "B": [b for _ in range(16) for b in range(16)],
        }
        result = simulate_words(c, stim)
        for i, z in enumerate(result["Z"]):
            assert z == field.mul(i // 16, i % 16)
