"""Unit tests for the Itoh-Tsujii inversion datapath."""

import pytest

from repro.circuits import simulate_words
from repro.core import abstract_hierarchy
from repro.gf import GF2m
from repro.synth import frobenius_power_circuit, itoh_tsujii_inverter


class TestFrobeniusPower:
    @pytest.mark.parametrize("e", [0, 1, 2, 3])
    def test_function(self, f16, e):
        circuit = frobenius_power_circuit(f16, e)
        values = list(range(16))
        result = simulate_words(circuit, {"A": values})
        for a, z in zip(values, result["Z"]):
            assert z == f16.pow(a, 1 << e)

    def test_e0_is_identity(self, f16):
        circuit = frobenius_power_circuit(f16, 0)
        result = simulate_words(circuit, {"A": list(range(16))})
        assert result["Z"] == list(range(16))

    def test_is_linear_network(self, f256):
        counts = frobenius_power_circuit(f256, 3).gate_counts()
        assert set(counts) <= {"xor", "buf", "const0"}

    def test_negative_rejected(self, f16):
        with pytest.raises(ValueError):
            frobenius_power_circuit(f16, -1)

    def test_full_period(self, f16):
        """Frobenius^k is the identity map."""
        circuit = frobenius_power_circuit(f16, 4)
        result = simulate_words(circuit, {"A": list(range(16))})
        assert result["Z"] == list(range(16))


class TestItohTsujii:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6, 8])
    def test_inverts_every_element(self, k):
        field = GF2m(k)
        hierarchy = itoh_tsujii_inverter(field)
        values = list(range(field.order))
        out_word = hierarchy.output_words[0]
        result = hierarchy.simulate_words({"A": values})
        for a, z in zip(values, result[out_word]):
            expected = 0 if a == 0 else field.inv(a)
            assert z == expected

    @pytest.mark.parametrize("k", [2, 3, 4, 5, 8, 16])
    def test_abstracts_to_fermat_monomial(self, k):
        """The composed canonical polynomial must be A^(q-2)."""
        field = GF2m(k)
        hierarchy = itoh_tsujii_inverter(field)
        result = abstract_hierarchy(hierarchy, field)
        out_word = hierarchy.output_words[0]
        assert result.polynomials[out_word] == result.ring.var(
            "A", field.order - 2
        )

    def test_block_count_logarithmic(self):
        """ITA uses O(log k) multiplications, not O(k)."""
        field = GF2m(16)
        hierarchy = itoh_tsujii_inverter(field)
        multipliers = [b for b in hierarchy.blocks if b.name.startswith("M")]
        assert len(multipliers) <= 2 * 16 .bit_length()

    def test_flattened_matches_hierarchy(self, f16):
        hierarchy = itoh_tsujii_inverter(f16)
        flat = hierarchy.flatten()
        out_word = hierarchy.output_words[0]
        values = list(range(16))
        hier_out = hierarchy.simulate_words({"A": values})[out_word]
        flat_out = simulate_words(flat, {"A": values})[out_word]
        assert hier_out == flat_out

    def test_k1_rejected(self):
        with pytest.raises(ValueError):
            itoh_tsujii_inverter(GF2m(1))

    def test_buggy_inverter_detected(self, f16):
        """Break one multiplier block: composition must not be A^14."""
        from repro.circuits import substitute_gate_type

        hierarchy = itoh_tsujii_inverter(f16)
        mul_block = next(b for b in hierarchy.blocks if b.name.startswith("M"))
        gate = next(
            g for g in mul_block.circuit.gates if g.gate_type.value == "and"
        )
        mul_block.circuit, _ = substitute_gate_type(mul_block.circuit, gate.output)
        result = abstract_hierarchy(hierarchy, f16)
        out_word = hierarchy.output_words[0]
        assert result.polynomials[out_word] != result.ring.var("A", 14)
