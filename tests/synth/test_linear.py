"""Unit tests for linear datapath generators (adder, squarer, const-mult)."""

import pytest

from repro.circuits import GateType, simulate_words
from repro.gf import GF2m
from repro.synth import (
    constant_multiplier,
    gf_adder,
    gf_squarer,
    linear_map_circuit,
)


class TestAdder:
    def test_function(self, f16):
        adder = gf_adder(f16)
        points = [(a, b) for a in range(16) for b in range(16)]
        result = simulate_words(
            adder, {"A": [p[0] for p in points], "B": [p[1] for p in points]}
        )
        for (a, b), z in zip(points, result["Z"]):
            assert z == a ^ b

    def test_structure_is_k_xors(self, f16):
        assert gf_adder(f16).gate_counts() == {"xor": 4}


class TestSquarer:
    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_function_exhaustive(self, k):
        field = GF2m(k)
        squarer = gf_squarer(field)
        values = list(field.elements())
        result = simulate_words(squarer, {"A": values})
        for a, z in zip(values, result["Z"]):
            assert z == field.square(a)

    def test_pure_xor_network(self, f256):
        counts = gf_squarer(f256).gate_counts()
        assert set(counts) <= {"xor", "buf", "const0"}


class TestConstantMultiplier:
    @pytest.mark.parametrize("constant", [0, 1, 2, 3, 7, 15])
    def test_function(self, f16, constant):
        circuit = constant_multiplier(f16, constant)
        values = list(range(16))
        result = simulate_words(circuit, {"A": values})
        for a, z in zip(values, result["Z"]):
            assert z == f16.mul(constant, a)

    def test_zero_constant_all_const0(self, f16):
        circuit = constant_multiplier(f16, 0)
        assert set(circuit.gate_counts()) == {"const0"}

    def test_one_constant_all_buffers(self, f16):
        circuit = constant_multiplier(f16, 1)
        assert set(circuit.gate_counts()) == {"buf"}


class TestLinearMap:
    def test_column_count_checked(self, f16):
        with pytest.raises(ValueError):
            linear_map_circuit(f16, [1, 2], "bad")

    def test_arbitrary_linear_map(self, f16):
        # Map alpha^i -> alpha^(i+1) (multiply by alpha), built by hand.
        columns = [f16.pow(f16.alpha, i + 1) for i in range(4)]
        circuit = linear_map_circuit(f16, columns, "mul_alpha")
        result = simulate_words(circuit, {"A": list(range(16))})
        for a, z in zip(range(16), result["Z"]):
            assert z == f16.mul(a, f16.alpha)
