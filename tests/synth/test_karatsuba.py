"""Unit tests for the Karatsuba multiplier generator."""

import random

import pytest

from repro.circuits import Circuit, simulate_words
from repro.gf import GF2m
from repro.synth import karatsuba_multiplier, karatsuba_product, mastrovito_multiplier


class TestKaratsubaProduct:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8])
    def test_polynomial_product(self, n):
        """Gate network computes the F2[x] product for all widths."""
        from repro.circuits import simulate
        from repro.gf import poly2

        circuit = Circuit(f"prod{n}")
        a = circuit.add_inputs(f"a{i}" for i in range(n))
        b = circuit.add_inputs(f"b{i}" for i in range(n))
        nets = karatsuba_product(circuit, list(a), list(b), threshold=2)
        rng = random.Random(n)
        for _ in range(30):
            av = rng.randrange(1 << n)
            bv = rng.randrange(1 << n)
            stim = {f"a{i}": (av >> i) & 1 for i in range(n)}
            stim.update({f"b{i}": (bv >> i) & 1 for i in range(n)})
            values = simulate(circuit, stim)
            expected = poly2.clmul(av, bv)
            for t, net in enumerate(nets):
                bit = values[net] if net is not None else 0
                assert bit == (expected >> t) & 1, (n, av, bv, t)

    def test_structural_zeros_emitted_as_none(self):
        circuit = Circuit("p1")
        a = circuit.add_inputs(["a0"])
        b = circuit.add_inputs(["b0"])
        nets = karatsuba_product(circuit, list(a), list(b), threshold=2)
        assert len(nets) == 1 and nets[0] is not None


class TestKaratsubaMultiplier:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 8])
    def test_exhaustive_or_random(self, k):
        field = GF2m(k)
        circuit = karatsuba_multiplier(field, threshold=2)
        rng = random.Random(k)
        count = min(field.order ** 2, 256)
        points = [
            (rng.randrange(field.order), rng.randrange(field.order))
            for _ in range(count)
        ]
        result = simulate_words(
            circuit, {"A": [p[0] for p in points], "B": [p[1] for p in points]}
        )
        for (a, b), z in zip(points, result["Z"]):
            assert z == field.mul(a, b)

    def test_fewer_and_gates_than_mastrovito(self):
        """The point of Karatsuba: sub-quadratic AND count."""
        field = GF2m(32)
        kar = karatsuba_multiplier(field)
        mast = mastrovito_multiplier(field)
        assert kar.gate_counts()["and"] < mast.gate_counts()["and"]

    def test_abstracts_to_ab(self, f256):
        from repro.core import abstract_circuit

        result = abstract_circuit(karatsuba_multiplier(f256), f256)
        assert result.polynomial == result.ring.var("A") * result.ring.var("B")

    def test_equivalent_to_mastrovito(self, f16):
        from repro.verify import verify_equivalence

        outcome = verify_equivalence(
            mastrovito_multiplier(f16), karatsuba_multiplier(f16), f16
        )
        assert outcome.equivalent

    def test_threshold_variants_agree(self, f256):
        t2 = karatsuba_multiplier(f256, threshold=2)
        t8 = karatsuba_multiplier(f256, threshold=8)
        rng = random.Random(5)
        stim = {
            "A": [rng.randrange(256) for _ in range(32)],
            "B": [rng.randrange(256) for _ in range(32)],
        }
        assert simulate_words(t2, stim) == simulate_words(t8, stim)

    def test_validates(self, f256):
        karatsuba_multiplier(f256).validate()
