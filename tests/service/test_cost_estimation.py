"""Scheduler cost estimation: per-(op, k) Retry-After buckets, fitted-model
seeding, and the daemon's REDTRACE flight recorder."""

import json

import pytest

from repro.obs import redtrace
from repro.obs.costmodel import CostModel
from repro.service.queue import BoundedJobQueue
from repro.service.scheduler import Scheduler
from repro.service.store import JobRecord, JobStore


@pytest.fixture(autouse=True)
def clean_recorder():
    redtrace.reset_after_fork()
    yield
    redtrace.reset_after_fork()


def _scheduler(tmp_path, queue=None, **kwargs):
    return Scheduler(
        queue or BoundedJobQueue(capacity=8),
        JobStore(),
        workers=2,
        **kwargs,
    )


class TestRetryAfterHint:
    def test_empty_queue_falls_back_to_global_estimate(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        assert scheduler.retry_after_hint() >= 1

    def test_buckets_price_queued_work_per_op_and_k(self, tmp_path):
        queue = BoundedJobQueue(capacity=8)
        scheduler = _scheduler(tmp_path, queue=queue)
        # a burst of fast small-field jobs must not dilute big-field pricing
        scheduler.estimator.observe("verify", 16, 0.01)
        scheduler.estimator.observe("verify", 64, 80.0)
        for _ in range(3):
            queue.put(JobRecord(kind="verify", params={"k": 64}, request_key="x"))
        hint = scheduler.retry_after_hint()
        # 3 jobs x 80s over 2 workers = 120s
        assert hint == 120
        queue.drain_remaining()
        for _ in range(3):
            queue.put(JobRecord(kind="verify", params={"k": 16}, request_key="y"))
        assert scheduler.retry_after_hint() == 1

    def test_hint_clamped_to_120(self, tmp_path):
        queue = BoundedJobQueue(capacity=8)
        scheduler = _scheduler(tmp_path, queue=queue)
        scheduler.estimator.observe("verify", 163, 10_000.0)
        queue.put(JobRecord(kind="verify", params={"k": 163}, request_key="x"))
        assert scheduler.retry_after_hint() == 120

    def test_fitted_model_seeds_unseen_buckets(self, tmp_path):
        model = CostModel.fit(
            [{"op": "verify", "seconds": 30.0, "k": 64} for _ in range(3)]
        )
        queue = BoundedJobQueue(capacity=8)
        scheduler = _scheduler(tmp_path, queue=queue)
        scheduler.estimator.model = model
        queue.put(JobRecord(kind="verify", params={"k": 64}, request_key="x"))
        seconds, source = scheduler.estimator.estimate("verify", 64)
        assert (seconds, source) == (30.0, "model")
        assert scheduler.retry_after_hint() == 15  # 30s / 2 workers

    def test_cost_model_path_loaded_at_construction(self, tmp_path):
        model = CostModel.fit(
            [{"op": "abstract", "seconds": 4.0, "k": 32} for _ in range(2)]
        )
        path = str(tmp_path / "model.json")
        model.save(path)
        scheduler = _scheduler(tmp_path, cost_model_path=path)
        seconds, source = scheduler.estimator.estimate("abstract", 32)
        assert (seconds, source) == (4.0, "model")

    def test_unreadable_cost_model_degrades_to_ewma(self, tmp_path, caplog):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        scheduler = _scheduler(tmp_path, cost_model_path=str(bad))
        assert scheduler.estimator.model is None
        _, source = scheduler.estimator.estimate("verify", 16)
        assert source == "global"


class TestFlightRecorder:
    def test_daemon_opens_ring_recorder_and_exports_gauge(self, service_factory):
        service = service_factory(trace_ring=64)
        assert redtrace.active_writer() is not None
        assert redtrace.active_writer().ring
        text = service.render_metrics()
        assert "repro_trace_buffered_events" in text
        service.stop()
        assert redtrace.active_writer() is None

    def test_trace_ring_zero_disables_recorder(self, service_factory):
        service_factory(trace_ring=0)
        assert redtrace.active_writer() is None

    def test_daemon_defers_to_an_existing_recording(self, service_factory, tmp_path):
        writer = redtrace.start_recording(
            path=str(tmp_path / "outer.redtrace"), op="verify", params={}
        )
        try:
            service = service_factory(trace_ring=64)
            assert redtrace.active_writer() is writer
            service.stop()
            assert redtrace.active_writer() is writer
        finally:
            redtrace.stop_recording()
