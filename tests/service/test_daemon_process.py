"""Daemon lifecycle as a real OS process: boot, serve, SIGTERM, exit 0.

The same contract the CI ``service-smoke`` job enforces, runnable locally:
``repro serve`` on an ephemeral port, ``repro submit`` against it (both the
equivalent pair and a buggy mutant), a clean ``/metrics`` scrape, then
SIGTERM → graceful drain → exit status 0.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.circuits import write_verilog
from repro.circuits.mutate import substitute_gate_type
from repro.gf import GF2m
from repro.service import ServiceClient

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture()
def netlists(tmp_path):
    from repro.synth import mastrovito_multiplier, montgomery_multiplier

    field = GF2m(4)
    impl = montgomery_multiplier(field).flatten()
    mutant, _ = substitute_gate_type(impl, impl.gates[0].output)
    paths = {}
    for name, circuit in (
        ("spec", mastrovito_multiplier(field)),
        ("impl", impl),
        ("mutant", mutant),
    ):
        paths[name] = str(tmp_path / f"{name}.v")
        write_verilog(circuit, paths[name])
    return paths


@pytest.fixture()
def daemon(tmp_path):
    """A ``repro serve`` subprocess on an ephemeral port; yields (proc, addr)."""
    port_file = tmp_path / "daemon.addr"
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--port-file", str(port_file),
            "--workers", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--drain-timeout", "10",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 30.0
    while not port_file.exists():
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon died during boot: {proc.stderr.read().decode()}"
            )
        if time.monotonic() > deadline:
            proc.kill()
            raise TimeoutError("daemon never wrote its port file")
        time.sleep(0.05)
    address = port_file.read_text().strip()
    yield proc, address
    if proc.poll() is None:
        proc.kill()
        proc.wait(10)


def run_cli(args, timeout=120):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env, capture_output=True, text=True, timeout=timeout,
    )


class TestDaemonProcess:
    def test_serve_submit_sigterm_cycle(self, daemon, netlists):
        proc, address = daemon
        host, port = address.rsplit(":", 1)

        equivalent = run_cli(
            ["submit", netlists["spec"], netlists["impl"], "-k", "4",
             "--host", host, "--port", port]
        )
        assert equivalent.returncode == 0, equivalent.stderr
        assert "EQUIVALENT" in equivalent.stdout

        buggy = run_cli(
            ["submit", netlists["spec"], netlists["mutant"], "-k", "4",
             "--host", host, "--port", port]
        )
        assert buggy.returncode == 1, buggy.stderr
        assert "NOT-EQUIVALENT" in buggy.stdout

        client = ServiceClient.from_address(address)
        try:
            metrics = client.metrics_text()
        finally:
            client.close()
        assert "repro_service_jobs_completed 2" in metrics
        assert "repro_service_requests 2" in metrics

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0

    def test_submit_via_port_file(self, daemon, netlists, tmp_path):
        proc, address = daemon
        port_file = tmp_path / "copy.addr"
        port_file.write_text(address + "\n")
        result = run_cli(
            ["submit", netlists["spec"], netlists["impl"], "-k", "4",
             "--port-file", str(port_file)]
        )
        assert result.returncode == 0, result.stderr
        assert "EQUIVALENT" in result.stdout

    def test_version_flag(self):
        from repro import __version__

        result = run_cli(["--version"], timeout=60)
        assert result.returncode == 0
        assert result.stdout.strip() == f"repro {__version__}"
