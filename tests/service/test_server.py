"""HTTP front end: routing, validation, backpressure, dedup, drain.

The executor bodies are monkeypatched (``repro.service.scheduler.run_verify``)
so queue/backpressure timing is deterministic — jobs block on an Event the
test controls. Real end-to-end verification runs in ``test_end_to_end.py``.
"""

import json
import threading
import time

import pytest

import repro.service.scheduler as scheduler_module
from repro import __version__
from repro.service import ServiceError


@pytest.fixture()
def blocked_jobs(monkeypatch):
    """Make every verify job block until the test releases it."""
    release = threading.Event()
    running = threading.Event()

    def fake_run_verify(params, cache=None, counters=None, seed=None, inflight=None):
        running.set()
        if not release.wait(10.0):
            raise TimeoutError("test never released the job")
        return {"verdict": "equivalent", "counterexample": None}

    monkeypatch.setattr(scheduler_module, "run_verify", fake_run_verify)
    yield {"release": release, "running": running}
    release.set()  # never leave worker threads parked at teardown


def submit_body(texts, tag=""):
    """A distinct valid submission body per tag (distinct request keys)."""
    return {
        "k": 4,
        "spec_text": texts["spec"] + f"\n// {tag}" if tag else texts["spec"],
        "impl_text": texts["impl"],
    }


class TestRoutingAndValidation:
    def test_health_reports_version_and_server_header(
        self, service_factory, client_for, texts
    ):
        service = service_factory()
        client = client_for(service)
        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == __version__
        assert health["workers"] == 2
        assert health["accepting"] is True

    def test_server_header_value(self, service_factory, texts):
        import http.client

        service = service_factory()
        host, port = service.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            response.read()
            assert response.getheader("Server") == f"repro/{__version__}"
        finally:
            conn.close()

    def test_readyz_flips_when_draining(self, service_factory, client_for):
        service = service_factory()
        client = client_for(service)
        status, _, body = client._once("GET", "/readyz", None)
        assert (status, body.strip()) == (200, b"ready")
        service._accepting = False
        status, _, body = client._once("GET", "/readyz", None)
        assert (status, body.strip()) == (503, b"draining")

    def test_unknown_endpoint_404(self, service_factory, client_for):
        client = client_for(service_factory())
        with pytest.raises(ServiceError) as excinfo:
            client.request("GET", "/v2/nope")
        assert excinfo.value.status == 404

    def test_unknown_job_404(self, service_factory, client_for):
        client = client_for(service_factory())
        with pytest.raises(ServiceError) as excinfo:
            client.get_job("no-such-job")
        assert excinfo.value.status == 404

    @pytest.mark.parametrize(
        "mutation, expected_fragment",
        [
            ({"k": None}, "missing required field 'k'"),
            ({"k": "four"}, "must be an integer"),
            ({"spec_text": None}, "missing netlist"),
            ({"priority": 99}, "priority must be in"),
            ({"timeout": -1}, "timeout must be > 0"),
        ],
    )
    def test_invalid_submissions_are_400(
        self, service_factory, client_for, texts, mutation, expected_fragment
    ):
        client = client_for(service_factory())
        body = submit_body(texts)
        body.update(mutation)
        body = {key: value for key, value in body.items() if value is not None}
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/v1/verify", body)
        assert excinfo.value.status == 400
        assert expected_fragment in str(excinfo.value)

    def test_oversized_body_is_413(self, service_factory, client_for, texts):
        service = service_factory(max_request_bytes=128)
        client = client_for(service)
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/v1/verify", submit_body(texts))
        assert excinfo.value.status == 413

    def test_invalid_json_body_is_400(self, service_factory):
        import http.client

        host, port = service_factory().address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "POST", "/v1/verify", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert b"invalid JSON" in response.read()
        finally:
            conn.close()


class TestBackpressure:
    def test_full_queue_429_with_retry_after(
        self, service_factory, client_for, texts, blocked_jobs
    ):
        service = service_factory(workers=1, queue_capacity=1)
        client = client_for(service, retries=0)
        # First job occupies the worker...
        client.request("POST", "/v1/verify", submit_body(texts, "a"))
        assert blocked_jobs["running"].wait(5.0)
        # ...second fills the queue...
        client.request("POST", "/v1/verify", submit_body(texts, "b"))
        # ...third must be rejected, with a Retry-After hint.
        status, retry_after, data = client._once(
            "POST", "/v1/verify", submit_body(texts, "c")
        )
        assert status == 429
        assert int(retry_after) >= 1
        assert "queue is full" in json.loads(data)["error"]
        metrics = service.render_metrics()
        assert "repro_service_requests_rejected 1" in metrics

    def test_queue_drains_and_accepts_again(
        self, service_factory, client_for, texts, blocked_jobs
    ):
        service = service_factory(workers=1, queue_capacity=1)
        client = client_for(service, retries=0)
        first = client.request("POST", "/v1/verify", submit_body(texts, "a"))
        assert blocked_jobs["running"].wait(5.0)
        second = client.request("POST", "/v1/verify", submit_body(texts, "b"))
        blocked_jobs["release"].set()
        for doc in (first, second):
            final = client.wait_for(doc["id"], timeout=10.0)
            assert final["status"] == "done"
            assert final["result"]["verdict"] == "equivalent"
        # Capacity is free again.
        third = client.request("POST", "/v1/verify", submit_body(texts, "c"))
        assert client.wait_for(third["id"], timeout=10.0)["status"] == "done"


class TestRequestDedup:
    def test_identical_inflight_submissions_coalesce(
        self, service_factory, client_for, texts, blocked_jobs
    ):
        service = service_factory(workers=1, queue_capacity=4)
        client = client_for(service)
        first = client.request("POST", "/v1/verify", submit_body(texts))
        assert blocked_jobs["running"].wait(5.0)
        second = client.request("POST", "/v1/verify", submit_body(texts))
        assert second["id"] == first["id"]
        assert second.get("coalesced") is True
        blocked_jobs["release"].set()
        final = client.wait_for(first["id"], timeout=10.0)
        assert final["coalesced"] == 1
        assert "repro_service_requests_deduplicated 1" in service.render_metrics()

    def test_different_work_is_not_coalesced(
        self, service_factory, client_for, texts, blocked_jobs
    ):
        service = service_factory(workers=1, queue_capacity=4)
        client = client_for(service)
        first = client.request("POST", "/v1/verify", submit_body(texts, "a"))
        assert blocked_jobs["running"].wait(5.0)
        second = client.request("POST", "/v1/verify", submit_body(texts, "b"))
        assert second["id"] != first["id"]
        assert not second.get("coalesced")

    def test_priority_is_cosmetic_for_dedup(
        self, service_factory, client_for, texts, blocked_jobs
    ):
        service = service_factory(workers=1, queue_capacity=4)
        client = client_for(service)
        body = submit_body(texts)
        first = client.request("POST", "/v1/verify", {**body, "priority": 5})
        assert blocked_jobs["running"].wait(5.0)
        second = client.request("POST", "/v1/verify", {**body, "priority": 1})
        assert second["id"] == first["id"]


class TestDeadlines:
    def test_job_expired_while_queued(
        self, service_factory, client_for, texts, blocked_jobs
    ):
        service = service_factory(workers=1, queue_capacity=4)
        client = client_for(service)
        client.request("POST", "/v1/verify", submit_body(texts, "blocker"))
        assert blocked_jobs["running"].wait(5.0)
        doomed = client.request(
            "POST", "/v1/verify", {**submit_body(texts, "doomed"), "timeout": 0.05}
        )
        time.sleep(0.2)  # let the deadline lapse while queued
        blocked_jobs["release"].set()
        final = client.wait_for(doomed["id"], timeout=10.0)
        assert final["status"] == "expired"
        assert "deadline" in final["error"]
        assert "repro_service_jobs_expired 1" in service.render_metrics()


class TestFailures:
    def test_job_exception_becomes_failed_record(
        self, service_factory, client_for, texts, monkeypatch
    ):
        def explode(params, cache=None, counters=None, seed=None, inflight=None):
            raise RuntimeError("abstraction exploded")

        monkeypatch.setattr(scheduler_module, "run_verify", explode)
        service = service_factory(workers=1)
        client = client_for(service)
        doc = client.request("POST", "/v1/verify", submit_body(texts))
        final = client.wait_for(doc["id"], timeout=10.0)
        assert final["status"] == "failed"
        assert "abstraction exploded" in final["error"]
        assert "repro_service_jobs_failed 1" in service.render_metrics()


class TestDrain:
    def test_drain_cancels_what_cannot_finish(
        self, service_factory, client_for, texts, blocked_jobs
    ):
        service = service_factory(workers=1, queue_capacity=4, drain_timeout=0.3)
        client = client_for(service, retries=0)
        running = client.request("POST", "/v1/verify", submit_body(texts, "a"))
        assert blocked_jobs["running"].wait(5.0)
        queued = client.request("POST", "/v1/verify", submit_body(texts, "b"))

        stopper = threading.Thread(target=service.stop)
        stopper.start()
        stopper.join(10.0)
        assert not stopper.is_alive()

        record = service.store.get(queued["id"])
        assert record.status == "cancelled"
        blocked_jobs["release"].set()

    def test_draining_service_rejects_submissions(
        self, service_factory, client_for, texts
    ):
        service = service_factory()
        client = client_for(service, retries=0)
        service._accepting = False
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/v1/verify", submit_body(texts))
        assert excinfo.value.status == 503

    def test_stop_is_idempotent(self, service_factory):
        service = service_factory()
        assert service.stop() == 0
        assert service.stop() == 0


class TestMetricsEndpoint:
    def test_prometheus_scrape_shape(self, service_factory, client_for):
        service = service_factory()
        client = client_for(service)
        text = client.metrics_text()
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "repro_service_queue_capacity 64" in text
        assert "repro_service_workers_alive 2" in text
        for line in text.splitlines():
            assert line.startswith("#") or " " in line
