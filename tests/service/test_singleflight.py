"""Single-flight group: one computation per concurrent key, shared faults."""

import threading
import time

import pytest

from repro.service import SingleFlight


class TestSingleFlight:
    def test_sequential_calls_each_compute(self):
        group = SingleFlight()
        calls = []
        value1, shared1 = group.do("k", lambda: calls.append(1) or "a")
        value2, shared2 = group.do("k", lambda: calls.append(1) or "b")
        assert (value1, shared1) == ("a", False)
        assert (value2, shared2) == ("b", False)
        assert len(calls) == 2  # nothing in flight between them: no dedup

    def test_concurrent_callers_share_one_computation(self):
        group = SingleFlight()
        release = threading.Event()
        started = threading.Event()
        calls = []

        def compute():
            calls.append(threading.get_ident())
            started.set()
            release.wait(5.0)
            return "result"

        results = []

        def worker():
            results.append(group.do("key", compute))

        leader = threading.Thread(target=worker)
        leader.start()
        assert started.wait(5.0)
        followers = [threading.Thread(target=worker) for _ in range(4)]
        for thread in followers:
            thread.start()
        # Followers must be parked on the leader's latch, not computing.
        time.sleep(0.05)
        assert len(calls) == 1
        assert group.in_flight() == 1
        release.set()
        leader.join(5.0)
        for thread in followers:
            thread.join(5.0)

        assert len(calls) == 1
        assert sorted(shared for _, shared in results) == [False, True, True, True, True]
        assert all(value == "result" for value, _ in results)
        assert group.in_flight() == 0

    def test_followers_inherit_the_leaders_exception(self):
        group = SingleFlight()
        release = threading.Event()
        started = threading.Event()

        def explode():
            started.set()
            release.wait(5.0)
            raise ValueError("leader failed")

        errors = []

        def worker():
            try:
                group.do("key", explode)
            except ValueError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=worker) for _ in range(3)]
        threads[0].start()
        assert started.wait(5.0)
        for thread in threads[1:]:
            thread.start()
        time.sleep(0.05)
        release.set()
        for thread in threads:
            thread.join(5.0)
        assert errors == ["leader failed"] * 3
        # The failed key is forgotten: a retry computes afresh.
        value, shared = group.do("key", lambda: "recovered")
        assert (value, shared) == ("recovered", False)

    def test_distinct_keys_do_not_serialize(self):
        group = SingleFlight()
        barrier = threading.Barrier(2, timeout=5.0)
        results = []

        def compute(tag):
            barrier.wait()  # both keys must be in flight simultaneously
            return tag

        threads = [
            threading.Thread(
                target=lambda t=tag: results.append(group.do(t, lambda: compute(t)))
            )
            for tag in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5.0)
        assert sorted(value for value, _ in results) == ["a", "b"]
        assert all(not shared for _, shared in results)

    def test_on_shared_callback_fires_per_follower(self):
        seen = []
        group = SingleFlight(on_shared=seen.append)
        release = threading.Event()
        started = threading.Event()

        def compute():
            started.set()
            release.wait(5.0)
            return 1

        threads = [
            threading.Thread(target=lambda: group.do("key", compute))
            for _ in range(3)
        ]
        threads[0].start()
        assert started.wait(5.0)
        for thread in threads[1:]:
            thread.start()
        time.sleep(0.05)
        release.set()
        for thread in threads:
            thread.join(5.0)
        assert seen == ["key", "key"]
