"""Bounded priority queue: rejection, ordering, close-then-drain."""

import threading

import pytest

from repro.service import BoundedJobQueue, QueueClosed, QueueFull


class TestAdmission:
    def test_put_returns_depth_and_tracks_peak(self):
        queue = BoundedJobQueue(capacity=4)
        assert queue.put("a") == 1
        assert queue.put("b") == 2
        assert queue.get() is not None
        assert queue.put("c") == 2
        assert queue.peak_depth == 2

    def test_full_queue_rejects_without_blocking(self):
        queue = BoundedJobQueue(capacity=2)
        queue.put("a")
        queue.put("b")
        with pytest.raises(QueueFull):
            queue.put("c")
        # Rejection did not consume capacity or drop entries.
        assert queue.depth() == 2
        assert queue.get() == "a"
        queue.put("c")  # space freed: admission resumes

    def test_closed_queue_rejects(self):
        queue = BoundedJobQueue(capacity=2)
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put("a")

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedJobQueue(capacity=0)


class TestOrdering:
    def test_lower_priority_number_dispatches_first(self):
        queue = BoundedJobQueue(capacity=8)
        queue.put("background", priority=9)
        queue.put("urgent", priority=0)
        queue.put("normal", priority=5)
        assert [queue.get(), queue.get(), queue.get()] == [
            "urgent", "normal", "background",
        ]

    def test_fifo_within_a_priority_class(self):
        queue = BoundedJobQueue(capacity=8)
        for tag in ("first", "second", "third"):
            queue.put(tag, priority=5)
        assert [queue.get(), queue.get(), queue.get()] == [
            "first", "second", "third",
        ]


class TestBlockingGet:
    def test_get_times_out_with_none(self):
        queue = BoundedJobQueue(capacity=2)
        assert queue.get(timeout=0.05) is None

    def test_get_wakes_on_put(self):
        queue = BoundedJobQueue(capacity=2)
        results = []
        thread = threading.Thread(target=lambda: results.append(queue.get(timeout=5.0)))
        thread.start()
        queue.put("item")
        thread.join(5.0)
        assert results == ["item"]


class TestCloseAndDrain:
    def test_close_lets_getters_drain_then_raises(self):
        queue = BoundedJobQueue(capacity=4)
        queue.put("a")
        queue.put("b")
        queue.close()
        assert queue.get() == "a"
        assert queue.get() == "b"
        with pytest.raises(QueueClosed):
            queue.get()

    def test_close_wakes_blocked_getters(self):
        queue = BoundedJobQueue(capacity=2)
        outcomes = []

        def worker():
            try:
                queue.get(timeout=5.0)
                outcomes.append("item")
            except QueueClosed:
                outcomes.append("closed")

        thread = threading.Thread(target=worker)
        thread.start()
        queue.close()
        thread.join(5.0)
        assert outcomes == ["closed"]

    def test_drain_remaining_returns_priority_order_and_empties(self):
        queue = BoundedJobQueue(capacity=8)
        queue.put("low", priority=8)
        queue.put("high", priority=1)
        queue.put("mid", priority=5)
        queue.close()
        assert queue.drain_remaining() == ["high", "mid", "low"]
        assert queue.depth() == 0
        assert queue.drain_remaining() == []
