"""POST /v1/reveng: recovery and identification over the wire."""

import pytest

from repro.service import ServiceError


class TestRevengPoly:
    def test_poly_round_trip_recovers_modulus(
        self, service_factory, client_for, texts, tmp_path
    ):
        service = service_factory(cache_dir=str(tmp_path / "cache"))
        client = client_for(service)
        doc = client.submit_reveng(texts["spec"], mode="poly")
        final = client.wait_for(doc["id"], timeout=120.0)
        assert final["status"] == "done"
        result = final["result"]
        assert result["mode"] == "poly"
        assert result["recovered"] == "0x13"  # x^4 + x + 1
        assert result["degree"] == 4
        assert result["candidates_tried"] == 1

    def test_repeat_sweep_is_cache_served(
        self, service_factory, client_for, texts, tmp_path
    ):
        service = service_factory(cache_dir=str(tmp_path / "cache"), workers=1)
        client = client_for(service)
        first = client.submit_reveng(texts["spec"], mode="poly")
        cold = client.wait_for(first["id"], timeout=120.0)
        assert cold["result"]["cache_hits"] == 0
        second = client.submit_reveng(texts["spec"], mode="poly", limit=3)
        warm = client.wait_for(second["id"], timeout=120.0)
        # Different limit => different request key, same underlying probes.
        assert warm["result"]["cache_hits"] >= 1


class TestRevengFunc:
    def test_func_round_trip_identifies_multiplication(
        self, service_factory, client_for, texts, tmp_path
    ):
        service = service_factory(cache_dir=str(tmp_path / "cache"))
        client = client_for(service)
        doc = client.submit_reveng(texts["impl"], mode="func", k=4)
        final = client.wait_for(doc["id"], timeout=120.0)
        assert final["status"] == "done"
        result = final["result"]
        assert result["mode"] == "func"
        assert result["identified"] == "mul"
        assert result["classification"] == "quadratic"


class TestRevengValidation:
    def test_func_without_k_rejected(self, service_factory, client_for, texts):
        service = service_factory()
        client = client_for(service, retries=0)
        with pytest.raises(ServiceError) as excinfo:
            client.submit_reveng(texts["spec"], mode="func")
        assert excinfo.value.status == 400
        assert "'k'" in str(excinfo.value)

    def test_bad_mode_rejected(self, service_factory, client_for, texts):
        service = service_factory()
        client = client_for(service, retries=0)
        with pytest.raises(ServiceError) as excinfo:
            client.submit_reveng(texts["spec"], mode="sideways")
        assert excinfo.value.status == 400

    def test_missing_netlist_rejected(self, service_factory, client_for):
        service = service_factory()
        client = client_for(service, retries=0)
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/v1/reveng", {"mode": "poly"})
        assert excinfo.value.status == 400


class TestRevengMetrics:
    def test_counters_surface_in_metrics(
        self, service_factory, client_for, texts, tmp_path
    ):
        service = service_factory(cache_dir=str(tmp_path / "cache"), workers=1)
        client = client_for(service)
        poly = client.submit_reveng(texts["spec"], mode="poly")
        client.wait_for(poly["id"], timeout=120.0)
        func = client.submit_reveng(texts["impl"], mode="func", k=4)
        client.wait_for(func["id"], timeout=120.0)
        text = client.metrics_text()
        assert "repro_reveng_sweeps 1" in text
        assert "repro_reveng_candidates_probed" in text
        assert "repro_reveng_matches 1" in text
        assert "repro_reveng_identifications 1" in text
