"""Shared fixtures for the verification-service tests.

``service_factory`` boots real :class:`VerificationService` instances on
ephemeral ports and guarantees they are stopped at teardown — tests never
leak daemon threads into each other. ``texts`` renders the tiny F_16
benchmark pair (plus a buggy mutant) as Verilog text, the wire format the
service actually accepts.
"""

import pytest

from repro.circuits import write_verilog
from repro.circuits.mutate import substitute_gate_type
from repro.gf import GF2m
from repro.service import ServiceClient, ServiceConfig, VerificationService
from repro.synth import mastrovito_multiplier, montgomery_multiplier


@pytest.fixture(scope="module")
def texts(tmp_path_factory):
    """Verilog texts over F_16: spec, equivalent impl, buggy mutant."""
    tmp_path = tmp_path_factory.mktemp("netlists")
    field = GF2m(4)
    spec = mastrovito_multiplier(field)
    impl = montgomery_multiplier(field).flatten()
    mutant, _ = substitute_gate_type(impl, impl.gates[0].output)

    def render(circuit, name):
        path = tmp_path / f"{name}.v"
        write_verilog(circuit, str(path))
        return path.read_text()

    return {
        "spec": render(spec, "spec"),
        "impl": render(impl, "impl"),
        "mutant": render(mutant, "mutant"),
    }


@pytest.fixture()
def service_factory(tmp_path):
    """Boot services on port 0; every instance is stopped at teardown."""
    created = []

    def make(**overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("workers", 2)
        overrides.setdefault("drain_timeout", 5.0)
        service = VerificationService(ServiceConfig(**overrides))
        service.start()
        created.append(service)
        return service

    yield make
    for service in created:
        service.stop()


@pytest.fixture()
def client_for():
    """Build clients bound to a service's ephemeral address."""
    clients = []

    def make(service, **kwargs):
        kwargs.setdefault("timeout", 30.0)
        kwargs.setdefault("retries", 2)
        host, port = service.address
        client = ServiceClient(host=host, port=port, **kwargs)
        clients.append(client)
        return client

    yield make
    for client in clients:
        client.close()
