"""Shard router: ring determinism, locality, failover, byte-identity.

Boots real :class:`VerificationService` daemons on ephemeral ports and a
:class:`RouterService` in front of them — every assertion below runs over
actual HTTP, the way the CI cluster-smoke job exercises the pair.
"""

import http.client
import json

import pytest

from repro.service import ServiceClient, request_key
from repro.service.router import HashRing, RouterConfig, RouterService


@pytest.fixture()
def router_factory(service_factory):
    """Boot routers over freshly-started backend services."""
    created = []

    def make(services, **overrides):
        backends = ["%s:%d" % s.address for s in services]
        overrides.setdefault("port", 0)
        overrides.setdefault("health_interval", 0.2)
        overrides.setdefault("retry_budget", 2)
        router = RouterService(RouterConfig(backends=backends, **overrides))
        router.start()
        created.append(router)
        return router

    yield make
    for router in created:
        router.stop()


def raw_get(address, path):
    """One plain GET returning (status, body-bytes) — no client smarts."""
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class TestHashRing:
    def test_preference_is_deterministic_and_complete(self):
        ring = HashRing(["a:1", "b:2", "c:3"])
        for key in ("k1", "k2", "deadbeef"):
            order = ring.preference(key)
            assert order == ring.preference(key)
            assert sorted(order) == ["a:1", "b:2", "c:3"]

    def test_single_backend_owns_everything(self):
        ring = HashRing(["solo:1"])
        assert ring.primary("anything") == "solo:1"

    def test_keys_spread_across_backends(self):
        ring = HashRing(["a:1", "b:2", "c:3", "d:4"], vnodes=64)
        owners = {ring.primary(f"key-{i}") for i in range(200)}
        assert owners == {"a:1", "b:2", "c:3", "d:4"}

    def test_removing_a_backend_only_remaps_its_keys(self):
        keys = [f"key-{i}" for i in range(300)]
        full = HashRing(["a:1", "b:2", "c:3"], vnodes=64)
        reduced = HashRing(["a:1", "b:2"], vnodes=64)
        moved = 0
        for key in keys:
            before, after = full.primary(key), reduced.primary(key)
            if before == "c:3":
                assert after in ("a:1", "b:2")
            else:
                assert after == before  # survivors keep their keys
                moved += 0
        # And c's share was roughly a third, so *something* moved.
        assert sum(1 for k in keys if full.primary(k) == "c:3") > 0

    def test_needs_backends(self):
        with pytest.raises(ValueError):
            HashRing([])


class TestRoutingLocality:
    def test_same_key_lands_on_same_shard(
        self, service_factory, router_factory, texts, tmp_path
    ):
        services = [
            service_factory(cache_dir=str(tmp_path / f"cache{i}"), workers=1)
            for i in range(2)
        ]
        router = router_factory(services)
        client = ServiceClient(*router.address, timeout=30.0, retries=2)
        try:
            first = client.verify(texts["spec"], texts["impl"], 4,
                                  poll_timeout=120.0)
            second = client.verify(texts["spec"], texts["impl"], 4,
                                   poll_timeout=120.0)
        finally:
            client.close()
        assert first["result"]["verdict"] == "equivalent"
        assert second["result"]["verdict"] == "equivalent"
        # Locality proof: the repeat hit the same shard's warm disk cache.
        assert second["result"]["spec_cache_hit"]
        assert second["result"]["impl_cache_hit"]
        # And the router called both primary routes (no failover happened).
        status, body = raw_get(router.address, "/metrics")
        assert status == 200
        assert "repro_router_primary_routed 2" in body.decode()

    def test_router_response_is_byte_identical_to_shard(
        self, service_factory, router_factory, texts
    ):
        services = [service_factory(workers=1) for _ in range(2)]
        router = router_factory(services)
        client = ServiceClient(*router.address, timeout=30.0, retries=2)
        try:
            submission = client.submit_verify(texts["spec"], texts["impl"], 4)
            job_id = submission["id"]
            client.wait_for(job_id, timeout=120.0)
        finally:
            client.close()
        owner_address = router.job_owner(job_id)
        assert owner_address is not None
        owner = router.backends[owner_address]
        direct_status, direct_body = raw_get(
            (owner.host, owner.port), f"/v1/jobs/{job_id}"
        )
        routed_status, routed_body = raw_get(
            router.address, f"/v1/jobs/{job_id}"
        )
        assert (routed_status, routed_body) == (direct_status, direct_body)

    def test_unknown_job_id_fans_out(
        self, service_factory, router_factory, texts
    ):
        services = [service_factory(workers=1) for _ in range(2)]
        router = router_factory(services)
        # Submit *around* the router, straight to a shard it never saw.
        shard = ServiceClient(*services[1].address, timeout=30.0, retries=2)
        try:
            submission = shard.submit_verify(texts["spec"], texts["impl"], 4)
            job_id = submission["id"]
            shard.wait_for(job_id, timeout=120.0)
        finally:
            shard.close()
        status, body = raw_get(router.address, f"/v1/jobs/{job_id}")
        assert status == 200
        assert json.loads(body)["id"] == job_id
        # …and the fan-out taught the router the owner for next time.
        assert router.job_owner(job_id) == "%s:%d" % services[1].address

    def test_bad_submission_answered_by_shard(
        self, service_factory, router_factory
    ):
        services = [service_factory(workers=1)]
        router = router_factory(services)
        host, port = router.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request(
                "POST", "/v1/verify", body=b'{"nonsense": true}',
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400  # the shard's 400, proxied verbatim
            assert b"missing required field" in response.read()
        finally:
            conn.close()


class TestFailover:
    def test_dead_primary_fails_over(
        self, service_factory, router_factory, texts
    ):
        services = [service_factory(workers=1) for _ in range(2)]
        router = router_factory(services)
        # Find which shard owns this submission's key, then kill it.
        body = {"k": 4, "spec_text": texts["spec"], "impl_text": texts["impl"],
                "case2": "linearized", "priority": 5}
        key = request_key("verify", body)
        primary = router.ring.primary(key)
        victim = next(
            s for s in services if "%s:%d" % s.address == primary
        )
        victim.stop()
        router.probe_all()
        assert router.healthy_count() == 1

        client = ServiceClient(*router.address, timeout=30.0, retries=2)
        try:
            doc = client.verify(texts["spec"], texts["impl"], 4,
                                poll_timeout=120.0)
        finally:
            client.close()
        assert doc["result"]["verdict"] == "equivalent"
        status, metrics_body = raw_get(router.address, "/metrics")
        assert status == 200
        assert "repro_router_failover_routed 1" in metrics_body.decode()

    def test_no_backends_is_503_unroutable(
        self, service_factory, router_factory, texts
    ):
        services = [service_factory(workers=1)]
        router = router_factory(services)
        services[0].stop()
        router.probe_all()
        assert router.healthy_count() == 0
        status, body = raw_get(router.address, "/readyz")
        assert status == 503
        host, port = router.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request(
                "POST", "/v1/verify", body=b"{}",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 503
            assert response.getheader("Retry-After") is not None
        finally:
            conn.close()

    def test_recovered_backend_rejoins(self, service_factory, router_factory):
        services = [service_factory(workers=1) for _ in range(2)]
        router = router_factory(services)
        assert router.healthy_count() == 2
        services[0].stop()
        router.probe_all()
        assert router.healthy_count() == 1
        # The transition was counted both ways down…
        # (…and /healthz names the dead shard.)
        status, body = raw_get(router.address, "/healthz")
        doc = json.loads(body)
        dead = "%s:%d" % services[0].address
        assert doc["backends"][dead]["healthy"] is False
        assert doc["backends_healthy"] == 1


class TestAggregatedMetrics:
    def test_backend_samples_are_labelled(
        self, service_factory, router_factory, texts
    ):
        services = [service_factory(workers=1) for _ in range(2)]
        router = router_factory(services)
        client = ServiceClient(*router.address, timeout=30.0, retries=2)
        try:
            client.verify(texts["spec"], texts["impl"], 4, poll_timeout=120.0)
        finally:
            client.close()
        status, body = raw_get(router.address, "/metrics")
        assert status == 200
        text = body.decode()
        assert "repro_router_requests 1" in text
        for service in services:
            label = 'backend="%s:%d"' % service.address
            assert label in text
        # Labelled backend samples parse as name{labels} value.
        labelled = [l for l in text.splitlines() if 'backend="' in l]
        assert labelled
        for line in labelled:
            name, _, value = line.rpartition(" ")
            assert name.endswith("}") and "{" in name
            float(value)
