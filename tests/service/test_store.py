"""Job store: lifecycle, request-key dedup index, retention, long-poll."""

import threading

import pytest

from repro.service import JobRecord, JobStore


def record_for(key="key", **kwargs):
    kwargs.setdefault("kind", "verify")
    kwargs.setdefault("params", {"k": 4, "spec_text": "...", "impl_text": "..."})
    return JobRecord(request_key=key, **kwargs)


class TestLifecycle:
    def test_status_progression_and_timestamps(self):
        store = JobStore()
        record = record_for()
        store.add(record)
        assert record.status == "queued"
        store.mark_running(record)
        assert record.status == "running"
        assert record.started is not None
        store.finish(record, "done", result={"verdict": "equivalent"})
        assert record.terminal
        doc = record.to_json()
        assert doc["status"] == "done"
        assert doc["result"] == {"verdict": "equivalent"}
        assert doc["queue_seconds"] >= 0
        assert doc["run_seconds"] >= 0

    def test_finish_requires_terminal_status(self):
        store = JobStore()
        record = record_for()
        store.add(record)
        with pytest.raises(ValueError):
            store.finish(record, "running")

    def test_finish_drops_netlist_bodies(self):
        store = JobStore()
        record = record_for()
        store.add(record)
        store.finish(record, "done", result={})
        assert "spec_text" not in record.params
        assert record.params["k"] == 4

    def test_wire_form_never_leaks_netlist_bodies(self):
        record = record_for()
        assert "spec_text" not in record.to_json()["params"]


class TestDedupIndex:
    def test_inflight_job_found_by_request_key(self):
        store = JobStore()
        record = record_for("abc")
        store.add(record)
        assert store.find_inflight("abc") is record
        store.mark_running(record)
        assert store.find_inflight("abc") is record

    def test_terminal_job_leaves_the_index(self):
        store = JobStore()
        record = record_for("abc")
        store.add(record)
        store.finish(record, "done", result={})
        assert store.find_inflight("abc") is None

    def test_coalesced_counter(self):
        store = JobStore()
        record = record_for()
        store.add(record)
        store.note_coalesced(record)
        store.note_coalesced(record)
        assert record.to_json()["coalesced"] == 2

    def test_remove_forgets_record_and_index(self):
        store = JobStore()
        record = record_for("abc")
        store.add(record)
        store.remove(record.id)
        assert store.get(record.id) is None
        assert store.find_inflight("abc") is None

    def test_resubmitted_key_rebinds_to_the_new_job(self):
        store = JobStore()
        first = record_for("abc")
        store.add(first)
        store.finish(first, "done", result={})
        second = record_for("abc")
        store.add(second)
        assert store.find_inflight("abc") is second


class TestRetention:
    def test_terminal_records_evict_oldest_first(self):
        store = JobStore(retain=2)
        records = [record_for(f"k{i}") for i in range(4)]
        for record in records:
            store.add(record)
            store.finish(record, "done", result={})
        assert store.get(records[0].id) is None
        assert store.get(records[1].id) is None
        assert store.get(records[2].id) is not None
        assert store.get(records[3].id) is not None

    def test_live_records_are_never_evicted(self):
        store = JobStore(retain=1)
        live = [record_for(f"live{i}") for i in range(5)]
        for record in live:
            store.add(record)
        done = record_for("done")
        store.add(done)
        store.finish(done, "done", result={})
        assert all(store.get(record.id) is not None for record in live)
        assert len(store) == 6


class TestWait:
    def test_wait_returns_immediately_when_terminal(self):
        store = JobStore()
        record = record_for()
        store.add(record)
        store.finish(record, "failed", error="boom")
        assert store.wait(record.id, timeout=5.0) is record

    def test_wait_times_out_on_a_running_job(self):
        store = JobStore()
        record = record_for()
        store.add(record)
        result = store.wait(record.id, timeout=0.05)
        assert result is record
        assert not result.terminal

    def test_wait_wakes_on_finish(self):
        store = JobStore()
        record = record_for()
        store.add(record)
        seen = []
        thread = threading.Thread(
            target=lambda: seen.append(store.wait(record.id, timeout=5.0))
        )
        thread.start()
        store.finish(record, "done", result={})
        thread.join(5.0)
        assert seen and seen[0].terminal

    def test_wait_unknown_id_returns_none(self):
        assert JobStore().wait("nope", timeout=0.01) is None

    def test_counts_by_status(self):
        store = JobStore()
        a, b = record_for("a"), record_for("b")
        store.add(a)
        store.add(b)
        store.mark_running(a)
        assert store.counts() == {"running": 1, "queued": 1}
