"""Service answers == library answers: real verification through HTTP.

The acceptance contract of the daemon: results served over the wire are
identical to what ``repro verify`` computes in-process, dedup reduces
actual abstraction work, and abstraction jobs return the canonical
polynomial.
"""

import pytest

from repro.gf import GF2m
from repro.synth import mastrovito_multiplier
from repro.verify import verify_equivalence
from repro.circuits import read_netlist_text


class TestVerdictParity:
    def test_equivalent_pair(self, service_factory, client_for, texts, tmp_path):
        service = service_factory(cache_dir=str(tmp_path / "cache"))
        client = client_for(service)
        doc = client.verify(texts["spec"], texts["impl"], 4, poll_timeout=120.0)
        assert doc["status"] == "done"
        assert doc["result"]["verdict"] == "equivalent"
        assert doc["result"]["counterexample"] is None
        assert doc["result"]["spec_terms"] >= 1

    def test_buggy_mutant_with_counterexample(
        self, service_factory, client_for, texts, tmp_path
    ):
        service = service_factory(cache_dir=str(tmp_path / "cache"))
        client = client_for(service)
        doc = client.verify(texts["spec"], texts["mutant"], 4, poll_timeout=120.0)
        assert doc["result"]["verdict"] == "not_equivalent"
        counterexample = doc["result"]["counterexample"]
        assert counterexample is not None

        # The daemon's verdict agrees with the in-process library call.
        spec = read_netlist_text(texts["spec"])
        mutant = read_netlist_text(texts["mutant"])
        outcome = verify_equivalence(spec, mutant, GF2m(4))
        assert outcome.status == "not_equivalent"

    def test_abstract_job_returns_polynomial(
        self, service_factory, client_for, texts
    ):
        service = service_factory()
        client = client_for(service)
        doc = client.submit_abstract(texts["spec"], 4)
        final = client.wait_for(doc["id"], timeout=120.0)
        assert final["status"] == "done"
        assert "=" in final["result"]["polynomial"]
        assert final["result"]["terms"] >= 1
        assert final["result"]["case"] in (1, 2, "1", "2")


class TestDedupEconomy:
    def test_repeat_requests_hit_the_cache(
        self, service_factory, client_for, texts, tmp_path
    ):
        service = service_factory(cache_dir=str(tmp_path / "cache"), workers=1)
        client = client_for(service)
        first = client.verify(texts["spec"], texts["impl"], 4, poll_timeout=120.0)
        assert not first["result"]["spec_cache_hit"]
        second = client.verify(texts["spec"], texts["impl"], 4, poll_timeout=120.0)
        assert second["result"]["spec_cache_hit"]
        assert second["result"]["impl_cache_hit"]
        assert second["result"]["verdict"] == "equivalent"

    def test_duplicate_heavy_load_computes_fewer_abstractions(
        self, service_factory, client_for, texts, tmp_path
    ):
        """The headline economy: N duplicate requests, far fewer extractions."""
        service = service_factory(
            cache_dir=str(tmp_path / "cache"), workers=2, queue_capacity=32
        )
        client = client_for(service)
        submissions = [
            client.submit_verify(texts["spec"], texts["impl"], 4) for _ in range(6)
        ]
        for submission in submissions:
            final = client.wait_for(submission["id"], timeout=120.0)
            assert final["status"] == "done"
            assert final["result"]["verdict"] == "equivalent"

        metrics = {
            line.split()[0]: float(line.split()[1])
            for line in service.render_metrics().splitlines()
            if not line.startswith("#")
        }
        assert metrics["repro_service_requests"] >= 6
        # Two distinct circuits were ever abstracted, no matter how many
        # requests named them (single-flight while in flight, cache after).
        assert metrics["repro_abstraction_extractions"] == 2
        assert metrics["repro_abstraction_extractions"] < metrics[
            "repro_service_requests"
        ]


class TestPrewarm:
    def test_prewarm_builds_tables_before_traffic(self, service_factory):
        from repro.gf import logtables

        builds_before = logtables.table_builds()
        service_factory(prewarm=[(4, None), (4, None), (8, None)])
        # Tables for F_16/F_256 may already exist from earlier tests in this
        # process (the cache is process-global) — prewarm must never *add*
        # more than the two distinct fields, and must dedup the repeat.
        assert logtables.table_builds() - builds_before <= 2

    def test_submission_warms_its_field(self, service_factory, client_for, texts):
        service = service_factory(workers=1)
        client = client_for(service)
        client.submit_verify(texts["spec"], texts["impl"], 4)
        assert (4, GF2m(4).modulus) in service.scheduler._warmed
