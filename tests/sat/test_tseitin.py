"""Unit tests for Tseitin encoding."""

import itertools

import pytest

from repro.circuits import Circuit, GateType, simulate
from repro.sat import CircuitEncoding, solve, tseitin_encode
from repro.synth import mastrovito_multiplier

from ..circuits.test_circuit import two_bit_multiplier


def assert_encoding_consistent(circuit):
    """For every input pattern, the CNF must force exactly the simulation."""
    enc = tseitin_encode(circuit)
    for bits in itertools.product((0, 1), repeat=len(circuit.inputs)):
        stim = dict(zip(circuit.inputs, bits))
        expected = simulate(circuit, stim)
        assumptions = [
            enc.variable(n) if stim[n] else -enc.variable(n) for n in circuit.inputs
        ]
        result = solve(enc.cnf, assumptions=assumptions)
        assert result.status == "sat"
        assignment = enc.assignment_of(result.model)
        for net in circuit.nets():
            assert assignment[net] == bool(expected[net]), net


class TestGateEncodings:
    @pytest.mark.parametrize(
        "gate_type",
        [
            GateType.AND,
            GateType.OR,
            GateType.XOR,
            GateType.NAND,
            GateType.NOR,
            GateType.XNOR,
        ],
    )
    def test_binary_gate(self, gate_type):
        c = Circuit("g")
        c.add_inputs(["a", "b"])
        c.add_gate("z", gate_type, ("a", "b"))
        c.set_outputs(["z"])
        assert_encoding_consistent(c)

    @pytest.mark.parametrize(
        "gate_type", [GateType.AND, GateType.OR, GateType.XOR]
    )
    def test_ternary_gate(self, gate_type):
        c = Circuit("g3")
        c.add_inputs(["a", "b", "c"])
        c.add_gate("z", gate_type, ("a", "b", "c"))
        c.set_outputs(["z"])
        assert_encoding_consistent(c)

    def test_not_buf_const(self):
        c = Circuit("u")
        c.add_input("a")
        c.NOT("a", out="n")
        c.BUF("a", out="b")
        c.CONST(0, out="c0")
        c.CONST(1, out="c1")
        c.set_outputs(["n", "b", "c0", "c1"])
        assert_encoding_consistent(c)


class TestWholeCircuits:
    def test_two_bit_multiplier(self):
        assert_encoding_consistent(two_bit_multiplier())

    def test_forced_output_finds_preimage(self, f4):
        c = two_bit_multiplier()
        enc = tseitin_encode(c)
        # Ask for Z = 3: z0 = 1, z1 = 1.
        enc.cnf.add_clause((enc.variable("z0"),))
        enc.cnf.add_clause((enc.variable("z1"),))
        result = solve(enc.cnf)
        assert result.status == "sat"
        assignment = enc.assignment_of(result.model)
        a = int(assignment["a0"]) | (int(assignment["a1"]) << 1)
        b = int(assignment["b0"]) | (int(assignment["b1"]) << 1)
        assert f4.mul(a, b) == 3

    def test_shared_encoding_composes(self):
        c1 = two_bit_multiplier().renamed("u1_")
        c2 = two_bit_multiplier().renamed("u2_")
        enc = CircuitEncoding()
        tseitin_encode(c1, enc)
        tseitin_encode(c2, enc)
        # Variables are distinct per circuit instance.
        assert enc.variable("u1_z0") != enc.variable("u2_z0")

    def test_prefix_isolation(self):
        c = two_bit_multiplier()
        enc = CircuitEncoding()
        tseitin_encode(c, enc, prefix="x_")
        tseitin_encode(c, enc, prefix="y_")
        assert enc.variable("x_z0") != enc.variable("y_z0")

    def test_variable_count_linear(self, f256):
        c = mastrovito_multiplier(f256)
        enc = tseitin_encode(c)
        # One var per net plus XOR-chain/inverter auxiliaries.
        assert enc.cnf.num_vars >= len(c.nets())
        assert enc.cnf.num_vars < 4 * len(c.nets())
