"""Unit tests for the CDCL solver."""

import itertools
import random

import pytest

from repro.sat import CNF, SatSolver, solve
from repro.sat.solver import SatResult, _luby


def brute_force_sat(cnf):
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        if cnf.evaluate({v: bits[v - 1] for v in range(1, cnf.num_vars + 1)}):
            return True
    return False


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestSatResult:
    def test_bad_status_rejected(self):
        with pytest.raises(ValueError):
            SatResult("maybe")


class TestBasicCases:
    def test_empty_formula_sat(self):
        assert solve(CNF()).status == "sat"

    def test_single_unit(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([1])
        result = solve(cnf)
        assert result.status == "sat" and result.model[1] is True

    def test_contradictory_units(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clauses([[1], [-1]])
        assert solve(cnf).status == "unsat"

    def test_empty_clause_unsat(self):
        cnf = CNF()
        cnf.new_var()
        cnf.clauses.append(())
        assert solve(cnf).status == "unsat"

    def test_implication_chain(self):
        cnf = CNF()
        cnf.new_vars(5)
        cnf.add_clause([1])
        for v in range(1, 5):
            cnf.add_clause([-v, v + 1])
        result = solve(cnf)
        assert result.status == "sat"
        assert all(result.model[v] for v in range(1, 6))

    def test_xor_constraints(self):
        # x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is unsatisfiable.
        cnf = CNF()
        cnf.new_vars(3)
        for a, b in [(1, 2), (2, 3), (1, 3)]:
            cnf.add_clauses([[a, b], [-a, -b]])
        assert solve(cnf).status == "unsat"


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_3sat(self, seed):
        rng = random.Random(seed)
        nv = rng.randint(3, 9)
        cnf = CNF()
        cnf.new_vars(nv)
        for _ in range(rng.randint(nv, 4 * nv)):
            clause = {
                rng.choice([1, -1]) * rng.randint(1, nv)
                for _ in range(rng.randint(1, 3))
            }
            cnf.add_clause(clause)
        result = solve(cnf)
        assert result.status == ("sat" if brute_force_sat(cnf) else "unsat")
        if result.status == "sat":
            assert cnf.evaluate(result.model)


class TestHardInstances:
    @pytest.mark.parametrize("holes", [3, 4, 5])
    def test_pigeonhole_unsat(self, holes):
        pigeons = holes + 1
        cnf = CNF()
        P = {
            (i, j): cnf.new_var() for i in range(pigeons) for j in range(holes)
        }
        for i in range(pigeons):
            cnf.add_clause([P[(i, j)] for j in range(holes)])
        for j in range(holes):
            for i1 in range(pigeons):
                for i2 in range(i1 + 1, pigeons):
                    cnf.add_clause([-P[(i1, j)], -P[(i2, j)]])
        assert solve(cnf).status == "unsat"

    def test_learns_clauses(self):
        cnf = CNF()
        cnf.new_vars(8)
        rng = random.Random(123)
        for _ in range(40):
            cnf.add_clause(
                {rng.choice([1, -1]) * rng.randint(1, 8) for _ in range(3)}
            )
        solver = SatSolver(cnf)
        initial = len(solver.clauses)
        solver.solve()
        assert len(solver.clauses) >= initial  # learnt clauses appended


class TestBudget:
    def test_conflict_budget_gives_unknown(self):
        # A hard pigeonhole instance with a tiny conflict budget.
        holes = 6
        pigeons = 7
        cnf = CNF()
        P = {
            (i, j): cnf.new_var() for i in range(pigeons) for j in range(holes)
        }
        for i in range(pigeons):
            cnf.add_clause([P[(i, j)] for j in range(holes)])
        for j in range(holes):
            for i1 in range(pigeons):
                for i2 in range(i1 + 1, pigeons):
                    cnf.add_clause([-P[(i1, j)], -P[(i2, j)]])
        result = solve(cnf, max_conflicts=5)
        assert result.status == "unknown"
        assert result.conflicts >= 5


class TestAssumptions:
    def test_assumption_forces_value(self):
        cnf = CNF()
        cnf.new_vars(2)
        cnf.add_clause([1, 2])
        result = solve(cnf, assumptions=[-1])
        assert result.status == "sat"
        assert result.model[1] is False and result.model[2] is True

    def test_conflicting_assumption(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([1])
        assert solve(cnf, assumptions=[-1]).status == "unsat"
