"""Unit tests for CNF formulas."""

import pytest

from repro.sat import CNF


class TestConstruction:
    def test_new_vars_sequential(self):
        cnf = CNF()
        assert cnf.new_vars(3) == [1, 2, 3]
        assert cnf.num_vars == 3

    def test_add_clause(self):
        cnf = CNF()
        cnf.new_vars(2)
        cnf.add_clause([1, -2])
        assert cnf.clauses == [(1, -2)]

    def test_zero_literal_rejected(self):
        cnf = CNF()
        cnf.new_var()
        with pytest.raises(ValueError):
            cnf.add_clause([1, 0])

    def test_unallocated_variable_rejected(self):
        cnf = CNF()
        cnf.new_var()
        with pytest.raises(ValueError):
            cnf.add_clause([2])

    def test_add_clauses(self):
        cnf = CNF()
        cnf.new_vars(2)
        cnf.add_clauses([[1], [-1, 2]])
        assert len(cnf) == 2


class TestDimacs:
    def test_serialisation(self):
        cnf = CNF()
        cnf.new_vars(2)
        cnf.add_clause([1, -2])
        text = cnf.to_dimacs()
        assert "p cnf 2 1" in text
        assert "1 -2 0" in text

    def test_roundtrip(self):
        cnf = CNF()
        cnf.new_vars(3)
        cnf.add_clauses([[1, 2], [-1, 3], [-2, -3]])
        parsed = CNF.from_dimacs(cnf.to_dimacs())
        assert parsed.num_vars == 3
        assert parsed.clauses == cnf.clauses

    def test_parse_with_comments(self):
        text = "c a comment\np cnf 2 1\n1 -2 0\n"
        cnf = CNF.from_dimacs(text)
        assert cnf.num_vars == 2 and cnf.clauses == [(1, -2)]

    def test_bad_problem_line(self):
        with pytest.raises(ValueError):
            CNF.from_dimacs("p sat 2 1\n")


class TestEvaluate:
    def test_satisfying(self):
        cnf = CNF()
        cnf.new_vars(2)
        cnf.add_clauses([[1], [-1, 2]])
        assert cnf.evaluate({1: True, 2: True})
        assert not cnf.evaluate({1: True, 2: False})
        assert not cnf.evaluate({1: False, 2: True})

    def test_empty_formula_true(self):
        assert CNF().evaluate({})

    def test_missing_variable_defaults_false(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([-1])
        assert cnf.evaluate({})
