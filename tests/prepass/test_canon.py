"""Unit tests for the deterministic structural canonicalizer."""

import random

import pytest

from repro.circuits import Circuit, GateType, simulate
from repro.jobs.cache import normalize_circuit_text
from repro.prepass import canonical_input_order, canonicalize


def _equivalent(a: Circuit, b: Circuit, lanes: int = 64, seed: int = 99) -> bool:
    """Positional output agreement on random bit-parallel stimuli."""
    rng = random.Random(seed)
    stimuli = {net: rng.getrandbits(lanes) for net in sorted(a.inputs)}
    got_a = simulate(a, stimuli, lanes=lanes)
    got_b = simulate(b, stimuli, lanes=lanes)
    return all(
        got_a[na] == got_b[nb] for na, nb in zip(a.outputs, b.outputs)
    )


def _mini(name="mini"):
    c = Circuit(name)
    c.add_inputs(["a", "b", "cin"])
    return c


def test_nand_normalizes_like_and_not():
    nand = _mini("nand_form")
    nand.add_gate("z", GateType.NAND, ["a", "b"])
    nand.set_outputs(["z"])

    explicit = _mini("and_not_form")
    explicit.add_gate("t", GateType.AND, ["a", "b"])
    explicit.add_gate("z", GateType.NOT, ["t"])
    explicit.set_outputs(["z"])

    assert normalize_circuit_text(canonicalize(nand)) == normalize_circuit_text(
        canonicalize(explicit)
    )


def test_nor_and_xnor_normalize_to_gate_plus_inverter_forms():
    pairs = [
        (GateType.NOR, GateType.OR),
        (GateType.XNOR, GateType.XOR),
    ]
    for negated, plain in pairs:
        neg = _mini(f"{negated.value}_form")
        neg.add_gate("z", negated, ["a", "b"])
        neg.set_outputs(["z"])

        pos = _mini(f"{plain.value}_not_form")
        pos.add_gate("t", plain, ["a", "b"])
        pos.add_gate("z", GateType.NOT, ["t"])
        pos.set_outputs(["z"])

        assert normalize_circuit_text(canonicalize(neg)) == normalize_circuit_text(
            canonicalize(pos)
        ), negated.value


def test_buffer_and_double_inverter_chains_collapse():
    clean = _mini("clean")
    clean.add_gate("z", GateType.XOR, ["a", "b"])
    clean.set_outputs(["z"])

    noisy = _mini("noisy")
    noisy.add_gate("b1", GateType.BUF, ["a"])
    noisy.add_gate("b2", GateType.BUF, ["b1"])
    noisy.add_gate("n1", GateType.NOT, ["b"])
    noisy.add_gate("n2", GateType.NOT, ["n1"])
    noisy.add_gate("z", GateType.XOR, ["b2", "n2"])
    noisy.set_outputs(["z"])

    canon_noisy = canonicalize(noisy)
    assert normalize_circuit_text(canonicalize(clean)) == normalize_circuit_text(
        canon_noisy
    )
    assert canon_noisy.num_gates() < noisy.num_gates()


def test_dead_logic_is_stripped():
    c = _mini("deadwood")
    c.add_gate("z", GateType.AND, ["a", "b"])
    c.add_gate("dead1", GateType.XOR, ["a", "cin"])
    c.add_gate("dead2", GateType.OR, ["dead1", "b"])
    c.set_outputs(["z"])

    canon = canonicalize(c)
    assert canon.num_gates() == 1
    assert _equivalent(c, canon)


def test_constant_inputs_fold():
    c = _mini("consts")
    c.add_gate("one", GateType.CONST1, [])
    c.add_gate("zero", GateType.CONST0, [])
    c.add_gate("t1", GateType.AND, ["a", "one"])  # == a
    c.add_gate("t2", GateType.OR, ["t1", "zero"])  # == a
    c.add_gate("z", GateType.XOR, ["t2", "b"])
    c.set_outputs(["z"])

    canon = canonicalize(c)
    assert canon.num_gates() == 1  # single XOR survives
    assert _equivalent(c, canon)


def test_canonicalize_is_idempotent_on_handmade_circuits():
    c = _mini("idem")
    c.add_gate("n", GateType.NAND, ["a", "b"])
    c.add_gate("x", GateType.XNOR, ["n", "cin"])
    c.add_gate("z", GateType.OR, ["x", "a"])
    c.set_outputs(["z"])

    once = canonicalize(c)
    twice = canonicalize(once)
    assert normalize_circuit_text(once) == normalize_circuit_text(twice)
    assert _equivalent(c, once)


def test_words_and_input_names_are_preserved():
    c = Circuit("worded")
    c.add_inputs(["A0", "A1", "B0", "B1"])
    c.add_input_word("A", ["A0", "A1"])
    c.add_input_word("B", ["B0", "B1"])
    c.add_gate("z0", GateType.XOR, ["A0", "B0"])
    c.add_gate("z1", GateType.XOR, ["A1", "B1"])
    c.set_outputs(["z0", "z1"])
    c.add_output_word("Z", ["z0", "z1"])

    canon = canonicalize(c)
    assert list(canon.inputs) == list(c.inputs)
    assert canon.input_words == {"A": ["A0", "A1"], "B": ["B0", "B1"]}
    assert list(canon.output_words) == ["Z"]
    assert len(canon.output_words["Z"]) == 2
    # Output-word bits take word-anchored names: bit i of word Z -> Zi.
    assert canon.output_words["Z"] == ["Z0", "Z1"]
    assert _equivalent(c, canon)


def test_canonical_input_order_words_first_then_leftovers():
    c = Circuit("order")
    c.add_inputs(["x", "B1", "B0", "A0", "A1"])
    c.add_input_word("B", ["B0", "B1"])
    c.add_input_word("A", ["A0", "A1"])
    c.add_gate("z", GateType.AND, ["x", "A0"])
    c.set_outputs(["z"])
    # Sorted words LSB-first, then leftover plain inputs by name.
    assert canonical_input_order(c) == ["A0", "A1", "B0", "B1", "x"]


def test_input_fed_output_survives():
    c = Circuit("passthrough")
    c.add_inputs(["a", "b"])
    c.add_gate("z", GateType.AND, ["a", "b"])
    c.set_outputs(["a", "z"])  # output 0 is the raw input

    canon = canonicalize(c)
    assert len(canon.outputs) == 2
    assert _equivalent(c, canon)
