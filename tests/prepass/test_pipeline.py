"""The prepass -> cache -> abstraction pipeline and its integration points."""

import random

import pytest

from repro.circuits import Circuit, GateType, to_blif
from repro.jobs.cache import CanonicalPolyCache, rehydrate_polynomial
from repro.jobs.executor import execute_job, run_verify
from repro.jobs.manifest import ManifestError, manifest_from_dict
from repro.prepass import (
    PREPASS_ENV,
    PrepassError,
    abstract_canonical,
    apply_prepass,
    differential_guard,
    resolve_prepass,
)
from repro.reveng import obfuscate
from repro.synth import gf_squarer, mastrovito_multiplier
from repro.verify import verify_equivalence


# -- the tri-state switch -----------------------------------------------------


def test_env_escape_hatch(monkeypatch):
    monkeypatch.delenv(PREPASS_ENV, raising=False)
    assert resolve_prepass() is True
    for value in ("0", "false", "no", "off", " OFF "):
        monkeypatch.setenv(PREPASS_ENV, value)
        assert resolve_prepass() is False, value
    monkeypatch.setenv(PREPASS_ENV, "0")
    assert resolve_prepass(True) is True  # explicit override beats the env
    monkeypatch.setenv(PREPASS_ENV, "1")
    assert resolve_prepass(False) is False


def test_env_off_keys_the_raw_structure(tmp_path, monkeypatch, gf16):
    monkeypatch.setenv(PREPASS_ENV, "0")
    cache = CanonicalPolyCache(tmp_path / "cache")
    circuit = gf_squarer(gf16)
    probe = abstract_canonical(circuit, gf16, cache=cache)
    assert probe.prepass is None
    warm = abstract_canonical(circuit, gf16, cache=cache)
    assert warm.hit and warm.source == "raw"


# -- verdict and polynomial invariance (Corollary 4.1) ------------------------


def test_prepass_on_and_off_agree_exactly(gf16):
    spec = mastrovito_multiplier(gf16)
    impl = obfuscate(spec, seed=13).circuit
    on = verify_equivalence(spec, impl, gf16, prepass=True)
    off = verify_equivalence(spec, impl, gf16, prepass=False)
    assert on.status == off.status == "equivalent"
    assert on.details["spec_polynomial"] == off.details["spec_polynomial"]
    assert on.details["impl_polynomial"] == off.details["impl_polynomial"]
    assert "prepass" in on.details["spec"]
    assert "prepass" not in off.details["spec"]


def test_prepass_agrees_on_buggy_designs(gf16):
    spec = mastrovito_multiplier(gf16)
    buggy = obfuscate(spec, seed=13).circuit
    # Break one reachable gate: swap an AND driving the output cone to OR.
    victim = next(
        g.output
        for g in buggy.topological_order()
        if g.gate_type == GateType.AND
    )
    gate = buggy._gates[victim]
    buggy._gates[victim] = type(gate)(victim, GateType.OR, gate.inputs)
    buggy._topo_cache = None
    buggy._levels_cache = None
    buggy._plane_cache = None
    on = verify_equivalence(spec, buggy, gf16, prepass=True, seed=1)
    off = verify_equivalence(spec, buggy, gf16, prepass=False, seed=1)
    assert on.status == off.status
    assert on.counterexample == off.counterexample


# -- cache key fallback and promotion -----------------------------------------


def test_raw_key_entries_answer_and_get_promoted(tmp_path, gf16):
    """A prepass-on lookup falls back to raw-key entries and promotes them.

    Entries written by ``REPRO_PREPASS=0`` runs (or before the prepass
    existed) sit under the raw-structure key; the first prepass-on lookup
    answers from them (a ``raw`` hit) and re-publishes the payload under
    the canonical key, which the next lookup hits directly.
    """
    cache = CanonicalPolyCache(tmp_path / "cache")
    circuit = gf_squarer(gf16)
    seeded = abstract_canonical(circuit, gf16, cache=cache, prepass=False)
    assert not seeded.hit

    counters = {}
    fallback = abstract_canonical(
        circuit, gf16, cache=cache, counters=counters, prepass=True
    )
    assert fallback.hit and fallback.source == "raw"
    assert counters["hits_raw"] == 1 and counters["hits_canonical"] == 0

    promoted = abstract_canonical(
        circuit, gf16, cache=cache, counters=counters, prepass=True
    )
    assert promoted.hit and promoted.source == "canonical"
    assert counters["hits_canonical"] == 1
    poly = rehydrate_polynomial(promoted.payload, gf16)
    assert poly == rehydrate_polynomial(seeded.payload, gf16)


def test_cache_stats_break_out_key_kinds(tmp_path):
    cache = CanonicalPolyCache(tmp_path / "cache")
    cache.record(hits=5, misses=2, hits_canonical=3, hits_raw=2)
    cache.record(hits=1, hits_canonical=1)
    stats = cache.stats()
    assert stats["hits"] == 6 and stats["misses"] == 2
    assert stats["hits_canonical"] == 4 and stats["hits_raw"] == 2


# -- fraig reduction soundness ------------------------------------------------


def _redundant_circuit():
    """Distributivity: ``(a&b)|(a&c) == a&(b|c)`` — two distinct internal
    nodes that structural hashing cannot fold but a SAT miter proves equal."""
    c = Circuit("redundant")
    c.add_inputs(["a", "b", "c", "d"])
    c.add_gate("t1", GateType.AND, ["a", "b"])
    c.add_gate("t2", GateType.AND, ["a", "c"])
    c.add_gate("f1", GateType.OR, ["t1", "t2"])
    c.add_gate("u", GateType.OR, ["b", "c"])
    c.add_gate("f2", GateType.AND, ["a", "u"])
    c.add_gate("z1", GateType.XOR, ["f1", "d"])
    c.add_gate("z2", GateType.AND, ["f2", "d"])
    c.set_outputs(["z1", "z2"])
    return c


def test_fraig_merges_proven_equivalences():
    circuit = _redundant_circuit()
    result = apply_prepass(circuit)
    assert result.nets_merged >= 1
    assert result.gates_out < result.canonical_gates
    rng = random.Random(3)
    stimuli = {n: rng.getrandbits(64) for n in circuit.inputs}
    from repro.circuits import simulate

    got = simulate(circuit, stimuli, lanes=64)
    got_r = simulate(result.circuit, stimuli, lanes=64)
    assert got[circuit.outputs[0]] == got_r[result.circuit.outputs[0]]


def test_fraig_disabled_merges_nothing():
    result = apply_prepass(_redundant_circuit(), fraig=False)
    assert result.nets_merged == 0 and result.sat_queries == 0


def test_zero_conflict_budget_leaves_unknowns_untouched():
    """With no conflict budget every miter is ``unknown`` — nothing merges."""
    result = apply_prepass(_redundant_circuit(), max_conflicts=0)
    assert result.nets_merged == 0
    assert result.sat_unknown >= result.sat_queries - result.sat_refuted


# -- the differential guard ---------------------------------------------------


def test_guard_rejects_a_functional_change(gf16):
    circuit = gf_squarer(gf16)
    broken = obfuscate(circuit, passes=["rename"], seed=2).circuit
    victim = next(iter(broken._gates))
    gate = broken._gates[victim]
    broken._gates[victim] = type(gate)(
        victim,
        GateType.OR if gate.gate_type != GateType.OR else GateType.AND,
        gate.inputs,
    )
    broken._topo_cache = None
    broken._levels_cache = None
    broken._plane_cache = None
    with pytest.raises(PrepassError):
        differential_guard(circuit, broken)


def test_pipeline_falls_back_to_raw_when_guard_trips(monkeypatch, tmp_path, gf16):
    import repro.prepass.pipeline as pipeline_mod

    def explode(circuit, **kwargs):
        raise PrepassError("injected guard failure")

    monkeypatch.setattr(pipeline_mod, "apply_prepass", explode)
    cache = CanonicalPolyCache(tmp_path / "cache")
    circuit = gf_squarer(gf16)
    probe = abstract_canonical(circuit, gf16, cache=cache, prepass=True)
    assert probe.prepass is None  # prepass contributed nothing
    assert not probe.hit
    # The fallback keyed the raw structure: a prepass-off lookup hits it.
    again = abstract_canonical(circuit, gf16, cache=cache, prepass=False)
    assert again.hit


# -- executor / manifest / service integration --------------------------------


def test_run_verify_record_schema(tmp_path, gf16):
    spec = mastrovito_multiplier(gf16)
    impl = obfuscate(spec, seed=4).circuit
    spec_path = tmp_path / "spec.blif"
    impl_path = tmp_path / "impl.blif"
    spec_path.write_text(to_blif(spec))
    impl_path.write_text(to_blif(impl))
    record = run_verify(
        {"k": gf16.k, "spec": str(spec_path), "impl": str(impl_path)}
    )
    expected = {
        "verdict", "counterexample", "spec_polynomial", "spec_terms",
        "impl_terms", "spec_cache_hit", "impl_cache_hit", "spec_case",
        "impl_case", "k", "gates", "cones", "prepass",
    }
    assert expected <= set(record)
    assert record["verdict"] == "equivalent"
    assert record["gates"] == spec.num_gates() + impl.num_gates()  # raw counts
    assert record["prepass"]["impl"]["gates_out"] <= impl.num_gates()


def test_execute_job_emits_prepass_phase_and_counter_split(tmp_path, gf16):
    spec = mastrovito_multiplier(gf16)
    impl = obfuscate(spec, seed=4).circuit
    spec_path = tmp_path / "spec.blif"
    impl_path = tmp_path / "impl.blif"
    spec_path.write_text(to_blif(spec))
    impl_path.write_text(to_blif(impl))
    job = {
        "id": "j",
        "type": "verify",
        "params": {"k": gf16.k, "spec": str(spec_path), "impl": str(impl_path)},
    }
    cold = execute_job(job, cache_dir=str(tmp_path / "cache"))
    assert cold["phases"]["prepass"] > 0.0
    # The obfuscated impl collapses onto the spec's canonical entry: one
    # canonical-key hit on the very first (cold-cache) run.
    assert cold["cache"] == {
        "hits": 1, "misses": 1, "hits_canonical": 1, "hits_raw": 0,
    }
    warm = execute_job(dict(job, id="j2"), cache_dir=str(tmp_path / "cache"))
    assert warm["cache"]["hits"] == 2 and warm["cache"]["hits_canonical"] == 2
    off = execute_job(
        {
            "id": "j3",
            "type": "verify",
            "params": {
                "k": gf16.k,
                "spec": str(spec_path),
                "impl": str(impl_path),
                "prepass": False,
            },
        },
        cache_dir=str(tmp_path / "cache2"),
    )
    assert off["phases"]["prepass"] == 0.0
    assert off["spec_polynomial"] == cold["spec_polynomial"]
    assert off["verdict"] == cold["verdict"]


def test_manifest_accepts_prepass_field(tmp_path):
    manifest = manifest_from_dict(
        {
            "jobs": [
                {"type": "verify", "spec": "s.v", "impl": "i.v", "k": 4,
                 "prepass": False},
                {"type": "abstract", "netlist": "i.v", "k": 4, "prepass": True},
                {"type": "reveng", "netlist": "i.v", "prepass": False},
            ]
        }
    )
    assert manifest.jobs[0].params["prepass"] is False
    assert manifest.jobs[1].params["prepass"] is True
    with pytest.raises(ManifestError):
        manifest_from_dict(
            {"jobs": [{"type": "check-spec", "netlist": "i.v",
                       "spec_poly": "A", "k": 4, "prepass": True}]}
        )


def test_service_request_key_includes_prepass():
    from repro.service.server import request_key

    base = {"k": 4, "netlist_text": "x"}
    assert request_key("abstract", base) != request_key(
        "abstract", dict(base, prepass=False)
    )
    assert request_key("abstract", dict(base, prepass=True)) != request_key(
        "abstract", dict(base, prepass=False)
    )


def test_reveng_prepass_shares_cache_with_clean_copy(tmp_path, gf16):
    from repro.reveng import identify_function

    cache = CanonicalPolyCache(tmp_path / "cache")
    clean = mastrovito_multiplier(gf16)
    abstract_canonical(clean, gf16, cache=cache)  # populate canonical entry
    variant = obfuscate(clean, seed=6).circuit
    outcome = identify_function(variant, gf16, cache=cache, prepass=True)
    assert outcome.matches == ["mul"]
    assert outcome.probe.cache_hit  # answered by the clean copy's entry
