"""Shared fixtures for the structural-prepass tests."""

import pytest

from repro.gf import GF2m


@pytest.fixture(scope="module")
def gf16():
    """F_16 — small enough for exhaustive word simulation."""
    return GF2m(4)


@pytest.fixture(scope="module")
def gf256():
    return GF2m(8)
