"""Property tests: idempotence, function preservation, key convergence.

The canonicalizer's contract is threefold and these tests state it over the
full generator suite plus every :mod:`repro.reveng.obfuscate` pass:

* ``canon(canon(c)) == canon(c)`` — the canonical form is a fixed point;
* the canonical circuit computes the same word-level function;
* every structural variant of one design maps to the *same* canonical
  cache key, so the content-addressed cache collapses them to one entry.
"""

import random

import pytest

from repro.circuits import simulate_words
from repro.jobs.cache import (
    CanonicalPolyCache,
    canonical_cache_key,
    normalize_circuit_text,
)
from repro.prepass import abstract_canonical, apply_prepass, canonicalize
from repro.reveng import OBFUSCATION_PASSES, obfuscate, obfuscation_suite
from repro.synth import (
    gf_adder,
    gf_squarer,
    karatsuba_multiplier,
    mastrovito_multiplier,
    montgomery_multiplier,
)

GENERATORS = {
    "mastrovito": lambda field: mastrovito_multiplier(field),
    "montgomery": lambda field: montgomery_multiplier(field).flatten(),
    "karatsuba": lambda field: karatsuba_multiplier(field),
    "squarer": lambda field: gf_squarer(field),
    "adder": lambda field: gf_adder(field),
}


def _word_stimuli(circuit, field, lanes=64, seed=5):
    rng = random.Random(seed)
    return {
        word: [rng.randrange(field.order) for _ in range(lanes)]
        for word in circuit.input_words
    }


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_canon_idempotent_and_equivalent_across_generators(name, gf16):
    circuit = GENERATORS[name](gf16)
    once = canonicalize(circuit)
    twice = canonicalize(once)
    assert normalize_circuit_text(once) == normalize_circuit_text(twice), name
    stimuli = _word_stimuli(circuit, gf16)
    assert simulate_words(once, stimuli) == simulate_words(circuit, stimuli), name


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_prepass_preserves_function_across_generators(name, gf16):
    circuit = GENERATORS[name](gf16)
    result = apply_prepass(circuit)
    stimuli = _word_stimuli(circuit, gf16)
    assert simulate_words(result.circuit, stimuli) == simulate_words(
        circuit, stimuli
    ), name
    assert result.gates_out <= result.gates_in


def test_every_obfuscation_pass_maps_to_one_canonical_key(gf16):
    """All six obfuscation passes — and their stack — share one cache key.

    This is the tentpole property: ``rename`` (opaque net renaming) used to
    defeat the raw-structure cache key outright, and the rewrite passes each
    perturbed the normalized netlist text. After canonicalization the whole
    family keys identically.
    """
    original = mastrovito_multiplier(gf16)
    suite = obfuscation_suite(original, seed=3)
    assert len(suite) == len(OBFUSCATION_PASSES) + 1  # six passes + stack
    reference = canonical_cache_key(canonicalize(original), gf16)
    for variant in suite:
        key = canonical_cache_key(canonicalize(variant.circuit), gf16)
        assert key == reference, variant.name


def test_seeded_obfuscation_variants_canonicalize_identically(gf16):
    original = gf_squarer(gf16)
    reference = normalize_circuit_text(canonicalize(original))
    for seed in (1, 2, 3):
        variant = obfuscate(original, seed=seed)
        assert (
            normalize_circuit_text(canonicalize(variant.circuit)) == reference
        ), seed
        stimuli = _word_stimuli(original, gf16, seed=seed)
        assert simulate_words(variant.circuit, stimuli) == simulate_words(
            original, stimuli
        )


def test_opaque_rename_now_cache_hits_the_original(tmp_path, gf16):
    """Regression: a renamed variant warm-hits the original's cache entry.

    Before the prepass existed the cache keyed on the raw netlist structure
    (gate and net names included), so the ``rename`` obfuscation pass — a
    pure alpha-conversion — produced a guaranteed cache *miss* and a full
    re-abstraction. The canonical key is rename-invariant: this test
    abstracts the original cold, then requires the renamed variant to be a
    hit, which fails on the pre-PR raw-key scheme.
    """
    original = mastrovito_multiplier(gf16)
    renamed = obfuscate(original, passes=["rename"], seed=9).circuit
    # The pre-PR failure mode, kept observable: the raw keys really differ.
    assert canonical_cache_key(original, gf16) != canonical_cache_key(
        renamed, gf16
    )

    cache = CanonicalPolyCache(tmp_path / "cache")
    counters = {}
    cold = abstract_canonical(original, gf16, cache=cache, counters=counters)
    assert not cold.hit
    warm = abstract_canonical(renamed, gf16, cache=cache, counters=counters)
    assert warm.hit
    assert warm.source == "canonical"
    assert counters == {
        "hits": 1,
        "misses": 1,
        "hits_canonical": 1,
        "hits_raw": 0,
    }
    assert warm.payload["terms"] == cold.payload["terms"]
