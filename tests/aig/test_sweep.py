"""Unit tests for circuit-to-AIG conversion and SAT sweeping."""

import itertools
import random

import pytest

from repro.aig import Aig, circuit_to_aig, prove_lit_equal, sat_sweep
from repro.circuits import simulate
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier, random_netlist

from ..circuits.test_circuit import two_bit_multiplier


class TestCircuitToAig:
    def test_matches_simulation(self):
        circuit = two_bit_multiplier()
        aig, lits = circuit_to_aig(circuit)
        input_nodes = {net: lits[net] >> 1 for net in circuit.inputs}
        for bits in itertools.product((0, 1), repeat=4):
            stim = dict(zip(circuit.inputs, bits))
            expected = simulate(circuit, stim)
            values = aig.simulate({input_nodes[n]: stim[n] for n in circuit.inputs})
            for net in circuit.nets():
                assert aig.lit_value(values, lits[net]) == expected[net], net

    def test_random_netlists(self):
        rng = random.Random(12)
        for trial in range(10):
            circuit = random_netlist(4, 20, rng)
            aig, lits = circuit_to_aig(circuit)
            input_nodes = {net: lits[net] >> 1 for net in circuit.inputs}
            for _ in range(8):
                stim = {n: rng.randint(0, 1) for n in circuit.inputs}
                expected = simulate(circuit, stim)
                values = aig.simulate(
                    {input_nodes[n]: stim[n] for n in circuit.inputs}
                )
                for out in circuit.outputs:
                    assert aig.lit_value(values, lits[out]) == expected[out]

    def test_shared_inputs_compose(self):
        c = two_bit_multiplier()
        aig = Aig()
        shared = {net: aig.add_input() for net in c.inputs}
        _, lits1 = circuit_to_aig(c, aig, shared)
        _, lits2 = circuit_to_aig(c.clone("copy"), aig, shared)
        # Identical circuits over shared inputs strash to identical nodes.
        assert lits1["z0"] == lits2["z0"]
        assert lits1["z1"] == lits2["z1"]


class TestProveLitEqual:
    def test_trivially_equal(self):
        aig = Aig()
        a, b = aig.add_input(), aig.add_input()
        z = aig.and_gate(a, b)
        assert prove_lit_equal(aig, {}, z, z) == ("equal", None)

    def test_de_morgan_proven(self):
        aig = Aig()
        a, b = aig.add_input(), aig.add_input()
        lhs = Aig.negate(aig.and_gate(a, b))
        rhs = aig.or_gate(Aig.negate(a), Aig.negate(b))
        status, _ = prove_lit_equal(aig, {}, lhs, rhs)
        assert status == "equal"

    def test_difference_witnessed(self):
        aig = Aig()
        a, b = aig.add_input(), aig.add_input()
        status, pattern = prove_lit_equal(
            aig, {}, aig.and_gate(a, b), aig.or_gate(a, b)
        )
        assert status == "diff"
        # AND != OR exactly when inputs differ.
        assert pattern[a >> 1] != pattern[b >> 1]

    def test_budget_exhaustion(self):
        field = GF2m(6)
        from repro.synth import montgomery_multiplier

        spec = mastrovito_multiplier(field)
        aig = Aig()
        shared = {net: aig.add_input() for net in spec.inputs}
        _, spec_lits = circuit_to_aig(spec, aig, shared)
        impl = montgomery_multiplier(field).flatten()
        impl_shared = {}
        for word, bits in impl.input_words.items():
            for i, net in enumerate(bits):
                impl_shared[net] = shared[spec.input_words[word][i]]
        _, impl_lits = circuit_to_aig(impl, aig, impl_shared)
        status, _ = prove_lit_equal(
            aig,
            {},
            spec_lits[spec.output_words["Z"][5]],
            impl_lits[impl.output_words["G"][5]],
            max_conflicts=5,
        )
        assert status == "unknown"


class TestSatSweep:
    def test_merges_redundant_logic(self):
        """Two syntactically different builds of XOR merge into one class."""
        aig = Aig()
        a, b = aig.add_input(), aig.add_input()
        xor1 = aig.xor_gate(a, b)
        # (a | b) & !(a & b) — different structure, same function.
        xor2 = aig.and_gate(aig.or_gate(a, b), Aig.negate(aig.and_gate(a, b)))
        result = sat_sweep(aig)
        assert result.canon_lit(xor1) == result.canon_lit(xor2)
        assert result.merged >= 1

    def test_identical_circuits_fully_merge(self, f16):
        spec = mastrovito_multiplier(f16, tree=True)
        array = mastrovito_multiplier(f16, tree=False)
        aig = Aig()
        shared = {net: aig.add_input() for net in spec.inputs}
        _, spec_lits = circuit_to_aig(spec, aig, shared)
        _, impl_lits = circuit_to_aig(array, aig, shared)
        result = sat_sweep(aig)
        for sb, ib in zip(spec.output_words["Z"], array.output_words["Z"]):
            assert result.canon_lit(spec_lits[sb]) == result.canon_lit(
                impl_lits[ib]
            ), sb

    def test_sweep_never_merges_inequivalent_nodes(self):
        """Soundness: merged literals must agree on exhaustive simulation."""
        rng = random.Random(5)
        for trial in range(5):
            circuit = random_netlist(4, 25, rng)
            aig, _ = circuit_to_aig(circuit)
            result = sat_sweep(aig)
            for node, rep_lit in result.canon.items():
                for bits in itertools.product((0, 1), repeat=len(aig.inputs)):
                    stim = dict(zip(aig.inputs, bits))
                    values = aig.simulate(stim)
                    lhs = aig.lit_value(values, node << 1)
                    # Canonical literal may itself chain; resolve via result.
                    rhs = aig.lit_value(values, result.canon_lit(node << 1))
                    assert lhs == rhs, (trial, node)
