"""Unit tests for the AIG core."""

import itertools

import pytest

from repro.aig import FALSE_LIT, TRUE_LIT, Aig


class TestLiterals:
    def test_lit_encoding(self):
        assert Aig.lit(3) == 6
        assert Aig.lit(3, complement=True) == 7
        assert Aig.node_of(7) == 3
        assert Aig.is_complemented(7)
        assert Aig.negate(6) == 7 and Aig.negate(7) == 6

    def test_constants(self):
        assert FALSE_LIT == 0 and TRUE_LIT == 1
        assert Aig.negate(FALSE_LIT) == TRUE_LIT


class TestConstruction:
    def test_inputs(self):
        aig = Aig()
        a = aig.add_input()
        b = aig.add_input()
        assert a != b
        assert aig.is_input_node(a >> 1)
        assert not aig.is_input_node(0)

    def test_and_folding_rules(self):
        aig = Aig()
        a = aig.add_input()
        assert aig.and_gate(a, FALSE_LIT) == FALSE_LIT
        assert aig.and_gate(a, TRUE_LIT) == a
        assert aig.and_gate(a, a) == a
        assert aig.and_gate(a, Aig.negate(a)) == FALSE_LIT

    def test_structural_hashing(self):
        aig = Aig()
        a, b = aig.add_input(), aig.add_input()
        n1 = aig.and_gate(a, b)
        n2 = aig.and_gate(b, a)  # commuted
        assert n1 == n2
        assert aig.num_ands() == 1

    def test_derived_gates_truth_tables(self):
        aig = Aig()
        a, b = aig.add_input(), aig.add_input()
        gates = {
            "and": aig.and_gate(a, b),
            "or": aig.or_gate(a, b),
            "xor": aig.xor_gate(a, b),
        }
        expected = {
            "and": lambda x, y: x & y,
            "or": lambda x, y: x | y,
            "xor": lambda x, y: x ^ y,
        }
        for x, y in itertools.product((0, 1), repeat=2):
            values = aig.simulate({a >> 1: x, b >> 1: y})
            for name, lit in gates.items():
                assert aig.lit_value(values, lit) == expected[name](x, y), name

    def test_mux(self):
        aig = Aig()
        s, t, e = aig.add_input(), aig.add_input(), aig.add_input()
        m = aig.mux(s, t, e)
        for sv, tv, ev in itertools.product((0, 1), repeat=3):
            values = aig.simulate({s >> 1: sv, t >> 1: tv, e >> 1: ev})
            assert aig.lit_value(values, m) == (tv if sv else ev)


class TestSimulation:
    def test_bit_parallel(self):
        aig = Aig()
        a, b = aig.add_input(), aig.add_input()
        z = aig.xor_gate(a, b)
        mask = 0b1111
        values = aig.simulate({a >> 1: 0b0011, b >> 1: 0b0101}, mask)
        assert aig.lit_value(values, z, mask) == 0b0110

    def test_complemented_inputs(self):
        aig = Aig()
        a = aig.add_input()
        values = aig.simulate({a >> 1: 1})
        assert aig.lit_value(values, Aig.negate(a)) == 0

    def test_cone_size(self):
        aig = Aig()
        a, b, c = (aig.add_input() for _ in range(3))
        z = aig.and_gate(aig.and_gate(a, b), c)
        assert aig.cone_size(z) == 2
        assert aig.cone_size(a) == 0
