"""Unit tests for the structural-Verilog reader/writer."""

import pytest

from repro.circuits import (
    Circuit,
    CircuitError,
    GateType,
    from_verilog,
    read_verilog,
    simulate_words,
    to_verilog,
    write_verilog,
)
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier

from .test_circuit import two_bit_multiplier


class TestWriter:
    def test_contains_module_and_ports(self):
        text = to_verilog(two_bit_multiplier())
        assert text.startswith("module mult2 (")
        assert "input a0, a1, b0, b1;" in text
        assert "output z0, z1;" in text
        assert text.rstrip().endswith("endmodule")

    def test_gates_serialised(self):
        text = to_verilog(two_bit_multiplier())
        assert "and " in text and "xor " in text

    def test_word_annotations(self):
        text = to_verilog(two_bit_multiplier())
        assert "// word input A = a0 a1" in text
        assert "// word output Z = z0 z1" in text

    def test_constants_as_assign(self):
        c = Circuit("consts")
        c.add_input("a")
        c.CONST(0, out="zero")
        c.CONST(1, out="one")
        c.set_outputs(["zero", "one"])
        text = to_verilog(c)
        assert "assign zero = 1'b0;" in text
        assert "assign one = 1'b1;" in text


class TestRoundTrip:
    def test_structure_preserved(self):
        c = two_bit_multiplier()
        r = from_verilog(to_verilog(c))
        assert r.name == "mult2"
        assert r.inputs == c.inputs
        assert r.outputs == c.outputs
        assert r.num_gates() == c.num_gates()
        assert r.input_words == c.input_words
        assert r.output_words == c.output_words

    def test_function_preserved(self, f4):
        c = two_bit_multiplier()
        r = from_verilog(to_verilog(c))
        stim = {"A": list(range(4)) * 4, "B": [b for b in range(4) for _ in range(4)]}
        assert simulate_words(c, stim) == simulate_words(r, stim)

    def test_large_circuit(self, f256):
        c = mastrovito_multiplier(f256)
        r = from_verilog(to_verilog(c))
        assert r.num_gates() == c.num_gates()
        import random

        rng = random.Random(2)
        stim = {
            "A": [rng.randrange(256) for _ in range(16)],
            "B": [rng.randrange(256) for _ in range(16)],
        }
        assert simulate_words(c, stim) == simulate_words(r, stim)

    def test_all_gate_types(self):
        c = Circuit("allgates")
        c.add_inputs(["a", "b"])
        for gate_type in (
            GateType.AND,
            GateType.OR,
            GateType.XOR,
            GateType.NAND,
            GateType.NOR,
            GateType.XNOR,
        ):
            c.add_gate(f"g_{gate_type.value}", gate_type, ("a", "b"))
        c.NOT("a", out="g_not")
        c.BUF("b", out="g_buf")
        c.set_outputs([g.output for g in c.gates])
        r = from_verilog(to_verilog(c))
        for gate in c.gates:
            assert r.gate_driving(gate.output).gate_type is gate.gate_type

    def test_file_io(self, tmp_path):
        c = two_bit_multiplier()
        path = str(tmp_path / "m.v")
        write_verilog(c, path)
        r = read_verilog(path)
        assert r.num_gates() == c.num_gates()


class TestParser:
    def test_multiline_statement(self):
        text = (
            "module t (a, b,\n"
            "          z);\n"
            "  input a, b;\n"
            "  output z;\n"
            "  and g1 (z,\n"
            "          a, b);\n"
            "endmodule\n"
        )
        c = from_verilog(text)
        assert c.gate_driving("z").gate_type is GateType.AND

    def test_validates_result(self):
        text = (
            "module t (a, z);\n"
            "  input a;\n"
            "  output z;\n"
            "  and g1 (z, a, ghost);\n"
            "endmodule\n"
        )
        with pytest.raises(CircuitError):
            from_verilog(text)
