"""Format-sniffing netlist entry points: paths and in-memory text."""

import pytest

from repro.circuits import (
    CircuitError,
    read_netlist,
    read_netlist_text,
    to_blif,
    to_verilog,
)

from .test_circuit import two_bit_multiplier


class TestReadNetlistText:
    """``read_netlist_text`` is the wire-format entry point: the service
    streams netlist bodies over HTTP, so parsing must work without a
    filesystem path."""

    def test_verilog_text_round_trips(self):
        circuit = two_bit_multiplier()
        parsed = read_netlist_text(to_verilog(circuit))
        assert parsed.inputs == circuit.inputs
        assert parsed.outputs == circuit.outputs
        assert parsed.num_gates() == circuit.num_gates()
        assert parsed.input_words == circuit.input_words

    def test_blif_text_round_trips(self):
        circuit = two_bit_multiplier()
        parsed = read_netlist_text(to_blif(circuit))
        assert parsed.inputs == circuit.inputs
        assert parsed.outputs == circuit.outputs

    def test_unrecognised_text_is_a_circuit_error(self):
        with pytest.raises(CircuitError) as excinfo:
            read_netlist_text("this is not a netlist\n", name="req-body")
        assert "req-body" in str(excinfo.value)

    def test_matches_path_based_reader(self, tmp_path):
        circuit = two_bit_multiplier()
        path = tmp_path / "c.v"
        path.write_text(to_verilog(circuit))
        from_path = read_netlist(str(path))
        from_text = read_netlist_text(path.read_text())
        assert from_path.gates == from_text.gates
        assert from_path.output_words == from_text.output_words
