"""Unit tests for constant propagation and dead-logic removal."""

import itertools

import pytest

from repro.circuits import Circuit, CircuitError, GateType, simulate, simulate_words
from repro.circuits.opt import (
    bind_word_constant,
    constant_propagate,
    simplify,
    strip_dead_logic,
)
from repro.gf import GF2m
from repro.synth import montgomery_block


def equivalent(original, simplified, inputs=None):
    """Exhaustively compare two circuits on the given primary inputs."""
    inputs = inputs if inputs is not None else original.inputs
    for pattern in itertools.product((0, 1), repeat=len(inputs)):
        stim = dict(zip(inputs, pattern))
        v1 = simulate(original, stim)
        v2 = simulate(simplified, stim)
        for out in original.outputs:
            if v1[out] != v2[out]:
                return False
    return True


class TestConstantPropagate:
    def test_and_with_zero(self):
        c = Circuit()
        c.add_input("a")
        zero = c.CONST(0)
        c.AND("a", zero, out="z")
        c.set_outputs(["z"])
        s = constant_propagate(c)
        assert s.gate_driving("z").gate_type is GateType.CONST0

    def test_and_with_one_becomes_wire(self):
        c = Circuit()
        c.add_input("a")
        one = c.CONST(1)
        c.AND("a", one, out="z")
        c.set_outputs(["z"])
        s = constant_propagate(c)
        gate = s.gate_driving("z")
        assert gate.gate_type is GateType.BUF and gate.inputs == ("a",)

    def test_xor_with_one_becomes_not(self):
        c = Circuit()
        c.add_input("a")
        one = c.CONST(1)
        c.XOR("a", one, out="z")
        c.set_outputs(["z"])
        s = constant_propagate(c)
        assert s.gate_driving("z").gate_type is GateType.NOT

    def test_xor_self_cancellation(self):
        c = Circuit()
        c.add_input("a")
        c.XOR("a", "a", out="z")
        c.set_outputs(["z"])
        s = constant_propagate(c)
        assert s.gate_driving("z").gate_type is GateType.CONST0

    def test_and_idempotent_dedup(self):
        c = Circuit()
        c.add_input("a")
        c.AND("a", "a", out="z")
        c.set_outputs(["z"])
        s = constant_propagate(c)
        assert s.gate_driving("z").gate_type is GateType.BUF

    def test_or_with_one(self):
        c = Circuit()
        c.add_input("a")
        one = c.CONST(1)
        c.OR("a", one, out="z")
        c.set_outputs(["z"])
        s = constant_propagate(c)
        assert s.gate_driving("z").gate_type is GateType.CONST1

    def test_nand_nor_xnor_folding(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        one = c.CONST(1)
        zero = c.CONST(0)
        c.add_gate("z1", GateType.NAND, ("a", zero))  # -> 1
        c.add_gate("z2", GateType.NOR, ("a", one))  # -> 0
        c.add_gate("z3", GateType.XNOR, ("a", one))  # -> buf a
        c.set_outputs(["z1", "z2", "z3"])
        s = constant_propagate(c)
        assert s.gate_driving("z1").gate_type is GateType.CONST1
        assert s.gate_driving("z2").gate_type is GateType.CONST0
        assert s.gate_driving("z3").gate_type is GateType.BUF

    def test_buf_chain_bypassed(self):
        c = Circuit()
        c.add_input("a")
        b1 = c.BUF("a")
        b2 = c.BUF(b1)
        c.XOR(b2, "a", out="z")
        c.set_outputs(["z"])
        s = constant_propagate(c)
        # xor(a, a) through the chain must cancel to constant 0
        assert s.gate_driving("z").gate_type is GateType.CONST0

    def test_random_circuits_preserved(self):
        import random

        from repro.synth import random_netlist

        rng = random.Random(77)
        for trial in range(20):
            c = random_netlist(4, 15, rng, name=f"r{trial}")
            s = constant_propagate(c)
            assert equivalent(c, s), trial

    def test_not_of_constant(self):
        c = Circuit()
        c.add_input("a")
        one = c.CONST(1)
        c.NOT(one, out="z")
        c.set_outputs(["z"])
        s = constant_propagate(c)
        assert s.gate_driving("z").gate_type is GateType.CONST0


class TestStripDeadLogic:
    def test_removes_unread_gates(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        c.AND("a", "b", out="dead")
        c.XOR("a", "b", out="z")
        c.set_outputs(["z"])
        s = strip_dead_logic(c)
        assert s.num_gates() == 1
        assert not s.is_driven("dead")

    def test_keeps_word_bits_alive(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        c.AND("a", "b", out="w0")
        c.set_outputs([])
        c.add_output_word("W", ["w0"])
        s = strip_dead_logic(c)
        assert s.is_driven("w0")


class TestBindWordConstant:
    def test_bind_and_simplify(self, f16):
        block = montgomery_block(f16)
        constant = 0b1011
        bound = simplify(bind_word_constant(block, "B", constant))
        assert "B" not in bound.input_words
        assert bound.num_gates() < block.num_gates()
        import random

        rng = random.Random(3)
        for _ in range(20):
            a = rng.randrange(16)
            full = simulate_words(block, {"A": [a], "B": [constant]})["G"][0]
            slim = simulate_words(bound, {"A": [a]})["G"][0]
            assert full == slim

    def test_unknown_word_rejected(self, f16):
        with pytest.raises(CircuitError):
            bind_word_constant(montgomery_block(f16), "C", 1)


class TestSimplifyFixpoint:
    def test_converges(self, f16):
        block = montgomery_block(f16)
        once = simplify(bind_word_constant(block, "B", 1), rounds=1)
        full = simplify(bind_word_constant(block, "B", 1), rounds=8)
        assert full.num_gates() <= once.num_gates()
        # Re-simplifying a fixpoint changes nothing.
        assert simplify(full).num_gates() == full.num_gates()
