"""Unit tests for gate primitives."""

import pytest

from repro.circuits import GATE_ARITY, Gate, GateType, eval_gate


class TestGateConstruction:
    def test_valid_and(self):
        gate = Gate("z", GateType.AND, ("a", "b"))
        assert gate.output == "z"

    def test_nary_xor(self):
        Gate("z", GateType.XOR, ("a", "b", "c", "d"))

    def test_not_needs_one_input(self):
        with pytest.raises(ValueError):
            Gate("z", GateType.NOT, ("a", "b"))

    def test_and_needs_two_inputs(self):
        with pytest.raises(ValueError):
            Gate("z", GateType.AND, ("a",))

    def test_const_takes_no_inputs(self):
        Gate("z", GateType.CONST0, ())
        with pytest.raises(ValueError):
            Gate("z", GateType.CONST1, ("a",))

    def test_str(self):
        assert str(Gate("z", GateType.XOR, ("a", "b"))) == "z = xor(a, b)"

    def test_frozen(self):
        gate = Gate("z", GateType.AND, ("a", "b"))
        with pytest.raises(AttributeError):
            gate.output = "y"


class TestEvalGate:
    TRUTH = {
        GateType.AND: [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)],
        GateType.OR: [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)],
        GateType.XOR: [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)],
        GateType.NAND: [(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)],
        GateType.NOR: [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 0)],
        GateType.XNOR: [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 1)],
    }

    @pytest.mark.parametrize("gate_type", sorted(TRUTH, key=lambda g: g.value))
    def test_binary_truth_tables(self, gate_type):
        for a, b, out in self.TRUTH[gate_type]:
            assert eval_gate(gate_type, (a, b)) == out

    def test_not(self):
        assert eval_gate(GateType.NOT, (0,)) == 1
        assert eval_gate(GateType.NOT, (1,)) == 0

    def test_buf(self):
        assert eval_gate(GateType.BUF, (0,)) == 0
        assert eval_gate(GateType.BUF, (1,)) == 1

    def test_constants(self):
        assert eval_gate(GateType.CONST0, ()) == 0
        assert eval_gate(GateType.CONST1, ()) == 1

    def test_nary_and(self):
        assert eval_gate(GateType.AND, (1, 1, 1)) == 1
        assert eval_gate(GateType.AND, (1, 0, 1)) == 0

    def test_nary_xor_parity(self):
        assert eval_gate(GateType.XOR, (1, 1, 1)) == 1
        assert eval_gate(GateType.XOR, (1, 1, 1, 1)) == 0

    def test_bit_parallel_lanes(self):
        mask = 0b1111
        a, b = 0b0011, 0b0101
        assert eval_gate(GateType.AND, (a, b), mask) == 0b0001
        assert eval_gate(GateType.XOR, (a, b), mask) == 0b0110
        assert eval_gate(GateType.NOT, (a,), mask) == 0b1100
        assert eval_gate(GateType.NOR, (a, b), mask) == 0b1000
        assert eval_gate(GateType.CONST1, (), mask) == mask

    def test_arity_table_consistent(self):
        for gate_type, (lo, hi) in GATE_ARITY.items():
            assert lo >= 0
            assert hi is None or hi >= lo
