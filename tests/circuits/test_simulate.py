"""Unit tests for bit-parallel simulation."""

import pytest

from repro.circuits import (
    Circuit,
    CircuitError,
    exhaustive_word_table,
    simulate,
    simulate_words,
)
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier

from .test_circuit import two_bit_multiplier


class TestSimulate:
    def test_single_vector(self):
        c = two_bit_multiplier()
        values = simulate(c, {"a0": 1, "a1": 1, "b0": 1, "b1": 0})
        # A = 3 (a0=a1=1), B = 1 -> Z = 3: z0=1, z1=1
        assert values["z0"] == 1 and values["z1"] == 1

    def test_missing_input_rejected(self):
        c = two_bit_multiplier()
        with pytest.raises(CircuitError):
            simulate(c, {"a0": 1})

    def test_lanes_mask_inputs(self):
        c = Circuit()
        c.add_inputs(["a"])
        c.NOT("a", out="z")
        c.set_outputs(["z"])
        values = simulate(c, {"a": 0b01}, lanes=2)
        assert values["z"] == 0b10

    def test_parallel_matches_serial(self):
        c = two_bit_multiplier()
        import itertools

        patterns = list(itertools.product((0, 1), repeat=4))
        packed = {
            net: sum(p[i] << lane for lane, p in enumerate(patterns))
            for i, net in enumerate(["a0", "a1", "b0", "b1"])
        }
        wide = simulate(c, packed, lanes=len(patterns))
        for lane, p in enumerate(patterns):
            narrow = simulate(c, dict(zip(["a0", "a1", "b0", "b1"], p)))
            for net in c.nets():
                assert (wide[net] >> lane) & 1 == narrow[net]


class TestSimulateWords:
    def test_multiplication(self, f4):
        c = two_bit_multiplier()
        a_vals = [a for a in range(4) for _ in range(4)]
        b_vals = [b for _ in range(4) for b in range(4)]
        result = simulate_words(c, {"A": a_vals, "B": b_vals})
        for i in range(16):
            assert result["Z"][i] == f4.mul(a_vals[i], b_vals[i])

    def test_empty_stimuli(self):
        c = two_bit_multiplier()
        assert simulate_words(c, {"A": [], "B": []}) == {"Z": []}

    def test_mismatched_lanes_rejected(self):
        c = two_bit_multiplier()
        with pytest.raises(CircuitError):
            simulate_words(c, {"A": [1, 2], "B": [1]})

    def test_missing_word_rejected(self):
        c = two_bit_multiplier()
        with pytest.raises(CircuitError):
            simulate_words(c, {"A": [1]})

    def test_large_batch(self, f256):
        c = mastrovito_multiplier(f256)
        import random

        rng = random.Random(7)
        a_vals = [rng.randrange(256) for _ in range(128)]
        b_vals = [rng.randrange(256) for _ in range(128)]
        result = simulate_words(c, {"A": a_vals, "B": b_vals})
        for a, b, z in zip(a_vals, b_vals, result["Z"]):
            assert z == f256.mul(a, b)


class TestExhaustiveTable:
    def test_full_multiplication_table(self, f4):
        c = two_bit_multiplier()
        table = exhaustive_word_table(c, 2)
        assert len(table) == 16
        for (a, b), outs in table.items():
            assert outs["Z"] == f4.mul(a, b)

    def test_size_guard(self, f4):
        c = two_bit_multiplier()
        with pytest.raises(CircuitError):
            exhaustive_word_table(c, 11)
