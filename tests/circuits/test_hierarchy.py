"""Unit tests for hierarchical circuits."""

import pytest

from repro.circuits import CircuitError, HierarchicalCircuit, simulate_words
from repro.gf import GF2m
from repro.synth import gf_adder, gf_squarer, montgomery_multiplier


def adder_chain(field, stages=2):
    """Z = A + B + B + ... through a chain of adder blocks."""
    hier = HierarchicalCircuit("chain", field.k)
    hier.add_input_word("A")
    hier.add_input_word("B")
    previous = "A"
    for i in range(stages):
        hier.add_block(
            f"add{i}",
            gf_adder(field, name=f"add{i}"),
            {"A": previous, "B": "B"},
            {"Z": f"t{i}"},
        )
        previous = f"t{i}"
    hier.set_output_words([previous])
    return hier, previous


class TestConstruction:
    def test_duplicate_input_word(self, f16):
        hier = HierarchicalCircuit("h", 4)
        hier.add_input_word("A")
        with pytest.raises(CircuitError):
            hier.add_input_word("A")

    def test_unbound_word_rejected(self, f16):
        hier = HierarchicalCircuit("h", 4)
        hier.add_input_word("A")
        with pytest.raises(CircuitError):
            hier.add_block("b", gf_adder(f16), {"A": "A"}, {"Z": "T"})

    def test_double_driven_word_rejected(self, f16):
        hier = HierarchicalCircuit("h", 4)
        hier.add_input_word("A")
        hier.add_input_word("B")
        hier.add_block("b1", gf_adder(f16), {"A": "A", "B": "B"}, {"Z": "T"})
        with pytest.raises(CircuitError):
            hier.add_block("b2", gf_adder(f16), {"A": "A", "B": "B"}, {"Z": "T"})

    def test_undriven_output_rejected(self, f16):
        hier = HierarchicalCircuit("h", 4)
        hier.add_input_word("A")
        with pytest.raises(CircuitError):
            hier.set_output_words(["ghost"])

    def test_reading_undriven_word_rejected(self, f16):
        hier = HierarchicalCircuit("h", 4)
        hier.add_input_word("A")
        hier.add_block("b", gf_adder(f16), {"A": "A", "B": "ghost"}, {"Z": "T"})
        with pytest.raises(CircuitError):
            hier.topological_blocks()


class TestTopology:
    def test_blocks_ordered(self, f16):
        hier, _ = adder_chain(f16, stages=3)
        names = [b.name for b in hier.topological_blocks()]
        assert names == ["add0", "add1", "add2"]

    def test_num_gates_sums_blocks(self, f16):
        hier, _ = adder_chain(f16, stages=3)
        assert hier.num_gates() == 3 * gf_adder(f16).num_gates()


class TestSimulation:
    def test_chain_function(self, f16):
        hier, out = adder_chain(f16, stages=2)
        result = hier.simulate_words({"A": [5, 9], "B": [3, 3]})
        # A + B + B = A in characteristic 2
        assert result[out] == [5, 9]

    def test_montgomery_hierarchy(self, f16):
        hier = montgomery_multiplier(f16)
        import random

        rng = random.Random(11)
        a_vals = [rng.randrange(16) for _ in range(32)]
        b_vals = [rng.randrange(16) for _ in range(32)]
        result = hier.simulate_words({"A": a_vals, "B": b_vals})
        for a, b, g in zip(a_vals, b_vals, result["G"]):
            assert g == f16.mul(a, b)

    def test_missing_input_rejected(self, f16):
        hier, _ = adder_chain(f16)
        with pytest.raises(CircuitError):
            hier.simulate_words({"A": [1]})


class TestFlatten:
    def test_flat_function_matches(self, f16):
        hier = montgomery_multiplier(f16)
        flat = hier.flatten()
        import random

        rng = random.Random(13)
        a_vals = [rng.randrange(16) for _ in range(32)]
        b_vals = [rng.randrange(16) for _ in range(32)]
        assert simulate_words(flat, {"A": a_vals, "B": b_vals})[
            "G"
        ] == hier.simulate_words({"A": a_vals, "B": b_vals})["G"]

    def test_flat_gate_count(self, f16):
        hier = montgomery_multiplier(f16)
        assert hier.flatten().num_gates() == hier.num_gates()

    def test_flat_words(self, f16):
        flat = montgomery_multiplier(f16).flatten()
        assert set(flat.input_words) == {"A", "B"}
        assert set(flat.output_words) == {"G"}
        flat.validate()

    def test_single_word_blocks(self, f8):
        hier = HierarchicalCircuit("sq2", f8.k)
        hier.add_input_word("A")
        hier.add_block("s1", gf_squarer(f8, name="s1"), {"A": "A"}, {"Z": "T"})
        hier.add_block("s2", gf_squarer(f8, name="s2"), {"A": "T"}, {"Z": "Z"})
        hier.set_output_words(["Z"])
        flat = hier.flatten()
        for a in range(8):
            expected = f8.square(f8.square(a))
            assert simulate_words(flat, {"A": [a]})["Z"][0] == expected
