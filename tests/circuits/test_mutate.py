"""Unit tests for bug injection."""

import random

import pytest

from repro.circuits import (
    GateType,
    random_mutation,
    rewire_gate_input,
    simulate_words,
    substitute_gate_type,
    swap_gate_inputs,
)
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier

from .test_circuit import two_bit_multiplier


class TestSubstituteGateType:
    def test_changes_type(self):
        c = two_bit_multiplier()
        mutant, mutation = substitute_gate_type(c, "r0")
        assert mutant.gate_driving("r0").gate_type is not GateType.XOR
        assert mutation.kind == "gate-substitution"
        assert mutation.net == "r0"

    def test_original_untouched(self):
        c = two_bit_multiplier()
        mutant, _ = substitute_gate_type(c, "r0")
        assert c.gate_driving("r0").gate_type is GateType.XOR

    def test_explicit_type(self):
        c = two_bit_multiplier()
        mutant, _ = substitute_gate_type(c, "s0", GateType.OR)
        assert mutant.gate_driving("s0").gate_type is GateType.OR

    def test_changes_function(self, f4):
        c = two_bit_multiplier()
        mutant, _ = substitute_gate_type(c, "s3", GateType.OR)
        stim = {"A": list(range(4)) * 4, "B": [b for b in range(4) for _ in range(4)]}
        assert simulate_words(c, stim) != simulate_words(mutant, stim)

    def test_str_mentions_gates(self):
        c = two_bit_multiplier()
        _, mutation = substitute_gate_type(c, "r0")
        assert "r0" in str(mutation) and "xor" in str(mutation)


class TestSwapInputs:
    def test_swap_is_noop_for_symmetric_gates(self, f4):
        c = two_bit_multiplier()
        mutant, mutation = swap_gate_inputs(c, "s1")
        assert mutation.kind == "input-swap"
        stim = {"A": list(range(4)) * 4, "B": [b for b in range(4) for _ in range(4)]}
        assert simulate_words(c, stim) == simulate_words(mutant, stim)

    def test_needs_two_inputs(self):
        c = two_bit_multiplier()
        c.NOT("z0", out="inv")
        with pytest.raises(ValueError):
            swap_gate_inputs(c, "inv")


class TestRewire:
    def test_example_5_1_bug(self, f4):
        """The exact connection error of the paper's Example 5.1."""
        c = two_bit_multiplier()
        mutant, mutation = rewire_gate_input(c, "r0", 0, "s0")
        assert mutation.kind == "rewire"
        assert mutant.gate_driving("r0").inputs == ("s0", "s2")
        stim = {"A": list(range(4)) * 4, "B": [b for b in range(4) for _ in range(4)]}
        assert simulate_words(c, stim) != simulate_words(mutant, stim)

    def test_cycle_rejected(self):
        c = two_bit_multiplier()
        with pytest.raises(Exception):
            rewire_gate_input(c, "s0", 0, "z0")  # z0 depends on s0

    def test_bad_position(self):
        c = two_bit_multiplier()
        with pytest.raises(ValueError):
            rewire_gate_input(c, "r0", 5, "s0")


class TestRandomMutation:
    def test_deterministic_with_seed(self, f256):
        c = mastrovito_multiplier(f256)
        m1, d1 = random_mutation(c, random.Random(3))
        m2, d2 = random_mutation(c, random.Random(3))
        assert d1 == d2

    def test_mutant_differs_functionally(self, f256):
        c = mastrovito_multiplier(f256)
        rng = random.Random(5)
        mutant, _ = random_mutation(c, rng)
        stim = {
            "A": [rng.randrange(256) for _ in range(64)],
            "B": [rng.randrange(256) for _ in range(64)],
        }
        # Gate substitution from the defined table always changes the gate
        # function; the word function differs unless masked (rare). Check a
        # large sample rather than asserting per-point difference.
        assert simulate_words(c, stim) != simulate_words(mutant, stim)

    def test_no_mutable_gates(self):
        from repro.circuits import Circuit

        c = Circuit()
        c.add_input("a")
        c.CONST(1, out="z")
        c.set_outputs(["z"])
        with pytest.raises(ValueError):
            random_mutation(c)
