"""Unit tests for bug injection."""

import random

import pytest

from repro.circuits import (
    GateType,
    add_dead_gate,
    demorgan_gate,
    expand_xor_gate,
    insert_buffer,
    insert_inverter_pair,
    random_mutation,
    rewire_gate_input,
    simulate_words,
    substitute_gate_type,
    swap_gate_inputs,
)
from repro.gf import GF2m
from repro.synth import mastrovito_multiplier

from .test_circuit import two_bit_multiplier


class TestSubstituteGateType:
    def test_changes_type(self):
        c = two_bit_multiplier()
        mutant, mutation = substitute_gate_type(c, "r0")
        assert mutant.gate_driving("r0").gate_type is not GateType.XOR
        assert mutation.kind == "gate-substitution"
        assert mutation.net == "r0"

    def test_original_untouched(self):
        c = two_bit_multiplier()
        mutant, _ = substitute_gate_type(c, "r0")
        assert c.gate_driving("r0").gate_type is GateType.XOR

    def test_explicit_type(self):
        c = two_bit_multiplier()
        mutant, _ = substitute_gate_type(c, "s0", GateType.OR)
        assert mutant.gate_driving("s0").gate_type is GateType.OR

    def test_changes_function(self, f4):
        c = two_bit_multiplier()
        mutant, _ = substitute_gate_type(c, "s3", GateType.OR)
        stim = {"A": list(range(4)) * 4, "B": [b for b in range(4) for _ in range(4)]}
        assert simulate_words(c, stim) != simulate_words(mutant, stim)

    def test_str_mentions_gates(self):
        c = two_bit_multiplier()
        _, mutation = substitute_gate_type(c, "r0")
        assert "r0" in str(mutation) and "xor" in str(mutation)


class TestSwapInputs:
    def test_swap_is_noop_for_symmetric_gates(self, f4):
        c = two_bit_multiplier()
        mutant, mutation = swap_gate_inputs(c, "s1")
        assert mutation.kind == "input-swap"
        stim = {"A": list(range(4)) * 4, "B": [b for b in range(4) for _ in range(4)]}
        assert simulate_words(c, stim) == simulate_words(mutant, stim)

    def test_needs_two_inputs(self):
        c = two_bit_multiplier()
        c.NOT("z0", out="inv")
        with pytest.raises(ValueError):
            swap_gate_inputs(c, "inv")


class TestRewire:
    def test_example_5_1_bug(self, f4):
        """The exact connection error of the paper's Example 5.1."""
        c = two_bit_multiplier()
        mutant, mutation = rewire_gate_input(c, "r0", 0, "s0")
        assert mutation.kind == "rewire"
        assert mutant.gate_driving("r0").inputs == ("s0", "s2")
        stim = {"A": list(range(4)) * 4, "B": [b for b in range(4) for _ in range(4)]}
        assert simulate_words(c, stim) != simulate_words(mutant, stim)

    def test_cycle_rejected(self):
        c = two_bit_multiplier()
        with pytest.raises(Exception):
            rewire_gate_input(c, "s0", 0, "z0")  # z0 depends on s0

    def test_bad_position(self):
        c = two_bit_multiplier()
        with pytest.raises(ValueError):
            rewire_gate_input(c, "r0", 5, "s0")


class TestRandomMutation:
    def test_deterministic_with_seed(self, f256):
        c = mastrovito_multiplier(f256)
        m1, d1 = random_mutation(c, random.Random(3))
        m2, d2 = random_mutation(c, random.Random(3))
        assert d1 == d2

    def test_mutant_differs_functionally(self, f256):
        c = mastrovito_multiplier(f256)
        rng = random.Random(5)
        mutant, _ = random_mutation(c, rng)
        stim = {
            "A": [rng.randrange(256) for _ in range(64)],
            "B": [rng.randrange(256) for _ in range(64)],
        }
        # Gate substitution from the defined table always changes the gate
        # function; the word function differs unless masked (rare). Check a
        # large sample rather than asserting per-point difference.
        assert simulate_words(c, stim) != simulate_words(mutant, stim)

    def test_no_mutable_gates(self):
        from repro.circuits import Circuit

        c = Circuit()
        c.add_input("a")
        c.CONST(1, out="z")
        c.set_outputs(["z"])
        with pytest.raises(ValueError):
            random_mutation(c)


def _word_function(circuit, lanes=None):
    """Full truth table of the 2-bit multiplier's word function."""
    stim = {
        "A": [a for a in range(4) for _ in range(4)],
        "B": [b for _ in range(4) for b in range(4)],
    }
    return simulate_words(circuit, stim)


class TestDemorganGate:
    def test_preserves_function(self):
        c = two_bit_multiplier()
        reference = _word_function(c)
        assert demorgan_gate(c, "s0")
        assert c.gate_driving("s0").gate_type is not GateType.AND
        assert _word_function(c) == reference

    def test_no_dual_for_xor(self):
        c = two_bit_multiplier()
        assert not demorgan_gate(c, "r0")

    def test_grows_netlist(self):
        c = two_bit_multiplier()
        before = c.num_gates()
        demorgan_gate(c, "s0")
        assert c.num_gates() > before


class TestExpandXorGate:
    def test_preserves_function(self):
        c = two_bit_multiplier()
        reference = _word_function(c)
        assert expand_xor_gate(c, "z1")
        assert c.gate_driving("z1").gate_type is not GateType.XOR
        assert _word_function(c) == reference

    def test_rejects_non_xor(self):
        c = two_bit_multiplier()
        assert not expand_xor_gate(c, "s0")


class TestInsertBufferAndInverterPair:
    def test_buffer_preserves_function(self):
        c = two_bit_multiplier()
        reference = _word_function(c)
        new_net = insert_buffer(c, "r0", 0)
        assert new_net in c.gate_driving("r0").inputs
        assert _word_function(c) == reference

    def test_inverter_pair_preserves_function(self):
        c = two_bit_multiplier()
        reference = _word_function(c)
        before = c.num_gates()
        insert_inverter_pair(c, "z0", 1)
        assert c.num_gates() == before + 2
        assert _word_function(c) == reference

    def test_bad_position_rejected(self):
        c = two_bit_multiplier()
        with pytest.raises(ValueError):
            insert_buffer(c, "r0", 9)
        with pytest.raises(ValueError):
            insert_inverter_pair(c, "r0", 9)


class TestAddDeadGate:
    def test_output_is_undriven_and_function_preserved(self):
        c = two_bit_multiplier()
        reference = _word_function(c)
        dead = add_dead_gate(c, seed=4)
        assert dead not in c.outputs
        assert all(dead not in g.inputs for g in c.gates)
        assert _word_function(c) == reference

    def test_deterministic_with_seed(self):
        a = two_bit_multiplier()
        b = two_bit_multiplier()
        add_dead_gate(a, seed=17)
        add_dead_gate(b, seed=17)
        assert a.gate_driving(add_dead_gate(a, seed=5)) is not None
        ga = [g for g in a.gates][-2]
        gb = [g for g in b.gates][-1]
        assert ga.gate_type == gb.gate_type
        assert ga.inputs == gb.inputs

    def test_no_global_random_state(self):
        random.seed(123)
        a = two_bit_multiplier()
        add_dead_gate(a, rng=random.Random(9))
        state = random.getstate()
        b = two_bit_multiplier()
        add_dead_gate(b, rng=random.Random(9))
        assert random.getstate() == state
