"""Unit tests for the BLIF reader/writer."""

import pytest

from repro.circuits import (
    Circuit,
    CircuitError,
    GateType,
    from_blif,
    read_blif,
    simulate_words,
    to_blif,
    write_blif,
)
from repro.gf import GF2m

from .test_circuit import two_bit_multiplier


class TestWriter:
    def test_header(self):
        text = to_blif(two_bit_multiplier())
        assert text.startswith(".model mult2")
        assert ".inputs a0 a1 b0 b1" in text
        assert ".outputs z0 z1" in text
        assert text.rstrip().endswith(".end")

    def test_and_cover(self):
        c = Circuit("t")
        c.add_inputs(["a", "b"])
        c.AND("a", "b", out="z")
        c.set_outputs(["z"])
        text = to_blif(c)
        assert ".names a b z\n11 1" in text

    def test_xor_cover_lists_odd_minterms(self):
        c = Circuit("t")
        c.add_inputs(["a", "b"])
        c.XOR("a", "b", out="z")
        c.set_outputs(["z"])
        text = to_blif(c)
        assert "10 1" in text and "01 1" in text

    def test_word_comments(self):
        text = to_blif(two_bit_multiplier())
        assert "# word input A = a0 a1" in text


class TestRoundTrip:
    def test_structure_and_function(self, f4):
        c = two_bit_multiplier()
        r = from_blif(to_blif(c))
        assert r.num_gates() == c.num_gates()
        assert r.input_words == c.input_words
        stim = {"A": list(range(4)) * 4, "B": [b for b in range(4) for _ in range(4)]}
        assert simulate_words(c, stim) == simulate_words(r, stim)

    def test_all_gate_types(self):
        c = Circuit("allgates")
        c.add_inputs(["a", "b"])
        for gate_type in (
            GateType.AND,
            GateType.OR,
            GateType.XOR,
            GateType.NAND,
            GateType.NOR,
            GateType.XNOR,
        ):
            c.add_gate(f"g_{gate_type.value}", gate_type, ("a", "b"))
        c.NOT("a", out="g_not")
        c.BUF("b", out="g_buf")
        c.CONST(0, out="g_c0")
        c.CONST(1, out="g_c1")
        c.set_outputs([g.output for g in c.gates])
        r = from_blif(to_blif(c))
        for gate in c.gates:
            assert r.gate_driving(gate.output).gate_type is gate.gate_type

    def test_ternary_gates(self):
        c = Circuit("t3")
        c.add_inputs(["a", "b", "c"])
        c.add_gate("z1", GateType.XOR, ("a", "b", "c"))
        c.add_gate("z2", GateType.AND, ("a", "b", "c"))
        c.add_gate("z3", GateType.OR, ("a", "b", "c"))
        c.set_outputs(["z1", "z2", "z3"])
        r = from_blif(to_blif(c))
        for net in ("z1", "z2", "z3"):
            assert r.gate_driving(net).gate_type is c.gate_driving(net).gate_type

    def test_file_io(self, tmp_path):
        c = two_bit_multiplier()
        path = str(tmp_path / "m.blif")
        write_blif(c, path)
        assert read_blif(path).num_gates() == c.num_gates()


class TestParser:
    def test_unknown_cover_rejected(self):
        text = ".model t\n.inputs a b\n.outputs z\n.names a b z\n1- 1\n.end\n"
        # Cover "a" alone is not one of the library gates for 2 inputs.
        with pytest.raises(CircuitError):
            from_blif(text)

    def test_unsupported_construct_rejected(self):
        text = ".model t\n.inputs a\n.outputs z\n.latch a z re clk 0\n.end\n"
        with pytest.raises(CircuitError):
            from_blif(text)

    def test_line_continuation(self):
        text = (
            ".model t\n.inputs a \\\nb\n.outputs z\n.names a b z\n11 1\n.end\n"
        )
        c = from_blif(text)
        assert c.inputs == ["a", "b"]
