"""Unit tests for per-output-bit fanin cone extraction (Circuit.output_cones)."""

import pytest

from repro.circuits import Circuit, CircuitError, FaninCone, GateType, simulate


def two_bit_multiplier():
    """The paper's Fig. 2 circuit."""
    c = Circuit("mult2")
    c.add_inputs(["a0", "a1", "b0", "b1"])
    c.AND("a0", "b0", out="s0")
    c.AND("a0", "b1", out="s1")
    c.AND("a1", "b0", out="s2")
    c.AND("a1", "b1", out="s3")
    c.XOR("s1", "s2", out="r0")
    c.XOR("s0", "s3", out="z0")
    c.XOR("r0", "s3", out="z1")
    c.set_outputs(["z0", "z1"])
    c.add_input_word("A", ["a0", "a1"])
    c.add_input_word("B", ["b0", "b1"])
    c.add_output_word("Z", ["z0", "z1"])
    return c


class TestFaninCone:
    def test_cones_cover_exact_transitive_fanin(self):
        c = two_bit_multiplier()
        z0, z1 = c.output_cones(word="Z")
        assert z0.root == "z0"
        assert {g.output for g in z0.gates} == {"s0", "s3", "z0"}
        assert z0.inputs == ["a0", "a1", "b0", "b1"]
        assert {g.output for g in z1.gates} == {"s1", "s2", "s3", "r0", "z1"}

    def test_shared_fanin_gate_appears_in_every_cone(self):
        # s3 = a1 & b1 feeds both output bits; each cone carries its own copy.
        c = two_bit_multiplier()
        cones = c.output_cones(word="Z")
        for cone in cones:
            assert "s3" in {g.output for g in cone.gates}

    def test_cone_gates_in_parent_topological_order(self):
        c = two_bit_multiplier()
        for cone in c.output_cones(word="Z"):
            position = {g.output: i for i, g in enumerate(cone.gates)}
            for gate in cone.gates:
                for net in gate.inputs:
                    if net in position:
                        assert position[net] < position[gate.output]

    def test_single_gate_cone(self):
        c = Circuit("single")
        c.add_inputs(["a", "b"])
        c.AND("a", "b", out="z")
        c.set_outputs(["z"])
        (cone,) = c.output_cones()
        assert cone.root == "z"
        assert cone.num_gates() == 1
        assert cone.inputs == ["a", "b"]

    def test_constant_output_cone(self):
        c = Circuit("const")
        c.add_inputs(["a"])
        c.add_gate("z", GateType.CONST1, [])
        c.set_outputs(["z"])
        (cone,) = c.output_cones()
        assert cone.num_gates() == 1
        assert cone.inputs == []  # a constant reaches no primary input
        sub = cone.subcircuit()
        assert simulate(sub, {"a": 0} if sub.inputs else {}) == {"z": 1}

    def test_output_wired_to_input(self):
        c = Circuit("wire")
        c.add_inputs(["a", "b"])
        c.AND("a", "b", out="g")
        c.set_outputs(["g", "a"])
        cones = c.output_cones()
        assert cones[1].root == "a"
        assert cones[1].gates == []
        assert cones[1].inputs == ["a"]

    def test_word_selection_lsb_first(self):
        c = two_bit_multiplier()
        cones = c.output_cones(word="Z")
        assert [cone.root for cone in cones] == ["z0", "z1"]

    def test_default_uses_primary_outputs(self):
        c = two_bit_multiplier()
        assert [cone.root for cone in c.output_cones()] == ["z0", "z1"]

    def test_unknown_word_rejected(self):
        with pytest.raises(CircuitError):
            two_bit_multiplier().output_cones(word="Q")

    def test_cone_reaching_undriven_net_rejected(self):
        c = Circuit("broken")
        c.add_inputs(["a"])
        c.add_gate("z", GateType.AND, ["a", "ghost"])
        with pytest.raises(CircuitError, match="undriven"):
            c.fanin_cone("z")

    def test_fanin_cone_of_internal_net(self):
        c = two_bit_multiplier()
        cone = c.fanin_cone("r0")
        assert {g.output for g in cone.gates} == {"s1", "s2", "r0"}
        assert cone.inputs == ["a0", "a1", "b0", "b1"]

    def test_fanin_cone_unknown_net_rejected(self):
        with pytest.raises(CircuitError):
            two_bit_multiplier().fanin_cone("nope")


class TestSubcircuit:
    def test_subcircuit_matches_parent_simulation(self):
        c = two_bit_multiplier()
        for cone in c.output_cones(word="Z"):
            sub = cone.subcircuit()
            assert isinstance(cone, FaninCone)
            assert sub.outputs == [cone.root]
            for a0 in (0, 1):
                for a1 in (0, 1):
                    for b0 in (0, 1):
                        for b1 in (0, 1):
                            full = {"a0": a0, "a1": a1, "b0": b0, "b1": b1}
                            expected = simulate(c, full)[cone.root]
                            partial = {n: full[n] for n in cone.inputs}
                            assert simulate(sub, partial)[cone.root] == expected

    def test_subcircuit_validates(self):
        c = two_bit_multiplier()
        for cone in c.output_cones(word="Z"):
            cone.subcircuit().validate()
