"""Unit tests for nested hierarchies (blocks containing hierarchies)."""

import pytest

from repro.circuits import HierarchicalCircuit, simulate_words
from repro.core import abstract_hierarchy
from repro.gf import GF2m
from repro.synth import gf_adder, gf_squarer, mastrovito_multiplier


def squarer_pair(field, name="sq2"):
    """Inner hierarchy computing A^4 as two chained squarers."""
    inner = HierarchicalCircuit(name, field.k)
    inner.add_input_word("A")
    inner.add_block("s1", gf_squarer(field, name=f"{name}_s1"), {"A": "A"}, {"Z": "T"})
    inner.add_block("s2", gf_squarer(field, name=f"{name}_s2"), {"A": "T"}, {"Z": "Z"})
    inner.set_output_words(["Z"])
    return inner


@pytest.fixture
def nested(f16):
    """Outer hierarchy: Z = (A^4) * B with a nested squarer pair."""
    outer = HierarchicalCircuit("outer", 4)
    outer.add_input_word("A")
    outer.add_input_word("B")
    outer.add_block("QUAD", squarer_pair(f16), {"A": "A"}, {"Z": "A4"})
    outer.add_block(
        "MUL",
        mastrovito_multiplier(f16, name="outer_mul"),
        {"A": "A4", "B": "B"},
        {"Z": "Z"},
    )
    outer.set_output_words(["Z"])
    return outer


class TestNestedStructure:
    def test_block_flags(self, nested):
        flags = {b.name: b.is_nested for b in nested.blocks}
        assert flags == {"QUAD": True, "MUL": False}

    def test_num_gates_recurses(self, nested, f16):
        expected = 2 * gf_squarer(f16).num_gates() + mastrovito_multiplier(f16).num_gates()
        assert nested.num_gates() == expected

    def test_word_accessors(self, nested):
        quad = nested.blocks[0]
        assert quad.inner_input_words() == ["A"]
        assert quad.inner_output_words() == ["Z"]


class TestNestedSimulation:
    def test_function(self, nested, f16):
        a_vals = list(range(16))
        b_vals = [(a * 3) % 16 for a in a_vals]
        result = nested.simulate_words({"A": a_vals, "B": b_vals})
        for a, b, z in zip(a_vals, b_vals, result["Z"]):
            assert z == f16.mul(f16.pow(a, 4), b)

    def test_flatten_through_nesting(self, nested, f16):
        flat = nested.flatten()
        flat.validate()
        a_vals = list(range(16))
        b_vals = [(a * 7) % 16 for a in a_vals]
        assert simulate_words(flat, {"A": a_vals, "B": b_vals}) == (
            nested.simulate_words({"A": a_vals, "B": b_vals})
        )

    def test_double_nesting(self, f16):
        """Three levels deep: hierarchy > hierarchy > hierarchy."""
        level2 = HierarchicalCircuit("level2", 4)
        level2.add_input_word("A")
        level2.add_block("inner", squarer_pair(f16, "isq"), {"A": "A"}, {"Z": "T"})
        level2.add_block(
            "plus", gf_adder(f16, name="l2add"), {"A": "T", "B": "A"}, {"Z": "Z"}
        )
        level2.set_output_words(["Z"])

        level3 = HierarchicalCircuit("level3", 4)
        level3.add_input_word("A")
        level3.add_block("mid", level2, {"A": "A"}, {"Z": "Z"})
        level3.set_output_words(["Z"])

        for a in range(16):
            expected = f16.pow(a, 4) ^ a
            assert level3.simulate_words({"A": [a]})["Z"][0] == expected
        flat = level3.flatten()
        for a in range(16):
            expected = f16.pow(a, 4) ^ a
            assert simulate_words(flat, {"A": [a]})["Z"][0] == expected


class TestNestedAbstraction:
    def test_composition_recurses(self, nested, f16):
        result = abstract_hierarchy(nested, f16)
        ring = result.ring
        assert result.polynomials["Z"] == ring.var("A", 4) * ring.var("B")

    def test_nested_block_seconds_recorded(self, nested, f16):
        result = abstract_hierarchy(nested, f16)
        assert "QUAD" in result.block_seconds
        assert "MUL" in result.block_seconds

    def test_triple_nesting_abstraction(self, f16):
        level2 = HierarchicalCircuit("level2", 4)
        level2.add_input_word("A")
        level2.add_block("inner", squarer_pair(f16, "isq2"), {"A": "A"}, {"Z": "T"})
        level2.add_block(
            "plus", gf_adder(f16, name="l2add2"), {"A": "T", "B": "A"}, {"Z": "Z"}
        )
        level2.set_output_words(["Z"])
        level3 = HierarchicalCircuit("level3", 4)
        level3.add_input_word("A")
        level3.add_block("mid", level2, {"A": "A"}, {"Z": "Z"})
        level3.set_output_words(["Z"])

        result = abstract_hierarchy(level3, f16)
        ring = result.ring
        assert result.polynomials["Z"] == ring.var("A", 4) + ring.var("A")
