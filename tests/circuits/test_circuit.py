"""Unit tests for the Circuit container."""

import pytest

from repro.circuits import Circuit, CircuitError, GateType


def two_bit_multiplier():
    """The paper's Fig. 2 circuit."""
    c = Circuit("mult2")
    c.add_inputs(["a0", "a1", "b0", "b1"])
    c.AND("a0", "b0", out="s0")
    c.AND("a0", "b1", out="s1")
    c.AND("a1", "b0", out="s2")
    c.AND("a1", "b1", out="s3")
    c.XOR("s1", "s2", out="r0")
    c.XOR("s0", "s3", out="z0")
    c.XOR("r0", "s3", out="z1")
    c.set_outputs(["z0", "z1"])
    c.add_input_word("A", ["a0", "a1"])
    c.add_input_word("B", ["b0", "b1"])
    c.add_output_word("Z", ["z0", "z1"])
    return c


class TestConstruction:
    def test_duplicate_input_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.add_input("a")

    def test_double_drive_rejected(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        c.AND("a", "b", out="z")
        with pytest.raises(CircuitError):
            c.XOR("a", "b", out="z")

    def test_driving_an_input_rejected(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        with pytest.raises(CircuitError):
            c.AND("a", "b", out="a")

    def test_undriven_output_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.set_outputs(["ghost"])

    def test_word_bits_must_exist(self):
        c = Circuit()
        c.add_input("a0")
        with pytest.raises(CircuitError):
            c.add_input_word("A", ["a0", "a1"])
        with pytest.raises(CircuitError):
            c.add_output_word("Z", ["nope"])

    def test_input_word_must_be_inputs(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        net = c.AND("a", "b")
        with pytest.raises(CircuitError):
            c.add_input_word("W", [net])

    def test_fresh_net_unique(self):
        c = Circuit()
        c.add_input("a")
        names = {c.fresh_net() for _ in range(100)}
        assert len(names) == 100


class TestAccessors:
    def test_counts(self):
        c = two_bit_multiplier()
        assert c.num_gates() == 7
        assert len(c.inputs) == 4
        assert c.outputs == ["z0", "z1"]

    def test_gate_counts(self):
        assert two_bit_multiplier().gate_counts() == {"and": 4, "xor": 3}

    def test_gate_driving(self):
        c = two_bit_multiplier()
        assert c.gate_driving("z0").gate_type is GateType.XOR
        with pytest.raises(CircuitError):
            c.gate_driving("a0")

    def test_is_input_is_driven(self):
        c = two_bit_multiplier()
        assert c.is_input("a0") and not c.is_input("z0")
        assert c.is_driven("z0") and c.is_driven("a0")
        assert not c.is_driven("ghost")

    def test_nets(self):
        c = two_bit_multiplier()
        assert set(c.nets()) == {
            "a0", "a1", "b0", "b1", "s0", "s1", "s2", "s3", "r0", "z0", "z1",
        }


class TestTopology:
    def test_topological_order_respects_dependencies(self):
        c = two_bit_multiplier()
        order = [g.output for g in c.topological_order()]
        position = {net: i for i, net in enumerate(order)}
        for gate in c.gates:
            for src in gate.inputs:
                if src in position:
                    assert position[src] < position[gate.output]

    def test_cycle_detected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("x", GateType.AND, ("a", "y"))
        c.add_gate("y", GateType.AND, ("a", "x"))
        with pytest.raises(CircuitError):
            c.topological_order()

    def test_validate_catches_dangling(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("z", GateType.AND, ("a", "ghost"))
        with pytest.raises(CircuitError):
            c.validate()

    def test_reverse_topological_levels(self):
        c = two_bit_multiplier()
        levels = c.reverse_topological_levels()
        assert levels["z0"] == 0 and levels["z1"] == 0
        assert levels["r0"] == 1
        assert levels["s3"] == 1  # feeds z0/z1 directly
        assert levels["s1"] == 2  # feeds r0 only

    def test_logic_depth(self):
        c = two_bit_multiplier()
        assert c.logic_depth() == 3  # and -> xor(r0) -> xor(z1)

    def test_topo_cache_invalidation(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        c.AND("a", "b", out="x")
        assert len(c.topological_order()) == 1
        c.XOR("a", "x", out="y")
        assert len(c.topological_order()) == 2


class TestBuilders:
    def test_xor_tree_balanced(self):
        c = Circuit()
        nets = c.add_inputs(f"i{j}" for j in range(9))
        out = c.xor_tree(nets, out="sum")
        assert out == "sum"
        from repro.circuits import simulate

        values = simulate(c, {f"i{j}": 1 for j in range(9)})
        assert values["sum"] == 1  # parity of nine ones

    def test_xor_tree_single_input_with_name(self):
        c = Circuit()
        c.add_input("a")
        out = c.xor_tree(["a"], out="z")
        assert c.gate_driving(out).gate_type is GateType.BUF

    def test_xor_tree_empty(self):
        c = Circuit()
        out = c.xor_tree([])
        assert c.gate_driving(out).gate_type is GateType.CONST0

    def test_const_builder(self):
        c = Circuit()
        z = c.CONST(1)
        assert c.gate_driving(z).gate_type is GateType.CONST1


class TestTransformation:
    def test_clone_is_independent(self):
        c = two_bit_multiplier()
        d = c.clone()
        d.XOR("z0", "z1", out="extra")
        assert d.num_gates() == c.num_gates() + 1

    def test_renamed_prefixes_everything(self):
        c = two_bit_multiplier()
        r = c.renamed("u__")
        assert r.inputs == ["u__a0", "u__a1", "u__b0", "u__b1"]
        assert r.input_words["A"] == ["u__a0", "u__a1"]
        assert r.output_words["Z"] == ["u__z0", "u__z1"]
        r.validate()

    def test_renamed_preserves_function(self):
        from repro.circuits import simulate_words
        from repro.gf import GF2m

        f4 = GF2m(2)
        c = two_bit_multiplier()
        r = c.renamed("u__")
        stim = {"A": list(range(4)) * 4, "B": [b for b in range(4) for _ in range(4)]}
        assert simulate_words(c, stim) == simulate_words(r, stim)

    def test_replace_gate(self):
        c = two_bit_multiplier()
        c.replace_gate("r0", GateType.AND, ("s1", "s2"))
        assert c.gate_driving("r0").gate_type is GateType.AND
        with pytest.raises(CircuitError):
            c.replace_gate("a0", GateType.NOT, ("a1",))

    def test_repr(self):
        assert "mult2" in repr(two_bit_multiplier())
