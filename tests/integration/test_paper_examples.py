"""Exact reproduction of the paper's worked examples (Fig. 2, Ex. 4.2, 5.1)."""

import pytest

from repro.algebra import (
    LexOrder,
    Polynomial,
    PolynomialRing,
    reduce_polynomial,
    reduced_groebner_basis,
    s_polynomial,
    vanishing_ideal,
)
from repro.circuits import Circuit, rewire_gate_input
from repro.core import abstract_circuit, circuit_ideal
from repro.gf import GF2m


def fig2_multiplier():
    """The 2-bit multiplier over F_4 of Fig. 2 with the paper's net names."""
    c = Circuit("fig2")
    c.add_inputs(["a0", "a1", "b0", "b1"])
    c.AND("a0", "b0", out="s0")
    c.AND("a0", "b1", out="s1")
    c.AND("a1", "b0", out="s2")
    c.AND("a1", "b1", out="s3")
    c.XOR("s1", "s2", out="r0")
    c.XOR("s0", "s3", out="z0")
    c.XOR("r0", "s3", out="z1")
    c.set_outputs(["z0", "z1"])
    c.add_input_word("A", ["a0", "a1"])
    c.add_input_word("B", ["b0", "b1"])
    c.add_output_word("Z", ["z0", "z1"])
    return c


@pytest.fixture(scope="module")
def field():
    return GF2m(2, modulus=0b111)  # P(x) = x^2 + x + 1, as in the paper


class TestExample42:
    """Example 4.2: the ideal's generators and the GB member g7 = Z + AB."""

    def test_circuit_polynomials_f4_to_f10(self, field):
        ideal = circuit_ideal(fig2_multiplier(), field)
        texts = {str(p) for p in ideal.gate_polynomials}
        assert texts == {
            "s0 + a0*b0",
            "s1 + a0*b1",
            "s2 + a1*b0",
            "s3 + a1*b1",
            "r0 + s1 + s2",
            "z0 + s0 + s3",
            "z1 + r0 + s3",
        }

    def test_word_relations_f1_to_f3(self, field):
        ideal = circuit_ideal(fig2_multiplier(), field)
        assert str(ideal.output_relations["Z"]) == "z0 + a*z1 + Z"
        assert str(ideal.input_relations["A"]) == "a0 + a*a1 + A"
        assert str(ideal.input_relations["B"]) == "b0 + a*b1 + B"

    def test_groebner_basis_contains_g7(self, field):
        """Computing GB(J + J0) under > yields g7 : Z + AB."""
        ideal = circuit_ideal(fig2_multiplier(), field)
        basis = reduced_groebner_basis(ideal.generators + ideal.vanishing)
        z_var = ideal.ring.index["Z"]
        g7 = [p for p in basis if p.leading_monomial() == ((z_var, 1),)]
        assert len(g7) == 1
        assert str(g7[0]) == "Z + A*B"


class TestExample51Correct:
    """Example 5.1 (correct circuit): Spoly(f1, f9) reduces to Z + AB."""

    def test_only_one_critical_pair(self, field):
        from repro.algebra import leading_monomials_coprime

        ideal = circuit_ideal(fig2_multiplier(), field)
        generators = ideal.generators
        pairs = [
            (p, q)
            for i, p in enumerate(generators)
            for q in generators[i + 1 :]
            if not leading_monomials_coprime(p, q)
        ]
        assert len(pairs) == 1
        f_w, f_g = pairs[0]
        leads = {str(f_w), str(f_g)}
        assert leads == {"z0 + a*z1 + Z", "z0 + s0 + s3"}

    def test_spoly_reduction_gives_z_plus_ab(self, field):
        ideal = circuit_ideal(fig2_multiplier(), field)
        generators = ideal.generators
        f_w = ideal.output_relations["Z"]
        f_g = next(p for p in ideal.gate_polynomials if str(p).startswith("z0"))
        spoly = s_polynomial(f_w, f_g)
        remainder = reduce_polynomial(spoly, generators + ideal.vanishing)
        assert str(remainder) == "Z + A*B"

    def test_engine_agrees(self, field):
        result = abstract_circuit(fig2_multiplier(), field)
        ring = result.ring
        assert result.polynomial == ring.var("A") * ring.var("B")
        assert result.stats.case == 1


class TestExample51Buggy:
    """Example 5.1 (bug injected): r0 reads s0 instead of s1."""

    @pytest.fixture(scope="class")
    def buggy(self):
        circuit, mutation = rewire_gate_input(fig2_multiplier(), "r0", 0, "s0")
        assert mutation.kind == "rewire"
        return circuit

    def test_remainder_keeps_input_bits(self, field, buggy):
        """r = alpha a1 b1 + (alpha+1) a1 B + b1 A + Z + (alpha+1) AB."""
        ideal = circuit_ideal(buggy, field)
        f_w = ideal.output_relations["Z"]
        f_g = next(p for p in ideal.gate_polynomials if str(p).startswith("z0"))
        remainder = reduce_polynomial(
            s_polynomial(f_w, f_g), ideal.generators + ideal.vanishing
        )
        used = set(remainder.variables_used())
        assert used == {"a1", "b1", "Z", "A", "B"}
        # Exact form from the paper (alpha prints as 'a'):
        assert (
            str(remainder)
            == "a*a1*b1 + (a + 1)*a1*B + b1*A + Z + (a + 1)*A*B"
        )

    def test_case2_polynomial_matches_paper(self, field, buggy):
        """G of the buggy circuit: alpha A^2B^2 + A^2B + (alpha+1)AB^2 + (alpha+1)AB."""
        for method in ("linearized", "groebner"):
            result = abstract_circuit(buggy, field, case2=method)
            assert result.stats.case == 2
            assert (
                str(result.polynomial)
                == "a*A^2*B^2 + A^2*B + (a + 1)*A*B^2 + (a + 1)*A*B"
            )

    def test_buggy_polynomial_is_the_buggy_function(self, field, buggy):
        """The extracted polynomial matches the buggy netlist pointwise."""
        from repro.circuits import exhaustive_word_table

        result = abstract_circuit(buggy, field)
        table = exhaustive_word_table(buggy, 2)
        for (a, b), outs in table.items():
            assert result.polynomial.evaluate({"A": a, "B": b}) == outs["Z"]

    def test_bug_detected_by_equivalence_check(self, field, buggy):
        from repro.verify import verify_equivalence

        outcome = verify_equivalence(fig2_multiplier(), buggy, field)
        assert outcome.status == "not_equivalent"
        cex = outcome.counterexample
        from repro.circuits import simulate_words

        good = simulate_words(fig2_multiplier(), {"A": [cex["A"]], "B": [cex["B"]]})
        bad = simulate_words(buggy, {"A": [cex["A"]], "B": [cex["B"]]})
        assert good["Z"] != bad["Z"]
