"""Abstraction engine vs. the Lagrange interpolation oracle.

Definition 3.1 guarantees a *unique* canonical polynomial per function, so
the Gröbner-based abstraction and exhaustive interpolation must produce
literally identical polynomials — a strong whole-pipeline correctness check
over arbitrary (non-arithmetic) circuits.
"""

import random

import pytest

from repro.circuits import simulate_words
from repro.core import abstract_circuit
from repro.gf import GF2m
from repro.interp import interpolate
from repro.synth import (
    gf_adder,
    gf_squarer,
    mastrovito_multiplier,
    random_word_function,
    synthesize_word_function,
)


def as_comparable(poly):
    """Ring-independent form: {((var_name, exp), ...): coeff}."""
    ring = poly.ring
    return {
        tuple(sorted((ring.variables[v], e) for v, e in monomial)): coeff
        for monomial, coeff in poly.terms.items()
    }


class TestArithmeticCircuits:
    @pytest.mark.parametrize("k", [2, 3])
    def test_multiplier(self, k):
        field = GF2m(k)
        abstracted = abstract_circuit(mastrovito_multiplier(field), field)
        oracle = interpolate(field, field.mul, ["A", "B"])
        assert as_comparable(abstracted.polynomial) == as_comparable(oracle)

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_squarer(self, k):
        field = GF2m(k)
        abstracted = abstract_circuit(gf_squarer(field), field)
        oracle = interpolate(field, field.square, ["A"])
        assert as_comparable(abstracted.polynomial) == as_comparable(oracle)

    def test_adder(self, f16):
        abstracted = abstract_circuit(gf_adder(f16), f16)
        oracle = interpolate(f16, lambda a, b: a ^ b, ["A", "B"])
        assert as_comparable(abstracted.polynomial) == as_comparable(oracle)


class TestRandomFunctions:
    """Random truth tables exercise dense canonical polynomials."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    def test_univariate_random(self, seed, f4):
        circuit, table = random_word_function(f4, 1, random.Random(seed))
        abstracted = abstract_circuit(circuit, f4)
        oracle = interpolate(f4, lambda a: table[(a,)], ["A"])
        assert as_comparable(abstracted.polynomial) == as_comparable(oracle)

    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_bivariate_random(self, seed, f4):
        circuit, table = random_word_function(f4, 2, random.Random(seed))
        abstracted = abstract_circuit(circuit, f4)
        oracle = interpolate(f4, lambda a, b: table[(a, b)], ["A", "B"])
        assert as_comparable(abstracted.polynomial) == as_comparable(oracle)

    @pytest.mark.parametrize("seed", [11, 12])
    def test_univariate_random_f8(self, seed, f8):
        circuit, table = random_word_function(f8, 1, random.Random(seed))
        abstracted = abstract_circuit(circuit, f8)
        oracle = interpolate(f8, lambda a: table[(a,)], ["A"])
        assert as_comparable(abstracted.polynomial) == as_comparable(oracle)

    def test_case2_groebner_matches_oracle(self, f4):
        """The faithful Case-2 GB path against the oracle."""
        circuit, table = random_word_function(f4, 1, random.Random(21))
        abstracted = abstract_circuit(circuit, f4, case2="groebner")
        oracle = interpolate(f4, lambda a: table[(a,)], ["A"])
        assert as_comparable(abstracted.polynomial) == as_comparable(oracle)


class TestHandPickedFunctions:
    def test_inversion_circuit(self, f8):
        """Synthesise Z = A^{-1} (0 -> 0) and abstract it: expect A^{q-2}."""
        table = {(0,): 0}
        table.update({(a,): f8.inv(a) for a in range(1, 8)})
        circuit = synthesize_word_function(f8, table, 1, name="inv")
        abstracted = abstract_circuit(circuit, f8)
        assert abstracted.polynomial == abstracted.ring.var("A", 6)

    def test_conditional_function(self, f4):
        """A genuinely non-arithmetic mapping still abstracts correctly."""
        table = {(a,): (3 if a == 2 else a) for a in range(4)}
        circuit = synthesize_word_function(f4, table, 1, name="cond")
        abstracted = abstract_circuit(circuit, f4)
        for a in range(4):
            assert abstracted.polynomial.evaluate({"A": a}) == table[(a,)]

    def test_frobenius_composition(self, f16):
        """Z = (A^2)^2 synthesised as a squarer pair equals A^4."""
        from repro.circuits import HierarchicalCircuit
        from repro.core import abstract_hierarchy

        hier = HierarchicalCircuit("frob2", 4)
        hier.add_input_word("A")
        hier.add_block("s1", gf_squarer(f16, name="s1"), {"A": "A"}, {"Z": "T"})
        hier.add_block("s2", gf_squarer(f16, name="s2"), {"A": "T"}, {"Z": "Z"})
        hier.set_output_words(["Z"])
        result = abstract_hierarchy(hier, f16)
        oracle = interpolate(f16, lambda a: f16.pow(a, 4), ["A"])
        assert as_comparable(result.polynomials["Z"]) == as_comparable(oracle)
