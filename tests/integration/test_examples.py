"""Every shipped example must run clean (small parameters).

Executed in-process via runpy so assertion failures inside the examples
fail the suite; sys.argv is patched to keep runtimes small.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(monkeypatch, capsys, name, *args):
    monkeypatch.setattr(sys, "argv", [name, *args])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "quickstart.py", "8")
        assert "EQUIVALENT" in out

    def test_paper_worked_examples(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "paper_worked_examples.py")
        assert "Z + A*B" in out
        assert "a*A^2*B^2" in out

    def test_verify_montgomery(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "verify_montgomery.py", "8")
        assert "Equals A*B: True" in out

    def test_bug_hunting(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "bug_hunting.py", "8", "2")
        assert "caught 2/2" in out

    def test_method_comparison(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "method_comparison.py", "4")
        assert "abstraction" in out

    def test_inversion_datapath(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "inversion_datapath.py", "8")
        assert "A^254" in out

    def test_ecc_point_double(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "ecc_point_double.py", "8")
        assert "matches affine spec: True" in out
