"""End-to-end flows across module boundaries."""

import random

import pytest

from repro.circuits import (
    from_blif,
    from_verilog,
    random_mutation,
    simulate_words,
    to_blif,
    to_verilog,
)
from repro.core import word_ring_for
from repro.gf import GF2m
from repro.synth import (
    gf_squarer,
    mastrovito_multiplier,
    montgomery_multiplier,
)
from repro.verify import (
    check_equivalence_bdd,
    check_equivalence_sat,
    check_ideal_membership,
    verify_equivalence,
)


class TestAllMethodsAgree:
    """Every decision procedure must return the same verdict."""

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_equivalent_designs(self, k):
        field = GF2m(k)
        spec = mastrovito_multiplier(field)
        hier = montgomery_multiplier(field)
        flat = hier.flatten()
        ring = word_ring_for(field, ["A", "B"])
        spec_poly = ring.var("A") * ring.var("B")

        assert verify_equivalence(spec, hier, field).equivalent
        assert check_equivalence_sat(
            spec, flat, max_conflicts=500000, output_map={"G": "Z"}
        ).equivalent
        assert check_equivalence_bdd(
            spec, flat, max_nodes=2_000_000, output_map={"G": "Z"}
        ).equivalent
        assert check_ideal_membership(spec, field, spec_poly).equivalent

    @pytest.mark.parametrize("seed", [10, 20, 30])
    def test_buggy_designs(self, seed):
        field = GF2m(3)
        spec = mastrovito_multiplier(field)
        buggy, _ = random_mutation(mastrovito_multiplier(field), random.Random(seed))
        ring = word_ring_for(field, ["A", "B"])
        spec_poly = ring.var("A") * ring.var("B")

        verdicts = {
            "abstraction": verify_equivalence(spec, buggy, field).status,
            "sat": check_equivalence_sat(spec, buggy, max_conflicts=500000).status,
            "bdd": check_equivalence_bdd(spec, buggy, max_nodes=2_000_000).status,
            "membership": check_ideal_membership(buggy, field, spec_poly).status,
        }
        assert set(verdicts.values()) == {"not_equivalent"}, verdicts


class TestRoundTripThenVerify:
    """Serialise to Verilog/BLIF, re-import, and verify against the original."""

    def test_verilog_roundtrip_equivalence(self, f16):
        original = mastrovito_multiplier(f16)
        reparsed = from_verilog(to_verilog(original))
        assert verify_equivalence(original, reparsed, f16).equivalent

    def test_blif_roundtrip_equivalence(self, f16):
        original = gf_squarer(f16)
        reparsed = from_blif(to_blif(original))
        assert verify_equivalence(original, reparsed, f16).equivalent

    def test_cross_format(self, f16):
        original = mastrovito_multiplier(f16)
        via_verilog = from_verilog(to_verilog(original))
        via_blif = from_blif(to_blif(original))
        assert verify_equivalence(via_verilog, via_blif, f16).equivalent


class TestBugSweep:
    """Abstraction-based checking catches every single-gate substitution."""

    def test_exhaustive_gate_sweep_k3(self):
        from repro.circuits import substitute_gate_type

        field = GF2m(3)
        spec = mastrovito_multiplier(field)
        missed = []
        for gate in spec.gates:
            if gate.gate_type.value not in ("and", "xor"):
                continue
            buggy, mutation = substitute_gate_type(spec, gate.output)
            outcome = verify_equivalence(spec, buggy, field)
            if outcome.status != "not_equivalent":
                missed.append(str(mutation))
        assert not missed

    def test_montgomery_block_bug_sweep(self, f16):
        """Bugs in any of the four Fig. 1 blocks are detected."""
        spec = mastrovito_multiplier(f16)
        for index in range(4):
            impl = montgomery_multiplier(f16)
            block = impl.blocks[index]
            target = next(
                g for g in block.circuit.gates if g.gate_type.value in ("and", "xor")
            )
            from repro.circuits import substitute_gate_type

            block.circuit, _ = substitute_gate_type(block.circuit, target.output)
            outcome = verify_equivalence(spec, impl, f16)
            assert outcome.status == "not_equivalent", block.name


class TestLargerFields:
    def test_k32_flat_abstraction(self):
        field = GF2m(32)
        result = verify_equivalence(
            mastrovito_multiplier(field), montgomery_multiplier(field), field
        )
        assert result.equivalent

    def test_nonstandard_modulus_end_to_end(self):
        field = GF2m(8, modulus=0b101110111)  # a different irreducible
        outcome = verify_equivalence(
            mastrovito_multiplier(field), montgomery_multiplier(field), field
        )
        assert outcome.equivalent
