"""Unit tests for Buchberger's algorithm and reduced Gröbner bases."""

import pytest

from repro.algebra import (
    GroebnerStats,
    LexOrder,
    PolynomialRing,
    buchberger,
    interreduce,
    is_groebner_basis,
    leading_monomials_coprime,
    reduce_polynomial,
    reduced_groebner_basis,
    s_polynomial,
    vanishing_ideal,
)
from repro.gf import GF2m


@pytest.fixture
def ring(f16):
    return PolynomialRing(f16, ["x", "y", "z"], order=LexOrder([0, 1, 2]), fold=False)


class TestSPolynomial:
    def test_cancels_leading_terms(self, ring):
        x, y, z = ring.var("x"), ring.var("y"), ring.var("z")
        f = x * x * y + z
        g = x * y * y + x
        s = s_polynomial(f, g)
        # lcm = x^2 y^2; Spoly = y*f + x*g = yz + x^2
        assert s == y * z + x * x

    def test_spoly_with_self_is_zero(self, ring):
        f = ring.var("x") + ring.var("y")
        assert s_polynomial(f, f).is_zero()

    def test_nonmonic_normalised(self, ring):
        x, y = ring.var("x"), ring.var("y")
        f = x.scale(3) + y
        g = x.scale(5) + 1
        s = s_polynomial(f, g)
        # Both scaled to monic x + ...: Spoly = (y/3) + (1/5)
        expected = y.scale(ring.field.inv(3)) + ring.constant(ring.field.inv(5))
        assert s == expected


class TestProductCriterion:
    def test_coprime_leads(self, ring):
        f = ring.var("x") + 1
        g = ring.var("y") + 1
        assert leading_monomials_coprime(f, g)

    def test_shared_variable(self, ring):
        f = ring.var("x") * ring.var("y") + 1
        g = ring.var("x") + 1
        assert not leading_monomials_coprime(f, g)

    def test_criterion_is_sound(self, ring):
        """Coprime-lead S-polynomials must reduce to zero by the pair."""
        x, y, z = ring.var("x"), ring.var("y"), ring.var("z")
        f = x * x + y * z + 1
        g = y + z
        assert leading_monomials_coprime(f, g)
        assert reduce_polynomial(s_polynomial(f, g), [f, g]).is_zero()


class TestBuchberger:
    def test_linear_system(self, ring):
        x, y, z = ring.var("x"), ring.var("y"), ring.var("z")
        basis = reduced_groebner_basis([x + y, y + z])
        assert basis == [x + z, y + z] or basis == [y + z, x + z]

    def test_definition_check(self, ring):
        x, y, z = ring.var("x"), ring.var("y"), ring.var("z")
        basis = buchberger([x * y + z, y * y + 1, x * z + y])
        assert is_groebner_basis(basis)

    def test_ideal_membership_decided(self, ring):
        x, y, z = ring.var("x"), ring.var("y"), ring.var("z")
        gens = [x + y * y, y * z + 1]
        basis = buchberger(gens)
        member = gens[0] * (x + z) + gens[1] * y
        assert reduce_polynomial(member, basis).is_zero()
        assert not reduce_polynomial(x + 1, basis).is_zero()

    def test_elimination_property(self, f16):
        """Theorem 4.1: a lex GB eliminates high variables."""
        ring = PolynomialRing(
            f16, ["x", "Y", "Z"], order=LexOrder([0, 1, 2]), fold=False
        )
        x, Y, Z = ring.var("x"), ring.var("Y"), ring.var("Z")
        # x = Y + Z enforced twice differently: elimination ideal in (Y, Z).
        basis = reduced_groebner_basis([x + Y + Z, x + Y * Z])
        eliminated = [
            p for p in basis if all(v != "x" for v in p.variables_used())
        ]
        assert eliminated  # Y + Z + Y*Z survives without x
        assert any(p == Y * Z + Y + Z for p in eliminated)

    def test_empty_generators(self):
        assert buchberger([]) == []

    def test_fold_ring_rejected(self, f16):
        ring = PolynomialRing(f16, ["x"])  # fold=True
        with pytest.raises(ValueError):
            buchberger([ring.var("x")])
        with pytest.raises(ValueError):
            is_groebner_basis([ring.var("x")])

    def test_max_basis_guard(self, f16):
        ring = PolynomialRing(
            f16, ["x", "y", "z"], order=LexOrder([0, 1, 2]), fold=False
        )
        x, y, z = ring.var("x"), ring.var("y"), ring.var("z")
        gens = [x * x * y + z * x + 1, y * y * z + x, z * z + y * x]
        with pytest.raises(RuntimeError):
            buchberger(gens, max_basis=3)

    def test_stats_populated(self, ring):
        x, y = ring.var("x"), ring.var("y")
        stats = GroebnerStats()
        buchberger([x * y + 1, y * y + x], stats=stats)
        assert stats.pairs_total > 0
        assert stats.basis_size >= 2


class TestInterreduce:
    def test_removes_redundant_generators(self, ring):
        x, y = ring.var("x"), ring.var("y")
        basis = interreduce([x + y, x * x + x * y])  # second is x*(first)
        assert basis == [x + y]

    def test_monic_output(self, ring):
        x, y = ring.var("x"), ring.var("y")
        basis = interreduce([x.scale(5) + y])
        assert basis == [x + y.scale(ring.field.inv(5))]

    def test_tails_reduced(self, ring):
        x, y, z = ring.var("x"), ring.var("y"), ring.var("z")
        basis = interreduce([x + y, y + z])
        # The reduced basis of <x+y, y+z> replaces x+y by x+z.
        assert set(str(p) for p in basis) == {"x + z", "y + z"}

    def test_reduced_gb_is_canonical(self, ring):
        """Same ideal, different generators -> same reduced basis."""
        x, y, z = ring.var("x"), ring.var("y"), ring.var("z")
        g1 = [x + y, y + z]
        g2 = [x + z, y + z, x + y]
        b1 = reduced_groebner_basis(g1)
        b2 = reduced_groebner_basis(g2)
        assert sorted(map(str, b1)) == sorted(map(str, b2))


class TestWithVanishingIdeal:
    def test_boolean_system(self, f4):
        """GB over bit variables with x^2 - x included behaves like SAT."""
        ring = PolynomialRing(
            f4, ["x", "y"], order=LexOrder([0, 1]), domains={"x": 2, "y": 2},
            fold=False,
        )
        x, y = ring.var("x"), ring.var("y")
        # Constraints: x*y = 1 and x + y = 0 -> x = y = 1.
        gens = [x * y + 1, x + y] + vanishing_ideal(ring)
        basis = reduced_groebner_basis(gens)
        assert any(p == x + 1 for p in basis)
        assert any(p == y + 1 for p in basis)

    def test_unsatisfiable_system_gives_unit_ideal(self, f4):
        ring = PolynomialRing(
            f4, ["x"], order=LexOrder([0]), domains={"x": 2}, fold=False
        )
        x = ring.var("x")
        # x = 0 and x = 1 simultaneously.
        basis = reduced_groebner_basis([x, x + 1] + vanishing_ideal(ring))
        assert basis == [ring.one()]
