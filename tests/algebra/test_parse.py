"""Unit tests for the polynomial spec parser."""

import pytest

from repro.algebra import PolynomialSyntaxError, parse_polynomial
from repro.core import word_ring_for
from repro.gf import GF2m


@pytest.fixture
def ring(f16):
    return word_ring_for(f16, ["A", "B"])


class TestBasics:
    def test_single_variable(self, ring):
        assert parse_polynomial("A", ring) == ring.var("A")

    def test_constant_decimal(self, ring):
        assert parse_polynomial("7", ring) == ring.constant(7)

    def test_constant_hex_and_binary(self, ring):
        assert parse_polynomial("0xF", ring) == ring.constant(15)
        assert parse_polynomial("0b101", ring) == ring.constant(5)

    def test_product(self, ring):
        assert parse_polynomial("A*B", ring) == ring.var("A") * ring.var("B")

    def test_sum(self, ring):
        assert parse_polynomial("A + B", ring) == ring.var("A") + ring.var("B")

    def test_power(self, ring):
        assert parse_polynomial("A^3", ring) == ring.var("A", 3)

    def test_coefficient_times_monomial(self, ring):
        assert parse_polynomial("3*A^2", ring) == ring.var("A", 2).scale(3)


class TestStructure:
    def test_precedence(self, ring):
        # A + B*A^2 parses as A + (B * (A^2)).
        expected = ring.var("A") + ring.var("B") * ring.var("A", 2)
        assert parse_polynomial("A + B*A^2", ring) == expected

    def test_parentheses(self, ring):
        expected = (ring.var("A") + ring.var("B")) * ring.var("A")
        assert parse_polynomial("(A + B)*A", ring) == expected

    def test_nested_parentheses(self, ring):
        expected = ((ring.var("A") + 1) ** 2) * ring.var("B")
        assert parse_polynomial("((A + 1)^2)*B", ring) == expected

    def test_whitespace_insensitive(self, ring):
        assert parse_polynomial("  A *B+ 1 ", ring) == parse_polynomial(
            "A*B+1", ring
        )

    def test_characteristic_two_cancellation(self, ring):
        assert parse_polynomial("A + A", ring).is_zero()

    def test_exponent_folding(self, ring):
        # A^16 folds to A over F_16.
        assert parse_polynomial("A^16", ring) == ring.var("A")

    def test_roundtrip_through_str(self, ring):
        poly = ring.var("A", 2) * ring.var("B") + ring.var("A").scale(3) + 1
        assert parse_polynomial(str(poly).replace("a", "0b10"), ring) == poly


class TestErrors:
    def test_unknown_variable(self, ring):
        with pytest.raises(PolynomialSyntaxError):
            parse_polynomial("C + 1", ring)

    def test_unexpected_character(self, ring):
        with pytest.raises(PolynomialSyntaxError):
            parse_polynomial("A - B", ring)

    def test_unbalanced_parentheses(self, ring):
        with pytest.raises(PolynomialSyntaxError):
            parse_polynomial("(A + B", ring)

    def test_trailing_garbage(self, ring):
        with pytest.raises(PolynomialSyntaxError):
            parse_polynomial("A B", ring)

    def test_bad_exponent(self, ring):
        with pytest.raises(PolynomialSyntaxError):
            parse_polynomial("A^B", ring)

    def test_empty_input(self, ring):
        with pytest.raises(PolynomialSyntaxError):
            parse_polynomial("", ring)
