"""Unit tests for the vanishing ideal J_0."""

import pytest

from repro.algebra import (
    LexOrder,
    PolynomialRing,
    is_vanishing,
    vanishing_ideal,
    vanishing_polynomial,
)
from repro.gf import GF2m


@pytest.fixture
def ring(f16):
    return PolynomialRing(
        f16, ["x", "Z"], order=LexOrder([0, 1]), domains={"x": 2}, fold=False
    )


class TestVanishingPolynomial:
    def test_bit_variable(self, ring):
        p = vanishing_polynomial(ring, "x")
        assert p.degree_in("x") == 2
        assert is_vanishing(p)

    def test_word_variable(self, ring):
        p = vanishing_polynomial(ring, "Z")
        assert p.degree_in("Z") == 16
        assert is_vanishing(p)

    def test_unfolded_even_in_folding_ring(self, f16):
        folded = PolynomialRing(f16, ["Z"])
        p = vanishing_polynomial(folded, "Z")
        assert not p.is_zero()
        assert p.degree_in("Z") == 16


class TestVanishingIdeal:
    def test_all_variables(self, ring):
        gens = vanishing_ideal(ring)
        assert len(gens) == 2
        assert all(is_vanishing(g) for g in gens)

    def test_subset(self, ring):
        gens = vanishing_ideal(ring, ["x"])
        assert len(gens) == 1
        assert gens[0].degree_in("x") == 2


class TestIsVanishing:
    def test_zero_polynomial(self, ring):
        assert is_vanishing(ring.zero())

    def test_nonvanishing(self, ring):
        assert not is_vanishing(ring.var("Z") + 1)

    def test_vanishing_product(self, ring):
        p = vanishing_polynomial(ring, "x") * ring.var("Z")
        assert is_vanishing(p)

    def test_frobenius_difference_vanishes(self, f4):
        # (Z + W)^2 - Z^2 - W^2 = 0 identically in characteristic 2.
        ring = PolynomialRing(f4, ["Z", "W"], order=LexOrder([0, 1]), fold=False)
        Z, W = ring.var("Z"), ring.var("W")
        p = (Z + W) ** 2 + Z ** 2 + W ** 2
        assert p.is_zero()  # cancels syntactically
        # Z^4 - Z vanishes as a function though not syntactically zero.
        assert is_vanishing(Z ** 4 + Z)

    def test_domain_guard(self, f16):
        ring = PolynomialRing(
            f16, [f"w{i}" for i in range(8)], order=LexOrder(range(8)), fold=False
        )
        p = ring.one()
        for i in range(8):
            p = p * ring.var(f"w{i}")
        with pytest.raises(ValueError):
            is_vanishing(p + 1, sample_limit=100)
