"""Unit tests for monomial term orders."""

import pytest

from repro.algebra import GrevLexOrder, GrLexOrder, LexOrder


def M(*pairs):
    """Monomial from (var, exp) pairs."""
    return tuple(sorted(pairs))


class TestLexOrder:
    """Variables 0 > 1 > 2 under priority [0, 1, 2] (x > y > z)."""

    order = LexOrder([0, 1, 2])

    def greater(self, a, b):
        return self.order.greater(a, b)

    def test_higher_variable_wins(self):
        assert self.greater(M((0, 1)), M((1, 5)))  # x > y^5

    def test_higher_power_wins(self):
        assert self.greater(M((0, 2)), M((0, 1)))  # x^2 > x

    def test_multiple_beats_divisor(self):
        assert self.greater(M((0, 1), (1, 1)), M((0, 1)))  # xy > x

    def test_everything_beats_one(self):
        assert self.greater(M((2, 1)), M())  # z > 1

    def test_equal(self):
        assert self.order.compare(M((0, 1)), M((0, 1))) == 0

    def test_antisymmetry(self):
        a, b = M((0, 1), (2, 3)), M((0, 1), (1, 1))
        assert self.greater(b, a) != self.greater(a, b)

    def test_classic_chain(self):
        # x^3 > x^2 y > x^2 z > x y^2 > ... textbook lex chain
        chain = [
            M((0, 3)),
            M((0, 2), (1, 1)),
            M((0, 2), (2, 1)),
            M((0, 1), (1, 2)),
            M((1, 3)),
            M((2, 5)),
        ]
        for earlier, later in zip(chain, chain[1:]):
            assert self.greater(earlier, later)

    def test_multiplicative_compatibility(self):
        # a > b implies a*m > b*m
        a, b, m = M((0, 1)), M((1, 2)), M((2, 4))
        am = M((0, 1), (2, 4))
        bm = M((1, 2), (2, 4))
        assert self.greater(a, b) and self.greater(am, bm)

    def test_custom_priority(self):
        reversed_order = LexOrder([2, 1, 0])  # z > y > x
        assert reversed_order.greater(M((2, 1)), M((0, 5)))

    def test_unranked_variable_rejected(self):
        with pytest.raises(KeyError):
            self.order.sort_key(M((7, 1)))

    def test_duplicate_priority_rejected(self):
        with pytest.raises(ValueError):
            LexOrder([0, 0, 1])


class TestGrLexOrder:
    order = GrLexOrder([0, 1, 2])

    def test_degree_dominates(self):
        assert self.order.greater(M((2, 3)), M((0, 2)))  # z^3 > x^2

    def test_lex_tiebreak(self):
        assert self.order.greater(M((0, 1), (1, 1)), M((1, 1), (2, 1)))  # xy > yz

    def test_textbook_chain(self):
        chain = [M((0, 2)), M((0, 1), (1, 1)), M((1, 2)), M((0, 1)), M((1, 1)), M()]
        for earlier, later in zip(chain, chain[1:]):
            assert self.order.greater(earlier, later)


class TestGrevLexOrder:
    order = GrevLexOrder([0, 1, 2])

    def test_degree_dominates(self):
        assert self.order.greater(M((2, 3)), M((0, 2)))

    def test_classic_grevlex_vs_grlex_difference(self):
        # x y^2 z vs x^2 z^2 (degree 4 both): grevlex compares from the
        # last variable: z exponents 1 vs 2, difference negative at z for
        # the first, so x y^2 z > x^2 z^2.
        a = M((0, 1), (1, 2), (2, 1))
        b = M((0, 2), (2, 2))
        assert self.order.greater(a, b)

    def test_degree2_chain(self):
        # x^2 > xy > y^2 > xz > yz > z^2
        chain = [
            M((0, 2)),
            M((0, 1), (1, 1)),
            M((1, 2)),
            M((0, 1), (2, 1)),
            M((1, 1), (2, 1)),
            M((2, 2)),
        ]
        for earlier, later in zip(chain, chain[1:]):
            assert self.order.greater(earlier, later)


class TestOrderAxioms:
    """Any term order must be a total well-order compatible with products."""

    @pytest.mark.parametrize(
        "order", [LexOrder([0, 1, 2]), GrLexOrder([0, 1, 2]), GrevLexOrder([0, 1, 2])]
    )
    def test_one_is_minimal(self, order):
        monomials = [M((0, 1)), M((1, 3)), M((2, 2)), M((0, 1), (1, 1))]
        for m in monomials:
            assert order.greater(m, M())

    @pytest.mark.parametrize(
        "order", [LexOrder([0, 1, 2]), GrLexOrder([0, 1, 2]), GrevLexOrder([0, 1, 2])]
    )
    def test_totality_and_transitivity(self, order):
        import itertools

        monomials = [
            M(),
            M((0, 1)),
            M((1, 1)),
            M((2, 1)),
            M((0, 2)),
            M((0, 1), (1, 1)),
            M((1, 1), (2, 2)),
            M((0, 1), (1, 1), (2, 1)),
        ]
        ranked = sorted(monomials, key=order.sort_key)
        # sorted by sort_key = descending monomial order; check pairwise
        for i, a in enumerate(ranked):
            for b in ranked[i + 1 :]:
                assert order.greater(a, b)

    @pytest.mark.parametrize(
        "order", [LexOrder([0, 1, 2]), GrLexOrder([0, 1, 2]), GrevLexOrder([0, 1, 2])]
    )
    def test_product_compatibility(self, order):
        import itertools

        monomials = [M((0, 1)), M((1, 2)), M((2, 1)), M((0, 1), (2, 1))]

        def mul(a, b):
            powers = {}
            for var, exp in list(a) + list(b):
                powers[var] = powers.get(var, 0) + exp
            return tuple(sorted(powers.items()))

        for a, b in itertools.permutations(monomials, 2):
            if order.greater(a, b):
                for m in monomials:
                    assert order.greater(mul(a, m), mul(b, m))
