"""Unit tests for multivariate division/reduction."""

import pytest

from repro.algebra import (
    DivisionTrace,
    LexOrder,
    PolynomialRing,
    divmod_polynomial,
    reduce_polynomial,
)
from repro.gf import GF2m


@pytest.fixture
def ring(f16):
    return PolynomialRing(f16, ["x", "y", "z"], order=LexOrder([0, 1, 2]), fold=False)


class TestReduce:
    def test_reduce_by_nothing(self, ring):
        p = ring.var("x") + 1
        assert reduce_polynomial(p, []) == p

    def test_exact_division(self, ring):
        x, y = ring.var("x"), ring.var("y")
        product = (x + y) * (x + 1)
        assert reduce_polynomial(product, [x + y]).is_zero()

    def test_remainder_not_divisible(self, ring):
        x, y = ring.var("x"), ring.var("y")
        r = reduce_polynomial(x * x + y, [x * x + x])
        # x^2 rewrites to x, leaving x + y; neither term divisible by x^2.
        assert r == x + y

    def test_textbook_example(self, ring):
        # Cox-Little-O'Shea style: divide x^2 y + x y^2 + y^2 by [xy - 1, y^2 - 1]
        # over characteristic 2: xy + 1 and y^2 + 1.
        x, y = ring.var("x"), ring.var("y")
        f = x * x * y + x * y * y + y * y
        g1 = x * y + 1
        g2 = y * y + 1
        r = reduce_polynomial(f, [g1, g2])
        assert r == x + y + 1

    def test_zero_divisors_skipped(self, ring):
        p = ring.var("x")
        assert reduce_polynomial(p, [ring.zero()]) == p

    def test_no_remainder_term_divisible(self, ring):
        import itertools

        x, y, z = ring.var("x"), ring.var("y"), ring.var("z")
        divisors = [x * y + z, y * y + x]
        f = (x + y + z) ** 3 + x * y * z
        r = reduce_polynomial(f, divisors)
        for monomial in r.terms:
            for g in divisors:
                assert not ring.monomial_divides(g.leading_monomial(), monomial)

    def test_nonmonic_divisor(self, ring):
        x, y = ring.var("x"), ring.var("y")
        g = x.scale(3) + y  # leading coefficient 3
        r = reduce_polynomial(x, [g])
        # x = (1/3)(3x + y) + (1/3)y
        assert r == y.scale(ring.field.inv(3))

    def test_trace_counts_steps(self, ring):
        x, y = ring.var("x"), ring.var("y")
        trace = DivisionTrace()
        reduce_polynomial((x + y) * (x + 1), [x + y], trace=trace)
        assert trace.steps > 0
        assert trace.peak_terms >= 0


class TestDivmod:
    def test_certificate_identity(self, ring):
        """f == sum(q_i g_i) + r exactly."""
        x, y, z = ring.var("x"), ring.var("y"), ring.var("z")
        divisors = [x * y + 1, y * y + z]
        f = x * x * y + x * y * y + y * y + z
        quotients, r = divmod_polynomial(f, divisors)
        recombined = r
        for q, g in zip(quotients, divisors):
            recombined = recombined + q * g
        assert recombined == f

    def test_remainder_matches_reduce(self, ring):
        x, y = ring.var("x"), ring.var("y")
        divisors = [x * y + 1, y * y + 1]
        f = x * x * y + x * y * y + y * y
        _, r = divmod_polynomial(f, divisors)
        assert r == reduce_polynomial(f, divisors)

    def test_zero_dividend(self, ring):
        quotients, r = divmod_polynomial(ring.zero(), [ring.var("x")])
        assert r.is_zero() and all(q.is_zero() for q in quotients)

    def test_divisor_order_respected(self, ring):
        # First matching divisor takes the term: same leading monomials.
        x, y = ring.var("x"), ring.var("y")
        g1 = x + y
        g2 = x + 1
        quotients, _ = divmod_polynomial(x, [g1, g2])
        assert not quotients[0].is_zero()
        assert quotients[1].is_zero()
