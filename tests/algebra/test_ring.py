"""Unit tests for polynomial rings and polynomials over F_{2^k}."""

import pytest

from repro.algebra import LexOrder, Polynomial, PolynomialRing
from repro.gf import GF2m


@pytest.fixture
def ring(f16):
    """F_16[x, y, Z] with x, y bit-valued and Z word-valued."""
    return PolynomialRing(
        f16, ["x", "y", "Z"], order=LexOrder([0, 1, 2]), domains={"x": 2, "y": 2}
    )


class TestRingConstruction:
    def test_duplicate_variables_rejected(self, f16):
        with pytest.raises(ValueError):
            PolynomialRing(f16, ["x", "x"])

    def test_default_domains_are_field_order(self, f16):
        ring = PolynomialRing(f16, ["A"])
        assert ring.domains == [16]

    def test_bad_domain_rejected(self, f16):
        with pytest.raises(ValueError):
            PolynomialRing(f16, ["x"], domains={"x": 1})

    def test_order_length_checked(self, f16):
        with pytest.raises(ValueError):
            PolynomialRing(f16, ["x", "y"], order=LexOrder([0]))

    def test_equality_and_hash(self, f16):
        r1 = PolynomialRing(f16, ["x"], domains={"x": 2})
        r2 = PolynomialRing(f16, ["x"], domains={"x": 2})
        r3 = PolynomialRing(f16, ["x"])
        assert r1 == r2 and r1 != r3
        assert len({r1, r2, r3}) == 2

    def test_fold_flag_distinguishes_rings(self, f16):
        assert PolynomialRing(f16, ["x"]) != PolynomialRing(f16, ["x"], fold=False)


class TestElementConstruction:
    def test_zero_and_one(self, ring):
        assert ring.zero().is_zero()
        assert not ring.one().is_zero()
        assert ring.one() == 1

    def test_constant_reduces_into_field(self, ring):
        assert ring.constant(16 ^ 3) == ring.constant(ring.field.reduce(16) ^ 3)

    def test_var(self, ring):
        x = ring.var("x")
        assert len(x) == 1 and x.total_degree() == 1

    def test_var_power_zero_is_one(self, ring):
        assert ring.var("Z", 0) == ring.one()

    def test_unknown_var_rejected(self, ring):
        with pytest.raises(KeyError):
            ring.var("w")

    def test_negative_exponent_rejected(self, ring):
        with pytest.raises(ValueError):
            ring.var("Z", -1)

    def test_from_terms_merges_duplicates(self, ring):
        p = ring.from_terms([(1, {"x": 1}), (1, {"x": 1})])
        assert p.is_zero()  # characteristic 2


class TestExponentFolding:
    def test_bit_variable_idempotent(self, ring):
        x = ring.var("x")
        assert x * x == x

    def test_word_variable_folds_at_q(self, ring):
        Z = ring.var("Z")
        assert Z ** 16 == Z
        assert Z ** 17 == Z * Z
        assert Z ** 31 == Z  # 31 = 16 + 15 -> (31-1) % 15 + 1 = 1

    def test_fold_false_keeps_exponents(self, f16):
        ring = PolynomialRing(f16, ["Z"], fold=False)
        Z = ring.var("Z")
        assert (Z ** 16).degree_in("Z") == 16

    def test_canonical_degree_bound(self, ring):
        p = (ring.var("Z") + ring.one()) ** 20
        assert p.degree_in("Z") <= 15


class TestArithmetic:
    def test_addition_is_xor_of_coefficients(self, ring):
        p = ring.var("x").scale(0b0101) + ring.var("x").scale(0b0011)
        assert p == ring.var("x").scale(0b0110)

    def test_add_sub_identical(self, ring):
        p = ring.var("x") + ring.var("y")
        assert p - ring.var("y") == p + ring.var("y") == ring.var("x")

    def test_multiplication_distributes(self, ring):
        x, y, Z = ring.var("x"), ring.var("y"), ring.var("Z")
        assert (x + y) * Z == x * Z + y * Z

    def test_multiplication_uses_field(self, ring):
        a = ring.constant(0b0110)
        b = ring.constant(0b0101)
        assert a * b == ring.constant(ring.field.mul(0b0110, 0b0101))

    def test_int_coercion(self, ring):
        x = ring.var("x")
        assert x + 0 == x
        assert x * 1 == x
        assert x * 0 == ring.zero()
        assert 1 * x == x

    def test_cross_ring_rejected(self, ring, f16):
        other = PolynomialRing(f16, ["w"])
        with pytest.raises(ValueError):
            ring.var("x") + other.var("w")

    def test_pow(self, ring):
        p = ring.var("Z") + 1
        assert p ** 2 == ring.var("Z", 2) + 1  # freshman's dream in char 2

    def test_pow_negative_rejected(self, ring):
        with pytest.raises(ValueError):
            ring.var("Z") ** -1

    def test_scale(self, ring):
        p = ring.var("x") + ring.var("y")
        assert p.scale(0) == ring.zero()
        assert p.scale(1) == p

    def test_monic(self, ring):
        p = ring.var("x").scale(0b0110) + ring.one()
        assert p.monic().leading_coefficient() == 1

    def test_mul_monomial(self, ring):
        p = ring.var("x") + 1
        q = p.mul_monomial(((ring.index["y"], 1),))
        assert q == ring.var("x") * ring.var("y") + ring.var("y")


class TestLeadingTerms:
    def test_lead_under_lex(self, ring):
        p = ring.var("Z", 5) + ring.var("x") * ring.var("y") + ring.var("y")
        assert p.leading_monomial() == ((0, 1), (1, 1))  # x*y beats Z^5

    def test_zero_has_no_lead(self, ring):
        with pytest.raises(ValueError):
            ring.zero().lead()

    def test_tail(self, ring):
        p = ring.var("x") + ring.var("y") + 1
        assert p.tail() == ring.var("y") + 1

    def test_sorted_terms_descending(self, ring):
        p = ring.var("x") + ring.var("y") + ring.var("Z") + 1
        names = [ring.monomial_str(m) for m, _ in p.sorted_terms()]
        assert names == ["x", "y", "Z", "1"]


class TestInspection:
    def test_total_degree(self, ring):
        assert ring.zero().total_degree() == -1
        assert ring.one().total_degree() == 0
        assert (ring.var("Z", 3) * ring.var("x")).total_degree() == 4

    def test_degree_in(self, ring):
        p = ring.var("Z", 3) + ring.var("x")
        assert p.degree_in("Z") == 3
        assert p.degree_in("x") == 1
        assert p.degree_in("y") == 0

    def test_variables_used(self, ring):
        p = ring.var("x") * ring.var("Z") + 1
        assert p.variables_used() == ["x", "Z"]

    def test_coefficient_lookup(self, ring):
        p = ring.var("x").scale(7) + ring.one()
        assert p.coefficient({"x": 1}) == 7
        assert p.coefficient({}) == 1
        assert p.coefficient({"y": 1}) == 0


class TestEvaluate:
    def test_polynomial_function(self, ring):
        f16 = ring.field
        p = ring.var("Z", 2) + ring.var("x").scale(3)
        for z in range(16):
            for x in (0, 1):
                expected = f16.square(z) ^ f16.mul(3, x)
                assert p.evaluate({"Z": z, "x": x}) == expected

    def test_missing_variable_rejected(self, ring):
        with pytest.raises(KeyError):
            (ring.var("x") + ring.var("y")).evaluate({"x": 1})


class TestSubstitute:
    def test_linear_substitution(self, ring):
        p = ring.var("x") * ring.var("Z")
        q = p.substitute("x", ring.var("y") + 1)
        assert q == ring.var("y") * ring.var("Z") + ring.var("Z")

    def test_substitution_folds(self, ring):
        p = ring.var("Z", 15)
        q = p.substitute("Z", ring.var("Z", 2))
        assert q == ring.var("Z", 15)  # 30 folds to 15

    def test_substitute_evaluates_consistently(self, ring):
        f16 = ring.field
        p = ring.var("Z", 2) + ring.var("Z") + 1
        q = p.substitute("Z", ring.var("Z") + 1)
        for z in range(16):
            assert q.evaluate({"Z": z}) == p.evaluate({"Z": z ^ 1})


class TestStringOutput:
    def test_zero(self, ring):
        assert str(ring.zero()) == "0"

    def test_terms_and_coefficients(self, ring):
        p = ring.var("Z", 2).scale(0b10) + ring.one()
        assert str(p) == "a*Z^2 + 1"

    def test_compound_coefficient_parenthesised(self, ring):
        p = ring.var("Z").scale(0b11)
        assert str(p) == "(a + 1)*Z"

    def test_monomial_str(self, ring):
        assert ring.monomial_str(()) == "1"
        assert ring.monomial_str(((0, 1), (2, 3))) == "x*Z^3"
