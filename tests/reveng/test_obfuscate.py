"""Obfuscation generators: semantics preservation and recovery robustness."""

import random

import pytest

from repro.circuits import simulate_words, to_verilog
from repro.reveng import (
    OBFUSCATION_PASSES,
    identify_function,
    obfuscate,
    obfuscation_suite,
    recover_polynomial,
)
from repro.synth import mastrovito_multiplier


def _random_stimuli(circuit, field, lanes=32, seed=7):
    rng = random.Random(seed)
    return {
        word: [rng.randrange(field.order) for _ in range(lanes)]
        for word in circuit.input_words
    }


def _words_equal(circuit, variant, field):
    stimuli = _random_stimuli(circuit, field)
    return simulate_words(circuit, stimuli) == simulate_words(variant.circuit, stimuli)


@pytest.fixture(scope="module")
def mul4(f4):
    return mastrovito_multiplier(f4)


@pytest.mark.parametrize("pass_name", sorted(OBFUSCATION_PASSES))
def test_single_pass_preserves_semantics(mul4, f4, pass_name):
    variant = obfuscate(mul4, passes=[pass_name], seed=11)
    assert list(variant.passes) == [pass_name]
    assert _words_equal(mul4, variant, f4)


def test_suite_covers_every_pass_plus_stack(mul4):
    suite = obfuscation_suite(mul4)
    names = [variant.name for variant in suite]
    assert len(suite) == len(OBFUSCATION_PASSES) + 1
    assert names[-1].endswith("_stacked")
    single = {variant.passes[0] for variant in suite[:-1]}
    assert single == set(OBFUSCATION_PASSES)


def test_suite_variants_are_simulation_equivalent(mul4, f4):
    for variant in obfuscation_suite(mul4):
        assert _words_equal(mul4, variant, f4), variant.name


def test_suite_variants_still_identify_as_multiplication(mul4, f4):
    for variant in obfuscation_suite(mul4):
        outcome = identify_function(variant.circuit, f4)
        assert outcome.matches == ["mul"], variant.name


def test_recovery_survives_stacked_obfuscation(f4):
    circuit = mastrovito_multiplier(f4)
    variant = obfuscate(circuit, seed=3)
    assert variant.gates_after > variant.gates_before
    result = recover_polynomial(variant.circuit)
    assert result.recovered == f4.modulus


def test_obfuscation_is_deterministic(mul4):
    first = obfuscate(mul4, seed=42)
    second = obfuscate(mul4, seed=42)
    assert to_verilog(first.circuit) == to_verilog(second.circuit)


def test_different_seeds_differ(mul4):
    a = obfuscate(mul4, seed=1)
    b = obfuscate(mul4, seed=2)
    assert to_verilog(a.circuit) != to_verilog(b.circuit)


def test_rename_pass_changes_cache_key(mul4, f4):
    """Opaque renaming defeats netlist-text caching; shuffling must not."""
    from repro.jobs.cache import canonical_cache_key

    def key_of(circ):
        return canonical_cache_key(circ, f4)

    base = key_of(mul4)
    shuffled = obfuscate(mul4, passes=["shuffle"], seed=5)
    renamed = obfuscate(mul4, passes=["rename"], seed=5)
    assert key_of(shuffled.circuit) == base
    assert key_of(renamed.circuit) != base


def test_unknown_pass_rejected(mul4):
    with pytest.raises(ValueError):
        obfuscate(mul4, passes=["nonesuch"])


def test_variant_serialization(mul4):
    variant = obfuscate(mul4, passes=["dead_logic"], seed=9)
    payload = variant.to_dict()
    assert payload["name"] == variant.name
    assert payload["passes"] == ["dead_logic"]
    assert payload["gates_after"] >= payload["gates_before"]
    assert "growth" in payload
