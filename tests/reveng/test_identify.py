"""Tests for function identification against the spec-form library."""

import pytest

from repro.core import extract_canonical
from repro.reveng import (
    SPEC_FORMS,
    applicable_forms,
    classify,
    identify_function,
    match_forms,
)
from repro.synth import (
    frobenius_power_circuit,
    gf_adder,
    gf_squarer,
    itoh_tsujii_inverter,
    mastrovito_multiplier,
    montgomery_block,
)


def test_identifies_multiplier(f4):
    outcome = identify_function(mastrovito_multiplier(f4), f4)
    assert outcome.identified
    assert outcome.matches == ["mul"]
    assert outcome.classification == "quadratic"


def test_identifies_adder(f4):
    outcome = identify_function(gf_adder(f4), f4)
    assert outcome.matches == ["add"]
    assert outcome.classification == "linearized"


def test_identifies_squarer(f4):
    outcome = identify_function(gf_squarer(f4), f4)
    assert "square" in outcome.matches
    assert outcome.classification == "linearized"


def test_identifies_montgomery_block(f4):
    outcome = identify_function(montgomery_block(f4), f4)
    assert outcome.matches == ["montgomery_mul"]


def test_identifies_inverter(f4):
    circuit = itoh_tsujii_inverter(f4).flatten()
    outcome = identify_function(circuit, f4)
    assert outcome.matches == ["inverse"]
    assert outcome.classification == "nonlinear"


def test_frobenius_is_square_at_degree_boundary(f4):
    """Frobenius A^2 over GF(2^4) *is* the squaring map."""
    outcome = identify_function(frobenius_power_circuit(f4, 1), f4)
    assert "square" in outcome.matches
    assert outcome.classification == "linearized"


def test_restricted_form_library(f4):
    """Restricting the library hides matches outside it."""
    outcome = identify_function(
        mastrovito_multiplier(f4), f4, forms=("add", "square")
    )
    assert not outcome.identified
    assert outcome.matches == []
    # The structural classification still reports what the netlist is.
    assert outcome.classification == "quadratic"


def test_unknown_form_name_rejected(f4):
    with pytest.raises(ValueError):
        identify_function(mastrovito_multiplier(f4), f4, forms=("nonesuch",))


def test_match_forms_skips_arity_mismatch(f4):
    """Unary-netlist probes never test binary forms."""
    circuit = gf_squarer(f4)
    result = extract_canonical(circuit, f4)
    matches = match_forms(result.polynomial, f4, sorted(circuit.input_words))
    assert "mul" not in matches
    assert "square" in matches


def test_applicable_forms_partitions_by_arity():
    unary = set(applicable_forms(1))
    binary = set(applicable_forms(2))
    assert "mul" not in unary
    assert "square" in unary
    assert "mul" in binary
    assert unary.isdisjoint(binary)
    assert unary | binary == set(SPEC_FORMS)


def test_classify_labels(f4):
    mul = extract_canonical(mastrovito_multiplier(f4), f4).polynomial
    add = extract_canonical(gf_adder(f4), f4).polynomial
    inv = extract_canonical(itoh_tsujii_inverter(f4).flatten(), f4).polynomial
    assert classify(mul) == "quadratic"
    assert classify(add) == "linearized"
    assert classify(inv) == "nonlinear"


def test_outcome_serialization(f4):
    outcome = identify_function(gf_adder(f4), f4)
    payload = outcome.to_dict()
    assert payload["matches"] == ["add"]
    assert payload["identified"] == "add"
    assert payload["classification"] == "linearized"
    assert payload["polynomial"] == "A + B"
    assert payload["cache_hit"] is False
