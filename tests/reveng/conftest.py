"""Shared fixtures for the reverse-engineering tests."""

import pytest

from repro.gf import GF2m


@pytest.fixture(scope="module")
def f4():
    return GF2m(4)


@pytest.fixture(scope="module")
def f8():
    return GF2m(8)
