"""Tests for P(x) recovery sweeps over candidate irreducible polynomials."""

import pytest

from repro.gf import GF2m, STANDARD_POLYNOMIALS, irreducible_polynomials
from repro.jobs.cache import CanonicalPolyCache
from repro.reveng import RevengResult, infer_degree, recover_polynomial
from repro.synth import (
    gf_adder,
    mastrovito_multiplier,
    montgomery_block,
    montgomery_multiplier,
)


@pytest.mark.parametrize("k", [8, 16, 32])
def test_recovers_mastrovito_modulus(k):
    """The sweep recovers the standard modulus without being told it."""
    field = GF2m(k)
    result = recover_polynomial(mastrovito_multiplier(field))
    assert result.recovered == field.modulus
    assert result.degree == k
    assert result.spec_form == "mul"
    # NIST-style low-weight moduli sit first in (weight, value) order, so
    # the sweep terminates on the very first probe.
    assert result.candidates_tried == 1
    assert not result.exhausted


@pytest.mark.parametrize("k", [8, 16, 32])
def test_recovers_montgomery_modulus(k):
    """Flattened Montgomery multipliers recover the same way (Z = A*B)."""
    field = GF2m(k)
    circuit = montgomery_multiplier(field).flatten()
    result = recover_polynomial(circuit)
    assert result.recovered == field.modulus
    assert result.candidates_tried == 1


def test_recovers_montgomery_block_with_spec_form(f4):
    """A bare Montgomery block matches under the R^-1*A*B spec form."""
    circuit = montgomery_block(f4)
    plain = recover_polynomial(circuit, spec_form="mul")
    assert plain.recovered is None, "R^-1*A*B must not match the plain A*B form"
    assert plain.exhausted
    result = recover_polynomial(circuit, spec_form="montgomery_mul")
    assert result.recovered == f4.modulus


def test_recovery_with_nonstandard_modulus():
    """Recovery is not hard-wired to the standard polynomial."""
    candidates = list(irreducible_polynomials(8))
    alt = next(p for p in candidates if p != STANDARD_POLYNOMIALS[8])
    field = GF2m(8, modulus=alt)
    result = recover_polynomial(mastrovito_multiplier(field))
    assert result.recovered == alt


def test_warm_sweep_is_all_cache_hits(tmp_path):
    """A second identical sweep must be served (>=90%) from the cache."""
    field = GF2m(8)
    circuit = mastrovito_multiplier(field)
    cache = CanonicalPolyCache(tmp_path / "cache")

    cold = recover_polynomial(circuit, cache=cache, all_candidates=True, limit=6)
    assert cold.cache_hits == 0
    assert cold.candidates_tried == 6

    warm = recover_polynomial(circuit, cache=cache, all_candidates=True, limit=6)
    assert warm.candidates_tried == 6
    assert warm.cache_hits == warm.candidates_tried
    assert warm.matches == cold.matches == [field.modulus]


def test_census_is_exclusive(tmp_path):
    """all_candidates keeps sweeping and only the true modulus matches."""
    field = GF2m(8)
    cache = CanonicalPolyCache(tmp_path / "cache")
    result = recover_polynomial(
        mastrovito_multiplier(field), cache=cache, all_candidates=True, limit=10
    )
    assert result.candidates_tried == 10
    assert result.matches == [field.modulus]
    assert not result.exhausted  # stopped by the limit, not exhaustion
    assert len(result.probes) == 10


def test_limit_without_match_reports_no_recovery(tmp_path):
    """A budget that excludes the true modulus yields an honest miss."""
    field = GF2m(8)
    # An adder's canonical form is A+B under *every* modulus candidate, so
    # it can never match the multiplication spec form.
    result = recover_polynomial(gf_adder(field), spec_form="mul", limit=4)
    assert result.recovered is None
    assert result.matches == []
    assert result.candidates_tried == 4


def test_result_serialization_round_trip():
    field = GF2m(8)
    result = recover_polynomial(mastrovito_multiplier(field))
    payload = result.to_dict()
    assert payload["recovered"] == hex(field.modulus)
    assert payload["matches"] == [hex(field.modulus)]
    assert payload["candidates_tried"] == 1
    assert isinstance(payload["probes"], list)
    assert payload["probes"][0]["modulus"] == hex(field.modulus)
    assert isinstance(result, RevengResult)


def test_infer_degree_from_words(f8):
    assert infer_degree(mastrovito_multiplier(f8)) == 8


def test_infer_degree_rejects_wordless_circuit():
    from repro.circuits import Circuit

    circuit = Circuit("raw")
    circuit.add_inputs(["a", "b"])
    circuit.AND("a", "b", out="z")
    circuit.set_outputs(["z"])
    with pytest.raises(ValueError):
        infer_degree(circuit)


def test_unknown_spec_form_rejected(f4):
    with pytest.raises(ValueError):
        recover_polynomial(mastrovito_multiplier(f4), spec_form="nonesuch")


def test_degree_below_two_rejected(f4):
    with pytest.raises(ValueError):
        recover_polynomial(mastrovito_multiplier(f4), degree=1)
