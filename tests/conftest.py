"""Shared fixtures: fields and benchmark circuits at small sizes."""

import pytest

from repro.gf import GF2m


@pytest.fixture(scope="session")
def f2():
    return GF2m(1)


@pytest.fixture(scope="session")
def f4():
    """F_4 with P(x) = x^2 + x + 1 — the paper's worked-example field."""
    return GF2m(2)


@pytest.fixture(scope="session")
def f8():
    return GF2m(3)


@pytest.fixture(scope="session")
def f16():
    return GF2m(4)


@pytest.fixture(scope="session")
def f256():
    """F_256 with the AES polynomial."""
    return GF2m(8)


@pytest.fixture(scope="session", params=[2, 3, 4, 5, 8])
def any_field(request):
    """A selection of small fields for parametrised math tests."""
    return GF2m(request.param)
