#!/usr/bin/env python
"""Hierarchical verification of a Montgomery multiplier (the Table 2 flow).

Abstracts each of the four Fig. 1 blocks separately (gate-level to
word-level), prints the per-block canonical polynomials and costs, composes
them at word level, and checks the composite equals ``A * B``.

Run:  python examples/verify_montgomery.py [k]    (default k = 64)
"""

import sys

from repro import GF2m
from repro.core import abstract_hierarchy
from repro.synth import montgomery_multiplier, montgomery_r


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    field = GF2m(k)
    hierarchy = montgomery_multiplier(field)

    print(f"Hierarchical Montgomery multiplier over F_2^{k}")
    print(f"Montgomery radix R = alpha^{k}; blocks compute A*B*R^-1 mod P\n")

    result = abstract_hierarchy(hierarchy, field)

    print(f"{'block':<10} {'gates':>8} {'time(s)':>9} {'case':>5}  polynomial")
    for block in hierarchy.blocks:
        block_result = result.block_results[block.name]
        poly = str(block_result.polynomial)
        if len(poly) > 48:
            poly = poly[:45] + "..."
        print(
            f"{block.name:<10} {block.circuit.num_gates():>8} "
            f"{block_result.stats.seconds:>9.3f} "
            f"{block_result.stats.case:>5}  G = {poly}"
        )
    print(
        f"\nWord-level composition took {result.compose_seconds:.3f}s "
        f"(the paper: 'solved trivially in < 1 second')"
    )
    composite = result.polynomials["G"]
    print(f"Composite polynomial: G = {composite}")

    expected = result.ring.var("A") * result.ring.var("B")
    print(f"Equals A*B: {composite == expected}")
    assert composite == expected

    # Show what the blocks individually compute, in terms of R.
    r = montgomery_r(field)
    r_inv = field.inv(r)
    mid = result.block_results["BLK_Mid"].polynomial
    coefficient = mid.coefficient({"A": 1, "B": 1})
    print(
        f"\nBLK_Mid coefficient on A*B is R^-1 "
        f"(verified: {coefficient == r_inv})"
    )


if __name__ == "__main__":
    main()
