#!/usr/bin/env python
"""Reproduce the paper's worked Examples 4.2 and 5.1 verbatim.

Builds the 2-bit multiplier of Fig. 2 over F_4 (P(x) = x^2 + x + 1),
prints the circuit polynomials f1..f10, computes the Gröbner basis of
J + J_0 under the abstraction term order, performs the single guided
S-polynomial reduction of Section 5, and repeats both for the buggy
variant (r0 = s0 + s2) — reproducing every polynomial the paper prints.

Run:  python examples/paper_worked_examples.py
"""

from repro import GF2m
from repro.algebra import reduce_polynomial, reduced_groebner_basis, s_polynomial
from repro.circuits import Circuit, rewire_gate_input
from repro.core import abstract_circuit, circuit_ideal


def fig2_multiplier() -> Circuit:
    c = Circuit("fig2")
    c.add_inputs(["a0", "a1", "b0", "b1"])
    c.AND("a0", "b0", out="s0")
    c.AND("a0", "b1", out="s1")
    c.AND("a1", "b0", out="s2")
    c.AND("a1", "b1", out="s3")
    c.XOR("s1", "s2", out="r0")
    c.XOR("s0", "s3", out="z0")
    c.XOR("r0", "s3", out="z1")
    c.set_outputs(["z0", "z1"])
    c.add_input_word("A", ["a0", "a1"])
    c.add_input_word("B", ["b0", "b1"])
    c.add_output_word("Z", ["z0", "z1"])
    return c


def main() -> None:
    field = GF2m(2, modulus=0b111)  # P(x) = x^2 + x + 1, P(alpha) = 0
    circuit = fig2_multiplier()
    ideal = circuit_ideal(circuit, field)

    print("=== Example 4.2: the 2-bit multiplier over F_4 (Fig. 2) ===\n")
    print("Circuit polynomials (f1..f10 in the paper's notation):")
    for name, poly in ideal.output_relations.items():
        print(f"  f_w  ({name}): {poly}")
    for name, poly in ideal.input_relations.items():
        print(f"  f_wi ({name}): {poly}")
    for poly in ideal.gate_polynomials:
        print(f"  gate      : {poly}")

    print("\nReduced Groebner basis of J + J_0 under the abstraction order:")
    basis = reduced_groebner_basis(ideal.generators + ideal.vanishing)
    for poly in basis:
        marker = "   <-- g7: the canonical abstraction" if str(poly) == "Z + A*B" else ""
        print(f"  {poly}{marker}")

    print("\n=== Example 5.1: the guided reduction under RATO ===\n")
    f_w = ideal.output_relations["Z"]
    f_g = next(p for p in ideal.gate_polynomials if str(p).startswith("z0"))
    print(f"The only critical pair: f_w = {f_w}  |  f_g = {f_g}")
    remainder = reduce_polynomial(
        s_polynomial(f_w, f_g), ideal.generators + ideal.vanishing
    )
    print(f"Spoly(f_w, f_g) ->+ r = {remainder}   (Case 1: word variables only)")

    print("\n=== Example 5.1 continued: inject the bug r0 = s0 + s2 ===\n")
    buggy, mutation = rewire_gate_input(fig2_multiplier(), "r0", 0, "s0")
    print(f"Injected: {mutation}")
    buggy_ideal = circuit_ideal(buggy, field)
    f_w = buggy_ideal.output_relations["Z"]
    f_g = next(p for p in buggy_ideal.gate_polynomials if str(p).startswith("z0"))
    remainder = reduce_polynomial(
        s_polynomial(f_w, f_g), buggy_ideal.generators + buggy_ideal.vanishing
    )
    print(f"Spoly(f_w, f_g) ->+ r = {remainder}")
    print("(Case 2: primary-input bits a1, b1 survive, exactly as in the paper)")

    result = abstract_circuit(buggy, field, case2="groebner")
    print(f"\nCase-2 Groebner computation yields:  Z = {result.polynomial}")
    print("Paper: Z + (a)A^2B^2 + A^2B + (a+1)AB^2 + (a+1)AB  -- matches.")

    expected = "a*A^2*B^2 + A^2*B + (a + 1)*A*B^2 + (a + 1)*A*B"
    assert str(result.polynomial) == expected


if __name__ == "__main__":
    main()
