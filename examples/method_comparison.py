#!/usr/bin/env python
"""Compare all four verification methods on Mastrovito-vs-Montgomery miters.

Reproduces Section 6's in-text comparison at laptop scale: SAT miters and
BDDs die first on the structurally dissimilar multipliers, ideal-membership
reduction [5] survives longer, and word-level abstraction scales furthest.
Budgets (SAT conflicts, BDD nodes) stand in for the paper's 24-hour
timeout; an exhausted budget prints as TO.

Run:  python examples/method_comparison.py [max_k]    (default 10)
"""

import sys
import time

from repro import GF2m
from repro.core import word_ring_for
from repro.synth import mastrovito_multiplier, montgomery_multiplier
from repro.verify import (
    check_equivalence_bdd,
    check_equivalence_fraig,
    check_equivalence_sat,
    check_ideal_membership,
    verify_equivalence,
)

SAT_CONFLICT_BUDGET = 15_000
BDD_NODE_BUDGET = 400_000


def run(outcome_factory):
    start = time.perf_counter()
    outcome = outcome_factory()
    elapsed = time.perf_counter() - start
    if outcome.status == "unknown":
        return "TO"
    mark = "ok" if outcome.equivalent else "NEQ"
    return f"{elapsed:6.2f}s {mark}"


def main() -> None:
    max_k = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    print(
        f"{'k':>4} {'sat-miter':>12} {'fraig-cec':>12} {'bdd-miter':>12} "
        f"{'membership[5]':>14} {'abstraction':>12}"
    )
    for k in range(2, max_k + 1, 2):
        field = GF2m(k)
        spec = mastrovito_multiplier(field)
        hier = montgomery_multiplier(field)
        flat = hier.flatten()
        ring = word_ring_for(field, ["A", "B"])
        spec_poly = ring.var("A") * ring.var("B")

        sat = run(
            lambda: check_equivalence_sat(
                spec, flat, max_conflicts=SAT_CONFLICT_BUDGET, output_map={"G": "Z"}
            )
        )
        fraig = run(
            lambda: check_equivalence_fraig(
                spec,
                flat,
                max_conflicts_final=SAT_CONFLICT_BUDGET,
                output_map={"G": "Z"},
            )
        )
        bdd = run(
            lambda: check_equivalence_bdd(
                spec, flat, max_nodes=BDD_NODE_BUDGET, output_map={"G": "Z"}
            )
        )
        membership = run(
            lambda: check_ideal_membership(
                flat, field, spec_poly, output_word="G"
            )
        )
        abstraction = run(lambda: verify_equivalence(spec, hier, field))
        print(
            f"{k:>4} {sat:>12} {fraig:>12} {bdd:>12} "
            f"{membership:>14} {abstraction:>12}"
        )

    print(
        "\nTO = budget exhausted "
        f"({SAT_CONFLICT_BUDGET} conflicts / {BDD_NODE_BUDGET} BDD nodes), "
        "the laptop-scale analogue of the paper's 24h timeout."
    )


if __name__ == "__main__":
    main()
