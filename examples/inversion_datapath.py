#!/usr/bin/env python
"""Verify an Itoh-Tsujii field inverter — a deep hierarchical datapath.

Inversion over F_{2^k} is the expensive primitive in ECC point arithmetic;
the Itoh-Tsujii algorithm computes ``A^{-1} = A^{2^k - 2}`` with an
addition chain of Frobenius-power (XOR network) and multiplier blocks.
This example abstracts each block, composes the word-level polynomials
through the whole chain, and checks the result is the single Fermat
monomial ``A^(2^k - 2)`` — a verification no bit-level tool can do at
these sizes, and a deeper hierarchy than the paper's Fig. 1.

Run:  python examples/inversion_datapath.py [k]    (default k = 16)
"""

import sys

from repro import GF2m
from repro.core import abstract_hierarchy
from repro.synth import itoh_tsujii_inverter


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    field = GF2m(k)
    hierarchy = itoh_tsujii_inverter(field)
    out_word = hierarchy.output_words[0]

    multipliers = sum(1 for b in hierarchy.blocks if b.name.startswith("M"))
    frobenius = len(hierarchy.blocks) - multipliers
    print(f"Itoh-Tsujii inverter over F_2^{k}: Z = A^(2^{k} - 2)")
    print(
        f"{len(hierarchy.blocks)} blocks ({multipliers} multipliers, "
        f"{frobenius} Frobenius powers), {hierarchy.num_gates()} gates total\n"
    )

    result = abstract_hierarchy(hierarchy, field)
    print(f"{'block':<8} {'gates':>7} {'time(s)':>9}  polynomial (over block input)")
    for block in hierarchy.topological_blocks():
        block_result = result.block_results[block.name]
        poly = str(block_result.polynomial)
        if len(poly) > 44:
            poly = poly[:41] + "..."
        print(
            f"{block.name:<8} {block.circuit.num_gates():>7} "
            f"{block_result.stats.seconds:>9.3f}  {poly}"
        )

    composite = result.polynomials[out_word]
    expected = result.ring.var("A", field.order - 2)
    print(f"\nComposed polynomial: Z = {composite}")
    print(f"Expected Fermat monomial A^{field.order - 2}: {composite == expected}")
    assert composite == expected

    # Spot-check against field arithmetic.
    import random

    rng = random.Random(7)
    samples = [rng.randrange(1, field.order) for _ in range(5)]
    outputs = hierarchy.simulate_words({"A": samples})[out_word]
    for a, z in zip(samples, outputs):
        assert field.mul(a, z) == 1
    print(f"Spot-checked {len(samples)} random inverses in simulation: all correct")


if __name__ == "__main__":
    main()
