#!/usr/bin/env python
"""Verify an ECC point-doubling datapath against its affine specification.

The paper's motivating application: custom GF(2^k) datapaths inside
elliptic-curve cryptosystems. This example builds a gate-level point
doubler for the binary curve ``y^2 + xy = x^3 + a2 x^2 + a6`` — eleven
blocks including a nested Itoh-Tsujii inverter for the ``Y/X`` division —
abstracts every block, composes the word-level polynomials through the
nested hierarchy, and matches them against the affine doubling formulas::

    lambda = X + Y * X^(q-2)
    X3     = lambda^2 + lambda + a2
    Y3     = X^2 + (lambda + 1) * X3

Run:  python examples/ecc_point_double.py [k]    (default k = 16)
"""

import sys
import time

from repro import GF2m
from repro.core import abstract_hierarchy
from repro.synth import (
    point_double_datapath,
    point_double_reference,
    point_double_spec,
)


def comparable(poly):
    ring = poly.ring
    return {
        tuple(sorted((ring.variables[v], e) for v, e in m)): c
        for m, c in poly.terms.items()
    }


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    field = GF2m(k)
    datapath = point_double_datapath(field, a2=1)
    print(f"Point-doubling datapath over F_2^{k}:")
    print(f"  {len(datapath.blocks)} top-level blocks, {datapath.num_gates()} gates")
    inverter = next(b for b in datapath.blocks if b.name == "INV")
    print(
        f"  block INV is itself a hierarchy of {len(inverter.circuit.blocks)} "
        "blocks (Itoh-Tsujii inversion chain)\n"
    )

    start = time.perf_counter()
    result = abstract_hierarchy(datapath, field)
    elapsed = time.perf_counter() - start
    ring, spec = point_double_spec(field, a2=1)

    for word in ("X3", "Y3"):
        derived = result.polynomials[word]
        matches = comparable(derived) == comparable(spec[word])
        text = str(derived)
        if len(text) > 60:
            text = text[:57] + "..."
        print(f"{word} = {text}")
        print(f"   matches affine spec: {matches}")
        assert matches

    print(f"\nWhole-datapath abstraction + composition: {elapsed:.2f}s")

    # Replay one concrete doubling through the netlists.
    x, y = 3 % field.order or 1, 7 % field.order
    sim = datapath.simulate_words({"X": [x], "Y": [y]})
    expected = point_double_reference(field, x, y)
    print(
        f"Spot check 2*({x:#x}, {y:#x}) = ({sim['X3'][0]:#x}, {sim['Y3'][0]:#x})"
        f" — reference agrees: {(sim['X3'][0], sim['Y3'][0]) == expected}"
    )


if __name__ == "__main__":
    main()
