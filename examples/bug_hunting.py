#!/usr/bin/env python
"""Bug hunting: inject gate-level design errors and catch every one.

Sweeps random gate-substitution bugs over a Mastrovito multiplier. Each
mutant's canonical polynomial is extracted (buggy circuits typically take
the Case-2 path of Section 5), compared against ``A * B``, and a concrete
counterexample input is derived from the polynomial difference and
replayed on the netlists.

Run:  python examples/bug_hunting.py [k] [num_bugs]    (default 16, 8)
"""

import random
import sys

from repro import GF2m
from repro.circuits import random_mutation, simulate_words
from repro.synth import mastrovito_multiplier
from repro.verify import verify_equivalence


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    num_bugs = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    field = GF2m(k)
    spec = mastrovito_multiplier(field)
    rng = random.Random(2014)

    print(f"Hunting {num_bugs} injected bugs in a {k}-bit Mastrovito multiplier\n")
    caught = 0
    for i in range(num_bugs):
        mutant, mutation = random_mutation(mastrovito_multiplier(field), rng)
        outcome = verify_equivalence(spec, mutant, field)
        if outcome.status != "not_equivalent":
            print(f"bug {i}: MISSED {mutation}")
            continue
        caught += 1
        cex = outcome.counterexample
        a, b = cex["A"], cex["B"]
        good = simulate_words(spec, {"A": [a], "B": [b]})["Z"][0]
        bad = simulate_words(mutant, {"A": [a], "B": [b]})["Z"][0]
        case = outcome.details["impl"]["case"]
        print(f"bug {i}: {mutation}")
        print(
            f"        detected (Case {case}); counterexample "
            f"A={a:#x} B={b:#x}: spec Z={good:#x}, buggy Z={bad:#x}\n"
        )
        assert good != bad

    print(f"caught {caught}/{num_bugs} injected bugs")
    assert caught == num_bugs


if __name__ == "__main__":
    main()
