#!/usr/bin/env python
"""Quickstart: verify a Montgomery multiplier against a Mastrovito golden model.

This is the paper's headline flow in ~20 lines:

1. construct the field F_{2^k} (NIST/standard reduction polynomial),
2. generate the two structurally dissimilar multiplier designs,
3. abstract each to its canonical word-level polynomial,
4. decide equivalence by coefficient matching.

Run:  python examples/quickstart.py [k]    (default k = 32)
"""

import sys
import time

from repro import GF2m
from repro.gf import poly2
from repro.synth import mastrovito_multiplier, montgomery_multiplier
from repro.verify import verify_equivalence


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    field = GF2m(k)
    print(f"Field: F_2^{k} with P(x) = {poly2.to_string(field.modulus)}")

    start = time.perf_counter()
    spec = mastrovito_multiplier(field)  # flattened golden model
    impl = montgomery_multiplier(field)  # hierarchical custom design (Fig. 1)
    print(f"Spec (Mastrovito): {spec.num_gates()} gates, flat netlist")
    print(
        f"Impl (Montgomery): {impl.num_gates()} gates in "
        f"{len(impl.blocks)} blocks: {[b.name for b in impl.blocks]}"
    )

    outcome = verify_equivalence(spec, impl, field)
    elapsed = time.perf_counter() - start

    print(f"\nSpec polynomial:  Z = {outcome.details['spec_polynomial']}")
    print(f"Impl polynomial:  G = {outcome.details['impl_polynomial']}")
    print(f"Verdict: {outcome.status.upper()} in {elapsed:.2f}s total")
    assert outcome.equivalent


if __name__ == "__main__":
    main()
