"""Structural pre-reduction front-end (ROADMAP item 4).

Canonicalize and SAT-sweep netlists *before* hashing and abstraction, so

* every structural variant of a design — gate-form rewrites, buffer and
  inverter chains, dead logic, shuffled gate order, and opaquely renamed
  nets (each of :mod:`repro.reveng.obfuscate`'s passes, alone or stacked)
  — collapses to one canonical circuit and therefore one content-addressed
  cache key, and
* every downstream Gröbner reduction sees a smaller circuit: the fraig
  stage merges internal nets the SAT solver *proves* equivalent (unknowns
  are never touched), and a differential guard makes a prepass bug cost
  performance, never a verdict.

``REPRO_PREPASS=0`` disables the whole subsystem; per-call overrides ride
on ``--prepass/--no-prepass`` (CLI) and ``params["prepass"]`` (batch
manifests / service requests).
"""

from .canon import canonical_input_order, canonicalize
from .pipeline import AbstractionProbe, abstract_canonical
from .reduce import (
    PREPASS_ENV,
    PrepassError,
    PrepassResult,
    apply_prepass,
    differential_guard,
    prepass_default,
    resolve_prepass,
)

__all__ = [
    "AbstractionProbe",
    "PREPASS_ENV",
    "PrepassError",
    "PrepassResult",
    "abstract_canonical",
    "apply_prepass",
    "canonical_input_order",
    "canonicalize",
    "differential_guard",
    "prepass_default",
    "resolve_prepass",
]
