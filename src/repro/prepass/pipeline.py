"""The shared prepass → abstraction pipeline stage.

:func:`abstract_canonical` is the single cache-aware abstraction engine
behind every entry point — ``verify_equivalence`` (CLI ``repro verify``
and trace replay), the batch executor's ``run_verify``/``run_abstract``
(batch manifests and the service scheduler both call those bodies), and
the reverse-engineering probes. It owns the full contract:

* resolve the prepass tri-state (explicit flag > ``REPRO_PREPASS`` env),
* run :func:`~repro.prepass.reduce.apply_prepass` under a ``prepass`` span,
  falling back to the raw circuit (and ticking
  ``prepass.guard_failures``) if the differential guard trips,
* key the cache on the **canonical** (prepassed) structure, falling back
  to the raw-structure key so entries written before the prepass existed
  — or by ``REPRO_PREPASS=0`` runs — still hit (a raw-key hit is promoted
  under the canonical key),
* tick ``cache.*`` totals plus the ``prepass.*`` canonical/raw key-hit
  split, and mirror both into the caller's ``counters`` dict so batch run
  logs and ``repro cache stats`` can break hits out by key kind.

Keeping this in :mod:`repro.prepass` (which imports only circuits, aig,
core and obs) lets both :mod:`repro.jobs.executor` and
:mod:`repro.verify.equivalence` share it without an import cycle; the
:mod:`repro.jobs.cache` helpers are imported lazily for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..circuits import Circuit
from ..core import extract_canonical
from ..gf import GF2m
from ..obs import metrics
from ..obs import redtrace
from ..obs.spans import span
from .reduce import PrepassError, PrepassResult, apply_prepass, resolve_prepass

__all__ = ["AbstractionProbe", "abstract_canonical"]


@dataclass
class AbstractionProbe:
    """One cache-aware canonical-polynomial lookup/computation."""

    payload: Dict
    hit: bool
    #: How the payload was obtained: ``"computed"`` (fresh extraction),
    #: ``"canonical"`` (hit under the prepassed-structure key), ``"raw"``
    #: (hit under the raw-structure key — fallback or prepass disabled), or
    #: ``"shared"`` (another in-process caller's in-flight result).
    source: str
    #: Prepass accounting when the prepass ran and survived its guard.
    prepass: Optional[PrepassResult]
    #: The fresh extraction result (None on any kind of hit) — carries the
    #: parallel-pool stats payloads don't.
    result: Optional[object]


def abstract_canonical(
    circuit: Circuit,
    field: GF2m,
    *,
    output_word: Optional[str] = None,
    case2: str = "linearized",
    jobs: Optional[int] = None,
    cache=None,
    counters: Optional[Dict[str, int]] = None,
    inflight=None,
    prepass: Optional[bool] = None,
) -> AbstractionProbe:
    """Canonical-polynomial payload for a flat circuit: prepass + cache.

    ``cache`` is a :class:`~repro.jobs.cache.CanonicalPolyCache` (or None);
    ``inflight`` an optional single-flight group (``do(key, fn) ->
    (value, shared)``) for in-process dedup; ``prepass`` the tri-state
    override (None defers to ``REPRO_PREPASS``). On a miss the RATO and
    reduction work runs inside :func:`~repro.core.abstraction.extract_canonical`,
    whose spans feed the executor's phase timings.
    """
    use_prepass = resolve_prepass(prepass)
    target = circuit
    pres: Optional[PrepassResult] = None
    if use_prepass and not isinstance(circuit, Circuit):
        use_prepass = False  # hierarchical designs are abstracted block-wise
    if use_prepass:
        with span("prepass", gates=circuit.num_gates()):
            try:
                pres = apply_prepass(circuit)
                target = pres.circuit
            except PrepassError:
                # Guard tripped (already counted): verdicts must never
                # depend on the prepass, so abstract the raw netlist.
                target = circuit
                pres = None

    fresh: list = []

    def compute() -> Dict:
        from ..jobs.cache import polynomial_payload

        result = extract_canonical(
            target, field, output_word=output_word, case2=case2, jobs=jobs
        )
        fresh.append(result)
        return polynomial_payload(result)

    if cache is None and inflight is None:
        payload, hit, source = compute(), False, "computed"
    else:
        from ..jobs.cache import canonical_cache_key

        key = canonical_cache_key(target, field, case2=case2, output_word=output_word)
        fallback_keys: Tuple[str, ...] = ()
        if target is not circuit:
            raw_key = canonical_cache_key(
                circuit, field, case2=case2, output_word=output_word
            )
            if raw_key != key:
                fallback_keys = (raw_key,)

        def lookup() -> Tuple[Dict, str]:
            if cache is None:
                return compute(), "computed"
            return cache.lookup_or_compute(key, compute, fallback_keys=fallback_keys)

        if inflight is None:
            payload, src = lookup()
        else:
            (payload, src), shared = inflight.do(key, lookup)
            if shared:
                src = "shared"
        hit = src != "computed"
        if src == "primary":
            source = "canonical" if use_prepass else "raw"
        elif src == "fallback":
            source = "raw"
        else:
            source = src

    raw_hit = hit and (source == "raw" or not use_prepass)
    canonical_hit = hit and not raw_hit
    if counters is not None:
        counters["hits"] = counters.get("hits", 0) + int(hit)
        counters["misses"] = counters.get("misses", 0) + int(not hit)
        counters["hits_canonical"] = counters.get("hits_canonical", 0) + int(
            canonical_hit
        )
        counters["hits_raw"] = counters.get("hits_raw", 0) + int(raw_hit)
    metrics.counter_add(metrics.CACHE_HITS if hit else metrics.CACHE_MISSES, 1)
    if canonical_hit:
        metrics.counter_add(metrics.PREPASS_CANONICAL_KEY_HITS, 1)
    if raw_hit:
        metrics.counter_add(metrics.PREPASS_RAW_KEY_HITS, 1)
    rtw = redtrace.active_writer()
    if rtw is not None and (cache is not None or inflight is not None):
        # Environment-dependent by nature (a warm cache answers differently
        # than a cold one), so the replay differ never sees these: the
        # `repro verify --record` path runs cache-less. They exist for the
        # daemon's flight recorder.
        rtw.emit("cache_probe", key=key[:16], hit=bool(hit))
    return AbstractionProbe(
        payload=payload,
        hit=hit,
        source=source,
        prepass=pres,
        result=fresh[0] if fresh else None,
    )
