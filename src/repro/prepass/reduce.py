"""The structural pre-reduction pass: canonicalize, fraig, guard.

:func:`apply_prepass` is the one entry point every pipeline shares (CLI,
batch executor, service, reverse engineering). It runs up to three stages:

1. :func:`~repro.prepass.canon.canonicalize` — deterministic structural
   normal form (gate-form normalization, dead-logic strip, buffer collapse,
   order-free renaming). Always sound: pure rewriting of the same function.
2. A fraiging SAT sweep (:func:`~repro.aig.sweep.sat_sweep`) promoted from
   baseline checker to *reducer*: internal nets whose equivalence the SAT
   solver **proves** (an UNSAT miter within the conflict budget) are merged
   and the circuit rebuilt smaller. The soundness contract is inherited
   from the sweep itself — it merges only on ``"equal"`` verdicts;
   ``"unknown"`` (budget exhausted) and ``"diff"`` candidates are left
   untouched — and the rebuild consumes exactly its merge map.
3. A differential guard: the reduced circuit is bit-parallel simulated
   against the original on fixed-seed random vectors; any mismatch raises
   :class:`PrepassError` and the caller falls back to the raw netlist, so a
   prepass bug can cost performance but never a verdict.

``REPRO_PREPASS=0`` is the global escape hatch; every entry point also
takes an explicit ``--prepass/--no-prepass`` (or ``params["prepass"]``)
override, resolved by :func:`resolve_prepass`.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..aig.sweep import sat_sweep
from ..circuits import Circuit
from ..circuits.simulate import simulate
from ..obs import metrics
from .canon import _rebuild, build_canonical_aig

__all__ = [
    "PREPASS_ENV",
    "PrepassError",
    "PrepassResult",
    "apply_prepass",
    "prepass_default",
    "resolve_prepass",
]

#: Environment escape hatch: ``REPRO_PREPASS=0`` disables the prepass
#: everywhere a caller didn't pass an explicit override.
PREPASS_ENV = "REPRO_PREPASS"

_GUARD_SEED = 0xC0FFEE
_GUARD_LANES = 64


class PrepassError(RuntimeError):
    """The differential guard caught a prepass/original mismatch."""


def prepass_default() -> bool:
    """Whether the prepass is on by default (the ``REPRO_PREPASS`` switch)."""
    return os.environ.get(PREPASS_ENV, "1").strip().lower() not in (
        "0",
        "false",
        "no",
        "off",
    )


def resolve_prepass(flag: Optional[bool] = None) -> bool:
    """Resolve a tri-state prepass override against the environment default."""
    return prepass_default() if flag is None else bool(flag)


@dataclass
class PrepassResult:
    """What the prepass did to one circuit."""

    circuit: Circuit
    gates_in: int
    canonical_gates: int
    gates_out: int
    nets_merged: int
    sat_queries: int
    sat_refuted: int
    sat_unknown: int
    seconds: float

    def stats(self) -> Dict[str, object]:
        return {
            "gates_in": self.gates_in,
            "canonical_gates": self.canonical_gates,
            "gates_out": self.gates_out,
            "gates_removed": self.gates_in - self.gates_out,
            "nets_merged": self.nets_merged,
            "sat_queries": self.sat_queries,
            "sat_refuted": self.sat_refuted,
            "sat_unknown": self.sat_unknown,
            "seconds": round(self.seconds, 6),
        }


def differential_guard(
    original: Circuit,
    reduced: Circuit,
    lanes: int = _GUARD_LANES,
    seed: int = _GUARD_SEED,
) -> None:
    """Raise :class:`PrepassError` unless the circuits agree on random vectors.

    Fixed-seed and bit-parallel: one :func:`~repro.circuits.simulate.simulate`
    sweep checks ``lanes`` input vectors per output bit. Outputs are compared
    positionally (the prepass renames nets but preserves output order and
    word structure).
    """
    rng = random.Random(seed)
    stimuli = {net: rng.getrandbits(lanes) for net in sorted(original.inputs)}
    got_a = simulate(original, stimuli, lanes=lanes)
    got_b = simulate(reduced, stimuli, lanes=lanes)
    for net_a, net_b in zip(original.outputs, reduced.outputs):
        if got_a[net_a] != got_b[net_b]:
            raise PrepassError(
                f"prepass guard: output {net_a!r}/{net_b!r} diverged on "
                f"random stimuli"
            )
    for word, bits_a in original.output_words.items():
        bits_b = reduced.output_words.get(word, ())
        if len(bits_a) != len(bits_b):
            raise PrepassError(f"prepass guard: output word {word!r} changed shape")
        for net_a, net_b in zip(bits_a, bits_b):
            if got_a[net_a] != got_b[net_b]:
                raise PrepassError(
                    f"prepass guard: word {word!r} bit {net_a!r}/{net_b!r} "
                    f"diverged on random stimuli"
                )


def apply_prepass(
    circuit: Circuit,
    fraig: bool = True,
    max_conflicts: int = 200,
    patterns: int = 4,
    seed: int = 2014,
    guard: bool = True,
) -> PrepassResult:
    """Canonicalize + SAT-sweep ``circuit``; returns the reduced form.

    Deterministic for a given input: the sweep runs on the canonicalized
    circuit's AIG (whose node numbering no longer depends on source gate
    order), so structural variants of one design reduce to the *same*
    circuit — and therefore the same cache key. Raises :class:`PrepassError`
    if the differential guard detects a mismatch (callers fall back to the
    raw circuit).
    """
    start = time.perf_counter()
    gates_in = circuit.num_gates()
    reduced = _rebuild(circuit)
    canonical_gates = reduced.num_gates()
    merged = queries = refuted = unknown = 0
    if fraig and canonical_gates:
        bundle = build_canonical_aig(reduced)
        sweep = sat_sweep(
            bundle[0],
            max_conflicts_per_query=max_conflicts,
            num_random_patterns=patterns,
            seed=seed,
        )
        merged = sweep.merged
        queries = sweep.queries
        refuted = sweep.sat_refuted
        unknown = sweep.unknown
        if sweep.merged:
            reduced = _rebuild(reduced, sweep_canon=sweep.canon, prebuilt=bundle)
    if guard:
        try:
            differential_guard(circuit, reduced)
        except PrepassError:
            metrics.counter_add(metrics.PREPASS_GUARD_FAILURES, 1)
            raise
    result = PrepassResult(
        circuit=reduced,
        gates_in=gates_in,
        canonical_gates=canonical_gates,
        gates_out=reduced.num_gates(),
        nets_merged=merged,
        sat_queries=queries,
        sat_refuted=refuted,
        sat_unknown=unknown,
        seconds=time.perf_counter() - start,
    )
    metrics.counter_add(metrics.PREPASS_RUNS, 1)
    metrics.counter_add(
        metrics.PREPASS_GATES_REMOVED, max(0, result.gates_in - result.gates_out)
    )
    metrics.counter_add(metrics.PREPASS_NETS_MERGED, merged)
    metrics.counter_add(metrics.PREPASS_SAT_QUERIES, queries)
    metrics.counter_add(metrics.PREPASS_SAT_UNKNOWN, unknown)
    return result
