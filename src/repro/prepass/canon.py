"""Deterministic structural canonicalization of gate-level netlists.

The content-addressed cache keys on :func:`~repro.jobs.cache.normalize_circuit_text`,
which is stable under formatting and gate-order churn but *not* under the
rewrites a hostile (or merely different) synthesis flow applies: De Morgan
gate-form changes, XOR expansion, buffer/inverter chains, dead logic, and —
the one pass that defeated the cache outright — opaque net renaming.
``canonicalize`` collapses that whole family to a single representative:

1. **Function recovery through an AIG.** The circuit is built into a
   hash-consed And-Inverter Graph (:mod:`repro.aig`) over a canonical input
   order (sorted input words LSB-first, then leftover inputs by name).
   Strashing plus constant folding erases buffers, double inversions,
   NAND/NOR/XNOR vs AND/OR/XOR+INV choices, and re-associations for free;
   only logic reachable from the outputs is ever rebuilt, which strips dead
   gates.
2. **OR/XOR recovery.** A small covering graph is rebuilt from the AIG in
   which a both-complemented AND becomes an OR node (De Morgan, with the
   complement pushed onto the edge) and the two-AND xor shape — including
   XNORs, which differ only by edge parity — becomes an XOR node. The
   rebuild maintains a strict polarity invariant: *every node's value is
   exactly the function of the net it will be emitted as*, so running
   ``canonicalize`` on its own output reconstructs the identical graph
   (idempotence).
3. **Order-free renaming.** Nodes are numbered level by level, ordered
   within a level by an injective structural signature over already-assigned
   ids — never by AIG node id, which varies with source gate order. Gate
   nets become ``g<id>``; output bits take word-anchored names (bit ``i`` of
   output word ``W`` becomes ``Wi``); primary input names are preserved
   because they carry the word semantics the abstraction keys on.

Canonicalization is purely structural and function-preserving, so by the
paper's uniqueness result (Corollary 4.1: a circuit has exactly one
canonical word-level polynomial) the downstream abstraction is unchanged —
only cheaper, and now shared across every structural variant.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..aig import Aig
from ..aig.from_circuit import circuit_to_aig
from ..circuits import Circuit, GateType

__all__ = ["canonical_input_order", "canonicalize"]

#: Reserved index of the constant-false node in the recovered graph.
_CONST = 0

_GATE_OPS = ("and", "or", "xor")


def canonical_input_order(circuit: Circuit) -> List[str]:
    """Primary inputs in canonical order: sorted words LSB-first, then rest."""
    ordered: List[str] = []
    seen = set()
    for word in sorted(circuit.input_words):
        for bit in circuit.input_words[word]:
            if bit not in seen:
                seen.add(bit)
                ordered.append(bit)
    for net in sorted(circuit.inputs):
        if net not in seen:
            seen.add(net)
            ordered.append(net)
    return ordered


def build_canonical_aig(circuit: Circuit) -> Tuple[Aig, Dict[str, int], List[str]]:
    """AIG of ``circuit`` with inputs created in canonical order.

    Returns ``(aig, net -> literal, ordered input names)``. Two calls on the
    same circuit produce identical node numbering, which is what lets a SAT
    sweep's merge map (keyed by node id) be applied by a later rebuild.
    """
    aig = Aig()
    order = canonical_input_order(circuit)
    input_lits = {net: aig.add_input() for net in order}
    aig, lits = circuit_to_aig(circuit, aig, input_lits)
    return aig, lits, order


def _rebuild(
    circuit: Circuit,
    sweep_canon: Optional[Dict[int, int]] = None,
    prebuilt: Optional[Tuple[Aig, Dict[str, int], List[str]]] = None,
) -> Circuit:
    """Canonical rebuild of ``circuit``, optionally through a fraig merge map.

    ``sweep_canon`` maps AIG nodes onto representative literals (the
    :class:`~repro.aig.sweep.SweepResult` contract); merged nodes are
    resolved to their representatives instead of being re-emitted, which is
    how a SAT sweep shrinks the rebuilt circuit. The map's node ids must
    refer to the AIG ``build_canonical_aig`` constructs for this circuit —
    pass that AIG as ``prebuilt`` to guarantee it (and skip a rebuild).
    """
    aig, lits, order = prebuilt if prebuilt is not None else build_canonical_aig(circuit)

    # ---- recover an or/xor-aware graph from the AIG -------------------------
    # Polarity invariant: a node's value equals the function of the net it is
    # emitted as; complements live only on AND-node edges and in the
    # aig-literal map, so re-canonicalizing the output reproduces this graph.
    ops: List[str] = ["const"]
    args: List[tuple] = [()]
    index: Dict[tuple, int] = {}
    amap: Dict[int, Tuple[int, int]] = {0: (_CONST, 0)}
    input_idx: List[int] = []
    for node in aig.inputs:
        idx = len(ops)
        ops.append("input")
        args.append((node,))
        amap[node] = (idx, 0)
        input_idx.append(idx)

    def resolve(lit: int) -> Tuple[int, int]:
        if sweep_canon:
            lit = sweep_canon.get(lit >> 1, lit & ~1) ^ (lit & 1)
        idx, parity = amap[lit >> 1]
        return idx, parity ^ (lit & 1)

    def intern(op: str, key_args: tuple) -> int:
        key = (op, key_args)
        idx = index.get(key)
        if idx is None:
            idx = len(ops)
            ops.append(op)
            args.append(key_args)
            index[key] = idx
        return idx

    def make_xor(p: Tuple[int, int], q: Tuple[int, int]) -> Tuple[int, int]:
        (ia, ca), (ib, cb) = p, q
        parity = ca ^ cb
        if ia == _CONST:
            return ib, parity
        if ib == _CONST:
            return ia, parity
        if ia == ib:
            return _CONST, parity
        return intern("xor", (min(ia, ib), max(ia, ib))), parity

    def make_and(p: Tuple[int, int], q: Tuple[int, int]) -> Tuple[int, int]:
        (ia, ca), (ib, cb) = p, q
        if ia == _CONST:
            return (ib, cb) if ca else (_CONST, 0)
        if ib == _CONST:
            return (ia, ca) if cb else (_CONST, 0)
        if ia == ib:
            return (ia, ca) if ca == cb else (_CONST, 0)
        if ca and cb:
            # De Morgan: !x & !y == !(x | y) — an OR node with the
            # complement on the edge, so the node keeps positive polarity.
            return intern("or", (min(ia, ib), max(ia, ib))), 1
        children = tuple(sorted(((ia, ca), (ib, cb))))
        return intern("and", children), 0

    for node, fanin in enumerate(aig.fanins):
        if fanin is None:
            continue
        if sweep_canon and node in sweep_canon:
            amap[node] = resolve(node << 1)
            continue
        l0, l1 = fanin
        rec: Optional[Tuple[int, int]] = None
        if (l0 & 1) and (l1 & 1):
            # XOR shape: AND(!x, !y) with x = AND(p, q), y = AND(!p, !q)
            # is p ^ q regardless of how the source spelled it; XNOR is the
            # same node reached through a complemented edge.
            x, y = l0 >> 1, l1 >> 1
            fx, fy = aig.fanins[x], aig.fanins[y]
            if fx is not None and fy is not None and x != y:
                if {fy[0], fy[1]} == {fx[0] ^ 1, fx[1] ^ 1}:
                    rec = make_xor(resolve(fx[0]), resolve(fx[1]))
        if rec is None:
            rec = make_and(resolve(l0), resolve(l1))
        amap[node] = rec

    # ---- resolve outputs and keep only reachable logic ----------------------
    out_nets: List[str] = []
    for net in circuit.outputs:
        if net not in out_nets:
            out_nets.append(net)
    for word in sorted(circuit.output_words):
        for bit in circuit.output_words[word]:
            if bit not in out_nets:
                out_nets.append(bit)
    out_res: Dict[str, Tuple[int, int]] = {
        net: resolve(lits[net]) for net in out_nets if not circuit.is_input(net)
    }

    reachable = set()
    stack = [idx for idx, _comp in out_res.values()]
    while stack:
        idx = stack.pop()
        if idx in reachable:
            continue
        reachable.add(idx)
        if ops[idx] == "and":
            stack.extend(child for child, _comp in args[idx])
        elif ops[idx] in ("or", "xor"):
            stack.extend(args[idx])
    gate_nodes = sorted(i for i in reachable if ops[i] in _GATE_OPS)

    # ---- order-free canonical numbering -------------------------------------
    # Rec indices follow AIG creation order, which shifts with source gate
    # order; ids must not. Number level by level, breaking ties with an
    # injective structural signature over already-numbered children (two
    # distinct interned nodes can't share one, so the sort is total).
    level: Dict[int, int] = {}
    for idx in gate_nodes:  # ascending index is already topological
        if ops[idx] == "and":
            kids = [child for child, _comp in args[idx]]
        else:
            kids = list(args[idx])
        level[idx] = 1 + max(level.get(child, 0) for child in kids)

    cid: Dict[int, int] = {idx: pos for pos, idx in enumerate(input_idx)}
    next_cid = len(input_idx)
    for lvl in sorted(set(level.values())):
        bucket = [i for i in gate_nodes if level[i] == lvl]

        def signature(idx: int) -> tuple:
            if ops[idx] == "and":
                return (
                    "and",
                    tuple(sorted((cid[child], comp) for child, comp in args[idx])),
                )
            return ops[idx], tuple(sorted(cid[child] for child in args[idx]))

        bucket.sort(key=signature)
        for idx in bucket:
            cid[idx] = next_cid
            next_cid += 1

    # ---- deterministic names -------------------------------------------------
    used = set(circuit.inputs)

    def claim(base: str) -> str:
        name = base
        while name in used:
            name += "_o"
        used.add(name)
        return name

    out_name: Dict[str, str] = {}
    ordered_out: List[Tuple[str, str]] = []  # (canonical name, original net)
    for word in sorted(circuit.output_words):
        for pos, bit in enumerate(circuit.output_words[word]):
            if bit in out_name or circuit.is_input(bit):
                continue
            name = claim(f"{word}{pos}")
            out_name[bit] = name
            ordered_out.append((name, bit))
    for pos, net in enumerate(circuit.outputs):
        if net in out_name or circuit.is_input(net):
            continue
        name = claim(f"o{pos}")
        out_name[net] = name
        ordered_out.append((name, net))

    prefix = "g"
    while any(re.fullmatch(rf"{prefix}\d+(?:_n)*", name) for name in used):
        prefix += "g"

    # An output bit with positive polarity names its driving node directly;
    # further outputs of the same node (and negated/constant bits) get
    # BUF/NOT/CONST wrapper gates.
    claimed: Dict[int, str] = {}
    for name, net in ordered_out:
        idx, comp = out_res[net]
        if comp == 0 and ops[idx] in _GATE_OPS and idx not in claimed:
            claimed[idx] = name

    # ---- emit ---------------------------------------------------------------
    canon = Circuit(circuit.name)
    canon.add_inputs(order)
    for word in sorted(circuit.input_words):
        canon.add_input_word(word, circuit.input_words[word])

    net_of: Dict[int, str] = {idx: order[pos] for pos, idx in enumerate(input_idx)}
    emit_order = sorted(gate_nodes, key=lambda i: cid[i])
    for idx in emit_order:
        net_of[idx] = claimed.get(idx, f"{prefix}{cid[idx]}")
    all_names = used | {net_of[idx] for idx in emit_order}

    inv_of: Dict[int, str] = {}

    def operand(idx: int, comp: int) -> str:
        base = net_of[idx]
        if not comp:
            return base
        name = inv_of.get(idx)
        if name is None:
            name = base + "_n"
            while name in all_names:
                name += "_n"
            all_names.add(name)
            inv_of[idx] = name
            canon.add_gate(name, GateType.NOT, (base,))
        return name

    for idx in emit_order:
        if ops[idx] == "and":
            kids = sorted(args[idx], key=lambda edge: (cid[edge[0]], edge[1]))
            canon.add_gate(
                net_of[idx],
                GateType.AND,
                tuple(operand(child, comp) for child, comp in kids),
            )
        else:
            kids = sorted(args[idx], key=lambda child: cid[child])
            canon.add_gate(
                net_of[idx],
                GateType.OR if ops[idx] == "or" else GateType.XOR,
                tuple(net_of[child] for child in kids),
            )

    for name, net in ordered_out:
        idx, comp = out_res[net]
        if claimed.get(idx) == name:
            continue
        if ops[idx] == "const":
            canon.add_gate(
                name, GateType.CONST1 if comp else GateType.CONST0, ()
            )
        elif comp:
            canon.add_gate(name, GateType.NOT, (net_of[idx],))
        else:
            canon.add_gate(name, GateType.BUF, (net_of[idx],))

    def mapped(net: str) -> str:
        return net if circuit.is_input(net) else out_name[net]

    canon.set_outputs([mapped(net) for net in circuit.outputs])
    for word in sorted(circuit.output_words):
        canon.add_output_word(word, [mapped(bit) for bit in circuit.output_words[word]])
    return canon


def canonicalize(circuit: Circuit) -> Circuit:
    """Canonical structural form of ``circuit`` (deterministic, idempotent).

    The result computes the same function over the same input/output words;
    structural variants — gate-form rewrites, buffer/inverter chains, dead
    logic, gate reordering, and renamed internal nets — all map to the same
    result, hence the same :func:`~repro.jobs.cache.canonical_cache_key`.
    """
    return _rebuild(circuit)
