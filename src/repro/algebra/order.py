"""Monomial (term) orders on multivariate polynomial rings.

A monomial is the sparse tuple ``((var_index, exp), ...)`` sorted by
variable index. Orders rank variables by a *priority list*: position 0 is
the most significant variable. The paper's Abstraction Term Order
(Definition 4.2) and its RATO refinement (Definition 5.1) are lex orders
with specific priority lists (circuit bits by reverse topological level,
then ``Z``, then the input words), so :class:`LexOrder` is the workhorse;
graded orders are provided for the general algebra engine and tests.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

Monomial = Tuple[Tuple[int, int], ...]

__all__ = ["Monomial", "TermOrder", "LexOrder", "GrLexOrder", "GrevLexOrder"]

#: Sentinel rank appended to sort keys so shorter (divisor) monomials
#: compare smaller than their multiples under lex.
_SENTINEL = (1 << 30, 0)


#: Memoized keys are dropped once a cache grows past this many monomials —
#: far beyond any verification workload, so in practice keys persist.
_KEY_CACHE_CAP = 1 << 20


class TermOrder:
    """Base class: a total order on monomials compatible with multiplication."""

    name = "abstract"

    def __init__(self, priority: Sequence[int]):
        #: rank[var_index] -> position in the priority list (0 = most significant)
        self.priority = tuple(priority)
        self.rank: Dict[int, int] = {v: i for i, v in enumerate(priority)}
        if len(self.rank) != len(self.priority):
            raise ValueError("priority list contains duplicate variables")
        self._key_cache: Dict[Monomial, object] = {}

    def sort_key(self, monomial: Monomial):
        """A key such that bigger monomials have *smaller* keys.

        Using inverted keys lets ``min(terms, key=...)`` fetch the leading
        term and ``sorted(...)`` produce descending term order directly.
        Keys are memoized per order instance: reductions compare the same
        monomials thousands of times, so ranking each one once matters.
        """
        cache = self._key_cache
        key = cache.get(monomial)
        if key is None:
            key = self._compute_key(monomial)
            if len(cache) >= _KEY_CACHE_CAP:
                cache.clear()
            cache[monomial] = key
        return key

    def _compute_key(self, monomial: Monomial):
        raise NotImplementedError

    def compare(self, a: Monomial, b: Monomial) -> int:
        """-1 if a < b, 0 if equal, +1 if a > b."""
        if a == b:
            return 0
        return 1 if self.sort_key(a) < self.sort_key(b) else -1

    def greater(self, a: Monomial, b: Monomial) -> bool:
        return self.compare(a, b) > 0

    def _ranked(self, monomial: Monomial) -> Tuple[Tuple[int, int], ...]:
        """Monomial re-keyed by rank, most significant variable first."""
        items = []
        for var, exp in monomial:
            if var not in self.rank:
                raise KeyError(f"variable index {var} is not ranked by this order")
            items.append((self.rank[var], exp))
        items.sort()
        return tuple(items)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(vars={len(self.priority)})"


class LexOrder(TermOrder):
    """Pure lexicographic order — the elimination order of Theorem 4.1."""

    name = "lex"

    def _compute_key(self, monomial: Monomial):
        key = [(rank, -exp) for rank, exp in self._ranked(monomial)]
        key.append(_SENTINEL)
        return tuple(key)


class GrLexOrder(TermOrder):
    """Graded lexicographic: total degree first, lex tie-break."""

    name = "grlex"

    def _compute_key(self, monomial: Monomial):
        total = sum(exp for _, exp in monomial)
        key = [(rank, -exp) for rank, exp in self._ranked(monomial)]
        key.append(_SENTINEL)
        return (-total, tuple(key))


class GrevLexOrder(TermOrder):
    """Graded reverse lexicographic: total degree first, then the monomial
    with the *smaller* exponent on the least significant differing variable
    wins."""

    name = "grevlex"

    def _compute_key(self, monomial: Monomial):
        total = sum(exp for _, exp in monomial)
        # Reverse-lex tie-break: scanning from the least significant
        # variable, a larger exponent makes the monomial *smaller*. A dense
        # exponent tuple (least significant variable first) compares exactly
        # that way; graded orders are only used on small rings, so the
        # O(#vars) key is acceptable.
        dense = [0] * len(self.priority)
        for rank, exp in self._ranked(monomial):
            dense[rank] = exp
        return (-total, tuple(reversed(dense)))
