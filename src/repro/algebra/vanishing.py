"""The vanishing ideal J_0 of Theorem 3.2 (Strong Nullstellensatz over F_q).

Over ``F_q``, ``x^q - x`` vanishes at every point, and for bit-level
variables restricted to F2, ``x^2 - x`` vanishes on all consistent circuit
assignments. ``J_0 = <x_i^{q_i} - x_i>`` is exactly what upgrades the
circuit ideal ``J`` to the full vanishing ideal ``I(V(J)) = J + J_0``
(Theorem 3.2), which is why every Gröbner-basis computation in this library
works with ``J + J_0``.

The ring already folds exponents during arithmetic (sound reduction modulo
J_0), so the explicit generators here are needed for faithful textbook
computations, membership certificates, and tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..obs import metrics
from .ring import Polynomial, PolynomialRing

__all__ = ["vanishing_polynomial", "vanishing_ideal", "is_vanishing"]


def vanishing_polynomial(ring: PolynomialRing, name: str) -> Polynomial:
    """``x^q - x`` for variable ``name`` with its domain size ``q``.

    Built in *unfolded* form: the ring's automatic exponent folding would
    otherwise collapse ``x^q`` to ``x`` and the generator to zero.
    """
    index = ring.index[name]
    q = ring.domains[index]
    return Polynomial(ring, {((index, q),): 1, ((index, 1),): 1})


def vanishing_ideal(
    ring: PolynomialRing, names: Optional[Sequence[str]] = None
) -> List[Polynomial]:
    """Generators of J_0 for the given variables (default: all of them).

    Note: because the ring folds exponents automatically, ``ring.var(name,
    q)`` already collapses to ``ring.var(name)`` and the generator would be
    zero. The generators are therefore built in *unfolded* form directly.
    """
    names = list(names) if names is not None else list(ring.variables)
    generators = [vanishing_polynomial(ring, name) for name in names]
    if generators:
        metrics.counter_add(metrics.VANISHING_GENERATORS, len(generators))
    return generators


def is_vanishing(poly: Polynomial, sample_limit: int = 4096) -> bool:
    """Check whether ``poly`` vanishes on every point of its domain product.

    Exhausts the domain when small enough, otherwise raises — callers
    should use the algebraic normal form instead for large domains.
    """
    used = poly.variables_used()
    total = 1
    for name in used:
        total *= poly.ring.domains[poly.ring.index[name]]
        if total > sample_limit:
            raise ValueError(
                f"domain product exceeds {sample_limit} points; use algebraic checks"
            )
    assignment = {}

    def rec(position: int) -> bool:
        if position == len(used):
            return poly.evaluate(assignment) == 0
        name = used[position]
        for value in range(poly.ring.domains[poly.ring.index[name]]):
            assignment[name] = value
            if not rec(position + 1):
                return False
        return True

    return rec(0)
