"""Polynomial rings over F_{2^k} with per-variable domain sizes.

The verification setting mixes two kinds of indeterminates in one ring
``R = F_{2^k}[x_1, ..., x_d, Z, A, ...]``:

- *bit-level* variables (circuit nets) that only take values in F2, so
  ``x^2 - x`` vanishes on every point of interest;
- *word-level* variables ranging over the whole field, where ``X^q - X``
  vanishes (``q = 2^k``).

Each ring variable therefore carries a ``domain`` (2 or q). The ring folds
exponents ``x^e -> x^((e-1) mod (domain-1) + 1)`` during arithmetic — sound
reduction modulo the vanishing ideal ``J_0`` of Theorem 3.2 — which keeps
every polynomial in the canonical-degree form of Definition 3.1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..gf import GF2m
from .order import LexOrder, Monomial, TermOrder

__all__ = ["PolynomialRing", "Polynomial"]


class PolynomialRing:
    """``F_{2^k}[variables]`` with a term order and per-variable domains."""

    def __init__(
        self,
        field: GF2m,
        variables: Sequence[str],
        order: Optional[TermOrder] = None,
        domains: Optional[Dict[str, int]] = None,
        fold: bool = True,
    ):
        #: When True, arithmetic folds exponents modulo ``x^domain - x``
        #: (the quotient by J_0) — ideal for canonical word-level forms.
        #: Gröbner-basis computations require ``fold=False``: Buchberger's
        #: criterion is only valid in the free polynomial ring, where J_0 is
        #: carried as explicit generators instead.
        self.fold = fold
        self.field = field
        self.variables: List[str] = list(variables)
        if len(set(self.variables)) != len(self.variables):
            raise ValueError("duplicate variable names")
        self.index: Dict[str, int] = {v: i for i, v in enumerate(self.variables)}
        self.order = order or LexOrder(range(len(self.variables)))
        if len(self.order.priority) != len(self.variables):
            raise ValueError("term order ranks a different number of variables")
        domains = domains or {}
        self.domains: List[int] = []
        for name in self.variables:
            domain = domains.get(name, field.order)
            if domain < 2:
                raise ValueError(f"variable {name!r} has domain {domain} < 2")
            self.domains.append(domain)

    # -- element constructors ----------------------------------------------------

    def zero(self) -> "Polynomial":
        return Polynomial(self, {})

    def one(self) -> "Polynomial":
        return self.constant(1)

    def constant(self, coeff: int) -> "Polynomial":
        coeff = self.field.reduce(coeff)
        return Polynomial(self, {(): coeff} if coeff else {})

    def var(self, name: str, exp: int = 1) -> "Polynomial":
        if name not in self.index:
            raise KeyError(f"{name!r} is not a variable of this ring")
        if exp < 0:
            raise ValueError("negative exponents are not supported")
        if exp == 0:
            return self.one()
        index = self.index[name]
        exp = self.fold_exponent(index, exp)
        return Polynomial(self, {((index, exp),): 1})

    def from_terms(
        self, terms: Iterable[Tuple[int, Dict[str, int]]]
    ) -> "Polynomial":
        """Build from ``(coeff, {var_name: exp})`` pairs (pairs may repeat)."""
        data: Dict[Monomial, int] = {}
        for coeff, powers in terms:
            coeff = self.field.reduce(coeff)
            monomial = self.make_monomial(
                (self.index[v], e) for v, e in powers.items()
            )
            merged = data.get(monomial, 0) ^ coeff
            if merged:
                data[monomial] = merged
            else:
                data.pop(monomial, None)
        return Polynomial(self, data)

    # -- monomial helpers ---------------------------------------------------------

    def fold_exponent(self, var_index: int, exp: int) -> int:
        """Reduce ``x^exp`` to canonical degree modulo ``x^domain - x``.

        No-op when the ring was built with ``fold=False``.
        """
        if not self.fold:
            return exp
        domain = self.domains[var_index]
        if exp < domain:
            return exp
        return (exp - 1) % (domain - 1) + 1

    def make_monomial(self, items: Iterable[Tuple[int, int]]) -> Monomial:
        """Canonical monomial from (var_index, exp) pairs; merges repeats."""
        merged: Dict[int, int] = {}
        for var, exp in items:
            if exp:
                merged[var] = merged.get(var, 0) + exp
        return tuple(
            sorted((v, self.fold_exponent(v, e)) for v, e in merged.items() if e)
        )

    def monomial_mul(self, a: Monomial, b: Monomial) -> Monomial:
        # Two-pointer merge of the sorted factor tuples: no dict, no sort.
        if not a:
            return b
        if not b:
            return a
        out = []
        i = j = 0
        la, lb = len(a), len(b)
        while i < la and j < lb:
            va, ea = a[i]
            vb, eb = b[j]
            if va < vb:
                out.append(a[i])
                i += 1
            elif vb < va:
                out.append(b[j])
                j += 1
            else:
                exp = self.fold_exponent(va, ea + eb)
                if exp:
                    out.append((va, exp))
                i += 1
                j += 1
        out.extend(a[i:])
        out.extend(b[j:])
        return tuple(out)

    def monomial_divides(self, a: Monomial, b: Monomial) -> bool:
        """True when monomial ``a`` divides ``b`` (allocation-free scan)."""
        j = 0
        lb = len(b)
        for var, exp in a:
            while j < lb and b[j][0] < var:
                j += 1
            if j == lb or b[j][0] != var or b[j][1] < exp:
                return False
            j += 1
        return True

    def monomial_div(self, a: Monomial, b: Monomial) -> Monomial:
        """``a / b``; raises if ``b`` does not divide ``a``."""
        out = []
        j = 0
        lb = len(b)
        for var, exp in a:
            if j < lb and b[j][0] == var:
                exp -= b[j][1]
                j += 1
                if exp < 0:
                    raise ValueError("monomial division is not exact")
            if exp:
                out.append((var, exp))
        if j != lb:
            raise ValueError("monomial division is not exact")
        return tuple(out)

    def monomial_lcm(self, a: Monomial, b: Monomial) -> Monomial:
        out = []
        i = j = 0
        la, lb = len(a), len(b)
        while i < la and j < lb:
            va, ea = a[i]
            vb, eb = b[j]
            if va < vb:
                out.append(a[i])
                i += 1
            elif vb < va:
                out.append(b[j])
                j += 1
            else:
                out.append((va, ea if ea >= eb else eb))
                i += 1
                j += 1
        out.extend(a[i:])
        out.extend(b[j:])
        return tuple(out)

    def monomial_str(self, monomial: Monomial) -> str:
        if not monomial:
            return "1"
        parts = []
        for var, exp in sorted(monomial, key=lambda it: self.order.rank.get(it[0], it[0])):
            name = self.variables[var]
            parts.append(name if exp == 1 else f"{name}^{exp}")
        return "*".join(parts)

    # -- ring relations --------------------------------------------------------------

    def with_order(self, order: TermOrder) -> "PolynomialRing":
        """Same ring, different term order."""
        ring = PolynomialRing.__new__(PolynomialRing)
        ring.field = self.field
        ring.variables = self.variables
        ring.index = self.index
        ring.domains = self.domains
        ring.order = order
        ring.fold = self.fold
        return ring

    def coefficient_str(self, coeff: int) -> str:
        from ..gf import poly2

        if coeff == 1:
            return "1"
        text = poly2.to_string(coeff, var="a")
        return f"({text})" if "+" in text else text

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PolynomialRing)
            and self.field == other.field
            and self.variables == other.variables
            and self.domains == other.domains
            and self.fold == other.fold
        )

    def __hash__(self) -> int:
        return hash(
            (self.field, tuple(self.variables), tuple(self.domains), self.fold)
        )

    def __repr__(self) -> str:
        shown = ", ".join(self.variables[:6]) + ("..." if len(self.variables) > 6 else "")
        return f"PolynomialRing(F_2^{self.field.k}, [{shown}], {self.order.name})"


class Polynomial:
    """Immutable multivariate polynomial over the ring's field.

    Stored sparsely as ``{monomial: coefficient}`` with nonzero coefficients
    (field residues as ints). Addition of coefficients is XOR
    (characteristic 2); multiplication delegates to the field.
    """

    __slots__ = ("ring", "terms", "_lead")

    def __init__(self, ring: PolynomialRing, terms: Dict[Monomial, int]):
        self.ring = ring
        self.terms = terms
        self._lead: Optional[Tuple[Monomial, int]] = None

    # -- inspection -------------------------------------------------------------

    def is_zero(self) -> bool:
        return not self.terms

    def __bool__(self) -> bool:
        return bool(self.terms)

    def __len__(self) -> int:
        return len(self.terms)

    def lead(self) -> Tuple[Monomial, int]:
        """(leading monomial, leading coefficient) under the ring's order."""
        if not self.terms:
            raise ValueError("the zero polynomial has no leading term")
        if self._lead is None:
            order = self.ring.order
            lm = min(self.terms, key=order.sort_key)
            self._lead = (lm, self.terms[lm])
        return self._lead

    def leading_monomial(self) -> Monomial:
        return self.lead()[0]

    def leading_coefficient(self) -> int:
        return self.lead()[1]

    def tail(self) -> "Polynomial":
        lm, _ = self.lead()
        rest = dict(self.terms)
        del rest[lm]
        return Polynomial(self.ring, rest)

    def total_degree(self) -> int:
        if not self.terms:
            return -1
        return max(sum(e for _, e in m) for m in self.terms)

    def degree_in(self, name: str) -> int:
        index = self.ring.index[name]
        best = 0
        for monomial in self.terms:
            for var, exp in monomial:
                if var == index:
                    best = max(best, exp)
        return best

    def variables_used(self) -> List[str]:
        seen = set()
        for monomial in self.terms:
            for var, _ in monomial:
                seen.add(var)
        return [self.ring.variables[v] for v in sorted(seen)]

    def coefficient(self, powers: Dict[str, int]) -> int:
        monomial = self.ring.make_monomial(
            (self.ring.index[v], e) for v, e in powers.items()
        )
        return self.terms.get(monomial, 0)

    # -- arithmetic --------------------------------------------------------------

    def _coerce(self, other: Union["Polynomial", int]) -> "Polynomial":
        if isinstance(other, Polynomial):
            if other.ring.field != self.ring.field or other.ring.variables != self.ring.variables:
                raise ValueError("polynomials live in different rings")
            return other
        if isinstance(other, int):
            return self.ring.constant(other)
        raise TypeError(f"cannot combine Polynomial with {type(other).__name__}")

    def __add__(self, other: Union["Polynomial", int]) -> "Polynomial":
        other = self._coerce(other)
        big, small = (self.terms, other.terms)
        if len(big) < len(small):
            big, small = small, big
        result = dict(big)
        for monomial, coeff in small.items():
            merged = result.get(monomial, 0) ^ coeff
            if merged:
                result[monomial] = merged
            else:
                del result[monomial]
        return Polynomial(self.ring, result)

    __radd__ = __add__
    __sub__ = __add__  # characteristic 2
    __rsub__ = __add__

    def __mul__(self, other: Union["Polynomial", int]) -> "Polynomial":
        other = self._coerce(other)
        if not self.terms or not other.terms:
            return self.ring.zero()
        field = self.ring.field
        ring = self.ring
        result: Dict[Monomial, int] = {}
        # Iterate the smaller factor on the outside.
        a_terms, b_terms = self.terms, other.terms
        if len(a_terms) > len(b_terms):
            a_terms, b_terms = b_terms, a_terms
        for ma, ca in a_terms.items():
            for mb, cb in b_terms.items():
                coeff = field.mul(ca, cb)
                if not coeff:
                    continue
                monomial = ring.monomial_mul(ma, mb)
                merged = result.get(monomial, 0) ^ coeff
                if merged:
                    result[monomial] = merged
                else:
                    del result[monomial]
        return Polynomial(self.ring, result)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "Polynomial":
        if exponent < 0:
            raise ValueError("negative exponents are not supported")
        result = self.ring.one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            exponent >>= 1
            if exponent:
                base = base * base
        return result

    def scale(self, coeff: int) -> "Polynomial":
        field = self.ring.field
        coeff = field.reduce(coeff)
        if coeff == 0:
            return self.ring.zero()
        if coeff == 1:
            return self
        return Polynomial(
            self.ring,
            {m: field.mul(c, coeff) for m, c in self.terms.items()},
        )

    def monic(self) -> "Polynomial":
        """Divide by the leading coefficient."""
        lc = self.leading_coefficient()
        if lc == 1:
            return self
        return self.scale(self.ring.field.inv(lc))

    def mul_monomial(self, monomial: Monomial, coeff: int = 1) -> "Polynomial":
        field = self.ring.field
        ring = self.ring
        result: Dict[Monomial, int] = {}
        for m, c in self.terms.items():
            cc = field.mul(c, coeff) if coeff != 1 else c
            if not cc:
                continue
            key = ring.monomial_mul(m, monomial)
            merged = result.get(key, 0) ^ cc
            if merged:
                result[key] = merged
            else:
                del result[key]
        return Polynomial(self.ring, result)

    # -- evaluation ----------------------------------------------------------------

    def evaluate(self, assignment: Dict[str, int]) -> int:
        """Evaluate at a point; every used variable must be assigned."""
        field = self.ring.field
        variables = self.ring.variables
        # The same (variable, exponent) power recurs across many monomials;
        # compute each once per call.
        power_cache: Dict[Tuple[int, int], int] = {}
        total = 0
        for monomial, coeff in self.terms.items():
            value = coeff
            for var, exp in monomial:
                power = power_cache.get((var, exp))
                if power is None:
                    name = variables[var]
                    if name not in assignment:
                        raise KeyError(f"no value for variable {name!r}")
                    power = field.pow(assignment[name], exp)
                    power_cache[(var, exp)] = power
                value = field.mul(value, power)
                if not value:
                    break
            total ^= value
        return total

    def substitute(self, name: str, replacement: "Polynomial") -> "Polynomial":
        """Replace every occurrence of a variable by a polynomial."""
        index = self.ring.index[name]
        untouched: Dict[Monomial, int] = {}
        result = self.ring.zero()
        # Group terms by the exponent of the substituted variable so each
        # replacement power is computed once.
        by_exp: Dict[int, Dict[Monomial, int]] = {}
        for monomial, coeff in self.terms.items():
            exp = 0
            rest = []
            for var, e in monomial:
                if var == index:
                    exp = e
                else:
                    rest.append((var, e))
            if exp == 0:
                untouched[monomial] = coeff
            else:
                by_exp.setdefault(exp, {})[tuple(rest)] = coeff
        result = result + Polynomial(self.ring, untouched)
        # Walk exponents in ascending order so each replacement power is an
        # incremental product over the previous one, not a fresh ``** exp``.
        power = None
        prev = 0
        for exp in sorted(by_exp):
            power = power * (replacement ** (exp - prev)) if prev else replacement ** exp
            prev = exp
            result = result + power * Polynomial(self.ring, by_exp[exp])
        return result

    # -- comparison / output ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.terms == self.ring.constant(other).terms
        if isinstance(other, Polynomial):
            return (
                self.ring.field == other.ring.field
                and self.ring.variables == other.ring.variables
                and self.terms == other.terms
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self.terms.items()))

    def sorted_terms(self) -> List[Tuple[Monomial, int]]:
        order = self.ring.order
        return sorted(self.terms.items(), key=lambda item: order.sort_key(item[0]))

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for monomial, coeff in self.sorted_terms():
            cs = self.ring.coefficient_str(coeff)
            ms = self.ring.monomial_str(monomial)
            if ms == "1":
                parts.append(cs)
            elif cs == "1":
                parts.append(ms)
            else:
                parts.append(f"{cs}*{ms}")
        return " + ".join(parts)

    def __repr__(self) -> str:
        return f"Polynomial({self})"
