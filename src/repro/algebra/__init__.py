"""Computer algebra over F_{2^k}: rings, term orders, division, Gröbner bases."""

from .buchberger import (
    GroebnerStats,
    buchberger,
    interreduce,
    is_groebner_basis,
    leading_monomials_coprime,
    reduced_groebner_basis,
    s_polynomial,
)
from .division import (
    DivisionTrace,
    DivisorIndex,
    divmod_polynomial,
    reduce_polynomial,
    reference_reduce_polynomial,
)
from .order import GrevLexOrder, GrLexOrder, LexOrder, Monomial, TermOrder
from .parse import PolynomialSyntaxError, parse_polynomial
from .ring import Polynomial, PolynomialRing
from .vanishing import is_vanishing, vanishing_ideal, vanishing_polynomial

__all__ = [
    "Monomial",
    "TermOrder",
    "LexOrder",
    "GrLexOrder",
    "GrevLexOrder",
    "PolynomialRing",
    "Polynomial",
    "reduce_polynomial",
    "reference_reduce_polynomial",
    "divmod_polynomial",
    "DivisionTrace",
    "DivisorIndex",
    "s_polynomial",
    "leading_monomials_coprime",
    "buchberger",
    "interreduce",
    "reduced_groebner_basis",
    "is_groebner_basis",
    "GroebnerStats",
    "vanishing_polynomial",
    "vanishing_ideal",
    "is_vanishing",
    "parse_polynomial",
    "PolynomialSyntaxError",
]
