"""Multivariate polynomial division (reduction) over F_{2^k}.

``reduce_polynomial(f, G)`` computes a remainder ``r`` of ``f`` modulo the
set ``G`` — written ``f ->_G+ r`` in the paper — such that no term of ``r``
is divisible by any leading term of ``G``. This is the workhorse of both
Buchberger's algorithm and the paper's guided S-polynomial reduction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import metrics
from .order import Monomial
from .ring import Polynomial, PolynomialRing

__all__ = ["reduce_polynomial", "divmod_polynomial", "DivisionTrace"]


class DivisionTrace:
    """Statistics from one reduction — exposed for benchmarking."""

    __slots__ = ("steps", "peak_terms")

    def __init__(self) -> None:
        self.steps = 0
        self.peak_terms = 0

    def observe(self, num_terms: int) -> None:
        self.steps += 1
        if num_terms > self.peak_terms:
            self.peak_terms = num_terms


def _find_reducer(
    ring: PolynomialRing,
    monomial: Monomial,
    divisors: Sequence[Polynomial],
    leads: Sequence[Tuple[Monomial, int]],
) -> Optional[int]:
    for i, (lm, _) in enumerate(leads):
        if ring.monomial_divides(lm, monomial):
            return i
    return None


def reduce_polynomial(
    f: Polynomial,
    divisors: Sequence[Polynomial],
    trace: Optional[DivisionTrace] = None,
) -> Polynomial:
    """Fully reduce ``f`` modulo ``divisors``: no remainder term is divisible
    by any divisor's leading monomial.

    Works greatest-term-first: repeatedly pick the largest not-yet-settled
    term; if some ``g`` whose leading monomial divides it exists, subtract
    the appropriate multiple of ``g``, else move the term to the remainder.
    Terminates because the term order is a well-order.
    """
    ring = f.ring
    field = ring.field
    order = ring.order
    divisors = [g for g in divisors if not g.is_zero()]
    leads = [g.lead() for g in divisors]
    work: Dict[Monomial, int] = dict(f.terms)
    remainder: Dict[Monomial, int] = {}
    steps = 0
    peak_terms = 0
    while work:
        monomial = min(work, key=order.sort_key)  # the current leading term
        coeff = work.pop(monomial)
        index = _find_reducer(ring, monomial, divisors, leads)
        steps += 1
        size = len(work) + len(remainder)
        if size > peak_terms:
            peak_terms = size
        if trace is not None:
            trace.observe(size)
        if index is None:
            remainder[monomial] = coeff
            continue
        g = divisors[index]
        lm, lc = leads[index]
        factor_monomial = ring.monomial_div(monomial, lm)
        factor_coeff = field.div(coeff, lc)
        # work -= (coeff/lc) * (monomial/lm) * g ; the leading terms cancel
        # by construction, so iterate only over the tail of g.
        for m, c in g.terms.items():
            if m == lm:
                continue
            key = ring.monomial_mul(m, factor_monomial)
            cc = field.mul(c, factor_coeff)
            merged = work.get(key, 0) ^ cc
            if merged:
                work[key] = merged
            else:
                del work[key]
    if metrics.is_enabled():
        metrics.counter_add(metrics.DIVISION_CALLS, 1)
        metrics.counter_add(metrics.DIVISION_STEPS, steps)
        metrics.gauge_max(metrics.DIVISION_PEAK_TERMS, peak_terms)
    return Polynomial(ring, remainder)


def divmod_polynomial(
    f: Polynomial, divisors: Sequence[Polynomial]
) -> Tuple[List[Polynomial], Polynomial]:
    """Division with quotients: ``f = sum(q_i * g_i) + r``.

    Same strategy as :func:`reduce_polynomial` but records the quotients,
    giving the ideal-membership certificate used by the Lv-style baseline.
    """
    ring = f.ring
    field = ring.field
    order = ring.order
    active = [(i, g) for i, g in enumerate(divisors) if not g.is_zero()]
    leads = [g.lead() for _, g in active]
    quotients: List[Dict[Monomial, int]] = [dict() for _ in divisors]
    work: Dict[Monomial, int] = dict(f.terms)
    remainder: Dict[Monomial, int] = {}
    steps = 0
    while work:
        monomial = min(work, key=order.sort_key)
        coeff = work.pop(monomial)
        steps += 1
        hit = None
        for slot, (orig_index, g) in enumerate(active):
            lm, _ = leads[slot]
            if ring.monomial_divides(lm, monomial):
                hit = (slot, orig_index, g)
                break
        if hit is None:
            remainder[monomial] = coeff
            continue
        slot, orig_index, g = hit
        lm, lc = leads[slot]
        factor_monomial = ring.monomial_div(monomial, lm)
        factor_coeff = field.div(coeff, lc)
        q = quotients[orig_index]
        q[factor_monomial] = q.get(factor_monomial, 0) ^ factor_coeff
        for m, c in g.terms.items():
            if m == lm:
                continue
            key = ring.monomial_mul(m, factor_monomial)
            cc = field.mul(c, factor_coeff)
            merged = work.get(key, 0) ^ cc
            if merged:
                work[key] = merged
            else:
                del work[key]
    if metrics.is_enabled():
        metrics.counter_add(metrics.DIVISION_CALLS, 1)
        metrics.counter_add(metrics.DIVISION_STEPS, steps)
    return (
        [Polynomial(ring, {m: c for m, c in q.items() if c}) for q in quotients],
        Polynomial(ring, remainder),
    )
