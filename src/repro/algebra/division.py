"""Multivariate polynomial division (reduction) over F_{2^k}.

``reduce_polynomial(f, G)`` computes a remainder ``r`` of ``f`` modulo the
set ``G`` — written ``f ->_G+ r`` in the paper — such that no term of ``r``
is divisible by any leading term of ``G``. This is the workhorse of both
Buchberger's algorithm and the paper's guided S-polynomial reduction.

Two implementations live here:

- the default, heap-based reducer: the work set is a dict shadowed by a
  lazy-deletion min-heap of precomputed sort keys, so fetching the next
  leading term is O(log T) instead of the O(T) ``min()`` scan — and divisor
  lookup goes through :class:`DivisorIndex`, which buckets divisors by the
  most significant variable of their leading monomial;
- :func:`reference_reduce_polynomial`, the original scan-based reducer,
  retained verbatim as the correctness oracle for the differential tests.

Both flush identical ``DIVISION_*`` metrics: they process the exact same
sequence of leading monomials, so step counts and peak sizes agree.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import metrics, redtrace
from .order import Monomial
from .ring import Polynomial, PolynomialRing

__all__ = [
    "reduce_polynomial",
    "divmod_polynomial",
    "DivisionTrace",
    "DivisorIndex",
    "reference_reduce_polynomial",
]


class DivisionTrace:
    """Statistics from one reduction — exposed for benchmarking."""

    __slots__ = ("steps", "peak_terms")

    def __init__(self) -> None:
        self.steps = 0
        self.peak_terms = 0

    def observe(self, num_terms: int) -> None:
        self.steps += 1
        if num_terms > self.peak_terms:
            self.peak_terms = num_terms


class DivisorIndex:
    """Leading-term index over a divisor set.

    Divisors are bucketed by the *most significant variable* (smallest rank
    under the ring's order) of their leading monomial. A monomial ``m`` can
    only be divisible by leading terms whose variables all occur in ``m``,
    so a probe scans just the buckets of ``m``'s own variables instead of
    every generator. Constant leading terms (monomial ``()``) divide
    everything and live in their own always-probed list.

    Matches are resolved to the **lowest original index**, preserving the
    first-matching-divisor semantics of the scan-based reducer. ``add``
    supports incremental growth (Buchberger appends basis elements).
    """

    __slots__ = ("ring", "divisors", "leads", "buckets", "constants")

    def __init__(self, ring: PolynomialRing, divisors: Sequence[Polynomial] = ()):
        self.ring = ring
        self.divisors: List[Polynomial] = []
        self.leads: List[Tuple[Monomial, int]] = []
        #: var_index -> list of divisor slots whose leading monomial's most
        #: significant variable is var_index (slots appear in insertion order)
        self.buckets: Dict[int, List[int]] = {}
        #: slots whose leading monomial is the constant 1
        self.constants: List[int] = []
        for g in divisors:
            self.add(g)

    def __len__(self) -> int:
        return len(self.divisors)

    def add(self, g: Polynomial) -> None:
        """Register a nonzero divisor (zero divisors are skipped)."""
        if g.is_zero():
            return
        slot = len(self.divisors)
        lead = g.lead()
        self.divisors.append(g)
        self.leads.append(lead)
        lm = lead[0]
        if not lm:
            self.constants.append(slot)
            return
        rank = self.ring.order.rank
        msv = min((v for v, _ in lm), key=lambda v: rank.get(v, v))
        self.buckets.setdefault(msv, []).append(slot)

    def find(self, monomial: Monomial) -> Optional[int]:
        """Slot of the first divisor whose leading monomial divides ``monomial``."""
        best: Optional[int] = None
        if self.constants:
            best = self.constants[0]
        divides = self.ring.monomial_divides
        leads = self.leads
        buckets = self.buckets
        for var, _ in monomial:
            bucket = buckets.get(var)
            if bucket is None:
                continue
            for slot in bucket:
                if best is not None and slot >= best:
                    break
                if divides(leads[slot][0], monomial):
                    best = slot
                    break
        return best


def _find_reducer(
    ring: PolynomialRing,
    monomial: Monomial,
    leads: Sequence[Tuple[Monomial, int]],
) -> Optional[int]:
    for i, (lm, _) in enumerate(leads):
        if ring.monomial_divides(lm, monomial):
            return i
    return None


def reduce_polynomial(
    f: Polynomial,
    divisors: Sequence[Polynomial],
    trace: Optional[DivisionTrace] = None,
    index: Optional[DivisorIndex] = None,
) -> Polynomial:
    """Fully reduce ``f`` modulo ``divisors``: no remainder term is divisible
    by any divisor's leading monomial.

    Works greatest-term-first: repeatedly pick the largest not-yet-settled
    term; if some ``g`` whose leading monomial divides it exists, subtract
    the appropriate multiple of ``g``, else move the term to the remainder.
    Terminates because the term order is a well-order.

    The work set is a dict shadowed by a lazy-deletion heap: cancelled terms
    stay in the heap and are discarded on pop (``work.pop`` misses). This is
    sound because every monomial a reduction step introduces is strictly
    smaller than the leading monomial it cancels, so a monomial popped live
    can never be re-introduced later.

    Pass a prebuilt :class:`DivisorIndex` via ``index`` to reuse it across
    many reductions (Buchberger does); otherwise one is built here.
    """
    ring = f.ring
    field = ring.field
    sort_key = ring.order.sort_key
    if index is None:
        index = DivisorIndex(ring, divisors)
    divisor_list = index.divisors
    leads = index.leads
    find = index.find
    monomial_div = ring.monomial_div
    monomial_mul = ring.monomial_mul
    work: Dict[Monomial, int] = dict(f.terms)
    heap = [(sort_key(m), m) for m in work]
    heapify(heap)
    remainder: Dict[Monomial, int] = {}
    steps = 0
    peak_terms = 0
    # REDTRACE hook, hoisted once per call: the disabled cost inside this
    # innermost loop must stay a single None test.
    rtw = redtrace.active_writer()
    while heap:
        monomial = heappop(heap)[1]
        coeff = work.pop(monomial, None)
        if coeff is None:
            continue  # stale heap entry: the term cancelled earlier
        slot = find(monomial)
        if rtw is not None and slot is not None:
            rtw.emit("divisor_hit", slot=slot, m=monomial)
        steps += 1
        size = len(work) + len(remainder)
        if size > peak_terms:
            peak_terms = size
        if trace is not None:
            trace.observe(size)
        if slot is None:
            remainder[monomial] = coeff
            continue
        g = divisor_list[slot]
        lm, lc = leads[slot]
        factor_monomial = monomial_div(monomial, lm)
        factor_coeff = field.div(coeff, lc)
        # work -= (coeff/lc) * (monomial/lm) * g ; the leading terms cancel
        # by construction, so iterate only over the tail of g.
        for m, c in g.terms.items():
            if m == lm:
                continue
            key = monomial_mul(m, factor_monomial)
            cc = field.mul(c, factor_coeff)
            cur = work.get(key)
            if cur is None:
                work[key] = cc
                heappush(heap, (sort_key(key), key))
            else:
                merged = cur ^ cc
                if merged:
                    work[key] = merged  # heap entry already present
                else:
                    del work[key]  # its heap entry goes stale
    if metrics.is_enabled():
        metrics.counter_add(metrics.DIVISION_CALLS, 1)
        metrics.counter_add(metrics.DIVISION_STEPS, steps)
        metrics.gauge_max(metrics.DIVISION_PEAK_TERMS, peak_terms)
    return Polynomial(ring, remainder)


def reference_reduce_polynomial(
    f: Polynomial,
    divisors: Sequence[Polynomial],
    trace: Optional[DivisionTrace] = None,
) -> Polynomial:
    """The original O(T) scan-per-step reducer, kept as correctness oracle.

    Differential tests assert it agrees bit-for-bit (remainder, trace steps,
    trace peak) with the heap-based :func:`reduce_polynomial`.
    """
    ring = f.ring
    field = ring.field
    order = ring.order
    divisors = [g for g in divisors if not g.is_zero()]
    leads = [g.lead() for g in divisors]
    work: Dict[Monomial, int] = dict(f.terms)
    remainder: Dict[Monomial, int] = {}
    steps = 0
    peak_terms = 0
    rtw = redtrace.active_writer()
    while work:
        monomial = min(work, key=order.sort_key)  # the current leading term
        coeff = work.pop(monomial)
        index = _find_reducer(ring, monomial, leads)
        if rtw is not None and index is not None:
            rtw.emit("divisor_hit", slot=index, m=monomial)
        steps += 1
        size = len(work) + len(remainder)
        if size > peak_terms:
            peak_terms = size
        if trace is not None:
            trace.observe(size)
        if index is None:
            remainder[monomial] = coeff
            continue
        g = divisors[index]
        lm, lc = leads[index]
        factor_monomial = ring.monomial_div(monomial, lm)
        factor_coeff = field.div(coeff, lc)
        for m, c in g.terms.items():
            if m == lm:
                continue
            key = ring.monomial_mul(m, factor_monomial)
            cc = field.mul(c, factor_coeff)
            merged = work.get(key, 0) ^ cc
            if merged:
                work[key] = merged
            else:
                del work[key]
    if metrics.is_enabled():
        metrics.counter_add(metrics.DIVISION_CALLS, 1)
        metrics.counter_add(metrics.DIVISION_STEPS, steps)
        metrics.gauge_max(metrics.DIVISION_PEAK_TERMS, peak_terms)
    return Polynomial(ring, remainder)


def divmod_polynomial(
    f: Polynomial, divisors: Sequence[Polynomial]
) -> Tuple[List[Polynomial], Polynomial]:
    """Division with quotients: ``f = sum(q_i * g_i) + r``.

    Same heap strategy as :func:`reduce_polynomial` but records the
    quotients, giving the ideal-membership certificate used by the Lv-style
    baseline. Quotient slots line up with the *input* divisor sequence
    (zero divisors get zero quotients).
    """
    ring = f.ring
    field = ring.field
    sort_key = ring.order.sort_key
    index = DivisorIndex(ring)
    origin: List[int] = []  # index slot -> position in the input sequence
    for i, g in enumerate(divisors):
        if not g.is_zero():
            index.add(g)
            origin.append(i)
    divisor_list = index.divisors
    leads = index.leads
    find = index.find
    quotients: List[Dict[Monomial, int]] = [dict() for _ in divisors]
    work: Dict[Monomial, int] = dict(f.terms)
    heap = [(sort_key(m), m) for m in work]
    heapify(heap)
    remainder: Dict[Monomial, int] = {}
    steps = 0
    while heap:
        monomial = heappop(heap)[1]
        coeff = work.pop(monomial, None)
        if coeff is None:
            continue
        steps += 1
        slot = find(monomial)
        if slot is None:
            remainder[monomial] = coeff
            continue
        g = divisor_list[slot]
        lm, lc = leads[slot]
        factor_monomial = ring.monomial_div(monomial, lm)
        factor_coeff = field.div(coeff, lc)
        q = quotients[origin[slot]]
        q[factor_monomial] = q.get(factor_monomial, 0) ^ factor_coeff
        for m, c in g.terms.items():
            if m == lm:
                continue
            key = ring.monomial_mul(m, factor_monomial)
            cc = field.mul(c, factor_coeff)
            cur = work.get(key)
            if cur is None:
                work[key] = cc
                heappush(heap, (sort_key(key), key))
            else:
                merged = cur ^ cc
                if merged:
                    work[key] = merged
                else:
                    del work[key]
    if metrics.is_enabled():
        metrics.counter_add(metrics.DIVISION_CALLS, 1)
        metrics.counter_add(metrics.DIVISION_STEPS, steps)
    return (
        [Polynomial(ring, {m: c for m, c in q.items() if c}) for q in quotients],
        Polynomial(ring, remainder),
    )
