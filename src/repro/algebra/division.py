"""Multivariate polynomial division (reduction) over F_{2^k}.

``reduce_polynomial(f, G)`` computes a remainder ``r`` of ``f`` modulo the
set ``G`` — written ``f ->_G+ r`` in the paper — such that no term of ``r``
is divisible by any leading term of ``G``. This is the workhorse of both
Buchberger's algorithm and the paper's guided S-polynomial reduction.

Two implementations live here:

- the default, heap-based reducer: the work set is a dict shadowed by a
  lazy-deletion min-heap of precomputed sort keys, so fetching the next
  leading term is O(log T) instead of the O(T) ``min()`` scan — and divisor
  lookup goes through :class:`DivisorIndex`, which buckets divisors by the
  most significant variable of their leading monomial;
- :func:`reference_reduce_polynomial`, the original scan-based reducer,
  retained verbatim as the correctness oracle for the differential tests.

Both flush identical ``DIVISION_*`` metrics: they process the exact same
sequence of leading monomials, so step counts and peak sizes agree.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from .. import kernels
from ..obs import metrics, redtrace
from .order import Monomial
from .ring import Polynomial, PolynomialRing

__all__ = [
    "reduce_polynomial",
    "divmod_polynomial",
    "DivisionTrace",
    "DivisorIndex",
    "reference_reduce_polynomial",
]


class DivisionTrace:
    """Statistics from one reduction — exposed for benchmarking."""

    __slots__ = ("steps", "peak_terms")

    def __init__(self) -> None:
        self.steps = 0
        self.peak_terms = 0

    def observe(self, num_terms: int) -> None:
        self.steps += 1
        if num_terms > self.peak_terms:
            self.peak_terms = num_terms


class DivisorIndex:
    """Leading-term index over a divisor set.

    Divisors are bucketed by the *most significant variable* (smallest rank
    under the ring's order) of their leading monomial. A monomial ``m`` can
    only be divisible by leading terms whose variables all occur in ``m``,
    so a probe scans just the buckets of ``m``'s own variables instead of
    every generator. Constant leading terms (monomial ``()``) divide
    everything and live in their own always-probed list.

    Matches are resolved to the **lowest original index**, preserving the
    first-matching-divisor semantics of the scan-based reducer. ``add``
    supports incremental growth (Buchberger appends basis elements).
    """

    __slots__ = ("ring", "divisors", "leads", "buckets", "constants",
                 "tails", "sortkey_memo")

    def __init__(self, ring: PolynomialRing, divisors: Sequence[Polynomial] = ()):
        self.ring = ring
        self.divisors: List[Polynomial] = []
        self.leads: List[Tuple[Monomial, int]] = []
        #: var_index -> list of divisor slots whose leading monomial's most
        #: significant variable is var_index (slots appear in insertion order)
        self.buckets: Dict[int, List[int]] = {}
        #: slots whose leading monomial is the constant 1
        self.constants: List[int] = []
        #: slot -> (tail monomial column, tail coefficient column); split
        #: lazily by the batched reducer on a slot's first hit
        self.tails: Dict[int, tuple] = {}
        #: monomial -> sort key; shared by every reduction run through this
        #: index (Buchberger reuses one index across thousands of calls, so
        #: re-introduced monomials hit instead of re-keying)
        self.sortkey_memo: Dict[Monomial, tuple] = {}
        for g in divisors:
            self.add(g)

    def __len__(self) -> int:
        return len(self.divisors)

    def add(self, g: Polynomial) -> None:
        """Register a nonzero divisor (zero divisors are skipped)."""
        if g.is_zero():
            return
        slot = len(self.divisors)
        lead = g.lead()
        self.divisors.append(g)
        self.leads.append(lead)
        lm = lead[0]
        if not lm:
            self.constants.append(slot)
            return
        rank = self.ring.order.rank
        msv = min((v for v, _ in lm), key=lambda v: rank.get(v, v))
        self.buckets.setdefault(msv, []).append(slot)

    def find(self, monomial: Monomial) -> Optional[int]:
        """Slot of the first divisor whose leading monomial divides ``monomial``."""
        best: Optional[int] = None
        if self.constants:
            best = self.constants[0]
        divides = self.ring.monomial_divides
        leads = self.leads
        buckets = self.buckets
        for var, _ in monomial:
            bucket = buckets.get(var)
            if bucket is None:
                continue
            for slot in bucket:
                if best is not None and slot >= best:
                    break
                if divides(leads[slot][0], monomial):
                    best = slot
                    break
        return best


def _find_reducer(
    ring: PolynomialRing,
    monomial: Monomial,
    leads: Sequence[Tuple[Monomial, int]],
) -> Optional[int]:
    for i, (lm, _) in enumerate(leads):
        if ring.monomial_divides(lm, monomial):
            return i
    return None


def reduce_polynomial(
    f: Polynomial,
    divisors: Sequence[Polynomial],
    trace: Optional[DivisionTrace] = None,
    index: Optional[DivisorIndex] = None,
) -> Polynomial:
    """Fully reduce ``f`` modulo ``divisors``: no remainder term is divisible
    by any divisor's leading monomial.

    Works greatest-term-first: repeatedly pick the largest not-yet-settled
    term; if some ``g`` whose leading monomial divides it exists, subtract
    the appropriate multiple of ``g``, else move the term to the remainder.
    Terminates because the term order is a well-order.

    The work set is a dict shadowed by a lazy-deletion heap: cancelled terms
    stay in the heap and are discarded on pop (``work.pop`` misses). This is
    sound because every monomial a reduction step introduces is strictly
    smaller than the leading monomial it cancels, so a monomial popped live
    can never be re-introduced later.

    Pass a prebuilt :class:`DivisorIndex` via ``index`` to reuse it across
    many reductions (Buchberger does); otherwise one is built here.

    Dispatches on the kernel switch: the batched reducer (default) splits
    each divisor's tail once, scales it with one
    :meth:`~repro.gf.GF2m.mul_vec` call per step and memoizes monomial
    sort keys per call; ``REPRO_BATCH_KERNELS=0`` selects the retained
    per-term legacy reducer. Both process the identical leading-monomial
    sequence, so remainders, traces, ``divisor_hit`` events and
    ``division.*`` step/peak metrics agree exactly.
    """
    if kernels.batch_enabled():
        return _reduce_polynomial_batched(f, divisors, trace, index)
    return _reduce_polynomial_legacy(f, divisors, trace, index)


def _reduce_polynomial_batched(
    f: Polynomial,
    divisors: Sequence[Polynomial],
    trace: Optional[DivisionTrace] = None,
    index: Optional[DivisorIndex] = None,
) -> Polynomial:
    """Heap reducer advancing one whole divisor tail per step.

    Per hit divisor slot the tail is split once into a monomial column and
    a coefficient column; a step then scales the whole coefficient column
    at once — aliased when the step factor is 1 (the common case over
    boolean-derived generators), through one
    :meth:`~repro.gf.GF2m.mul_vec` call when the tail is long enough to
    amortise it — and merges in a single sweep. Sort keys are memoized on
    the :class:`DivisorIndex`, so the memo is shared by every reduction
    run through one index (Buchberger reuses one across thousands of
    calls); the ``division.sortkey_*`` counters expose the hit rate.
    """
    ring = f.ring
    field = ring.field
    sort_key = ring.order.sort_key
    if index is None:
        index = DivisorIndex(ring, divisors)
    divisor_list = index.divisors
    leads = index.leads
    find = index.find
    monomial_div = ring.monomial_div
    monomial_mul = ring.monomial_mul
    mul_vec = field.mul_vec
    fmul = field.mul
    work: Dict[Monomial, int] = dict(f.terms)
    wget = work.get
    keymemo = index.sortkey_memo
    memo_get = keymemo.get
    lookups = len(work)
    misses = 0
    heap = []
    heap_append = heap.append
    for m in work:
        k = memo_get(m)
        if k is None:
            keymemo[m] = k = sort_key(m)
            misses += 1
        heap_append((k, m))
    heapify(heap)
    remainder: Dict[Monomial, int] = {}
    steps = 0
    peak_terms = 0
    tails = index.tails
    rtw = redtrace.active_writer()
    while heap:
        monomial = heappop(heap)[1]
        coeff = work.pop(monomial, None)
        if coeff is None:
            continue  # stale heap entry: the term cancelled earlier
        slot = find(monomial)
        if rtw is not None and slot is not None:
            rtw.emit("divisor_hit", slot=slot, m=monomial)
        steps += 1
        size = len(work) + len(remainder)
        if size > peak_terms:
            peak_terms = size
        if trace is not None:
            trace.observe(size)
        if slot is None:
            remainder[monomial] = coeff
            continue
        cached = tails.get(slot)
        if cached is None:
            g = divisor_list[slot]
            lm0 = leads[slot][0]
            items = [(m, c) for m, c in g.terms.items() if m != lm0]
            tails[slot] = cached = (
                [m for m, _ in items],
                [c for _, c in items],
            )
        tail_monos, tail_coeffs = cached
        lm, lc = leads[slot]
        factor_monomial = monomial_div(monomial, lm)
        factor_coeff = field.div(coeff, lc)
        # work -= (coeff/lc) * (monomial/lm) * g ; the leading terms cancel
        # by construction, so only the pre-split tail is advanced. The
        # coefficient column is aliased when the step factor is 1, scaled
        # in one mul_vec call when the tail is long enough to amortise it,
        # and scaled in-loop otherwise (a listcomp would cost a frame per
        # step on tails of two or three terms).
        scale = factor_coeff != 1
        ccs = tail_coeffs
        if scale and len(tail_coeffs) >= 8:
            ccs = mul_vec(tail_coeffs, factor_coeff)
            scale = False
        for m, cc in zip(tail_monos, ccs):
            if scale:
                cc = fmul(cc, factor_coeff)
            key = monomial_mul(m, factor_monomial)
            cur = wget(key)
            if cur is None:
                work[key] = cc
                lookups += 1
                k = memo_get(key)
                if k is None:
                    keymemo[key] = k = sort_key(key)
                    misses += 1
                heappush(heap, (k, key))
            else:
                merged = cur ^ cc
                if merged:
                    work[key] = merged  # heap entry already present
                else:
                    del work[key]  # its heap entry goes stale
    if metrics.is_enabled():
        metrics.counter_add(metrics.DIVISION_CALLS, 1)
        metrics.counter_add(metrics.DIVISION_STEPS, steps)
        metrics.gauge_max(metrics.DIVISION_PEAK_TERMS, peak_terms)
        metrics.counter_add(metrics.DIVISION_SORTKEY_LOOKUPS, lookups)
        metrics.counter_add(metrics.DIVISION_SORTKEY_HITS, lookups - misses)
    return Polynomial(ring, remainder)


def _reduce_polynomial_legacy(
    f: Polynomial,
    divisors: Sequence[Polynomial],
    trace: Optional[DivisionTrace] = None,
    index: Optional[DivisorIndex] = None,
) -> Polynomial:
    """The pre-batching heap reducer, kept verbatim as the oracle."""
    ring = f.ring
    field = ring.field
    sort_key = ring.order.sort_key
    if index is None:
        index = DivisorIndex(ring, divisors)
    divisor_list = index.divisors
    leads = index.leads
    find = index.find
    monomial_div = ring.monomial_div
    monomial_mul = ring.monomial_mul
    work: Dict[Monomial, int] = dict(f.terms)
    heap = [(sort_key(m), m) for m in work]
    heapify(heap)
    remainder: Dict[Monomial, int] = {}
    steps = 0
    peak_terms = 0
    # REDTRACE hook, hoisted once per call: the disabled cost inside this
    # innermost loop must stay a single None test.
    rtw = redtrace.active_writer()
    while heap:
        monomial = heappop(heap)[1]
        coeff = work.pop(monomial, None)
        if coeff is None:
            continue  # stale heap entry: the term cancelled earlier
        slot = find(monomial)
        if rtw is not None and slot is not None:
            rtw.emit("divisor_hit", slot=slot, m=monomial)
        steps += 1
        size = len(work) + len(remainder)
        if size > peak_terms:
            peak_terms = size
        if trace is not None:
            trace.observe(size)
        if slot is None:
            remainder[monomial] = coeff
            continue
        g = divisor_list[slot]
        lm, lc = leads[slot]
        factor_monomial = monomial_div(monomial, lm)
        factor_coeff = field.div(coeff, lc)
        # work -= (coeff/lc) * (monomial/lm) * g ; the leading terms cancel
        # by construction, so iterate only over the tail of g.
        for m, c in g.terms.items():
            if m == lm:
                continue
            key = monomial_mul(m, factor_monomial)
            cc = field.mul(c, factor_coeff)
            cur = work.get(key)
            if cur is None:
                work[key] = cc
                heappush(heap, (sort_key(key), key))
            else:
                merged = cur ^ cc
                if merged:
                    work[key] = merged  # heap entry already present
                else:
                    del work[key]  # its heap entry goes stale
    if metrics.is_enabled():
        metrics.counter_add(metrics.DIVISION_CALLS, 1)
        metrics.counter_add(metrics.DIVISION_STEPS, steps)
        metrics.gauge_max(metrics.DIVISION_PEAK_TERMS, peak_terms)
    return Polynomial(ring, remainder)


def reference_reduce_polynomial(
    f: Polynomial,
    divisors: Sequence[Polynomial],
    trace: Optional[DivisionTrace] = None,
) -> Polynomial:
    """The original O(T) scan-per-step reducer, kept as correctness oracle.

    Differential tests assert it agrees bit-for-bit (remainder, trace steps,
    trace peak) with the heap-based :func:`reduce_polynomial`.
    """
    ring = f.ring
    field = ring.field
    order = ring.order
    divisors = [g for g in divisors if not g.is_zero()]
    leads = [g.lead() for g in divisors]
    work: Dict[Monomial, int] = dict(f.terms)
    remainder: Dict[Monomial, int] = {}
    steps = 0
    peak_terms = 0
    rtw = redtrace.active_writer()
    while work:
        monomial = min(work, key=order.sort_key)  # the current leading term
        coeff = work.pop(monomial)
        index = _find_reducer(ring, monomial, leads)
        if rtw is not None and index is not None:
            rtw.emit("divisor_hit", slot=index, m=monomial)
        steps += 1
        size = len(work) + len(remainder)
        if size > peak_terms:
            peak_terms = size
        if trace is not None:
            trace.observe(size)
        if index is None:
            remainder[monomial] = coeff
            continue
        g = divisors[index]
        lm, lc = leads[index]
        factor_monomial = ring.monomial_div(monomial, lm)
        factor_coeff = field.div(coeff, lc)
        for m, c in g.terms.items():
            if m == lm:
                continue
            key = ring.monomial_mul(m, factor_monomial)
            cc = field.mul(c, factor_coeff)
            merged = work.get(key, 0) ^ cc
            if merged:
                work[key] = merged
            else:
                del work[key]
    if metrics.is_enabled():
        metrics.counter_add(metrics.DIVISION_CALLS, 1)
        metrics.counter_add(metrics.DIVISION_STEPS, steps)
        metrics.gauge_max(metrics.DIVISION_PEAK_TERMS, peak_terms)
    return Polynomial(ring, remainder)


def divmod_polynomial(
    f: Polynomial, divisors: Sequence[Polynomial]
) -> Tuple[List[Polynomial], Polynomial]:
    """Division with quotients: ``f = sum(q_i * g_i) + r``.

    Same heap strategy as :func:`reduce_polynomial` but records the
    quotients, giving the ideal-membership certificate used by the Lv-style
    baseline. Quotient slots line up with the *input* divisor sequence
    (zero divisors get zero quotients).
    """
    ring = f.ring
    field = ring.field
    sort_key = ring.order.sort_key
    index = DivisorIndex(ring)
    origin: List[int] = []  # index slot -> position in the input sequence
    for i, g in enumerate(divisors):
        if not g.is_zero():
            index.add(g)
            origin.append(i)
    divisor_list = index.divisors
    leads = index.leads
    find = index.find
    quotients: List[Dict[Monomial, int]] = [dict() for _ in divisors]
    work: Dict[Monomial, int] = dict(f.terms)
    heap = [(sort_key(m), m) for m in work]
    heapify(heap)
    remainder: Dict[Monomial, int] = {}
    steps = 0
    while heap:
        monomial = heappop(heap)[1]
        coeff = work.pop(monomial, None)
        if coeff is None:
            continue
        steps += 1
        slot = find(monomial)
        if slot is None:
            remainder[monomial] = coeff
            continue
        g = divisor_list[slot]
        lm, lc = leads[slot]
        factor_monomial = ring.monomial_div(monomial, lm)
        factor_coeff = field.div(coeff, lc)
        q = quotients[origin[slot]]
        q[factor_monomial] = q.get(factor_monomial, 0) ^ factor_coeff
        for m, c in g.terms.items():
            if m == lm:
                continue
            key = ring.monomial_mul(m, factor_monomial)
            cc = field.mul(c, factor_coeff)
            cur = work.get(key)
            if cur is None:
                work[key] = cc
                heappush(heap, (sort_key(key), key))
            else:
                merged = cur ^ cc
                if merged:
                    work[key] = merged
                else:
                    del work[key]
    if metrics.is_enabled():
        metrics.counter_add(metrics.DIVISION_CALLS, 1)
        metrics.counter_add(metrics.DIVISION_STEPS, steps)
    return (
        [Polynomial(ring, {m: c for m, c in q.items() if c}) for q in quotients],
        Polynomial(ring, remainder),
    )
