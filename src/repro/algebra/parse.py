"""Parsing textual polynomial specifications.

Lets users hand a spec like ``"A*B + 3*A^2 + 0x1f"`` to the CLI or API and
get a :class:`~repro.algebra.Polynomial` in a given ring. Grammar::

    expr   := term ('+' term)*
    term   := factor ('*' factor)*
    factor := atom ('^' INT)?
    atom   := NAME | INT | '(' expr ')'

Coefficients are field residues written as decimal, hex (``0x..``) or
binary (``0b..``) integers; ``+`` is field addition (XOR of coefficients);
names must be ring variables. There is no ``-``: characteristic 2 makes it
identical to ``+``, and rejecting it catches copy-paste from rationals.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from .ring import Polynomial, PolynomialRing

__all__ = ["parse_polynomial", "PolynomialSyntaxError"]


class PolynomialSyntaxError(ValueError):
    """Raised on malformed polynomial text."""


_TOKEN = re.compile(
    r"\s*(?:(?P<int>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>[+*^()]))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise PolynomialSyntaxError(
                f"unexpected character {remainder[0]!r} at position {position}"
            )
        position = match.end()
        for kind in ("int", "name", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    tokens.append(("end", ""))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]], ring: PolynomialRing):
        self.tokens = tokens
        self.position = 0
        self.ring = ring

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.position]

    def advance(self) -> Tuple[str, str]:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect_op(self, op: str) -> None:
        kind, value = self.advance()
        if kind != "op" or value != op:
            raise PolynomialSyntaxError(f"expected {op!r}, found {value!r}")

    def parse_expr(self) -> Polynomial:
        result = self.parse_term()
        while self.peek() == ("op", "+"):
            self.advance()
            result = result + self.parse_term()
        return result

    def parse_term(self) -> Polynomial:
        result = self.parse_factor()
        while self.peek() == ("op", "*"):
            self.advance()
            result = result * self.parse_factor()
        return result

    def parse_factor(self) -> Polynomial:
        base = self.parse_atom()
        if self.peek() == ("op", "^"):
            self.advance()
            kind, value = self.advance()
            if kind != "int":
                raise PolynomialSyntaxError(
                    f"exponent must be an integer, found {value!r}"
                )
            return base ** int(value, 0)
        return base

    def parse_atom(self) -> Polynomial:
        kind, value = self.advance()
        if kind == "int":
            return self.ring.constant(int(value, 0))
        if kind == "name":
            if value not in self.ring.index:
                raise PolynomialSyntaxError(
                    f"unknown variable {value!r}; ring has "
                    f"{', '.join(self.ring.variables)}"
                )
            return self.ring.var(value)
        if (kind, value) == ("op", "("):
            inner = self.parse_expr()
            self.expect_op(")")
            return inner
        raise PolynomialSyntaxError(f"unexpected token {value!r}")


def parse_polynomial(text: str, ring: PolynomialRing) -> Polynomial:
    """Parse ``text`` into a polynomial of ``ring``."""
    parser = _Parser(_tokenize(text), ring)
    result = parser.parse_expr()
    kind, value = parser.peek()
    if kind != "end":
        raise PolynomialSyntaxError(f"trailing input starting at {value!r}")
    return result
