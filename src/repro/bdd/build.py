"""Building BDDs from gate-level circuits."""

from __future__ import annotations

from functools import reduce
from typing import Dict, List, Optional, Sequence

from ..circuits import Circuit, GateType
from .manager import FALSE, TRUE, BddManager

__all__ = ["build_circuit_bdds"]


def build_circuit_bdds(
    circuit: Circuit,
    manager: BddManager,
    input_order: Optional[Sequence[str]] = None,
    input_vars: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """BDD for every net of ``circuit``.

    ``input_order`` fixes which BDD variable index each primary input uses
    (default: circuit input order). ``input_vars`` instead maps input nets to
    pre-existing BDD nodes — the hook the miter checker uses to share inputs
    between two circuits.
    """
    values: Dict[str, int] = {}
    if input_vars is not None:
        values.update(input_vars)
    else:
        order = list(input_order) if input_order is not None else circuit.inputs
        for i, net in enumerate(order):
            values[net] = manager.var(i)
    for net in circuit.inputs:
        if net not in values:
            raise ValueError(f"no BDD variable for primary input {net!r}")

    binary = {
        GateType.AND: manager.apply_and,
        GateType.OR: manager.apply_or,
        GateType.XOR: manager.apply_xor,
        GateType.NAND: manager.apply_nand,
        GateType.NOR: manager.apply_nor,
        GateType.XNOR: manager.apply_xnor,
    }
    for gate in circuit.topological_order():
        ins = [values[n] for n in gate.inputs]
        gate_type = gate.gate_type
        if gate_type in (GateType.AND, GateType.OR, GateType.XOR):
            result = reduce(binary[gate_type], ins)
        elif gate_type is GateType.NAND:
            result = manager.apply_not(reduce(manager.apply_and, ins))
        elif gate_type is GateType.NOR:
            result = manager.apply_not(reduce(manager.apply_or, ins))
        elif gate_type is GateType.XNOR:
            result = manager.apply_not(reduce(manager.apply_xor, ins))
        elif gate_type is GateType.NOT:
            result = manager.apply_not(ins[0])
        elif gate_type is GateType.BUF:
            result = ins[0]
        elif gate_type is GateType.CONST0:
            result = FALSE
        elif gate_type is GateType.CONST1:
            result = TRUE
        else:
            raise ValueError(f"unknown gate type {gate_type!r}")
        values[gate.output] = result
    return values
