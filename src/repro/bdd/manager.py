"""Reduced Ordered Binary Decision Diagrams (ROBDDs) with hash-consing.

The canonical bit-level representation of Bryant [10] that Section 2
contrasts with word-level abstraction: canonical per variable order, ideal
for random logic, exponential for multipliers — which is precisely the
behaviour the comparison benchmark demonstrates on GF multiplier miters.

Nodes are integers: 0 and 1 are the terminals; internal nodes live in a
unique table keyed by ``(var, low, high)``. ``ite`` with memoisation
provides all Boolean connectives.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["BddManager", "BddOverflow"]

FALSE = 0
TRUE = 1


class BddOverflow(RuntimeError):
    """Raised when the unique table exceeds the configured node budget."""


class BddManager:
    """A hash-consed ROBDD store over a fixed variable order."""

    def __init__(self, num_vars: int, max_nodes: Optional[int] = None):
        self.num_vars = num_vars
        self.max_nodes = max_nodes
        # node id -> (var, low, high); terminals are pseudo-entries.
        self._nodes: List[Tuple[int, int, int]] = [
            (num_vars, 0, 0),
            (num_vars, 1, 1),
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # -- construction -------------------------------------------------------------

    def var(self, index: int) -> int:
        """The BDD of the projection function ``x_index``."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable {index} out of range")
        return self._mk(index, FALSE, TRUE)

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            if self.max_nodes is not None and node > self.max_nodes:
                raise BddOverflow(
                    f"BDD exceeded {self.max_nodes} nodes (memory explosion)"
                )
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def node(self, bdd: int) -> Tuple[int, int, int]:
        return self._nodes[bdd]

    def var_of(self, bdd: int) -> int:
        return self._nodes[bdd][0]

    # -- core operation --------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h`` — the universal connective."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self.var_of(f), self.var_of(g), self.var_of(h))

        def cofactor(bdd: int, phase: bool) -> int:
            var, low, high = self._nodes[bdd]
            if var != top:
                return bdd
            return high if phase else low

        high = self.ite(cofactor(f, True), cofactor(g, True), cofactor(h, True))
        low = self.ite(cofactor(f, False), cofactor(g, False), cofactor(h, False))
        result = self._mk(top, low, high)
        self._ite_cache[key] = result
        return result

    # -- connectives -----------------------------------------------------------------

    def apply_not(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def apply_nand(self, f: int, g: int) -> int:
        return self.apply_not(self.apply_and(f, g))

    def apply_nor(self, f: int, g: int) -> int:
        return self.apply_not(self.apply_or(f, g))

    def apply_xnor(self, f: int, g: int) -> int:
        return self.apply_not(self.apply_xor(f, g))

    # -- queries ----------------------------------------------------------------------

    def evaluate(self, bdd: int, assignment: List[int]) -> int:
        while bdd > TRUE:
            var, low, high = self._nodes[bdd]
            bdd = high if assignment[var] else low
        return bdd

    def sat_count(self, bdd: int) -> int:
        """Number of satisfying assignments over all ``num_vars`` variables."""
        # memo[node] = count over variables indexed >= var_of(node)
        memo: Dict[int, int] = {FALSE: 0, TRUE: 1}

        def count(node: int) -> int:
            cached = memo.get(node)
            if cached is not None:
                return cached
            var, low, high = self._nodes[node]
            total = count(low) << (self.var_of(low) - var - 1)
            total += count(high) << (self.var_of(high) - var - 1)
            memo[node] = total
            return total

        return count(bdd) << self.var_of(bdd)

    def any_sat(self, bdd: int) -> Optional[List[int]]:
        """One satisfying assignment (length ``num_vars``), or None."""
        if bdd == FALSE:
            return None
        assignment = [0] * self.num_vars
        node = bdd
        while node > TRUE:
            var, low, high = self._nodes[node]
            if high != FALSE:
                assignment[var] = 1
                node = high
            else:
                node = low
        return assignment

    def size(self, bdd: int) -> int:
        """Number of distinct nodes reachable from ``bdd`` (incl. terminals)."""
        seen = set()
        stack = [bdd]
        while stack:
            node = stack.pop()
            if node in seen or node <= TRUE:
                continue
            seen.add(node)
            _, low, high = self._nodes[node]
            stack.extend((low, high))
        return len(seen) + 2

    def num_nodes(self) -> int:
        return len(self._nodes)
