"""BDD substrate: hash-consed ROBDDs and circuit builders."""

from .build import build_circuit_bdds
from .manager import FALSE, TRUE, BddManager, BddOverflow

__all__ = ["BddManager", "BddOverflow", "build_circuit_bdds", "TRUE", "FALSE"]
