"""Command-line interface: generate, inspect, abstract, verify.

Usage (also via ``python -m repro``)::

    repro gen mastrovito -k 16 -o spec.v
    repro gen montgomery -k 16 -o impl.v          # flattened Fig. 1 design
    repro stats spec.v
    repro abstract spec.v -k 16
    repro verify spec.v impl.v -k 16 [--method abstraction|sat|fraig|bdd]
    repro check-spec impl.v -k 16 --spec "A*B"    # Lv-style membership test

Netlists are the structural-Verilog subset (``.v``) or BLIF (``.blif``)
this library writes; word annotations travel in comments, so generated
files round-trip with full word-level information.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .circuits import Circuit, read_blif, read_verilog, write_blif, write_verilog
from .core import abstract_circuit
from .gf import GF2m, poly2
from .synth import (
    gf_adder,
    gf_squarer,
    karatsuba_multiplier,
    mastrovito_multiplier,
    montgomery_block,
    montgomery_multiplier,
)
from .algebra import parse_polynomial
from .core import word_ring_for
from .verify import (
    check_equivalence_bdd,
    check_equivalence_fraig,
    check_equivalence_sat,
    check_ideal_membership,
    verify_equivalence,
)

__all__ = ["main"]

GENERATORS = {
    "mastrovito": lambda field: mastrovito_multiplier(field),
    "montgomery": lambda field: montgomery_multiplier(field).flatten(),
    "montgomery-block": lambda field: montgomery_block(field),
    "karatsuba": lambda field: karatsuba_multiplier(field),
    "squarer": lambda field: gf_squarer(field),
    "adder": lambda field: gf_adder(field),
}


def _read_netlist(path: str) -> Circuit:
    if path.endswith(".blif"):
        return read_blif(path)
    return read_verilog(path)


def _write_netlist(circuit: Circuit, path: str) -> None:
    if path.endswith(".blif"):
        write_blif(circuit, path)
    else:
        write_verilog(circuit, path)


def _field(args: argparse.Namespace) -> GF2m:
    modulus = int(args.modulus, 0) if getattr(args, "modulus", None) else None
    return GF2m(args.k, modulus=modulus)


def _cmd_gen(args: argparse.Namespace) -> int:
    field = _field(args)
    circuit = GENERATORS[args.architecture](field)
    _write_netlist(circuit, args.output)
    print(
        f"wrote {args.architecture} over F_2^{args.k} "
        f"({circuit.num_gates()} gates) to {args.output}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    circuit = _read_netlist(args.netlist)
    circuit.validate()
    print(f"module:  {circuit.name}")
    print(f"inputs:  {len(circuit.inputs)}")
    print(f"outputs: {len(circuit.outputs)}")
    print(f"gates:   {circuit.num_gates()}  {circuit.gate_counts()}")
    print(f"depth:   {circuit.logic_depth()}")
    for word, bits in circuit.input_words.items():
        print(f"word in:  {word} [{len(bits)} bits]")
    for word, bits in circuit.output_words.items():
        print(f"word out: {word} [{len(bits)} bits]")
    return 0


def _cmd_abstract(args: argparse.Namespace) -> int:
    field = _field(args)
    circuit = _read_netlist(args.netlist)
    result = abstract_circuit(
        circuit, field, output_word=args.output_word, case2=args.case2
    )
    print(f"field:      F_2^{field.k}, P(x) = {poly2.to_string(field.modulus)}")
    print(f"case:       {result.stats.case}")
    print(f"time:       {result.stats.seconds:.3f}s")
    print(f"peak terms: {result.stats.peak_terms}")
    print(f"polynomial: {result.output_word} = {result.polynomial}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    field = _field(args)
    spec = _read_netlist(args.spec)
    impl = _read_netlist(args.impl)
    output_map = None
    if list(spec.output_words) != list(impl.output_words):
        spec_out = list(spec.output_words)
        impl_out = list(impl.output_words)
        if len(spec_out) == len(impl_out) == 1:
            output_map = {impl_out[0]: spec_out[0]}
    if args.method == "abstraction":
        outcome = verify_equivalence(spec, impl, field)
    elif args.method == "sat":
        outcome = check_equivalence_sat(
            spec, impl, max_conflicts=args.budget, output_map=output_map
        )
    elif args.method == "fraig":
        outcome = check_equivalence_fraig(
            spec, impl, max_conflicts_final=args.budget, output_map=output_map
        )
    else:
        outcome = check_equivalence_bdd(
            spec, impl, max_nodes=args.budget, output_map=output_map
        )
    print(outcome)
    if outcome.status == "equivalent":
        return 0
    if outcome.status == "not_equivalent":
        return 1
    return 2


def _cmd_check_spec(args: argparse.Namespace) -> int:
    field = _field(args)
    circuit = _read_netlist(args.netlist)
    ring = word_ring_for(field, sorted(circuit.input_words))
    spec = parse_polynomial(args.spec, ring)
    outcome = check_ideal_membership(
        circuit, field, spec, output_word=args.output_word
    )
    print(f"spec: Z = {spec}")
    print(outcome)
    return 0 if outcome.equivalent else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Word-level abstraction & equivalence verification of "
        "Galois field circuits (DAC 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="generate a benchmark netlist")
    gen.add_argument("architecture", choices=sorted(GENERATORS))
    gen.add_argument("-k", type=int, required=True, help="field degree")
    gen.add_argument("--modulus", help="irreducible P(x) as an int literal")
    gen.add_argument("-o", "--output", required=True, help=".v or .blif path")
    gen.set_defaults(func=_cmd_gen)

    stats = sub.add_parser("stats", help="print netlist statistics")
    stats.add_argument("netlist")
    stats.set_defaults(func=_cmd_stats)

    abstract = sub.add_parser(
        "abstract", help="derive the canonical word-level polynomial"
    )
    abstract.add_argument("netlist")
    abstract.add_argument("-k", type=int, required=True)
    abstract.add_argument("--modulus")
    abstract.add_argument("--output-word", default=None)
    abstract.add_argument(
        "--case2", choices=["linearized", "groebner"], default="linearized"
    )
    abstract.set_defaults(func=_cmd_abstract)

    verify = sub.add_parser("verify", help="prove or refute equivalence")
    verify.add_argument("spec")
    verify.add_argument("impl")
    verify.add_argument("-k", type=int, required=True)
    verify.add_argument("--modulus")
    verify.add_argument(
        "--method", choices=["abstraction", "sat", "fraig", "bdd"], default="abstraction"
    )
    verify.add_argument(
        "--budget",
        type=int,
        default=1_000_000,
        help="SAT conflict / BDD node budget for the bit-level methods",
    )
    verify.set_defaults(func=_cmd_verify)

    check_spec = sub.add_parser(
        "check-spec",
        help="verify a circuit against a textual spec polynomial "
        "(ideal-membership, Lv et al. style)",
    )
    check_spec.add_argument("netlist")
    check_spec.add_argument("-k", type=int, required=True)
    check_spec.add_argument("--modulus")
    check_spec.add_argument(
        "--spec", required=True, help='e.g. "A*B" or "A^2 + 3*B"'
    )
    check_spec.add_argument("--output-word", default=None)
    check_spec.set_defaults(func=_cmd_check_spec)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
