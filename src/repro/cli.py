"""Command-line interface: generate, inspect, abstract, verify.

Usage (also via ``python -m repro``)::

    repro gen mastrovito -k 16 -o spec.v
    repro gen montgomery -k 16 -o impl.v          # flattened Fig. 1 design
    repro stats spec.v
    repro abstract spec.v -k 16
    repro verify spec.v impl.v -k 16 [--method abstraction|sat|fraig|bdd]
    repro verify spec.v impl.v -k 16 --trace out.trace.json --metrics
    repro verify spec.v impl.v -k 128 --jobs 4    # cone-sliced parallel path
    repro verify spec.v impl.v -k 16 --no-prepass # skip the structural prepass
    repro check-spec impl.v -k 16 --spec "A*B"    # Lv-style membership test
    repro reveng poly unknown.v                   # recover the field polynomial
    repro reveng func unknown.v -k 16             # identify the function
    repro reveng obfuscate spec.v -o obf.v --seed 7 --check
    repro batch manifest.json --jobs 4 --timeout 120 --cache-dir .repro-cache
    repro batch manifest.json --log run.jsonl --trace-dir traces/
    repro report run.jsonl                        # aggregate a batch run log
    repro cache stats
    repro cache clear

``--quiet``/``--verbose`` tune diagnostic logging and are accepted both
before and after the subcommand. ``--trace`` writes a Chrome-trace JSON
(load in ``chrome://tracing`` or https://ui.perfetto.dev) unless the path
ends in ``.jsonl``, which selects the flat JSONL event log instead.

Netlists are the structural-Verilog subset (``.v``) or BLIF (``.blif``)
this library writes; word annotations travel in comments, so generated
files round-trip with full word-level information. Files with other
extensions are content-sniffed (BLIF ``.model`` vs Verilog ``module``).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import Optional

from . import __version__, obs

from .circuits import (
    Circuit,
    CircuitError,
    read_netlist,
    write_blif,
    write_verilog,
)
from .core import extract_canonical
from .gf import GF2m, poly2
from .synth import (
    gf_adder,
    gf_squarer,
    karatsuba_multiplier,
    mastrovito_multiplier,
    montgomery_block,
    montgomery_multiplier,
)
from .algebra import parse_polynomial
from .core import word_ring_for
from .verify import (
    check_equivalence_bdd,
    check_equivalence_fraig,
    check_equivalence_sat,
    check_ideal_membership,
    verify_equivalence,
)

__all__ = ["main"]

GENERATORS = {
    "mastrovito": lambda field: mastrovito_multiplier(field),
    "montgomery": lambda field: montgomery_multiplier(field).flatten(),
    "montgomery-block": lambda field: montgomery_block(field),
    "karatsuba": lambda field: karatsuba_multiplier(field),
    "squarer": lambda field: gf_squarer(field),
    "adder": lambda field: gf_adder(field),
}


def _read_netlist(path: str) -> Circuit:
    return read_netlist(path)


def _write_netlist(circuit: Circuit, path: str) -> None:
    if path.endswith(".blif"):
        write_blif(circuit, path)
    else:
        write_verilog(circuit, path)


def _field(args: argparse.Namespace) -> GF2m:
    modulus = int(args.modulus, 0) if getattr(args, "modulus", None) else None
    return GF2m(args.k, modulus=modulus)


def _cmd_gen(args: argparse.Namespace) -> int:
    field = _field(args)
    circuit = GENERATORS[args.architecture](field)
    _write_netlist(circuit, args.output)
    print(
        f"wrote {args.architecture} over F_2^{args.k} "
        f"({circuit.num_gates()} gates) to {args.output}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    circuit = _read_netlist(args.netlist)
    circuit.validate()
    print(f"module:  {circuit.name}")
    print(f"inputs:  {len(circuit.inputs)}")
    print(f"outputs: {len(circuit.outputs)}")
    print(f"gates:   {circuit.num_gates()}  {circuit.gate_counts()}")
    print(f"depth:   {circuit.logic_depth()}")
    for word, bits in circuit.input_words.items():
        print(f"word in:  {word} [{len(bits)} bits]")
    for word, bits in circuit.output_words.items():
        print(f"word out: {word} [{len(bits)} bits]")
    return 0


def _cmd_abstract(args: argparse.Namespace) -> int:
    from .prepass import PrepassError, apply_prepass, resolve_prepass

    field = _field(args)
    circuit = _read_netlist(args.netlist)
    use_prepass = resolve_prepass(args.prepass)
    recorder = None
    if args.record:
        from .obs.replay import netlist_sha256

        netlist_text = _read_text(args.netlist)
        recorder = obs.redtrace.start_recording(
            path=args.record,
            op="abstract",
            params={
                "k": field.k,
                "modulus": f"{field.modulus:#x}",
                "output_word": args.output_word,
                "case2": args.case2,
                "jobs": args.jobs,
                # Resolved at record time so replay never consults the live
                # REPRO_PREPASS environment.
                "prepass": use_prepass,
                "netlist": args.netlist,
                "netlist_text": netlist_text,
                "netlist_sha256": netlist_sha256(netlist_text),
            },
        )
    prepassed = None
    try:
        target = circuit
        if use_prepass:
            try:
                prepassed = apply_prepass(circuit)
                target = prepassed.circuit
            except PrepassError:
                target = circuit  # guard tripped: abstract the raw netlist
        result = extract_canonical(
            target,
            field,
            output_word=args.output_word,
            case2=args.case2,
            jobs=args.jobs,
        )
    finally:
        if recorder is not None:
            obs.redtrace.stop_recording()
    if recorder is not None:
        print(f"redtrace:   {args.record} ({recorder.emitted} event(s))")
    print(f"field:      F_2^{field.k}, P(x) = {poly2.to_string(field.modulus)}")
    if prepassed is not None:
        print(
            f"prepass:    {prepassed.gates_in} -> {prepassed.gates_out} "
            f"gate(s) ({prepassed.nets_merged} net(s) SAT-merged, "
            f"{prepassed.seconds:.3f}s)"
        )
    print(f"case:       {result.stats.case}")
    print(f"time:       {result.stats.seconds:.3f}s")
    print(f"peak terms: {result.stats.peak_terms}")
    if result.stats.jobs:
        print(
            f"parallel:   {result.stats.cones} cones on {result.stats.jobs} "
            f"worker(s), {result.stats.pool_utilization_pct:.0f}% pool "
            f"utilization"
        )
    print(f"polynomial: {result.output_word} = {result.polynomial}")
    return 0


def _export_trace(snapshot, path: str) -> None:
    if path.endswith(".jsonl"):
        obs.write_jsonl(snapshot, path)
    else:
        obs.write_chrome_trace(snapshot, path)
    print(f"trace: {path}")


def _print_parallel_metrics(outcome) -> None:
    """Per-cone division work and pool health from a verify outcome.

    Printed under ``--metrics`` so load imbalance is visible without
    opening the trace in a viewer; data comes from the per-side
    ``parallel`` stats block that :func:`canonical_polynomial` attaches
    when the cone-sliced path ran.
    """
    details = getattr(outcome, "details", None) or {}
    for side in ("spec", "impl"):
        parallel = (details.get(side) or {}).get("parallel")
        if not parallel:
            continue
        steps = parallel["cone_division_steps"]
        idle = parallel["pool_idle_seconds"]
        print(
            f"parallel[{side}]: {parallel['cones']} cones on "
            f"{parallel['jobs']} worker(s), "
            f"{parallel['pool_utilization_pct']:.1f}% utilization "
            f"({idle:.3f}s idle), table rebuilds: "
            f"{parallel['table_rebuilds']}"
        )
        if steps:
            print(
                f"  division steps/cone: min={min(steps)} max={max(steps)} "
                f"total={sum(steps)}"
            )
            print(f"  per cone (LSB first): {steps}")


def _print_prepass_metrics(outcome) -> None:
    """Per-side structural pre-reduction work from a verify outcome."""
    details = getattr(outcome, "details", None) or {}
    for side in ("spec", "impl"):
        stats = (details.get(side) or {}).get("prepass")
        if not stats:
            continue
        print(
            f"prepass[{side}]: {stats['gates_in']} -> {stats['gates_out']} "
            f"gate(s), {stats['nets_merged']} net(s) SAT-merged "
            f"({stats['sat_queries']} quer(y/ies), {stats['sat_unknown']} "
            f"unknown), {stats['seconds']:.3f}s"
        )


def _cmd_verify(args: argparse.Namespace) -> int:
    from .prepass import resolve_prepass

    field = _field(args)
    trace_path = args.trace
    use_prepass = resolve_prepass(args.prepass)
    recorder = None
    if args.record:
        if args.method != "abstraction":
            print(
                "error: --record captures reduction events, so it needs "
                "--method abstraction",
                file=sys.stderr,
            )
            return 2
        from .obs.replay import netlist_sha256

        spec_text = _read_text(args.spec)
        impl_text = _read_text(args.impl)
        recorder = obs.redtrace.start_recording(
            path=args.record,
            op="verify",
            params={
                "k": field.k,
                "modulus": f"{field.modulus:#x}",
                "method": args.method,
                "seed": args.seed,
                "jobs": args.jobs,
                # Resolved at record time so replay never consults the live
                # REPRO_PREPASS environment.
                "prepass": use_prepass,
                "spec": args.spec,
                "impl": args.impl,
                "spec_text": spec_text,
                "impl_text": impl_text,
                "spec_sha256": netlist_sha256(spec_text),
                "impl_sha256": netlist_sha256(impl_text),
            },
        )
    collector = obs.enable() if (trace_path or args.metrics) else None
    try:
        with obs.span("verify", method=args.method, k=args.k):
            spec = _read_netlist(args.spec)
            impl = _read_netlist(args.impl)
            output_map = None
            if list(spec.output_words) != list(impl.output_words):
                spec_out = list(spec.output_words)
                impl_out = list(impl.output_words)
                if len(spec_out) == len(impl_out) == 1:
                    output_map = {impl_out[0]: spec_out[0]}
            if args.method == "abstraction":
                outcome = verify_equivalence(
                    spec,
                    impl,
                    field,
                    seed=args.seed,
                    jobs=args.jobs,
                    prepass=use_prepass,
                )
            elif args.method == "sat":
                outcome = check_equivalence_sat(
                    spec, impl, max_conflicts=args.budget, output_map=output_map
                )
            elif args.method == "fraig":
                outcome = check_equivalence_fraig(
                    spec, impl, max_conflicts_final=args.budget, output_map=output_map
                )
            else:
                outcome = check_equivalence_bdd(
                    spec, impl, max_nodes=args.budget, output_map=output_map
                )
    finally:
        if collector is not None:
            obs.disable()
        if recorder is not None:
            obs.redtrace.stop_recording()
    print(outcome)
    if recorder is not None:
        print(f"redtrace: {args.record} ({recorder.emitted} event(s))")
    if collector is not None:
        snapshot = collector.snapshot()
        if trace_path:
            _export_trace(snapshot, trace_path)
        if args.metrics:
            print(obs.summary_table(snapshot))
            _print_parallel_metrics(outcome)
            _print_prepass_metrics(outcome)
    if outcome.status == "equivalent":
        return 0
    if outcome.status == "not_equivalent":
        return 1
    return 2


def _cmd_check_spec(args: argparse.Namespace) -> int:
    field = _field(args)
    circuit = _read_netlist(args.netlist)
    ring = word_ring_for(field, sorted(circuit.input_words))
    spec = parse_polynomial(args.spec, ring)
    outcome = check_ideal_membership(
        circuit, field, spec, output_word=args.output_word
    )
    print(f"spec: Z = {spec}")
    print(outcome)
    return 0 if outcome.equivalent else 1


def _reveng_cache(args: argparse.Namespace):
    from .jobs import CanonicalPolyCache, default_cache_dir

    if getattr(args, "no_cache", False):
        return None
    return CanonicalPolyCache(args.cache_dir or default_cache_dir())


def _cmd_reveng_poly(args: argparse.Namespace) -> int:
    from .reveng import recover_polynomial

    circuit = _read_netlist(args.netlist)
    result = recover_polynomial(
        circuit,
        degree=args.m,
        spec_form=args.spec_form,
        case2=args.case2,
        cache=_reveng_cache(args),
        all_candidates=args.all,
        limit=args.limit,
        jobs=args.jobs,
        prepass=args.prepass,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0 if result.matches else 1
    print(f"degree:     {result.degree}  (spec form: Z = {args.spec_form})")
    print(
        f"candidates: {result.candidates_tried} probed, "
        f"{result.cache_hits} from cache, {result.seconds:.3f}s"
    )
    if result.matches:
        for modulus in result.matches:
            print(f"match:      P(x) = {poly2.to_string(modulus)}  ({modulus:#x})")
        if not result.exhausted and not args.all:
            print("(stopped at the first match; use --all for a full census)")
        return 0
    qualifier = "" if result.exhausted else " probed (census incomplete)"
    print(f"no candidate modulus{qualifier} explains this netlist "
          f"as Z = {args.spec_form}")
    return 1


def _cmd_reveng_func(args: argparse.Namespace) -> int:
    from .reveng import identify_function

    field = _field(args)
    circuit = _read_netlist(args.netlist)
    forms = [f.strip() for f in args.forms.split(",") if f.strip()] if args.forms else ()
    result = identify_function(
        circuit,
        field,
        forms=forms,
        case2=args.case2,
        cache=_reveng_cache(args),
        jobs=args.jobs,
        prepass=args.prepass,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0 if result.matches else 1
    print(f"field:          F_2^{field.k}, P(x) = {poly2.to_string(field.modulus)}")
    print(f"polynomial:     Z = {result.polynomial}  [{result.terms} term(s)]")
    if result.matches:
        print(f"identified as:  {', '.join(result.matches)}")
        return 0
    print(f"unidentified:   no spec form matches (structure: "
          f"{result.classification})")
    return 1


def _cmd_reveng_obfuscate(args: argparse.Namespace) -> int:
    import random as random_module

    from .circuits.simulate import simulate_words
    from .reveng import obfuscate

    circuit = _read_netlist(args.netlist)
    passes = None
    if args.passes:
        passes = [p.strip() for p in args.passes.split(",") if p.strip()]
    variant = obfuscate(
        circuit,
        passes=passes,
        seed=args.seed,
        fraction=args.fraction,
    )
    if args.check:
        rng = random_module.Random(args.seed)
        lanes = 64
        stimuli = {
            word: [rng.getrandbits(len(bits)) for _ in range(lanes)]
            for word, bits in circuit.input_words.items()
        }
        if simulate_words(variant.circuit, stimuli) != simulate_words(circuit, stimuli):
            print("error: obfuscated variant diverges from the original "
                  "(this is a bug — please report it)", file=sys.stderr)
            return 2
    _write_netlist(variant.circuit, args.output)
    check_note = f", simulation-checked on 64 vectors" if args.check else ""
    print(
        f"wrote {variant.name} ({variant.gates_before} -> "
        f"{variant.gates_after} gates via {', '.join(variant.passes)}"
        f"{check_note}) to {args.output}"
    )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from .jobs import default_cache_dir, load_manifest, run_batch

    manifest = load_manifest(args.manifest)
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or str(default_cache_dir())
    cost_model = None
    if args.cost_model:
        from .obs.costmodel import CostModel

        try:
            cost_model = CostModel.load(args.cost_model)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load cost model: {exc}", file=sys.stderr)
            return 2
    report = run_batch(
        manifest,
        workers=args.jobs,
        cache_dir=cache_dir,
        default_timeout=args.timeout,
        log_path=args.log,
        seed=args.seed,
        retries=args.retries,
        trace_dir=args.trace_dir,
        cost_model=cost_model,
    )
    for result in report.results:
        verdict = result.get("verdict", "")
        extra = f"  {verdict}" if verdict else ""
        seconds = result.get("seconds")
        timing = f"  {seconds:.3f}s" if isinstance(seconds, (int, float)) else ""
        error = result.get("error")
        note = f"  ({error})" if error and result["status"] != "ok" else ""
        print(f"{result['id']:<24} {result['status']:<8}{extra}{timing}{note}")
    counts = ", ".join(f"{k}={v}" for k, v in sorted(report.counts.items()))
    print(
        f"batch: {len(report.results)} job(s) on {report.workers} worker(s) "
        f"in {report.wall_seconds:.2f}s  [{counts}]"
    )
    if cache_dir:
        breakdown = ""
        if report.cache_hits:
            breakdown = (
                f" [{report.cache_hits_canonical} canonical-key, "
                f"{report.cache_hits_raw} raw-key]"
            )
        print(
            f"cache: {report.cache_hits} hit(s){breakdown}, "
            f"{report.cache_misses} miss(es) ({cache_dir})"
        )
    if args.trace_dir:
        traced = sum(1 for r in report.results if r.get("trace_file"))
        print(f"traces: {traced} file(s) in {args.trace_dir}")
    if report.log_path:
        print(f"run log: {report.log_path}")
    return 0 if report.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    cost_model = None
    if args.cost_model:
        from .obs.costmodel import CostModel

        try:
            cost_model = CostModel.load(args.cost_model)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load cost model: {exc}", file=sys.stderr)
            return 2
    try:
        aggregate = obs.aggregate_run_log(args.runlog, cost_model=cost_model)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(aggregate, indent=2, sort_keys=True))
    else:
        print(obs.format_report(aggregate))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .jobs import CanonicalPolyCache, default_cache_dir

    cache = CanonicalPolyCache(args.cache_dir or default_cache_dir())
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached polynomial(s) from {cache.root}")
        return 0
    stats = cache.stats()
    print(f"cache dir: {stats['cache_dir']}")
    print(f"entries:   {stats['entries']}")
    print(f"size:      {stats['bytes'] / 1024.0:.1f} KiB")
    print(f"hits:      {stats['hits']}")
    # Hits split by which key kind answered: "canonical" = the prepassed
    # canonical-structure key (structural variants collapse onto it), "raw"
    # = the raw-structure key (prepass off, or fallback hits on entries
    # written before the prepass existed). Counters predating the split
    # leave both at 0 while hits is nonzero.
    print(f"  canonical-key: {stats['hits_canonical']}")
    print(f"  raw-key:       {stats['hits_raw']}")
    print(f"misses:    {stats['misses']}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .jobs import default_cache_dir
    from .service import ServiceConfig, serve

    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or str(default_cache_dir())
    prewarm = []
    if args.prewarm:
        for spec in args.prewarm.split(","):
            spec = spec.strip()
            if not spec:
                continue
            try:
                prewarm.append((int(spec, 0), None))
            except ValueError:
                print(f"error: invalid --prewarm field degree {spec!r}",
                      file=sys.stderr)
                return 2
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        cache_dir=cache_dir,
        retain=args.retain,
        drain_timeout=args.drain_timeout,
        max_request_bytes=args.max_request_mb * 1024 * 1024,
        seed=args.seed,
        prewarm=prewarm,
        port_file=args.port_file,
        cost_model=args.cost_model,
        trace_ring=args.trace_ring,
        dispatch=args.dispatch,
        shard_of=args.shard_of,
    )
    return serve(config)


def _cmd_route(args: argparse.Namespace) -> int:
    from .service.router import RouterConfig, route

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    if not backends:
        print("error: --backends needs at least one host:port", file=sys.stderr)
        return 2
    for backend in backends:
        host, _, port = backend.rpartition(":")
        if not host or not port.isdigit():
            print(f"error: invalid backend address {backend!r} "
                  "(expected host:port)", file=sys.stderr)
            return 2
    config = RouterConfig(
        backends=backends,
        host=args.host,
        port=args.port,
        vnodes=args.vnodes,
        health_interval=args.health_interval,
        retry_budget=args.retry_budget,
        port_file=args.port_file,
    )
    return route(config)


def _cmd_replay(args: argparse.Namespace) -> int:
    from .obs.replay import ReplayError, diff_events, replay_file

    try:
        recorded, fresh = replay_file(args.trace)
    except (ReplayError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    header = recorded[0]
    params = header.get("params") or {}
    print(
        f"replay: op={header.get('op')} k={params.get('k')}  "
        f"recorded {len(recorded)} event(s), fresh run {len(fresh)} event(s)"
    )
    if not args.diff:
        return 0
    divergence = diff_events(recorded, fresh)
    if divergence is None:
        print(f"diff: identical ({len(recorded)} event(s))")
        return 0
    index, rec, new = divergence
    print(f"diff: divergence at event {index}", file=sys.stderr)
    rec_text = (
        json.dumps(rec, sort_keys=True) if rec is not None else "(stream ended)"
    )
    new_text = (
        json.dumps(new, sort_keys=True) if new is not None else "(stream ended)"
    )
    print(f"  recorded: {rec_text}", file=sys.stderr)
    print(f"  replayed: {new_text}", file=sys.stderr)
    return 1


def _cmd_costmodel(args: argparse.Namespace) -> int:
    from .obs.costmodel import CostModel, collect_job_records

    if args.costmodel_command == "fit":
        try:
            records = collect_job_records(args.runlogs)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not records:
            print(
                "error: no completed job records found in the given run logs",
                file=sys.stderr,
            )
            return 2
        model = CostModel.fit(records)
        model.save(args.output)
        print(f"cost model: {args.output} ({len(records)} job record(s))")
        for op in sorted(model.ops):
            entry = model.ops[op]
            buckets = entry.get("buckets") or {}
            bucket_text = ", ".join(
                f"k={k}:{info['mean']:.4f}s(n={info['n']})"
                for k, info in sorted(buckets.items(), key=lambda i: int(i[0]))
            )
            r2 = (entry.get("r2") or {}).get("total")
            fit_text = f"  r2={r2:.3f}" if isinstance(r2, (int, float)) else ""
            print(
                f"  {op}: n={entry['n']} mean={entry['mean']:.4f}s{fit_text}"
                + (f"  [{bucket_text}]" if bucket_text else "")
            )
        return 0
    # predict
    try:
        model = CostModel.load(args.model)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load cost model: {exc}", file=sys.stderr)
        return 2
    value = model.predict(
        args.op, k=args.k, gates=args.gates, cones=args.cones, phase=args.phase
    )
    if value is None:
        print(
            f"error: model has no estimate for op={args.op!r} "
            f"(phase={args.phase!r})",
            file=sys.stderr,
        )
        return 2
    print(f"predicted: {value:.6f}s  (op={args.op} phase={args.phase})")
    return 0


def _read_text(path: str) -> str:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError as exc:
        raise CircuitError(f"cannot read netlist {path}: {exc}") from None


def _submit_exit_code(doc: dict) -> int:
    if doc.get("status") != "done":
        return 2
    verdict = (doc.get("result") or {}).get("verdict")
    if verdict == "equivalent":
        return 0
    if verdict == "not_equivalent":
        return 1
    return 0  # abstract jobs have no verdict; done is success


def _print_job_outcome(doc: dict) -> None:
    status = doc.get("status")
    result = doc.get("result") or {}
    if status == "done":
        verdict = result.get("verdict")
        if verdict is not None:
            print(f"{doc['id']}: {verdict.upper().replace('_', '-')}")
            if result.get("counterexample"):
                print(f"  counterexample: {result['counterexample']}")
        elif result.get("mode") == "poly":
            recovered = result.get("recovered")
            if recovered:
                print(f"{doc['id']}: recovered P(x) = {recovered} "
                      f"({result.get('candidates_tried')} candidate(s), "
                      f"{result.get('cache_hits')} cached)")
            else:
                print(f"{doc['id']}: no matching modulus "
                      f"({result.get('candidates_tried')} candidate(s) probed)")
        elif result.get("mode") == "func":
            identified = result.get("identified")
            if identified:
                print(f"{doc['id']}: identified as {identified}")
            else:
                print(f"{doc['id']}: unidentified "
                      f"(structure: {result.get('classification')})")
        else:
            print(f"{doc['id']}: done")
            if result.get("polynomial"):
                print(f"  {result['polynomial']}")
        if result.get("seconds") is not None:
            hits = [
                side for side in ("spec", "impl")
                if result.get(f"{side}_cache_hit")
            ]
            note = f" (cache hit: {', '.join(hits)})" if hits else ""
            print(f"  {result['seconds']:.3f}s{note}")
    else:
        print(f"{doc['id']}: {status}  ({doc.get('error', 'no result')})")


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError

    client = ServiceClient(host=args.host, port=args.port, timeout=args.timeout)
    if args.port_file:
        with open(args.port_file, "r", encoding="utf-8") as handle:
            client = ServiceClient.from_address(
                handle.read(), timeout=args.timeout
            )

    try:
        if args.manifest:
            return _submit_manifest(client, args)
        if not (args.spec and args.impl and args.k is not None):
            print(
                "error: submit needs either SPEC IMPL -k K or --manifest",
                file=sys.stderr,
            )
            return 2
        submission = client.submit_verify(
            _read_text(args.spec),
            _read_text(args.impl),
            args.k,
            modulus=int(args.modulus, 0) if args.modulus else None,
            case2=args.case2,
            priority=args.priority,
            timeout=args.deadline,
            spec_name=args.spec,
            impl_name=args.impl,
        )
        job_id = submission["id"]
        if submission.get("coalesced"):
            print(f"coalesced onto in-flight job {job_id}")
        else:
            print(f"submitted job {job_id}")
        if args.no_wait:
            return 0
        doc = client.wait_for(job_id, timeout=args.poll_timeout)
        _print_job_outcome(doc)
        return _submit_exit_code(doc)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()


def _submit_manifest(client, args: argparse.Namespace) -> int:
    """Submit every verify/abstract job of a batch manifest to the daemon."""
    from .jobs import load_manifest

    manifest = load_manifest(args.manifest)
    submitted = []  # (job id from manifest, service job id)
    for job in manifest.jobs:
        params = job.params
        if job.type == "verify":
            submission = client.submit_verify(
                _read_text(params["spec"]),
                _read_text(params["impl"]),
                params["k"],
                modulus=params.get("modulus"),
                case2=params.get("case2", "linearized"),
                priority=args.priority,
                timeout=args.deadline,
                spec_name=params["spec"],
                impl_name=params["impl"],
            )
        elif job.type == "abstract":
            submission = client.submit_abstract(
                _read_text(params["netlist"]),
                params["k"],
                modulus=params.get("modulus"),
                case2=params.get("case2", "linearized"),
                output_word=params.get("output_word"),
                priority=args.priority,
                timeout=args.deadline,
                netlist_name=params["netlist"],
            )
        elif job.type == "reveng":
            submission = client.submit_reveng(
                _read_text(params["netlist"]),
                mode=params.get("mode", "poly"),
                m=params.get("m"),
                k=params.get("k"),
                modulus=params.get("modulus"),
                spec_form=params.get("spec_form"),
                all_candidates=bool(params.get("all", False)),
                limit=params.get("limit"),
                case2=params.get("case2", "linearized"),
                priority=args.priority,
                timeout=args.deadline,
                netlist_name=params["netlist"],
            )
        else:
            print(f"{job.id:<24} skipped  (job type {job.type!r} is not "
                  "servable; use repro batch)")
            continue
        submitted.append((job.id, submission["id"]))
        note = "  (coalesced)" if submission.get("coalesced") else ""
        print(f"{job.id:<24} -> {submission['id']}{note}")
    if args.no_wait:
        return 0
    worst = 0
    for manifest_id, job_id in submitted:
        doc = client.wait_for(job_id, timeout=args.poll_timeout)
        print(f"--- {manifest_id}")
        _print_job_outcome(doc)
        worst = max(worst, _submit_exit_code(doc))
    return worst


def _setup_logging(args: argparse.Namespace) -> None:
    """Configure stderr logging from ``--quiet``/``--verbose``.

    Both flags default to ``argparse.SUPPRESS`` so they can be given before
    or after the subcommand without the subparser's default clobbering a
    value parsed by the main parser.
    """
    if getattr(args, "quiet", False):
        level = logging.ERROR
    elif getattr(args, "verbose", False):
        level = logging.DEBUG
    else:
        level = logging.WARNING
    logging.basicConfig(
        level=level, stream=sys.stderr, format="%(levelname)s %(name)s: %(message)s"
    )
    logging.getLogger("repro").setLevel(level)


def build_parser() -> argparse.ArgumentParser:
    log_flags = argparse.ArgumentParser(add_help=False)
    log_flags.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        default=argparse.SUPPRESS,
        help="only log errors",
    )
    log_flags.add_argument(
        "--verbose",
        action="store_true",
        default=argparse.SUPPRESS,
        help="log debug diagnostics (per-job timings, cache traffic)",
    )
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Word-level abstraction & equivalence verification of "
        "Galois field circuits (DAC 2014 reproduction)",
        parents=[log_flags],
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, **kwargs) -> argparse.ArgumentParser:
        return sub.add_parser(name, parents=[log_flags], **kwargs)

    def add_prepass_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--prepass",
            dest="prepass",
            action="store_true",
            default=None,
            help="force the structural pre-reduction on (canonicalize + "
            "SAT-sweep the netlist before abstraction; default follows "
            "$REPRO_PREPASS, which is on)",
        )
        p.add_argument(
            "--no-prepass",
            dest="prepass",
            action="store_false",
            help="abstract the raw netlist, skipping the pre-reduction",
        )

    gen = add_command("gen", help="generate a benchmark netlist")
    gen.add_argument("architecture", choices=sorted(GENERATORS))
    gen.add_argument("-k", type=int, required=True, help="field degree")
    gen.add_argument("--modulus", help="irreducible P(x) as an int literal")
    gen.add_argument("-o", "--output", required=True, help=".v or .blif path")
    gen.set_defaults(func=_cmd_gen)

    stats = add_command("stats", help="print netlist statistics")
    stats.add_argument("netlist")
    stats.set_defaults(func=_cmd_stats)

    abstract = add_command(
        "abstract", help="derive the canonical word-level polynomial"
    )
    abstract.add_argument("netlist")
    abstract.add_argument("-k", type=int, required=True)
    abstract.add_argument("--modulus")
    abstract.add_argument("--output-word", default=None)
    abstract.add_argument(
        "--case2", choices=["linearized", "groebner"], default="linearized"
    )
    abstract.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="cone-sliced parallel abstraction: N worker processes "
        "(0 = one per CPU; default serial)",
    )
    abstract.add_argument(
        "--record",
        default=None,
        metavar="PATH",
        help="record a REDTRACE/1 reduction trace (JSONL) replayable with "
        "`repro replay`",
    )
    add_prepass_flags(abstract)
    abstract.set_defaults(func=_cmd_abstract)

    verify = add_command("verify", help="prove or refute equivalence")
    verify.add_argument("spec")
    verify.add_argument("impl")
    verify.add_argument("-k", type=int, required=True)
    verify.add_argument("--modulus")
    verify.add_argument(
        "--method", choices=["abstraction", "sat", "fraig", "bdd"], default="abstraction"
    )
    verify.add_argument(
        "--budget",
        type=int,
        default=1_000_000,
        help="SAT conflict / BDD node budget for the bit-level methods",
    )
    verify.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed for the randomized counterexample search (reproducible runs)",
    )
    verify.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="cone-sliced parallel abstraction: N worker processes "
        "(0 = one per CPU; default serial; abstraction method only)",
    )
    verify.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a span trace: Chrome-trace JSON (chrome://tracing), or "
        "a flat JSONL event log if PATH ends in .jsonl",
    )
    verify.add_argument(
        "--metrics",
        action="store_true",
        help="print per-span timings and algebraic work counters afterwards",
    )
    verify.add_argument(
        "--record",
        default=None,
        metavar="PATH",
        help="record a REDTRACE/1 reduction trace (JSONL) replayable with "
        "`repro replay`; abstraction method only",
    )
    add_prepass_flags(verify)
    verify.set_defaults(func=_cmd_verify)

    batch = add_command(
        "batch",
        help="run a manifest of verification jobs on a parallel worker pool",
    )
    batch.add_argument("manifest", help="JSON job manifest (see repro.jobs)")
    batch.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="W",
        help="number of worker processes (default 1)",
    )
    batch.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="S",
        help="per-job wall-clock deadline in seconds (default 300; "
        "manifest jobs may override)",
    )
    batch.add_argument(
        "--cache-dir",
        default=None,
        metavar="D",
        help="canonical-polynomial cache directory "
        "(default $REPRO_CACHE_DIR or ~/.cache/repro/canonical)",
    )
    batch.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the canonical-polynomial cache for this run",
    )
    batch.add_argument(
        "--log",
        default=None,
        metavar="PATH",
        help="JSONL run log path (default: no log file)",
    )
    batch.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed; job i uses seed+i for its counterexample search",
    )
    batch.add_argument(
        "--retries",
        type=int,
        default=None,
        help="crash retries per job (overrides manifest; default 1)",
    )
    batch.add_argument(
        "--trace-dir",
        default=None,
        metavar="D",
        help="write one Chrome-trace JSON per job into this directory",
    )
    batch.add_argument(
        "--cost-model",
        default=None,
        metavar="PATH",
        help="fitted cost model (repro costmodel fit); orders jobs "
        "shortest-predicted-first and logs predicted_seconds per job",
    )
    batch.set_defaults(func=_cmd_batch)

    report = add_command(
        "report",
        help="aggregate a batch JSONL run log into per-phase timings and "
        "work counters",
    )
    report.add_argument("runlog", help="run log written by batch --log")
    report.add_argument(
        "--json", action="store_true", help="emit the aggregate as JSON"
    )
    report.add_argument(
        "--cost-model",
        default=None,
        metavar="PATH",
        help="fitted cost model used to score predicted-vs-actual runtimes "
        "for jobs that were not run with batch --cost-model",
    )
    report.set_defaults(func=_cmd_report)

    replay = add_command(
        "replay",
        help="re-execute a recorded REDTRACE reduction trace deterministically",
    )
    replay.add_argument("trace", help="REDTRACE/1 JSONL file (verify --record)")
    replay.add_argument(
        "--diff",
        action="store_true",
        help="compare the fresh event stream record-by-record against the "
        "recording; exit 1 at the first divergence, printing both records",
    )
    replay.set_defaults(func=_cmd_replay)

    costmodel = add_command(
        "costmodel",
        help="fit or query a per-phase job cost model from batch run logs",
    )
    costmodel_sub = costmodel.add_subparsers(
        dest="costmodel_command", required=True
    )
    costmodel_fit = costmodel_sub.add_parser(
        "fit", help="fit a cost model from one or more batch run logs"
    )
    costmodel_fit.add_argument(
        "runlogs", nargs="+", help="JSONL run logs written by batch --log"
    )
    costmodel_fit.add_argument(
        "-o", "--output", required=True, metavar="PATH",
        help="where to write the fitted model (JSON)",
    )
    costmodel_fit.set_defaults(func=_cmd_costmodel)
    costmodel_predict = costmodel_sub.add_parser(
        "predict", help="query a fitted model for a predicted runtime"
    )
    costmodel_predict.add_argument("model", help="fitted model JSON")
    costmodel_predict.add_argument("--op", required=True, help="job type")
    costmodel_predict.add_argument("--k", type=int, default=None)
    costmodel_predict.add_argument("--gates", type=int, default=None)
    costmodel_predict.add_argument("--cones", type=int, default=None)
    costmodel_predict.add_argument(
        "--phase",
        default="total",
        help="phase to predict (default total; e.g. spoly_reduction)",
    )
    costmodel_predict.set_defaults(func=_cmd_costmodel)

    cache = add_command(
        "cache", help="inspect or clear the canonical-polynomial cache"
    )
    cache.add_argument("cache_command", choices=["stats", "clear"])
    cache.add_argument(
        "--cache-dir",
        default=None,
        metavar="D",
        help="cache directory (default $REPRO_CACHE_DIR or "
        "~/.cache/repro/canonical)",
    )
    cache.set_defaults(func=_cmd_cache)

    check_spec = add_command(
        "check-spec",
        help="verify a circuit against a textual spec polynomial "
        "(ideal-membership, Lv et al. style)",
    )
    check_spec.add_argument("netlist")
    check_spec.add_argument("-k", type=int, required=True)
    check_spec.add_argument("--modulus")
    check_spec.add_argument(
        "--spec", required=True, help='e.g. "A*B" or "A^2 + 3*B"'
    )
    check_spec.add_argument("--output-word", default=None)
    check_spec.set_defaults(func=_cmd_check_spec)

    reveng = add_command(
        "reveng",
        help="reverse-engineer a netlist: recover P(x), identify the "
        "function, or generate obfuscated variants",
    )
    reveng_sub = reveng.add_subparsers(dest="reveng_command", required=True)

    def add_reveng_cache_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="D",
            help="canonical-polynomial cache directory "
            "(default $REPRO_CACHE_DIR or ~/.cache/repro/canonical)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the canonical-polynomial cache for this run",
        )
        p.add_argument(
            "--case2", choices=["linearized", "groebner"], default="linearized"
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="cone-sliced parallel abstraction: N worker processes "
            "(0 = one per CPU; default serial)",
        )
        add_prepass_flags(p)
        p.add_argument("--json", action="store_true", help="emit JSON")

    reveng_poly = reveng_sub.add_parser(
        "poly",
        parents=[log_flags],
        help="recover an unknown field polynomial by sweeping candidate "
        "irreducibles (lowest weight first)",
    )
    reveng_poly.add_argument("netlist")
    reveng_poly.add_argument(
        "-m",
        type=int,
        default=None,
        help="field degree (default: inferred from the netlist's word widths)",
    )
    reveng_poly.add_argument(
        "--spec-form",
        default="mul",
        help="expected function under the true modulus (default mul: Z = A*B)",
    )
    reveng_poly.add_argument(
        "--all",
        action="store_true",
        help="census every matching modulus instead of stopping at the first",
    )
    reveng_poly.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="probe at most N candidate moduli",
    )
    add_reveng_cache_flags(reveng_poly)
    reveng_poly.set_defaults(func=_cmd_reveng_poly)

    reveng_func = reveng_sub.add_parser(
        "func",
        parents=[log_flags],
        help="identify which arithmetic function a netlist computes over a "
        "known field",
    )
    reveng_func.add_argument("netlist")
    reveng_func.add_argument("-k", type=int, required=True, help="field degree")
    reveng_func.add_argument("--modulus", help="irreducible P(x) as an int literal")
    reveng_func.add_argument(
        "--forms",
        default=None,
        metavar="F1,F2,...",
        help="restrict the spec-form library (default: every form whose "
        "arity matches)",
    )
    add_reveng_cache_flags(reveng_func)
    reveng_func.set_defaults(func=_cmd_reveng_func)

    reveng_obf = reveng_sub.add_parser(
        "obfuscate",
        parents=[log_flags],
        help="write a semantics-preserving obfuscated variant of a netlist",
    )
    reveng_obf.add_argument("netlist")
    reveng_obf.add_argument("-o", "--output", required=True, help=".v or .blif path")
    reveng_obf.add_argument(
        "--passes",
        default=None,
        metavar="P1,P2,...",
        help="comma-separated pass list: demorgan, xor_expand, dead_logic, "
        "buffer_chains, rename, shuffle (default: all, in that order)",
    )
    reveng_obf.add_argument(
        "--seed", type=int, default=0, help="variant seed (default 0)"
    )
    reveng_obf.add_argument(
        "--fraction",
        type=float,
        default=1.0,
        help="fraction of each pass's eligible gates to rewrite (default 1.0)",
    )
    reveng_obf.add_argument(
        "--check",
        action="store_true",
        help="simulate 64 random word vectors and refuse to write a "
        "variant that diverges",
    )
    reveng_obf.set_defaults(func=_cmd_reveng_obfuscate)

    serve = add_command(
        "serve",
        help="run the resident verification daemon (HTTP API on /v1)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8014,
        help="listen port (0 = ephemeral; see --port-file; default 8014)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="verification worker threads (default 2)",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        metavar="N",
        help="queued-job limit before submissions get 429 (default 64)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="D",
        help="canonical-polynomial cache directory "
        "(default $REPRO_CACHE_DIR or ~/.cache/repro/canonical)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the canonical-polynomial cache",
    )
    serve.add_argument(
        "--retain",
        type=int,
        default=1024,
        metavar="N",
        help="finished job records kept for polling (default 1024)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds to finish queued work after SIGTERM (default 30)",
    )
    serve.add_argument(
        "--max-request-mb",
        type=int,
        default=32,
        metavar="MB",
        help="largest accepted request body (default 32 MiB)",
    )
    serve.add_argument(
        "--prewarm",
        default=None,
        metavar="K,K,...",
        help="comma-separated field degrees whose GF tables are built "
        "before the first request (e.g. 32,64,128)",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed for counterexample searches (reproducible verdicts)",
    )
    serve.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write host:port here once listening (ephemeral-port handshake)",
    )
    serve.add_argument(
        "--cost-model",
        default=None,
        metavar="PATH",
        help="fitted cost model (repro costmodel fit) seeding per-(op,k) "
        "Retry-After estimates before their buckets have seen a job",
    )
    serve.add_argument(
        "--trace-ring",
        type=int,
        default=20000,
        metavar="N",
        help="flight-recorder ring size for REDTRACE events "
        "(0 disables; default 20000)",
    )
    serve.add_argument(
        "--dispatch",
        choices=("plane", "inline"),
        default="plane",
        help="where job bodies run: the resident worker plane (process "
        "isolation + parallelism, default) or inline on dispatcher threads",
    )
    serve.add_argument(
        "--shard-of",
        default=None,
        metavar="I/N",
        help="label this daemon shard I of an N-shard cluster behind "
        "repro route (shows on /healthz and /metrics)",
    )
    serve.set_defaults(func=_cmd_serve)

    route = add_command(
        "route",
        help="run the consistent-hash shard router over repro serve daemons",
        description="Front door for a fleet of repro serve daemons: "
        "consistent-hashes each submission's request key onto a backend "
        "shard so identical work always hits the same warm cache, fails "
        "over when a shard dies, and aggregates /metrics across the "
        "fleet. Responses are proxied byte-for-byte.",
    )
    route.add_argument(
        "--backends",
        required=True,
        metavar="H:P,H:P,...",
        help="comma-separated backend daemon addresses (host:port)",
    )
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument(
        "--port",
        type=int,
        default=8013,
        help="listen port (0 = ephemeral; see --port-file; default 8013)",
    )
    route.add_argument(
        "--vnodes",
        type=int,
        default=64,
        metavar="N",
        help="virtual nodes per backend on the hash ring (default 64)",
    )
    route.add_argument(
        "--health-interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between /readyz probes of each backend (default 2)",
    )
    route.add_argument(
        "--retry-budget",
        type=int,
        default=2,
        metavar="N",
        help="attempts per backend on 429/503 before failing over "
        "(default 2, honouring Retry-After)",
    )
    route.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write host:port here once listening (ephemeral-port handshake)",
    )
    route.set_defaults(func=_cmd_route)

    submit = add_command(
        "submit",
        help="submit work to a running repro serve daemon",
        description="Submit one equivalence check (SPEC IMPL -k K, same "
        "netlist formats as repro verify) or a whole batch manifest "
        "(--manifest, same schema as repro batch) to a daemon, and wait "
        "for verdicts. Exit codes match repro verify: 0 equivalent, "
        "1 not equivalent, 2 error.",
    )
    submit.add_argument("spec", nargs="?", help="spec netlist (.v/.blif)")
    submit.add_argument("impl", nargs="?", help="impl netlist (.v/.blif)")
    submit.add_argument("-k", type=int, default=None, help="field degree")
    submit.add_argument("--modulus", help="irreducible P(x) as an int literal")
    submit.add_argument(
        "--case2", choices=["linearized", "groebner"], default="linearized"
    )
    submit.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="submit every verify/abstract job of a batch manifest instead",
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8014)
    submit.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="read the daemon address from this file (written by "
        "repro serve --port-file)",
    )
    submit.add_argument(
        "--priority",
        type=int,
        default=5,
        help="queue priority, 0 (most urgent) to 9 (default 5)",
    )
    submit.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="server-side deadline: expire the job if it cannot start "
        "within S seconds of submission",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="S",
        help="HTTP request timeout (default 60)",
    )
    submit.add_argument(
        "--poll-timeout",
        type=float,
        default=600.0,
        metavar="S",
        help="give up waiting for a verdict after S seconds (default 600)",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and exit without waiting for the verdict",
    )
    submit.set_defaults(func=_cmd_submit)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    _setup_logging(args)
    from .jobs.manifest import ManifestError

    try:
        return args.func(args)
    except (CircuitError, ManifestError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
