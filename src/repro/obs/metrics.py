"""Canonical metric names for the algebraic-work counters and gauges.

Every instrumented module reports under these names so exporters, the
``repro report`` aggregator and the tests agree on spelling. Names are
dotted ``subsystem.measure``; counters accumulate by addition, gauges are
high-water marks.

The helpers re-exported here (:func:`counter_add`, :func:`gauge_max`) are
the ones from :mod:`repro.obs.spans` — one global read when disabled.
"""

from __future__ import annotations

from .spans import counter_add, gauge_max, is_enabled

__all__ = [
    "ABSTRACTION_EXTRACTIONS",
    "ABSTRACTION_PEAK_TERMS",
    "ABSTRACTION_SUBSTITUTIONS",
    "ABSTRACTION_TERM_TRAFFIC",
    "BDD_NODES",
    "BUCHBERGER_PAIRS_CONSIDERED",
    "BUCHBERGER_PAIRS_SKIPPED",
    "BUCHBERGER_REDUCTIONS",
    "CACHE_HITS",
    "CACHE_MISSES",
    "COSTMODEL_ABS_ERROR_MS",
    "COSTMODEL_FALLBACKS",
    "COSTMODEL_PREDICTIONS",
    "DIVISION_CALLS",
    "DIVISION_PEAK_TERMS",
    "DIVISION_SORTKEY_HITS",
    "DIVISION_SORTKEY_LOOKUPS",
    "DIVISION_STEPS",
    "FRAIG_MERGED",
    "FRAIG_QUERIES",
    "PARALLEL_CONES",
    "PARALLEL_CONE_DIVISION_STEPS",
    "PARALLEL_MAX_CONE_DIVISION_STEPS",
    "PARALLEL_POOL_IDLE_MS",
    "PARALLEL_POOL_LOCK_WAIT_MS",
    "PARALLEL_POOL_UTILIZATION_PCT",
    "PARALLEL_POOL_WORKERS",
    "PARALLEL_TABLE_REBUILDS",
    "PLANE_CTX_PUBLISHES",
    "PLANE_CTX_REUSED",
    "PLANE_DISPATCH_OVERHEAD_MS",
    "PLANE_MAPS",
    "PLANE_STALE_REFUSALS",
    "PLANE_TASK_RETRIES",
    "PLANE_WORKERS_SPAWNED",
    "PLANE_WORKER_RESPAWNS",
    "PREPASS_CANONICAL_KEY_HITS",
    "PREPASS_GATES_REMOVED",
    "PREPASS_GUARD_FAILURES",
    "PREPASS_NETS_MERGED",
    "PREPASS_RAW_KEY_HITS",
    "PREPASS_RUNS",
    "PREPASS_SAT_QUERIES",
    "PREPASS_SAT_UNKNOWN",
    "REVENG_CACHE_HITS",
    "REVENG_CANDIDATES_PROBED",
    "REVENG_IDENTIFICATIONS",
    "REVENG_MATCHES",
    "REVENG_OBFUSCATION_GATES_ADDED",
    "REVENG_OBFUSCATION_VARIANTS",
    "REVENG_SWEEPS",
    "ROUTER_BACKENDS_HEALTHY",
    "ROUTER_FAILOVER_ROUTED",
    "ROUTER_HEALTH_TRANSITIONS",
    "ROUTER_JOB_FANOUTS",
    "ROUTER_JOB_LOOKUPS",
    "ROUTER_PRIMARY_ROUTED",
    "ROUTER_REQUESTS",
    "ROUTER_RETRIES",
    "ROUTER_UNROUTABLE",
    "SAT_CONFLICTS",
    "SAT_DECISIONS",
    "SAT_PROPAGATIONS",
    "SERVICE_JOBS_CANCELLED",
    "SERVICE_JOBS_COMPLETED",
    "SERVICE_JOBS_EXPIRED",
    "SERVICE_JOBS_FAILED",
    "SERVICE_PLANE_FALLBACKS",
    "SERVICE_PLANE_JOBS",
    "SERVICE_QUEUE_DEPTH_PEAK",
    "SERVICE_QUEUE_WAIT_MS",
    "SERVICE_REQUESTS",
    "SERVICE_REQUESTS_DEDUPLICATED",
    "SERVICE_REQUESTS_REJECTED",
    "SERVICE_SINGLEFLIGHT_SHARED",
    "TRACE_DROPPED",
    "TRACE_EVENTS",
    "TRACE_RECORDINGS",
    "VANISHING_GENERATORS",
    "counter_add",
    "gauge_max",
    "is_enabled",
]

# Buchberger's algorithm (Algorithm 1): critical-pair bookkeeping. The
# pairs-skipped counter is the paper's headline number — under RATO the
# product criterion kills every pair but one.
BUCHBERGER_PAIRS_CONSIDERED = "buchberger.pairs_considered"
BUCHBERGER_PAIRS_SKIPPED = "buchberger.pairs_skipped_coprime"
BUCHBERGER_REDUCTIONS = "buchberger.spoly_reductions"

# Multivariate division (``f ->_G+ r``): the inner loop of everything.
# The sortkey pair tracks the batched reducer's per-call monomial-key memo:
# lookups ticks once per key request, hits counts the subset served from the
# memo (hit rate = hits / lookups — high on reduction-heavy workloads where
# the same monomials are re-keyed on every heap push).
DIVISION_CALLS = "division.calls"
DIVISION_STEPS = "division.steps"
DIVISION_PEAK_TERMS = "division.peak_terms"  # gauge
DIVISION_SORTKEY_LOOKUPS = "division.sortkey_lookups"
DIVISION_SORTKEY_HITS = "division.sortkey_hits"

# Vanishing ideal J_0 generators materialised for faithful GB runs.
VANISHING_GENERATORS = "vanishing.generators"

# Guided S-polynomial reduction (the abstraction engine). The extractions
# counter ticks once per actual `extract_canonical` run — compare it against
# `service.requests` to see single-flight/cache dedup working (a
# duplicate-heavy workload computes far fewer abstractions than it serves).
ABSTRACTION_EXTRACTIONS = "abstraction.extractions"
ABSTRACTION_SUBSTITUTIONS = "abstraction.substitutions"
ABSTRACTION_TERM_TRAFFIC = "abstraction.term_traffic"
ABSTRACTION_PEAK_TERMS = "abstraction.peak_terms"  # gauge

# Canonical-polynomial cache.
CACHE_HITS = "cache.hits"
CACHE_MISSES = "cache.misses"

# Cone-sliced parallel abstraction: per-cone work plus pool health. The
# idle/utilization pair makes load imbalance visible without a trace viewer
# (``repro verify --metrics``); the table-rebuilds counter should stay at 0 —
# workers warm their GF tables in the pool initializer.
PARALLEL_CONES = "parallel.cones"
PARALLEL_CONE_DIVISION_STEPS = "parallel.cone_division_steps"
PARALLEL_MAX_CONE_DIVISION_STEPS = "parallel.max_cone_division_steps"  # gauge
PARALLEL_POOL_WORKERS = "parallel.pool_workers"  # gauge
PARALLEL_POOL_UTILIZATION_PCT = "parallel.pool_utilization_pct"  # gauge
PARALLEL_POOL_IDLE_MS = "parallel.pool_idle_ms"
PARALLEL_TABLE_REBUILDS = "parallel.table_rebuilds"
# The legacy fork-pool engine (REPRO_WORKER_PLANE=0) allows one map in
# flight per process; concurrent callers queue on its module lock. The
# plane engine never ticks this — its maps run concurrently.
PARALLEL_POOL_LOCK_WAIT_MS = "parallel.pool_lock_wait_ms"

# Resident worker plane (repro.jobs.plane): fork-amortised map dispatch.
# ctx_publishes counts context (circuit) ships to workers; ctx_reused the
# maps that found their context already resident (the amortisation the
# plane exists for); worker_respawns counts crash replacements;
# task_retries the in-flight tasks requeued after a worker death;
# stale_refusals the tasks a worker rejected because it held an older
# context epoch. dispatch_overhead_ms is the high-water measured per-map
# overhead (wall - busy/parallelism).
PLANE_WORKERS_SPAWNED = "plane.workers_spawned"
PLANE_WORKER_RESPAWNS = "plane.worker_respawns"
PLANE_MAPS = "plane.maps"
PLANE_CTX_PUBLISHES = "plane.ctx_publishes"
PLANE_CTX_REUSED = "plane.ctx_reused"
PLANE_TASK_RETRIES = "plane.task_retries"
PLANE_STALE_REFUSALS = "plane.stale_refusals"
PLANE_DISPATCH_OVERHEAD_MS = "plane.dispatch_overhead_ms"  # gauge

# Consistent-hash shard router (repro route): request routing and backend
# health. primary_routed counts requests sent to the ring-owner backend of
# their request_key (key locality = primary_routed / requests_routed);
# failover_routed counts requests re-routed past an unhealthy or failing
# owner; job_fanouts counts job polls that had to probe every backend
# because the router had no owner recorded for the id.
ROUTER_REQUESTS = "router.requests"
ROUTER_PRIMARY_ROUTED = "router.primary_routed"
ROUTER_FAILOVER_ROUTED = "router.failover_routed"
ROUTER_RETRIES = "router.retries"
ROUTER_UNROUTABLE = "router.unroutable"
ROUTER_JOB_LOOKUPS = "router.job_lookups"
ROUTER_JOB_FANOUTS = "router.job_fanouts"
ROUTER_BACKENDS_HEALTHY = "router.backends_healthy"  # gauge
ROUTER_HEALTH_TRANSITIONS = "router.health_transitions"

# Verification service (repro serve): admission, queueing and dedup. The
# requests counter ticks per accepted job submission; rejected counts 429
# backpressure; deduplicated counts submissions coalesced onto an identical
# in-flight job; singleflight_shared counts abstractions that were served by
# waiting on a peer's in-flight computation instead of recomputing.
SERVICE_REQUESTS = "service.requests"
SERVICE_REQUESTS_REJECTED = "service.requests_rejected"
SERVICE_REQUESTS_DEDUPLICATED = "service.requests_deduplicated"
SERVICE_JOBS_COMPLETED = "service.jobs_completed"
SERVICE_JOBS_FAILED = "service.jobs_failed"
SERVICE_JOBS_EXPIRED = "service.jobs_expired"
SERVICE_JOBS_CANCELLED = "service.jobs_cancelled"
SERVICE_SINGLEFLIGHT_SHARED = "service.singleflight_shared"
SERVICE_QUEUE_WAIT_MS = "service.queue_wait_ms"
SERVICE_QUEUE_DEPTH_PEAK = "service.queue_depth_peak"  # gauge
# Plane dispatch: jobs the scheduler shipped to a resident plane worker
# process (GIL escape) vs. the inline fallbacks run on the dispatcher
# thread because the plane refused (daemonic host, shutdown, crash budget).
SERVICE_PLANE_JOBS = "service.plane_jobs"
SERVICE_PLANE_FALLBACKS = "service.plane_fallbacks"

# Reverse engineering (repro reveng): polynomial recovery sweeps, spec-form
# identification and obfuscation-robustness harnessing. ``candidates_probed``
# ticks once per candidate modulus whose canonical polynomial was examined
# (hit or miss); ``cache_hits`` counts the probes served from the
# content-addressed cache — the second run of an identical sweep should show
# cache_hits ~= candidates_probed.
REVENG_SWEEPS = "reveng.sweeps"
REVENG_CANDIDATES_PROBED = "reveng.candidates_probed"
REVENG_CACHE_HITS = "reveng.cache_hits"
REVENG_MATCHES = "reveng.matches"
REVENG_IDENTIFICATIONS = "reveng.identifications"
REVENG_OBFUSCATION_VARIANTS = "reveng.obfuscation_variants"
REVENG_OBFUSCATION_GATES_ADDED = "reveng.obfuscation_gates_added"

# Structural pre-reduction front-end (repro.prepass): runs ticks once per
# apply_prepass; gates_removed accumulates the net shrink handed to the
# abstraction engine; nets_merged/sat_queries/sat_unknown account the fraig
# stage (merges happen only on proven-UNSAT miters — unknown queries are
# left untouched, so nets_merged + sat_refuted + sat_unknown <= sat_queries
# never lies about soundness). The key-hit pair splits cache hits by which
# key answered: canonical (prepassed structure) vs raw fallback — the
# canonical share is the hit-rate multiplication the prepass exists for.
# guard_failures counts differential-guard trips (prepass output disagreed
# with the original on random vectors; the caller fell back to the raw
# netlist).
PREPASS_RUNS = "prepass.runs"
PREPASS_GATES_REMOVED = "prepass.gates_removed"
PREPASS_NETS_MERGED = "prepass.nets_merged"
PREPASS_SAT_QUERIES = "prepass.sat_queries"
PREPASS_SAT_UNKNOWN = "prepass.sat_unknown"
PREPASS_CANONICAL_KEY_HITS = "prepass.canonical_key_hits"
PREPASS_RAW_KEY_HITS = "prepass.raw_key_hits"
PREPASS_GUARD_FAILURES = "prepass.guard_failures"

# REDTRACE event recording (repro.obs.redtrace): events ticks once per
# emitted record; dropped counts ring-buffer evictions in the daemon's
# flight recorder (a nonzero value means the window is too small for the
# traffic); recordings ticks once per start_recording().
TRACE_EVENTS = "trace.events"
TRACE_DROPPED = "trace.dropped"
TRACE_RECORDINGS = "trace.recordings"

# Fitted cost model (repro.obs.costmodel): predictions ticks once per
# job-runtime estimate the scheduler makes; fallbacks counts the subset
# answered by the global EMA because neither the fitted model nor the
# (op, k) bucket had data; abs_error_ms accumulates |predicted - actual|
# so error rate is abs_error_ms / predictions.
COSTMODEL_PREDICTIONS = "costmodel.predictions"
COSTMODEL_FALLBACKS = "costmodel.fallbacks"
COSTMODEL_ABS_ERROR_MS = "costmodel.abs_error_ms"

# Bit-level cross-checkers.
SAT_CONFLICTS = "sat.conflicts"
SAT_DECISIONS = "sat.decisions"
SAT_PROPAGATIONS = "sat.propagations"
BDD_NODES = "bdd.nodes"  # gauge
FRAIG_QUERIES = "fraig.queries"
FRAIG_MERGED = "fraig.merged"
