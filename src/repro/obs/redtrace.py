"""REDTRACE/1: versioned, replayable reduction-event traces.

Where :mod:`repro.obs.spans` answers *how long did each phase take*, this
module answers *what did the engine decide*: which S-polynomial was
selected, which divisor fired on which monomial, which packed mask swept
which gate variable. Events are deliberately timestamp-free — two runs of
the same reduction on the same inputs emit byte-identical streams, which
is the contract ``repro replay --diff`` enforces (see ``TRACE_FORMAT.md``
for the full grammar and compatibility policy).

The writer follows the same *disabled means free* discipline as the span
layer: hot loops hoist ``active_writer()`` once per call, so with no
recording active each potential event costs one ``is not None`` test
(guarded, together with the span layer, by
``benchmarks/bench_trace_overhead.py``).

Two operating modes:

- **stream** (``path=...``): every event is appended to a JSONL file,
  flushed in bounded batches so memory stays O(batch) regardless of trace
  length. This is what ``repro verify --record`` uses.
- **ring** (``ring=True``): a bounded in-memory flight recorder that
  drops the *oldest* events once ``max_events`` is reached and counts the
  drops. The daemon runs one of these for its whole lifetime so
  ``trace.*`` metrics tick on ``/metrics`` without unbounded growth.

Recording is process-global (module-level ``_WRITER``) to match the span
collector; forked children must call :func:`reset_after_fork` so they
never write into a file handle inherited from the parent.
"""

from __future__ import annotations

import json
import threading
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

from . import metrics

__all__ = [
    "EVENT_KINDS",
    "REDTRACE_VERSION",
    "REPLAY_EXEMPT_FIELDS",
    "RedTraceWriter",
    "active_writer",
    "read_trace",
    "reset_after_fork",
    "start_recording",
    "stop_recording",
]

REDTRACE_VERSION = "REDTRACE/1"

# Every record's "ev" field must name one of these. "header" opens the
# stream (seq 0, carries the format version and enough parameters to
# re-execute the run), "end" closes it; the rest are engine decisions.
EVENT_KINDS = frozenset(
    {
        "header",
        "spoly_selected",
        "divisor_hit",
        "mask_sweep",
        "cone_start",
        "cone_end",
        "word_relation_division",
        "cache_probe",
        "end",
    }
)

# Fields the replay differ ignores: wall-clock and environment metadata
# that legitimately varies between a recording and its replay. Everything
# else must match byte-for-byte.
REPLAY_EXEMPT_FIELDS = frozenset({"recorded_at", "tool"})

_FLUSH_BATCH = 1024


class RedTraceWriter:
    """Thread-safe JSONL event writer with stream and ring modes."""

    def __init__(
        self,
        path: Optional[str] = None,
        ring: bool = False,
        max_events: int = 100_000,
        flush_batch: int = _FLUSH_BATCH,
    ):
        if ring and path is not None:
            raise ValueError("ring mode is in-memory only; do not pass a path")
        if max_events < 2:
            raise ValueError(f"max_events must be >= 2, got {max_events}")
        self.path = path
        self.ring = ring
        self.max_events = max_events
        self._flush_batch = max(1, flush_batch)
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._seq = 0
        self.emitted = 0
        self.dropped = 0
        self._file = open(path, "w", encoding="utf-8") if path else None
        self._closed = False

    # -- event emission ------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        """Append one event record. ``seq`` is assigned monotonically.

        Emitting on a closed writer is a silent no-op: daemon workers may
        race a shutdown's ``stop_recording``, and losing a tail event is
        better than faulting a verification job.
        """
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        with self._lock:
            if self._closed:
                return
            record = {"ev": kind, "seq": self._seq}
            record.update(fields)
            self._seq += 1
            self.emitted += 1
            self._events.append(record)
            if self.ring:
                # Flight recorder: keep the header (slot 0) plus the most
                # recent window; drop the oldest engine events.
                if len(self._events) > self.max_events:
                    keep_from = 1 if self._events[0].get("ev") == "header" else 0
                    del self._events[keep_from]
                    self.dropped += 1
                    metrics.counter_add(metrics.TRACE_DROPPED, 1)
            elif self._file is not None and len(self._events) >= self._flush_batch:
                self._flush_locked()
        metrics.counter_add(metrics.TRACE_EVENTS, 1)

    def begin(self, op: str, params: Optional[Dict[str, Any]] = None) -> None:
        """Write the seq-0 header record."""
        self.emit(
            "header",
            redtrace=REDTRACE_VERSION,
            op=op,
            params=dict(params or {}),
            recorded_at=datetime.now(timezone.utc).isoformat(),
        )

    def close(self) -> None:
        """Write the trailing ``end`` record, flush and release the file."""
        with self._lock:
            if self._closed:
                return
            self._events.append(
                {
                    "ev": "end",
                    "seq": self._seq,
                    "emitted": self.emitted + 1,
                    "dropped": self.dropped,
                }
            )
            self._seq += 1
            self.emitted += 1
            if self._file is not None:
                self._flush_locked()
                self._file.close()
                self._file = None
            self._closed = True

    # -- introspection -------------------------------------------------------

    def events(self) -> List[Dict[str, Any]]:
        """Snapshot of buffered events (all of them for in-memory modes)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def buffered(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- internals -----------------------------------------------------------

    def _flush_locked(self) -> None:
        for event in self._events:
            self._file.write(json.dumps(event, sort_keys=True) + "\n")
        self._file.flush()
        self._events.clear()


# Process-global active writer. ``None`` (the overwhelmingly common case)
# makes every hoisted hot-loop check a single module-global read.
_WRITER: Optional[RedTraceWriter] = None


def active_writer() -> Optional[RedTraceWriter]:
    """The recording writer, or ``None`` when recording is off.

    Hot loops call this once per function entry and keep the result in a
    local, so the per-iteration disabled cost is one ``is not None``.
    """
    return _WRITER


def start_recording(
    path: Optional[str] = None,
    op: str = "unknown",
    params: Optional[Dict[str, Any]] = None,
    ring: bool = False,
    max_events: int = 100_000,
) -> RedTraceWriter:
    """Install a process-global writer and emit its header.

    Raises ``RuntimeError`` if a recording is already active — nested
    recordings would interleave two logical traces into one stream.
    """
    global _WRITER
    if _WRITER is not None:
        raise RuntimeError("a REDTRACE recording is already active")
    writer = RedTraceWriter(path=path, ring=ring, max_events=max_events)
    writer.begin(op, params)
    _WRITER = writer
    metrics.counter_add(metrics.TRACE_RECORDINGS, 1)
    return writer


def stop_recording() -> Optional[RedTraceWriter]:
    """Close and uninstall the active writer (no-op when none is active)."""
    global _WRITER
    writer = _WRITER
    _WRITER = None
    if writer is not None:
        writer.close()
    return writer


def reset_after_fork() -> None:
    """Drop any writer inherited across ``fork()``.

    A forked worker shares the parent's open trace file descriptor;
    writing from both sides would interleave and corrupt the stream, so
    children record nothing. Parent-side code re-emits deterministic
    per-cone events at merge time instead (see ``_extract_parallel``).
    """
    global _WRITER
    _WRITER = None


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a REDTRACE JSONL file into a list of event dicts.

    Raises ``ValueError`` with a line-numbered message on malformed JSON;
    structural validation (header, kinds, seq order) lives in
    :func:`repro.obs.schema.validate_redtrace_file`.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{number}: not valid JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{number}: event must be a JSON object")
            events.append(record)
    return events
