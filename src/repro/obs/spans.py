"""Hierarchical span tracing with near-zero disabled overhead.

A *span* is one timed region of the pipeline (``parse``, ``rato_setup``,
``spoly_reduction``, ...). Spans nest: the ``contextvars`` machinery tracks
the current span per thread (and per asyncio task, for free), so a span
opened inside another records its parent and exporters can rebuild the
tree — Chrome's trace viewer renders it as a flamegraph.

Design constraints, in order:

1. **Disabled means free.** Instrumentation stays in library hot paths
   permanently, so when no collector is active ``span()`` must cost one
   global read plus returning a shared no-op context manager, and
   ``counter_add``/``gauge_max`` one global read. The
   ``bench_obs_overhead.py`` guard keeps this honest (< 5% of the k=32
   verify path).
2. **Thread-safe.** A single :class:`TraceCollector` may receive spans
   from several threads; its buffer and counter maps are lock-guarded,
   while the *current span* is per-thread state in a ``ContextVar``.
3. **Process-safe.** Worker processes (the ``repro.jobs`` pool) run their
   own collector and ship :meth:`TraceCollector.snapshot` — a plain JSON
   document — back over the result pipe; the parent folds it in with
   :meth:`TraceCollector.merge`. Span ids are only unique per process;
   ``(pid, id)`` is the global key, and every record carries its ``pid``.

Enable/disable is process-global (one active collector), matching how the
CLI and the batch workers use it: one collector per verification run.
"""

from __future__ import annotations

import contextvars
import functools
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "SCHEMA_VERSION",
    "TraceCollector",
    "active_collector",
    "counter_add",
    "disable",
    "enable",
    "gauge_max",
    "is_enabled",
    "reset_context",
    "span",
    "traced",
]

#: Version tag stamped into snapshots and validated by ``repro.obs.schema``.
SCHEMA_VERSION = "repro-trace-v1"


class TraceCollector:
    """Per-process buffer of finished spans plus counter/gauge maps.

    Counters accumulate by addition (``buchberger.pairs_skipped_coprime``,
    ``division.steps``, ...); gauges keep the maximum observed value
    (``abstraction.peak_terms``, ``bdd.nodes``). Both are flat
    ``name -> number`` maps so snapshots serialize to JSON directly.

    ``max_spans`` bounds the span buffer: once full, the oldest spans are
    dropped (counters and gauges always keep accumulating). One-shot CLI
    runs leave it unbounded; the long-running verification service caps it
    so weeks of traffic cannot grow the collector without bound —
    ``spans_dropped`` reports how many fell off the ring.
    """

    def __init__(self, max_spans: Optional[int] = None) -> None:
        self._lock = threading.Lock()
        self._spans: List[Dict[str, Any]] = []
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._next_id = 0
        self._max_spans = max_spans
        self._dropped = 0

    # -- recording -----------------------------------------------------------

    def new_span_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def add_span(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._spans.append(record)
            self._trim_locked()

    def counter_add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge_max(self, name: str, value: float) -> None:
        with self._lock:
            if value > self._gauges.get(name, float("-inf")):
                self._gauges[name] = value

    def _trim_locked(self) -> None:
        if self._max_spans is not None and len(self._spans) > self._max_spans:
            excess = len(self._spans) - self._max_spans
            del self._spans[:excess]
            self._dropped += excess

    @property
    def spans_dropped(self) -> int:
        """Spans evicted from a ``max_spans``-bounded buffer so far."""
        with self._lock:
            return self._dropped

    # -- export / handoff ----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable copy of everything recorded so far."""
        with self._lock:
            return {
                "schema": SCHEMA_VERSION,
                "spans": [dict(record) for record in self._spans],
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
            }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another collector's snapshot in (worker -> parent handoff).

        Spans append verbatim — their ids stay meaningful because each
        record carries the originating ``pid``. Counters add; gauges max.
        """
        with self._lock:
            self._spans.extend(dict(r) for r in snapshot.get("spans", ()))
            self._trim_locked()
            for name, amount in (snapshot.get("counters") or {}).items():
                self._counters[name] = self._counters.get(name, 0) + amount
            for name, value in (snapshot.get("gauges") or {}).items():
                if value > self._gauges.get(name, float("-inf")):
                    self._gauges[name] = value

    @property
    def num_spans(self) -> int:
        with self._lock:
            return len(self._spans)


_ACTIVE: Optional[TraceCollector] = None
_CURRENT: "contextvars.ContextVar[Optional[int]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class _NullSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_tag(self, key: str, value: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span: records timing, parentage and tags on exit."""

    __slots__ = ("_collector", "_name", "_tags", "_id", "_parent", "_token", "_ts", "_t0")

    def __init__(self, collector: TraceCollector, name: str, tags: Dict[str, Any]):
        self._collector = collector
        self._name = name
        self._tags = tags

    def __enter__(self) -> "_LiveSpan":
        self._parent = _CURRENT.get()
        self._id = self._collector.new_span_id()
        self._token = _CURRENT.set(self._id)
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def set_tag(self, key: str, value: Any) -> None:
        """Attach a tag after entry (e.g. a verdict known only at the end)."""
        self._tags[key] = value

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        _CURRENT.reset(self._token)
        record: Dict[str, Any] = {
            "name": self._name,
            "id": self._id,
            "parent": self._parent,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "ts": self._ts,
            "dur": duration,
            "tags": self._tags,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self._collector.add_span(record)
        return False


def enable(collector: Optional[TraceCollector] = None) -> TraceCollector:
    """Activate tracing for this process; returns the active collector."""
    global _ACTIVE
    if collector is None:
        collector = TraceCollector()
    _ACTIVE = collector
    return collector


def disable() -> Optional[TraceCollector]:
    """Deactivate tracing; returns the collector that was active (if any)."""
    global _ACTIVE
    collector, _ACTIVE = _ACTIVE, None
    return collector


def is_enabled() -> bool:
    return _ACTIVE is not None


def active_collector() -> Optional[TraceCollector]:
    return _ACTIVE


def reset_context() -> None:
    """Clear the current-span pointer (a forked worker inherits its parent's)."""
    _CURRENT.set(None)


def span(name: str, **tags: Any):
    """Open a span: ``with span("rato_setup", gates=n): ...``.

    When tracing is disabled this returns a shared no-op context manager;
    the call costs one global read.
    """
    collector = _ACTIVE
    if collector is None:
        return _NULL_SPAN
    return _LiveSpan(collector, name, tags)


def traced(name: Optional[str] = None, **tags: Any) -> Callable:
    """Decorator form of :func:`span` (span name defaults to the function's)."""

    def decorate(func: Callable) -> Callable:
        label = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if _ACTIVE is None:
                return func(*args, **kwargs)
            with span(label, **tags):
                return func(*args, **kwargs)

        return wrapper

    return decorate


def counter_add(name: str, amount: int = 1) -> None:
    """Add to a named counter (no-op while tracing is disabled)."""
    collector = _ACTIVE
    if collector is not None:
        collector.counter_add(name, amount)


def gauge_max(name: str, value: float) -> None:
    """Raise a named high-water-mark gauge (no-op while disabled)."""
    collector = _ACTIVE
    if collector is not None:
        collector.gauge_max(name, value)
