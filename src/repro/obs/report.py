"""Batch run-log aggregation behind ``repro report``.

A batch run log (``repro batch --log run.jsonl``) is a JSONL stream of
``start`` / ``job`` / ``retry`` / ``summary`` records. This module folds
the per-job records into one profile of the whole run:

- **per-phase totals** — sum/mean/max of each pipeline phase (``parse``,
  ``rato_setup``, ``spoly_reduction``, ``coeff_match``), which is the
  Table 1/2 cost breakdown across an entire batch instead of one run;
- **algebraic work counters** — summed ``counters`` (Buchberger pairs
  skipped, division steps, SAT conflicts, ...) and maxed ``gauges``;
- **cache effectiveness** — aggregate hit/miss counts and the hit rate;
- **status/verdict tallies** and total job seconds.

Legacy logs (pre-telemetry) aggregate fine: records without ``counters``
or ``gauges`` simply contribute nothing to those sections.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = ["aggregate_run_log", "format_report"]


def aggregate_run_log(path: str, cost_model=None) -> Dict[str, Any]:
    """Aggregate a batch JSONL run log into one profile dict.

    ``cost_model`` (a fitted :class:`repro.obs.costmodel.CostModel`) adds
    a ``cost_model`` section scoring predicted-vs-actual runtimes; jobs
    that already carry ``predicted_seconds`` (a cost-model-ordered batch
    run) are scored even without the model. Raises ``ValueError`` on
    unreadable/garbled input or when the log contains no job records at
    all.
    """
    jobs: List[Dict[str, Any]] = []
    start: Dict[str, Any] = {}
    summary: Dict[str, Any] = {}
    retries = 0
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise ValueError(f"cannot read run log: {exc}") from exc
    with handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON ({exc})"
                ) from exc
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{line_number}: record must be an object")
            event = record.get("event")
            if event == "job" or (event is None and "status" in record):
                jobs.append(record)
            elif event == "start":
                start = record
            elif event == "summary":
                summary = record
            elif event == "retry":
                retries += 1
    if not jobs:
        raise ValueError(f"no job records found in {path}")

    phases: Dict[str, Dict[str, float]] = {}
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    statuses: Dict[str, int] = {}
    verdicts: Dict[str, int] = {}
    cache_hits = 0
    cache_misses = 0
    total_seconds = 0.0
    for record in jobs:
        statuses[record.get("status", "?")] = (
            statuses.get(record.get("status", "?"), 0) + 1
        )
        verdict = record.get("verdict")
        if verdict:
            verdicts[verdict] = verdicts.get(verdict, 0) + 1
        seconds = record.get("seconds")
        if isinstance(seconds, (int, float)):
            total_seconds += seconds
        for name, value in (record.get("phases") or {}).items():
            if not isinstance(value, (int, float)):
                continue
            agg = phases.setdefault(name, {"total": 0.0, "max": 0.0, "count": 0})
            agg["total"] += value
            agg["count"] += 1
            agg["max"] = max(agg["max"], value)
        for name, value in (record.get("counters") or {}).items():
            if isinstance(value, (int, float)):
                counters[name] = counters.get(name, 0) + value
        for name, value in (record.get("gauges") or {}).items():
            if isinstance(value, (int, float)):
                gauges[name] = max(gauges.get(name, float("-inf")), value)
        cache = record.get("cache") or {}
        cache_hits += int(cache.get("hits", 0))
        cache_misses += int(cache.get("misses", 0))
    for agg in phases.values():
        agg["mean"] = agg["total"] / agg["count"]
    lookups = cache_hits + cache_misses
    predictions = _score_predictions(jobs, cost_model)
    return {
        "run_log": path,
        "jobs": len(jobs),
        "retries": retries,
        "workers": start.get("workers") or summary.get("workers"),
        "wall_seconds": summary.get("wall_seconds"),
        "job_seconds_total": total_seconds,
        "statuses": statuses,
        "verdicts": verdicts,
        "phases": phases,
        "counters": counters,
        "gauges": gauges,
        "cache": {
            "hits": cache_hits,
            "misses": cache_misses,
            "hit_rate": (cache_hits / lookups) if lookups else None,
        },
        "cost_model": predictions,
    }


def _score_predictions(
    jobs: List[Dict[str, Any]], cost_model
) -> Optional[Dict[str, Any]]:
    """Per-op predicted-vs-actual accuracy, or None with nothing to score.

    A job's prediction comes from its logged ``predicted_seconds`` (written
    by a cost-model-ordered batch run) or, failing that, from ``cost_model``
    applied to the job's logged features (type, k, gates, cones).
    """
    per_op: Dict[str, Dict[str, Any]] = {}
    for record in jobs:
        if record.get("status") != "ok":
            continue
        actual = record.get("seconds")
        if not isinstance(actual, (int, float)):
            continue
        predicted = record.get("predicted_seconds")
        if predicted is None and cost_model is not None:
            predicted = cost_model.predict(
                record.get("type"),
                k=record.get("k"),
                gates=record.get("gates"),
                cones=record.get("cones"),
            )
        if not isinstance(predicted, (int, float)):
            continue
        op = record.get("type") or "?"
        agg = per_op.setdefault(
            op,
            {"jobs": 0, "actual_s": 0.0, "predicted_s": 0.0, "abs_error_s": 0.0},
        )
        agg["jobs"] += 1
        agg["actual_s"] += float(actual)
        agg["predicted_s"] += float(predicted)
        agg["abs_error_s"] += abs(float(actual) - float(predicted))
    if not per_op:
        return None
    for agg in per_op.values():
        agg["mean_abs_error_s"] = agg["abs_error_s"] / agg["jobs"]
        agg["mape_pct"] = (
            100.0 * agg["abs_error_s"] / agg["actual_s"]
            if agg["actual_s"] > 0
            else None
        )
    totals = {
        "jobs": sum(agg["jobs"] for agg in per_op.values()),
        "actual_s": sum(agg["actual_s"] for agg in per_op.values()),
        "predicted_s": sum(agg["predicted_s"] for agg in per_op.values()),
        "abs_error_s": sum(agg["abs_error_s"] for agg in per_op.values()),
    }
    totals["mean_abs_error_s"] = totals["abs_error_s"] / totals["jobs"]
    totals["mape_pct"] = (
        100.0 * totals["abs_error_s"] / totals["actual_s"]
        if totals["actual_s"] > 0
        else None
    )
    return {"ops": per_op, "overall": totals}


def _table(rows: List[Dict[str, Any]]) -> List[str]:
    if not rows:
        return ["  (none)"]
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    lines = ["  ".join(str(c).ljust(widths[c]) for c in columns)]
    lines.append("  ".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return lines


def format_report(aggregate: Dict[str, Any]) -> str:
    """Render an :func:`aggregate_run_log` result as a terminal report."""
    lines: List[str] = []
    header = f"run log: {aggregate['run_log']}"
    lines.append(header)
    lines.append("=" * len(header))
    statuses = ", ".join(f"{k}={v}" for k, v in sorted(aggregate["statuses"].items()))
    verdicts = ", ".join(f"{k}={v}" for k, v in sorted(aggregate["verdicts"].items()))
    summary_bits = [f"jobs: {aggregate['jobs']}", f"status [{statuses}]"]
    if verdicts:
        summary_bits.append(f"verdict [{verdicts}]")
    if aggregate.get("retries"):
        summary_bits.append(f"retries: {aggregate['retries']}")
    if aggregate.get("workers"):
        summary_bits.append(f"workers: {aggregate['workers']}")
    lines.append("  ".join(summary_bits))
    wall = aggregate.get("wall_seconds")
    wall_text = f"{wall:.3f}s" if isinstance(wall, (int, float)) else "n/a"
    lines.append(
        f"wall: {wall_text}  job seconds (sum): "
        f"{aggregate['job_seconds_total']:.3f}s"
    )
    lines.append("")
    lines.append("phase timings")
    phase_rows = [
        {
            "phase": name,
            "total_s": f"{agg['total']:.4f}",
            "mean_s": f"{agg['mean']:.4f}",
            "max_s": f"{agg['max']:.4f}",
            "jobs": agg["count"],
        }
        for name, agg in sorted(
            aggregate["phases"].items(), key=lambda item: item[1]["total"], reverse=True
        )
    ]
    lines.extend(_table(phase_rows))
    lines.append("")
    lines.append("algebraic work counters")
    lines.extend(
        _table(
            [
                {"counter": name, "total": value}
                for name, value in sorted(aggregate["counters"].items())
            ]
        )
    )
    gauges = aggregate.get("gauges") or {}
    if gauges:
        lines.append("")
        lines.append("gauges (max across jobs)")
        lines.extend(
            _table(
                [{"gauge": name, "max": value} for name, value in sorted(gauges.items())]
            )
        )
    cache = aggregate["cache"]
    lines.append("")
    rate = cache["hit_rate"]
    rate_text = f"{rate * 100:.1f}%" if rate is not None else "n/a"
    lines.append(
        f"cache: {cache['hits']} hit(s), {cache['misses']} miss(es), "
        f"hit rate {rate_text}"
    )
    predictions = aggregate.get("cost_model")
    if predictions:
        lines.append("")
        lines.append("cost model: predicted vs actual")

        def _row(op: str, agg: Dict[str, Any]) -> Dict[str, Any]:
            mape = agg.get("mape_pct")
            return {
                "op": op,
                "jobs": agg["jobs"],
                "actual_s": f"{agg['actual_s']:.4f}",
                "predicted_s": f"{agg['predicted_s']:.4f}",
                "mean_abs_err_s": f"{agg['mean_abs_error_s']:.4f}",
                "err_pct": f"{mape:.1f}%" if mape is not None else "n/a",
            }

        rows = [_row(op, agg) for op, agg in sorted(predictions["ops"].items())]
        rows.append(_row("(all)", predictions["overall"]))
        lines.extend(_table(rows))
    return "\n".join(lines)
