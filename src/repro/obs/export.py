"""Trace exporters: Chrome trace-format JSON, JSONL event log, summary table.

All three consume the JSON snapshot produced by
:meth:`repro.obs.spans.TraceCollector.snapshot` (or an equal merge of
several workers' snapshots):

- :func:`write_chrome_trace` emits the Trace Event Format consumed by
  ``chrome://tracing`` / Perfetto — every span becomes a complete ``"X"``
  event, so nested spans render as a flamegraph with one lane per
  (pid, tid);
- :func:`write_jsonl` emits a grep-able event log, one JSON object per
  line (``meta``, ``span`` × N, ``counters``, ``gauges``);
- :func:`summary_table` renders per-span-name timing aggregates plus the
  counters/gauges as a fixed-width text table for terminals.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List

from .spans import SCHEMA_VERSION

__all__ = [
    "render_prometheus",
    "summary_table",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]


def _json_safe(value: Any) -> Any:
    """Normalize an arbitrary span-tag value into strict-JSON territory.

    Span tags are free-form (callers attach moduli as ``bytes``, sets of
    variable names, ``float('inf')`` deadlines, ...) but Chrome's trace
    viewer parses with a strict JSON reader — ``json.dump(default=str)``
    alone leaks Python reprs like ``b'\\x11\\xb'`` into ``args`` and
    NaN/Infinity literals into the file, both of which make
    ``chrome://tracing`` refuse the whole trace. Bytes become hex
    strings, sets become sorted lists, non-finite floats become strings,
    containers are normalized recursively, anything else stringifies.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else str(value)
    if isinstance(value, (bytes, bytearray)):
        return "0x" + bytes(value).hex()
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_json_safe(item) for item in value), key=repr)
    return str(value)


def to_chrome_trace(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a collector snapshot into a Chrome Trace Event Format dict.

    Timestamps are rebased to the earliest span so the viewer opens at
    t=0; counters and gauges ride along in ``otherData`` (the viewer
    shows them under Metadata).
    """
    spans = snapshot.get("spans", [])
    t0 = min((record["ts"] for record in spans), default=0.0)
    events: List[Dict[str, Any]] = []
    seen_pids = set()
    for record in spans:
        args = {str(k): _json_safe(v) for k, v in (record.get("tags") or {}).items()}
        if "error" in record:
            args["error"] = record["error"]
        args["span_id"] = record["id"]
        if record.get("parent") is not None:
            args["parent_id"] = record["parent"]
        events.append(
            {
                "name": record["name"],
                "cat": "repro",
                "ph": "X",
                "ts": (record["ts"] - t0) * 1e6,
                "dur": record["dur"] * 1e6,
                "pid": record["pid"],
                "tid": record["tid"],
                "args": args,
            }
        )
        seen_pids.add(record["pid"])
    for pid in sorted(seen_pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": snapshot.get("schema", SCHEMA_VERSION),
            "counters": snapshot.get("counters", {}),
            "gauges": snapshot.get("gauges", {}),
        },
    }


def write_chrome_trace(snapshot: Dict[str, Any], path: str) -> None:
    """Write ``snapshot`` as a ``chrome://tracing``-loadable JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            to_chrome_trace(snapshot), handle, indent=1, allow_nan=False
        )
        handle.write("\n")


def write_jsonl(snapshot: Dict[str, Any], path: str) -> None:
    """Write ``snapshot`` as a JSONL event log (one object per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {
                    "event": "meta",
                    "schema": snapshot.get("schema", SCHEMA_VERSION),
                    "spans": len(snapshot.get("spans", [])),
                }
            )
            + "\n"
        )
        for record in snapshot.get("spans", []):
            record = dict(record)
            if record.get("tags"):
                record["tags"] = {
                    str(k): _json_safe(v) for k, v in record["tags"].items()
                }
            handle.write(json.dumps({"event": "span", **record}, default=str) + "\n")
        handle.write(
            json.dumps({"event": "counters", **snapshot.get("counters", {})}) + "\n"
        )
        handle.write(
            json.dumps({"event": "gauges", **snapshot.get("gauges", {})}) + "\n"
        )


def _prometheus_name(name: str) -> str:
    """``subsystem.measure`` -> ``repro_subsystem_measure``."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{cleaned}"


def render_prometheus(
    snapshot: Dict[str, Any],
    extra_gauges: "Dict[str, float] | None" = None,
) -> str:
    """Render a collector snapshot in the Prometheus text exposition format.

    Counters become ``counter`` metrics, gauges become ``gauge`` metrics,
    both under a ``repro_`` prefix with dots mapped to underscores
    (``cache.hits`` -> ``repro_cache_hits``). ``extra_gauges`` lets a caller
    append point-in-time values that live outside the collector — the
    verification service reports queue depth, in-flight jobs and uptime this
    way. Spans are not exported; scrape ``/metrics``, not traces.
    """
    lines: List[str] = []
    for name, value in sorted((snapshot.get("counters") or {}).items()):
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    gauges = dict(snapshot.get("gauges") or {})
    gauges.update(extra_gauges or {})
    for name, value in sorted(gauges.items()):
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        value = float(value)
        rendered = str(int(value)) if value == int(value) else repr(value)
        lines.append(f"{metric} {rendered}")
    return "\n".join(lines) + "\n"


def _format_rows(rows: List[Dict[str, Any]]) -> List[str]:
    if not rows:
        return []
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    lines = ["  ".join(str(c).ljust(widths[c]) for c in columns)]
    lines.append("  ".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return lines


def summary_table(snapshot: Dict[str, Any]) -> str:
    """Human-readable summary: span timings by name, counters, gauges."""
    by_name: Dict[str, Dict[str, Any]] = {}
    for record in snapshot.get("spans", []):
        agg = by_name.setdefault(
            record["name"], {"count": 0, "total": 0.0, "max": 0.0, "errors": 0}
        )
        agg["count"] += 1
        agg["total"] += record["dur"]
        agg["max"] = max(agg["max"], record["dur"])
        if "error" in record:
            agg["errors"] += 1
    span_rows = [
        {
            "span": name,
            "count": agg["count"],
            "total_s": f"{agg['total']:.4f}",
            "mean_s": f"{agg['total'] / agg['count']:.4f}",
            "max_s": f"{agg['max']:.4f}",
            "errors": agg["errors"],
        }
        for name, agg in sorted(
            by_name.items(), key=lambda item: item[1]["total"], reverse=True
        )
    ]
    lines: List[str] = ["spans"]
    lines.extend(_format_rows(span_rows) or ["  (none)"])
    counters = snapshot.get("counters") or {}
    lines.append("")
    lines.append("counters")
    if counters:
        lines.extend(
            _format_rows(
                [{"counter": k, "value": v} for k, v in sorted(counters.items())]
            )
        )
    else:
        lines.append("  (none)")
    gauges = snapshot.get("gauges") or {}
    lines.append("")
    lines.append("gauges")
    if gauges:
        lines.extend(
            _format_rows([{"gauge": k, "max": v} for k, v in sorted(gauges.items())])
        )
    else:
        lines.append("  (none)")
    return "\n".join(lines)
