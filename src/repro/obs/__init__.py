"""Pipeline telemetry: hierarchical spans, work metrics, trace exporters.

Zero-dependency observability for the abstraction/verification stack.
Three layers, all importable from this package:

- :mod:`repro.obs.spans` — ``span()`` context manager / ``traced()``
  decorator with contextvars-based nesting, a thread-safe per-process
  :class:`TraceCollector`, and snapshot/merge for worker-pool handoff;
- :mod:`repro.obs.metrics` — canonical counter/gauge names for algebraic
  work (Buchberger pairs, division steps, SAT conflicts, BDD nodes, ...);
- :mod:`repro.obs.export` / :mod:`repro.obs.schema` /
  :mod:`repro.obs.report` — Chrome-trace + JSONL exporters, trace
  validation, and batch run-log aggregation (``repro report``).

Tracing is off by default and the instrumentation left in library hot
paths costs one global read per call site when disabled (guarded by
``benchmarks/bench_obs_overhead.py``). Typical use::

    from repro import obs

    collector = obs.enable()
    with obs.span("verify", k=32):
        ...instrumented pipeline runs here...
    obs.disable()
    obs.write_chrome_trace(collector.snapshot(), "out.trace.json")
"""

from . import metrics, redtrace
from .costmodel import CostEstimator, CostModel, fit_from_run_logs
from .export import (
    render_prometheus,
    summary_table,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .report import aggregate_run_log, format_report
from .schema import (
    validate_redtrace,
    validate_redtrace_file,
    validate_trace,
    validate_trace_file,
)
from .spans import (
    SCHEMA_VERSION,
    TraceCollector,
    active_collector,
    counter_add,
    disable,
    enable,
    gauge_max,
    is_enabled,
    reset_context,
    span,
    traced,
)

__all__ = [
    "CostEstimator",
    "CostModel",
    "SCHEMA_VERSION",
    "TraceCollector",
    "active_collector",
    "aggregate_run_log",
    "counter_add",
    "fit_from_run_logs",
    "disable",
    "enable",
    "format_report",
    "gauge_max",
    "is_enabled",
    "metrics",
    "redtrace",
    "render_prometheus",
    "reset_context",
    "span",
    "summary_table",
    "to_chrome_trace",
    "traced",
    "validate_redtrace",
    "validate_redtrace_file",
    "validate_trace",
    "validate_trace_file",
    "write_chrome_trace",
    "write_jsonl",
]
