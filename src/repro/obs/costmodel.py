"""Fitted per-phase cost models + online (op, k) runtime estimators.

Two complementary predictors live here, both feeding "how long will this
job take?" questions:

- :class:`CostModel` — an *offline* model fitted by least squares from
  accumulated batch run logs (``repro batch --log run.jsonl``). Features
  per job: gate count, field width ``k`` and cone count; one regression
  per op type for the total, plus one per recorded phase
  (``parse``/``rato_setup``/``spoly_reduction``/``coeff_match``). When an
  op has too few samples for a stable fit the model falls back to
  per-(op, k) bucket means, then to the op mean. Persisted as JSON
  (``repro costmodel fit``), consumed by the batch runner's
  shortest-predicted-first ordering, the service Retry-After estimator
  and ``repro report``'s predicted-vs-actual section.
- :class:`CostEstimator` — the *online* half used by the service
  scheduler: an EMA per (op, k) bucket with a global EMA as cold-start
  fallback (so a burst of k=16 adds no longer poisons the estimate for
  k=64 multiplies), optionally seeded by a fitted :class:`CostModel`.

Everything is pure stdlib: the normal-equations solve is a tiny Gaussian
elimination, which is plenty for 4 features.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "COSTMODEL_VERSION",
    "FEATURE_NAMES",
    "CostEstimator",
    "CostModel",
    "collect_job_records",
    "fit_from_run_logs",
]

COSTMODEL_VERSION = "repro-costmodel-v1"

# Design-matrix columns, in order. ``intercept`` is the constant 1.
FEATURE_NAMES = ("intercept", "gates", "k", "cones")

# Least-squares needs comfortably more samples than features to produce
# coefficients worth trusting.
_MIN_FIT_SAMPLES = len(FEATURE_NAMES) + 2

_MIN_PREDICTION = 1e-4


def _solve(matrix: List[List[float]], rhs: List[float]) -> Optional[List[float]]:
    """Gaussian elimination with partial pivoting; None when singular."""
    n = len(rhs)
    aug = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot][col]) < 1e-12:
            return None
        aug[col], aug[pivot] = aug[pivot], aug[col]
        for row in range(n):
            if row == col:
                continue
            factor = aug[row][col] / aug[col][col]
            if factor:
                for j in range(col, n + 1):
                    aug[row][j] -= factor * aug[col][j]
    return [aug[i][n] / aug[i][i] for i in range(n)]


def _least_squares(
    rows: Sequence[Sequence[float]], targets: Sequence[float], ridge: float = 1e-9
) -> Optional[List[float]]:
    """Solve ``min ||X b - y||`` via ridge-damped normal equations."""
    if not rows:
        return None
    n_features = len(rows[0])
    xtx = [[0.0] * n_features for _ in range(n_features)]
    xty = [0.0] * n_features
    for row, y in zip(rows, targets):
        for i in range(n_features):
            xty[i] += row[i] * y
            for j in range(n_features):
                xtx[i][j] += row[i] * row[j]
    for i in range(n_features):
        xtx[i][i] += ridge
    return _solve(xtx, xty)


def _features(record: Dict[str, Any]) -> List[float]:
    return [
        1.0,
        float(record.get("gates") or 0),
        float(record.get("k") or 0),
        float(record.get("cones") or 0),
    ]


class CostModel:
    """Per-op least-squares timing model with bucket-mean fallbacks."""

    def __init__(self, ops: Dict[str, Dict[str, Any]], fitted_from: int = 0):
        self.ops = ops
        self.fitted_from = fitted_from

    # -- fitting -------------------------------------------------------------

    @classmethod
    def fit(cls, records: Iterable[Dict[str, Any]]) -> "CostModel":
        """Fit from job records (each: op/type, seconds, k/gates/cones,
        optional phases dict of per-phase seconds)."""
        by_op: Dict[str, List[Dict[str, Any]]] = {}
        total = 0
        for record in records:
            op = record.get("op") or record.get("type")
            seconds = record.get("seconds")
            if not op or not isinstance(seconds, (int, float)):
                continue
            by_op.setdefault(str(op), []).append(record)
            total += 1

        ops: Dict[str, Dict[str, Any]] = {}
        for op, group in sorted(by_op.items()):
            seconds = [float(r["seconds"]) for r in group]
            buckets: Dict[str, Dict[str, float]] = {}
            for r in group:
                k = r.get("k")
                if k is None:
                    continue
                slot = buckets.setdefault(str(int(k)), {"sum": 0.0, "n": 0})
                slot["sum"] += float(r["seconds"])
                slot["n"] += 1
            coef: Dict[str, List[float]] = {}
            rsq: Dict[str, float] = {}
            # Total-runtime regression, then one per phase that appears.
            targets: Dict[str, List[Tuple[List[float], float]]] = {
                "total": [(_features(r), float(r["seconds"])) for r in group]
            }
            for r in group:
                for phase, phase_seconds in (r.get("phases") or {}).items():
                    if isinstance(phase_seconds, (int, float)):
                        targets.setdefault(phase, []).append(
                            (_features(r), float(phase_seconds))
                        )
            for name, pairs in targets.items():
                if len(pairs) < _MIN_FIT_SAMPLES:
                    continue
                rows = [p[0] for p in pairs]
                ys = [p[1] for p in pairs]
                solved = _least_squares(rows, ys)
                if solved is None:
                    continue
                coef[name] = [round(c, 12) for c in solved]
                rsq[name] = round(_r_squared(rows, ys, solved), 6)
            ops[op] = {
                "n": len(group),
                "mean": sum(seconds) / len(seconds),
                "buckets": {
                    k: {"mean": v["sum"] / v["n"], "n": int(v["n"])}
                    for k, v in sorted(buckets.items(), key=lambda kv: int(kv[0]))
                },
                "coef": coef,
                "r2": rsq,
            }
        return cls(ops, fitted_from=total)

    # -- prediction ----------------------------------------------------------

    def predict(
        self,
        op: str,
        k: Optional[int] = None,
        gates: Optional[int] = None,
        cones: Optional[int] = None,
        phase: str = "total",
    ) -> Optional[float]:
        """Predicted seconds, or None when the model knows nothing of op.

        The regression is only used when ``gates`` is known (manifest-time
        callers usually only know ``k``); otherwise the (op, k) bucket
        mean answers, then the op mean.
        """
        entry = self.ops.get(op)
        if entry is None:
            return None
        coef = (entry.get("coef") or {}).get(phase)
        if coef is not None and gates is not None:
            features = _features({"gates": gates, "k": k, "cones": cones})
            value = sum(c * f for c, f in zip(coef, features))
            return max(_MIN_PREDICTION, value)
        if phase != "total":
            return None
        if k is not None:
            bucket = (entry.get("buckets") or {}).get(str(int(k)))
            if bucket:
                return max(_MIN_PREDICTION, float(bucket["mean"]))
        mean = entry.get("mean")
        if isinstance(mean, (int, float)):
            return max(_MIN_PREDICTION, float(mean))
        return None

    def bucket_mean(self, op: str, k: Optional[int]) -> Optional[float]:
        """The raw (op, k) bucket mean, if that bucket was ever observed."""
        entry = self.ops.get(op)
        if entry is None or k is None:
            return None
        bucket = (entry.get("buckets") or {}).get(str(int(k)))
        return float(bucket["mean"]) if bucket else None

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": COSTMODEL_VERSION,
            "features": list(FEATURE_NAMES),
            "fitted_from": self.fitted_from,
            "ops": self.ops,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "CostModel":
        version = doc.get("version")
        if version != COSTMODEL_VERSION:
            raise ValueError(
                f"unsupported cost model version {version!r} "
                f"(expected {COSTMODEL_VERSION!r})"
            )
        ops = doc.get("ops")
        if not isinstance(ops, dict):
            raise ValueError("cost model document has no 'ops' mapping")
        return cls(ops, fitted_from=int(doc.get("fitted_from") or 0))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "CostModel":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def _r_squared(
    rows: Sequence[Sequence[float]], ys: Sequence[float], coef: Sequence[float]
) -> float:
    mean = sum(ys) / len(ys)
    ss_tot = sum((y - mean) ** 2 for y in ys)
    ss_res = sum(
        (y - sum(c * f for c, f in zip(coef, row))) ** 2
        for row, y in zip(rows, ys)
    )
    if ss_tot <= 0:
        return 1.0 if ss_res <= 1e-18 else 0.0
    return 1.0 - ss_res / ss_tot


# -- run-log ingestion -------------------------------------------------------


def collect_job_records(paths: Iterable[str]) -> List[Dict[str, Any]]:
    """Pull fit-ready job records out of batch run logs (JSONL).

    Keeps only completed jobs with a measured runtime; carries the
    feature fields (k/gates/cones) and per-phase timings through.
    """
    records: List[Dict[str, Any]] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if doc.get("event") != "job" or doc.get("status") != "ok":
                    continue
                seconds = doc.get("seconds")
                if not isinstance(seconds, (int, float)):
                    continue
                records.append(
                    {
                        "op": doc.get("type"),
                        "seconds": float(seconds),
                        "k": doc.get("k"),
                        "gates": doc.get("gates"),
                        "cones": doc.get("cones"),
                        "phases": doc.get("phases") or {},
                    }
                )
    return records


def fit_from_run_logs(paths: Iterable[str]) -> CostModel:
    return CostModel.fit(collect_job_records(paths))


# -- online estimation (service scheduler) -----------------------------------


class CostEstimator:
    """Per-(op, k) EMA job-cost buckets with a global EMA fallback.

    The service scheduler observes every finished job here and asks for
    estimates when computing Retry-After hints. A bucket answers once it
    has seen at least one job; before that the fitted model (if any)
    answers; the global EMA is the cold-start fallback of last resort.
    ``estimate`` returns ``(seconds, source)`` with source one of
    ``"bucket"``, ``"model"``, ``"global"`` so callers can count
    fallbacks.
    """

    _ALPHA = 0.2

    def __init__(
        self,
        default_seconds: float = 0.5,
        model: Optional[CostModel] = None,
    ):
        self.model = model
        self._global = default_seconds
        self._buckets: Dict[Tuple[str, Optional[int]], float] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(op: str, k: Optional[Any]) -> Tuple[str, Optional[int]]:
        try:
            return (op, int(k)) if k is not None else (op, None)
        except (TypeError, ValueError):
            return (op, None)

    def observe(self, op: str, k: Optional[Any], seconds: float) -> None:
        key = self._key(op, k)
        with self._lock:
            previous = self._buckets.get(key)
            if previous is None:
                self._buckets[key] = seconds
            else:
                self._buckets[key] = (1 - self._ALPHA) * previous + (
                    self._ALPHA * seconds
                )
            self._global = (1 - self._ALPHA) * self._global + self._ALPHA * seconds

    def estimate(self, op: str, k: Optional[Any] = None) -> Tuple[float, str]:
        key = self._key(op, k)
        with self._lock:
            bucketed = self._buckets.get(key)
            global_ema = self._global
        if bucketed is not None:
            return bucketed, "bucket"
        if self.model is not None:
            predicted = self.model.predict(op, k=key[1])
            if predicted is not None:
                return predicted, "model"
        return global_ema, "global"

    def global_estimate(self) -> float:
        with self._lock:
            return self._global
