"""Trace-file schema validation (zero-dependency, CI-friendly).

Validates the Chrome Trace Event Format documents written by
:func:`repro.obs.export.write_chrome_trace` without pulling in a JSON
Schema library: :func:`validate_trace` returns a list of human-readable
problems (empty == valid), and running the module validates a file and
exits nonzero on failure::

    python -m repro.obs.schema out.trace.json

CI runs exactly that against a freshly generated trace so exporter
regressions fail the build rather than silently producing files the
trace viewer rejects.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional

from .spans import SCHEMA_VERSION

__all__ = ["validate_trace", "validate_trace_file", "main"]

_ALLOWED_PHASES = {"X", "M", "B", "E", "C", "i"}


def _check_event(event: Any, index: int, errors: List[str]) -> None:
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        errors.append(f"{where}: must be an object, got {type(event).__name__}")
        return
    name = event.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: 'name' must be a non-empty string")
    ph = event.get("ph")
    if ph not in _ALLOWED_PHASES:
        errors.append(f"{where}: 'ph' must be one of {sorted(_ALLOWED_PHASES)}, got {ph!r}")
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int):
            errors.append(f"{where}: {key!r} must be an integer")
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        errors.append(f"{where}: 'ts' must be a non-negative number")
    if ph == "X":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"{where}: complete ('X') events need a non-negative 'dur'")
    args = event.get("args")
    if args is not None and not isinstance(args, dict):
        errors.append(f"{where}: 'args' must be an object when present")


def validate_trace(doc: Any) -> List[str]:
    """Validate a Chrome-trace document; returns a list of problems."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be a JSON object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append("'traceEvents' must be a list")
        events = []
    for index, event in enumerate(events):
        _check_event(event, index, errors)
    other = doc.get("otherData")
    if other is not None:
        if not isinstance(other, dict):
            errors.append("'otherData' must be an object when present")
        else:
            schema = other.get("schema")
            if schema is not None and schema != SCHEMA_VERSION:
                errors.append(
                    f"'otherData.schema' is {schema!r}; this validator expects "
                    f"{SCHEMA_VERSION!r}"
                )
            for key in ("counters", "gauges"):
                table = other.get(key)
                if table is None:
                    continue
                if not isinstance(table, dict) or any(
                    not isinstance(v, (int, float)) for v in table.values()
                ):
                    errors.append(f"'otherData.{key}' must map names to numbers")
    return errors


def validate_trace_file(path: str) -> List[str]:
    """Load ``path`` as JSON and validate it as a Chrome trace."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"{path} is not valid JSON: {exc}"]
    return validate_trace(doc)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: python -m repro.obs.schema TRACE.json ...", file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        errors = validate_trace_file(path)
        if errors:
            for error in errors:
                print(f"invalid: {error}", file=sys.stderr)
            status = 1
            continue
        with open(path, "r", encoding="utf-8") as handle:
            doc: Dict[str, Any] = json.load(handle)
        spans = sum(1 for e in doc.get("traceEvents", []) if e.get("ph") == "X")
        print(f"ok: {path} ({spans} span event(s))")
    return status


if __name__ == "__main__":
    sys.exit(main())
