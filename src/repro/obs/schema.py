"""Trace-file schema validation (zero-dependency, CI-friendly).

Validates the two trace formats this repo writes without pulling in a
JSON Schema library:

- Chrome Trace Event Format documents from
  :func:`repro.obs.export.write_chrome_trace` (:func:`validate_trace`);
- ``REDTRACE/1`` JSONL reduction traces from
  :mod:`repro.obs.redtrace` (:func:`validate_redtrace`) — header first
  with the format version, known event kinds only, strictly increasing
  sequence numbers (gaps are legal: the daemon's ring writer drops old
  events).

Each validator returns a list of human-readable problems (empty ==
valid), and running the module sniffs the format per file and exits
nonzero on failure::

    python -m repro.obs.schema out.trace.json run.redtrace

CI runs exactly that against freshly generated traces so exporter
regressions fail the build rather than silently producing files the
trace viewer (or ``repro replay``) rejects.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional

from .redtrace import EVENT_KINDS, REDTRACE_VERSION
from .spans import SCHEMA_VERSION

__all__ = [
    "validate_redtrace",
    "validate_redtrace_file",
    "validate_trace",
    "validate_trace_file",
    "main",
]

_ALLOWED_PHASES = {"X", "M", "B", "E", "C", "i"}


def _check_event(event: Any, index: int, errors: List[str]) -> None:
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        errors.append(f"{where}: must be an object, got {type(event).__name__}")
        return
    name = event.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: 'name' must be a non-empty string")
    ph = event.get("ph")
    if ph not in _ALLOWED_PHASES:
        errors.append(f"{where}: 'ph' must be one of {sorted(_ALLOWED_PHASES)}, got {ph!r}")
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int):
            errors.append(f"{where}: {key!r} must be an integer")
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        errors.append(f"{where}: 'ts' must be a non-negative number")
    if ph == "X":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"{where}: complete ('X') events need a non-negative 'dur'")
    args = event.get("args")
    if args is not None and not isinstance(args, dict):
        errors.append(f"{where}: 'args' must be an object when present")


def validate_trace(doc: Any) -> List[str]:
    """Validate a Chrome-trace document; returns a list of problems."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be a JSON object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append("'traceEvents' must be a list")
        events = []
    for index, event in enumerate(events):
        _check_event(event, index, errors)
    other = doc.get("otherData")
    if other is not None:
        if not isinstance(other, dict):
            errors.append("'otherData' must be an object when present")
        else:
            schema = other.get("schema")
            if schema is not None and schema != SCHEMA_VERSION:
                errors.append(
                    f"'otherData.schema' is {schema!r}; this validator expects "
                    f"{SCHEMA_VERSION!r}"
                )
            for key in ("counters", "gauges"):
                table = other.get(key)
                if table is None:
                    continue
                if not isinstance(table, dict) or any(
                    not isinstance(v, (int, float)) for v in table.values()
                ):
                    errors.append(f"'otherData.{key}' must map names to numbers")
    return errors


def validate_trace_file(path: str) -> List[str]:
    """Load ``path`` as JSON and validate it as a Chrome trace."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"{path} is not valid JSON: {exc}"]
    return validate_trace(doc)


def validate_redtrace(lines: List[str], where: str = "trace") -> List[str]:
    """Validate REDTRACE JSONL content; returns a list of problems.

    ``lines`` are raw text lines (blank ones are ignored). Checks: every
    line is a JSON object with a known ``ev`` kind; the first record is a
    ``header`` carrying ``"redtrace": "REDTRACE/1"`` at seq 0; ``seq``
    values are strictly increasing integers (gaps allowed — the daemon's
    ring mode drops old events but never reorders them).
    """
    errors: List[str] = []
    events: List[Dict[str, Any]] = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}:{number}: not valid JSON: {exc}")
            continue
        if not isinstance(record, dict):
            errors.append(f"{where}:{number}: event must be a JSON object")
            continue
        kind = record.get("ev")
        if kind not in EVENT_KINDS:
            errors.append(
                f"{where}:{number}: unknown event kind {kind!r} "
                f"(known: {sorted(EVENT_KINDS)})"
            )
        seq = record.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            errors.append(f"{where}:{number}: 'seq' must be a non-negative integer")
        events.append(record)

    if not events:
        errors.append(f"{where}: empty trace (no event records)")
        return errors
    head = events[0]
    if head.get("ev") != "header":
        errors.append(f"{where}: first record must be the 'header' event")
    else:
        version = head.get("redtrace")
        if version is None:
            errors.append(f"{where}: header is missing the 'redtrace' version field")
        elif version != REDTRACE_VERSION:
            errors.append(
                f"{where}: header version is {version!r}; this validator "
                f"expects {REDTRACE_VERSION!r}"
            )
        if head.get("seq") != 0:
            errors.append(f"{where}: header must carry seq 0")
    previous: Optional[int] = None
    for index, record in enumerate(events):
        seq = record.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool):
            continue
        if previous is not None and seq <= previous:
            errors.append(
                f"{where}: out-of-order sequence number at record {index}: "
                f"seq {seq} after seq {previous}"
            )
        previous = seq
    return errors


def validate_redtrace_file(path: str) -> List[str]:
    """Read ``path`` and validate it as a REDTRACE/1 JSONL trace."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    return validate_redtrace(lines, where=path)


def _sniff_redtrace(path: str) -> bool:
    """True when ``path`` looks like JSONL event records (not one JSON doc).

    A Chrome trace is a single multi-line JSON document, so its first
    line alone does not parse; a REDTRACE file's first line is a complete
    object (normally the header with a ``redtrace`` key, but any ``ev``
    record sniffs too so that headerless files are *rejected by the
    redtrace validator* rather than misread as Chrome traces).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    first = json.loads(line)
                except json.JSONDecodeError:
                    return False
                return isinstance(first, dict) and (
                    "redtrace" in first or "ev" in first
                )
    except OSError:
        return False
    return False


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(
            "usage: python -m repro.obs.schema TRACE.json|TRACE.redtrace ...",
            file=sys.stderr,
        )
        return 2
    status = 0
    for path in argv:
        if path.endswith(".redtrace") or _sniff_redtrace(path):
            errors = validate_redtrace_file(path)
            if errors:
                for error in errors:
                    print(f"invalid: {error}", file=sys.stderr)
                status = 1
                continue
            with open(path, "r", encoding="utf-8") as handle:
                count = sum(1 for line in handle if line.strip())
            print(f"ok: {path} ({count} redtrace event(s))")
            continue
        errors = validate_trace_file(path)
        if errors:
            for error in errors:
                print(f"invalid: {error}", file=sys.stderr)
            status = 1
            continue
        with open(path, "r", encoding="utf-8") as handle:
            doc: Dict[str, Any] = json.load(handle)
        spans = sum(1 for e in doc.get("traceEvents", []) if e.get("ph") == "X")
        print(f"ok: {path} ({spans} span event(s))")
    return status


if __name__ == "__main__":
    sys.exit(main())
