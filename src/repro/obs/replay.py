"""Deterministic re-execution of REDTRACE recordings (``repro replay``).

A REDTRACE header is self-contained: it embeds the netlist text(s), their
SHA-256 digests and every parameter the original run was launched with
(op, field, seed, jobs, ...). Replay rebuilds the circuits from the
embedded text, re-runs the same engine entry point with an in-memory
recorder, and — under ``--diff`` — compares the fresh event stream
against the recorded one record-by-record. Events carry no timestamps
and the engine iterates in deterministic orders (the parallel cone merge
sorts by bit index), so the byte-identical-replay contract holds: any
divergence means the engine made a *different decision*, which is exactly
what a kernel rewrite or distribution scheme must not cause.

Comparison canonicalizes each event as sorted-key JSON with the
wall-clock header fields (:data:`repro.obs.redtrace.REPLAY_EXEMPT_FIELDS`)
stripped, which also erases the tuple-vs-list difference between a fresh
run's monomials and their JSON round trip.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from ..circuits import read_netlist_text
from ..gf import GF2m
from . import redtrace

__all__ = [
    "ReplayError",
    "canonical_event",
    "diff_events",
    "execute_header",
    "netlist_sha256",
    "replay_file",
]


class ReplayError(ValueError):
    """A trace cannot be replayed (bad header, missing params, bad hash)."""


def netlist_sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def canonical_event(event: Dict[str, Any]) -> str:
    """Stable comparison form: sorted-key JSON minus replay-exempt fields."""
    slim = {
        key: value
        for key, value in event.items()
        if key not in redtrace.REPLAY_EXEMPT_FIELDS
    }
    return json.dumps(slim, sort_keys=True)


def diff_events(
    recorded: List[Dict[str, Any]], fresh: List[Dict[str, Any]]
) -> Optional[Tuple[int, Optional[Dict], Optional[Dict]]]:
    """First divergence between two event streams, or None when identical.

    Returns ``(index, recorded_event, fresh_event)``; one side is None
    when a stream ended early.
    """
    for index in range(max(len(recorded), len(fresh))):
        a = recorded[index] if index < len(recorded) else None
        b = fresh[index] if index < len(fresh) else None
        if a is None or b is None:
            return index, a, b
        if canonical_event(a) != canonical_event(b):
            return index, a, b
    return None


def _require(params: Dict[str, Any], key: str) -> Any:
    value = params.get(key)
    if value is None:
        raise ReplayError(f"trace header params are missing {key!r}")
    return value


def _field_from(params: Dict[str, Any]) -> GF2m:
    k = int(_require(params, "k"))
    modulus = params.get("modulus")
    if isinstance(modulus, str):
        modulus = int(modulus, 0)
    return GF2m(k, modulus=modulus)


def _checked_circuit(params: Dict[str, Any], key: str):
    text = _require(params, f"{key}_text")
    expected = params.get(f"{key}_sha256")
    if expected is not None and netlist_sha256(text) != expected:
        raise ReplayError(
            f"embedded {key} netlist does not match its recorded sha256 — "
            "the trace file is corrupted"
        )
    return read_netlist_text(text, name=params.get(key) or f"<{key}>")


def execute_header(header: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Re-run the operation a REDTRACE header describes; returns the fresh
    event stream (header and end records included).

    Only ``abstraction``-method runs are replayable — the bit-level
    cross-checkers (sat/bdd/fraig) emit no reduction events.
    """
    op = header.get("op")
    params = header.get("params") or {}
    method = params.get("method", "abstraction")
    if method != "abstraction":
        raise ReplayError(
            f"only abstraction-method traces are replayable, got {method!r}"
        )
    if redtrace.active_writer() is not None:
        raise ReplayError("cannot replay while another recording is active")

    from ..core import extract_canonical
    from ..verify import verify_equivalence

    # Whether the recording ran the structural prepass is part of the
    # recorded computation (it changes the circuit the reduction sees), so
    # replay honors the stored flag instead of the live REPRO_PREPASS
    # environment. Traces recorded before the prepass existed carry no
    # "prepass" key and replay raw, exactly as they ran.
    prepass = bool(params.get("prepass", False))
    field = _field_from(params)
    writer = redtrace.start_recording(op=op, params=params, ring=False)
    try:
        if op == "verify":
            spec = _checked_circuit(params, "spec")
            impl = _checked_circuit(params, "impl")
            verify_equivalence(
                spec,
                impl,
                field,
                seed=params.get("seed"),
                jobs=params.get("jobs"),
                prepass=prepass,
            )
        elif op == "abstract":
            circuit = _checked_circuit(params, "netlist")
            if prepass:
                from ..prepass import PrepassError, apply_prepass

                try:
                    circuit = apply_prepass(circuit).circuit
                except PrepassError:
                    pass  # guard tripped: replay against the raw netlist
            extract_canonical(
                circuit,
                field,
                output_word=params.get("output_word"),
                case2=params.get("case2", "linearized"),
                jobs=params.get("jobs"),
            )
        else:
            raise ReplayError(f"cannot replay op {op!r}")
    finally:
        # close() appends the trailing `end` record; an in-memory writer
        # keeps the whole stream buffered, so collect after stopping.
        redtrace.stop_recording()
    return writer.events()


def replay_file(path: str) -> "Tuple[List[Dict], List[Dict]]":
    """Load + validate a trace file and re-execute it.

    Returns ``(recorded_events, fresh_events)``. Raises
    :class:`ReplayError` on a structurally invalid trace.
    """
    from .schema import validate_redtrace_file

    errors = validate_redtrace_file(path)
    if errors:
        raise ReplayError("; ".join(errors))
    recorded = redtrace.read_trace(path)
    fresh = execute_header(recorded[0])
    return recorded, fresh
