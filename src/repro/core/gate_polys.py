"""Gate-level Boolean operators as polynomials over F2 ⊂ F_{2^k}.

Section 4 of the paper models every gate as a polynomial relation
``output + tail(inputs) = 0`` in the ring ``F_{2^k}[...]`` (all bit
variables restricted to F2, i.e. idempotent):

====  =================================
AND   z + x*y           (x*y: product)
XOR   z + x + y
OR    z + x + y + x*y
NOT   z + x + 1
====  =================================

n-ary gates expand the same way (OR via De Morgan:
``OR(xs) = 1 + prod(1 + x)``). Tails are produced in the sparse
idempotent-monomial form used by the substitution engine: a dict mapping
``frozenset(variable ids)`` to a field coefficient.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Sequence

from ..circuits import Gate, GateType

__all__ = ["gate_tail", "BitTerms"]

#: Sparse polynomial in idempotent (bit) variables:
#: ``{frozenset(var_ids): coefficient}`` with nonzero field coefficients.
BitTerms = Dict[FrozenSet[int], int]

_EMPTY: FrozenSet[int] = frozenset()


def _xor_term(terms: BitTerms, monomial: FrozenSet[int], coeff: int = 1) -> None:
    merged = terms.get(monomial, 0) ^ coeff
    if merged:
        terms[monomial] = merged
    else:
        del terms[monomial]


def _product(ids: Sequence[int]) -> BitTerms:
    return {frozenset(ids): 1}


def _sum(ids: Sequence[int]) -> BitTerms:
    terms: BitTerms = {}
    for i in ids:
        _xor_term(terms, frozenset((i,)))
    return terms


def _complement(terms: BitTerms) -> BitTerms:
    result = dict(terms)
    _xor_term(result, _EMPTY)
    return result


def _or_terms(ids: Sequence[int]) -> BitTerms:
    # OR(xs) = 1 + prod(1 + x_i): expand the product of (1 + x_i) terms.
    product: BitTerms = {_EMPTY: 1}
    for i in ids:
        expanded: BitTerms = {}
        for monomial, coeff in product.items():
            _xor_term(expanded, monomial, coeff)  # * 1
            _xor_term(expanded, monomial | {i}, coeff)  # * x_i (idempotent)
        product = expanded
    return _complement(product)


def gate_tail(gate: Gate, var_ids: Mapping[str, int]) -> BitTerms:
    """The tail polynomial ``P`` of the gate relation ``output + P = 0``.

    With the refined abstraction term order, every gate polynomial is
    ``x_out + P(inputs)`` with ``lt = x_out`` (Sec. 5); this returns ``P``
    with input nets translated through ``var_ids``.
    """
    ids = [var_ids[n] for n in gate.inputs]
    gate_type = gate.gate_type
    if gate_type is GateType.AND:
        return _product(ids)
    if gate_type is GateType.XOR:
        return _sum(ids)
    if gate_type is GateType.OR:
        return _or_terms(ids)
    if gate_type is GateType.NAND:
        return _complement(_product(ids))
    if gate_type is GateType.NOR:
        return _complement(_or_terms(ids))
    if gate_type is GateType.XNOR:
        return _complement(_sum(ids))
    if gate_type is GateType.NOT:
        return _complement(_product(ids))  # 1 + x
    if gate_type is GateType.BUF:
        return _product(ids)  # x
    if gate_type is GateType.CONST0:
        return {}
    if gate_type is GateType.CONST1:
        return {_EMPTY: 1}
    raise ValueError(f"unknown gate type {gate_type!r}")
