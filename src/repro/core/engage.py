"""Cost-model-driven engage policy for cone-sliced parallel abstraction.

The old gate was blunt: "single CPU → serial, unless REPRO_PARALLEL_FORCE".
This module replaces it with an actual cost comparison. Parallel pays off
when the work it removes from the critical path exceeds what dispatch
costs:

    predicted_serial * (1 - 1/p)  >  margin * dispatch_overhead

with ``p = min(workers, cpu_count)`` the effective parallelism. On a
single-CPU host the left side is zero and the decision degenerates to the
old clamp — but now for the stated reason, and with the same formula that
engages eagerly on a 32-core box where overhead is amortised 31/32 away.

``predicted_serial`` comes from, in order of preference:

1. a fitted :class:`~repro.obs.costmodel.CostModel` (``REPRO_COST_MODEL``
   names the JSON; ``repro costmodel fit`` produces it) queried for the
   ``abstract`` op at this ``(k, gates, cones)``;
2. the in-process EMA of measured serial abstraction seconds-per-gate
   (updated by every serial extraction, so a resident service self-tunes);
3. a cold-start constant (~3 µs/gate, the measured Mastrovito rate).

``dispatch_overhead`` is the plane's measured per-map EMA (calibrated with
a no-op map before the first real one); the legacy fork pool is priced at
its measured fork+warm+teardown baseline.

``REPRO_PARALLEL_FORCE`` stays as the override: ``1`` always engages,
``0`` never does.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Dict, Optional, Tuple

from ..obs.costmodel import CostModel

__all__ = ["note_serial_run", "parallel_engage", "predict_serial_seconds"]

logger = logging.getLogger("repro.core")

#: Cold-start serial abstraction rate: seconds per gate (measured on the
#: Mastrovito family; see BENCH_parallel.json's serial column).
_COLDSTART_SECONDS_PER_GATE = 3e-6

#: Engage only when the predicted critical-path saving beats overhead by
#: this factor — predictions are noisy, and a wrong "engage" costs real
#: wall clock while a wrong "serial" costs only the saving.
_DEFAULT_MARGIN = 2.0

#: Measured per-map cost of the legacy fork pool (fork + GF warm +
#: teardown) on the benchmark boxes; used when REPRO_WORKER_PLANE=0 since
#: the fork pool keeps no state to measure itself with.
_FORKPOOL_OVERHEAD_SECONDS = 0.25

_ALPHA = 0.3

_lock = threading.Lock()
_rate_ema: Dict[int, float] = {}  # k -> seconds per gate
_model: Optional[CostModel] = None
_model_path_tried: Optional[str] = None


def _forced() -> Optional[bool]:
    raw = os.environ.get("REPRO_PARALLEL_FORCE")
    if raw is None or raw == "":
        return None
    return raw.lower() not in ("0", "false", "off")


def _margin() -> float:
    try:
        return float(os.environ.get("REPRO_PARALLEL_ENGAGE_MARGIN", _DEFAULT_MARGIN))
    except ValueError:
        return _DEFAULT_MARGIN


def _fitted_model() -> Optional[CostModel]:
    """The REPRO_COST_MODEL model, loaded once per distinct path."""
    global _model, _model_path_tried
    path = os.environ.get("REPRO_COST_MODEL")
    if not path:
        return None
    with _lock:
        if path == _model_path_tried:
            return _model
        _model_path_tried = path
        try:
            _model = CostModel.load(path)
        except (OSError, ValueError, KeyError) as exc:
            logger.warning("cost model %s not loaded (%s)", path, exc)
            _model = None
        return _model


def note_serial_run(k: int, gates: int, seconds: float) -> None:
    """Feed a measured serial abstraction into the per-k rate EMA."""
    if gates <= 0 or seconds <= 0:
        return
    rate = seconds / gates
    with _lock:
        previous = _rate_ema.get(k)
        _rate_ema[k] = (
            rate if previous is None else (1 - _ALPHA) * previous + _ALPHA * rate
        )


def predict_serial_seconds(
    k: int, gates: int, cones: Optional[int] = None
) -> Tuple[float, str]:
    """Predicted serial extraction seconds and the source of the estimate."""
    model = _fitted_model()
    if model is not None:
        predicted = model.predict("abstract", k=k, gates=gates, cones=cones)
        if predicted is not None:
            return predicted, "model"
    with _lock:
        rate = _rate_ema.get(k)
    if rate is not None:
        return rate * gates, "ema"
    return _COLDSTART_SECONDS_PER_GATE * gates, "coldstart"


def _dispatch_overhead(workers: int) -> float:
    from ..jobs.pool import pool_engine

    if pool_engine() == "forkpool":
        return _FORKPOOL_OVERHEAD_SECONDS
    from ..jobs.plane import PoolError, get_plane

    try:
        return get_plane().dispatch_overhead()
    except PoolError:
        return float("inf")


def parallel_engage(
    workers: int, gates: int, k: int, cones: Optional[int] = None
) -> Tuple[bool, str]:
    """Decide whether a cone-parallel map beats serial for this extraction.

    Returns ``(engage, reason)``; reasons are stable strings for logs and
    tests: ``forced`` / ``forced_off`` / ``no_parallelism`` /
    ``engaged`` / ``overhead_dominates``.
    """
    forced = _forced()
    if forced is True:
        return True, "forced"
    if forced is False:
        return False, "forced_off"
    effective = min(workers, os.cpu_count() or 1)
    if effective <= 1:
        # Zero removable critical path: the formula below can never engage,
        # so skip the overhead probe entirely.
        return False, "no_parallelism"
    predicted, source = predict_serial_seconds(k, gates, cones)
    saving = predicted * (1.0 - 1.0 / effective)
    overhead = _dispatch_overhead(workers)
    if saving > _margin() * overhead:
        return True, "engaged"
    logger.debug(
        "parallel abstraction not worth it: predicted serial %.4fs (%s), "
        "saving %.4fs at p=%d vs overhead %.4fs",
        predicted,
        source,
        saving,
        effective,
        overhead,
    )
    return False, "overhead_dominates"
