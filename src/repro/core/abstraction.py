"""Word-level abstraction via guided Gröbner-basis reduction (Sections 4-5).

Given a circuit computing ``Z = F(A, B, ...)`` over ``F_{2^k}``, derive the
unique canonical polynomial ``F``. By the Abstraction Theorem (Thm 4.2) a
reduced Gröbner basis of ``J + J_0`` under the abstraction term order
contains exactly one polynomial ``Z + G(A)`` and ``G`` is canonical
(Cor 4.1). Computing that full basis is hopeless for real circuits, so —
following Section 5 — the refined order (RATO) plus the product criterion
single out one critical pair ``(f_w, f_g)``, and the whole computation
collapses to ``Spoly(f_w, f_g) ->_{F, F0}+ r``: a cascade of per-net
substitutions performed by :class:`~repro.core.bitpoly.SubstitutionEngine`.

Two outcomes (Section 5, step 3):

- **Case 1** — ``r`` contains only word variables: ``r = Z + G(A)`` and we
  are done.
- **Case 2** — ``r`` retains primary-input bits. The paper finishes with a
  small reduced-GB computation on ``{r, input word relations} ∪ F_0``
  (``case2="groebner"`` here, faithful). The default ``case2="linearized"``
  reaches the same unique polynomial by substituting each leftover bit with
  its dual-basis coordinate polynomial ``a_i = sum_j (beta_i A)^{2^j}`` —
  algebraically equivalent by Cor 4.1 uniqueness, and polynomial-time.
"""

from __future__ import annotations

import heapq
import logging
import multiprocessing
import os
import time
from collections import Counter
from itertools import chain
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, FrozenSet, List, Optional

from .. import kernels
from ..algebra import (
    LexOrder,
    Polynomial,
    PolynomialRing,
    reduced_groebner_basis,
    vanishing_ideal,
)
from ..circuits import Circuit, FaninCone, GateType
from ..gf import GF2m, coordinate_coefficients, xor_accumulate
from ..obs import metrics, redtrace
from ..obs.spans import active_collector, span
from .bitpoly import SubstitutionEngine
from .engage import note_serial_run
from .gate_polys import gate_tail
from .rato import RatoOrdering, build_rato

__all__ = [
    "AbstractionResult",
    "AbstractionStats",
    "DEFAULT_PARALLEL_MIN_GATES",
    "abstract_circuit",
    "abstract_all_outputs",
    "extract_canonical",
    "reduce_through_gates",
    "word_ring_for",
]

logger = logging.getLogger("repro.core")


@dataclass
class AbstractionStats:
    """Cost counters for one abstraction run."""

    seconds: float = 0.0
    gate_count: int = 0
    substitutions: int = 0
    peak_terms: int = 0
    term_traffic: int = 0
    case: int = 1
    case2_method: Optional[str] = None
    remainder_bits: List[str] = dataclass_field(default_factory=list)
    # Parallel-path accounting; all zero/empty when the serial path ran.
    jobs: int = 0  # pool workers used (0 == serial)
    cones: int = 0
    cone_division_steps: List[int] = dataclass_field(default_factory=list)
    pool_idle_seconds: float = 0.0
    pool_utilization_pct: float = 0.0
    table_rebuilds: int = 0


@dataclass
class AbstractionResult:
    """The derived canonical word-level polynomial ``Z = G(words)``."""

    polynomial: Polynomial  # G, in a ring over the input words
    output_word: str
    input_words: List[str]
    ring: PolynomialRing
    stats: AbstractionStats

    def __str__(self) -> str:
        return f"{self.output_word} = {self.polynomial}"


def word_ring_for(field: GF2m, input_words: List[str]) -> PolynomialRing:
    """The ring ``F_{2^k}[input words]`` canonical polynomials live in."""
    return PolynomialRing(
        field, list(input_words), order=LexOrder(range(len(input_words)))
    )


def _case1_polynomial(
    engine: SubstitutionEngine,
    word_ring: PolynomialRing,
    id_to_word: Dict[int, str],
) -> Polynomial:
    data = {}
    for monomial, coeff in engine.terms.items():
        key = tuple(
            sorted((word_ring.index[id_to_word[var]], 1) for var in monomial)
        )
        data[key] = coeff
    return Polynomial(word_ring, data)


def _case2_linearized(
    engine: SubstitutionEngine,
    field: GF2m,
    word_ring: PolynomialRing,
    id_to_word: Dict[int, str],
    bit_owner: Dict[int, "tuple[str, int]"],
) -> Polynomial:
    """Eliminate leftover input bits with dual-basis coordinate polynomials.

    Works directly on term dictionaries: buggy circuits can produce dense
    canonical polynomials (up to q^n terms), so the expansion accumulates
    in place rather than through repeated immutable-polynomial additions.
    """
    mul = field.mul
    monomial_mul = word_ring.monomial_mul
    coord_cache: Dict[int, Dict] = {}

    def coordinate_terms(bit_id: int) -> Dict:
        cached = coord_cache.get(bit_id)
        if cached is None:
            word, position = bit_owner[bit_id]
            word_index = word_ring.index[word]
            coeffs = coordinate_coefficients(field, position)
            cached = {
                ((word_index, word_ring.fold_exponent(word_index, 1 << j)),): c
                for j, c in enumerate(coeffs)
                if c
            }
            coord_cache[bit_id] = cached
        return cached

    result: Dict = {}
    for monomial, coeff in engine.terms.items():
        partial: Dict = {(): coeff}
        for var in monomial:
            if var in id_to_word:
                factor = {((word_ring.index[id_to_word[var]], 1),): 1}
            else:
                factor = coordinate_terms(var)
            expanded: Dict = {}
            for m1, c1 in partial.items():
                for m2, c2 in factor.items():
                    key = monomial_mul(m1, m2)
                    c = c1 if c2 == 1 else mul(c1, c2)
                    merged = expanded.get(key, 0) ^ c
                    if merged:
                        expanded[key] = merged
                    else:
                        del expanded[key]
            partial = expanded
        for m, c in partial.items():
            merged = result.get(m, 0) ^ c
            if merged:
                result[m] = merged
            else:
                del result[m]
    return Polynomial(word_ring, result)


def _case2_groebner(
    engine: SubstitutionEngine,
    field: GF2m,
    circuit: Circuit,
    ordering: RatoOrdering,
    output_word: str,
    id_of: Dict[str, int],
) -> Polynomial:
    """Faithful Case 2: reduced GB of {r, word relations} ∪ vanishing polys.

    Returns ``G`` from the unique basis polynomial ``Z + G(words)``
    guaranteed by Corollary 4.1; the result ring has variables
    ``bits > Z > input words`` (lex).
    """
    bits = [b for word in ordering.input_words for b in circuit.input_words[word]]
    variables = bits + [output_word] + ordering.input_words
    domains = {b: 2 for b in bits}
    ring = PolynomialRing(
        field,
        variables,
        order=LexOrder(range(len(variables))),
        domains=domains,
        fold=False,  # honest free-ring arithmetic; J_0 enters as generators
    )

    # r = Z + (engine terms translated into the small ring).
    reverse = {id_of[name]: name for name in variables if name in id_of}
    data: Dict[tuple, int] = {((ring.index[output_word], 1),): 1}
    for monomial, coeff in engine.terms.items():
        key = tuple(sorted((ring.index[reverse[var]], 1) for var in monomial))
        data[key] = data.get(key, 0) ^ coeff
    r = Polynomial(ring, {m: c for m, c in data.items() if c})

    alpha_powers = field.alpha_powers()
    relations = []
    for word in ordering.input_words:
        terms = {((ring.index[word], 1),): 1}
        for i, bit in enumerate(circuit.input_words[word]):
            key = ((ring.index[bit], 1),)
            terms[key] = terms.get(key, 0) ^ alpha_powers[i]
        relations.append(Polynomial(ring, {m: c for m, c in terms.items() if c}))

    generators = [r] + relations + vanishing_ideal(ring)
    basis = reduced_groebner_basis(generators)
    z_index = ring.index[output_word]
    matches = [
        p for p in basis if p.leading_monomial() == ((z_index, 1),)
    ]
    if len(matches) != 1:
        raise RuntimeError(
            f"expected exactly one basis polynomial with leading term "
            f"{output_word}; found {len(matches)}"
        )
    return matches[0] + ring.var(output_word)


def _map_words(
    poly: Polynomial, word_ring: PolynomialRing
) -> Polynomial:
    """Re-home a polynomial that uses only word variables into ``word_ring``."""
    source = poly.ring
    data = {}
    for monomial, coeff in poly.terms.items():
        key = tuple(
            sorted((word_ring.index[source.variables[var]], exp) for var, exp in monomial)
        )
        data[key] = coeff
    return Polynomial(word_ring, data)


def _merge_sorted(a: tuple, b: tuple) -> tuple:
    """Union of two sorted tuples of distinct ints, kept sorted."""
    out: list = []
    i = j = 0
    la = len(a)
    lb = len(b)
    while i < la and j < lb:
        x = a[i]
        y = b[j]
        if x < y:
            out.append(x)
            i += 1
        elif y < x:
            out.append(y)
            j += 1
        else:
            out.append(x)
            i += 1
            j += 1
    if i < la:
        out.extend(a[i:])
    elif j < lb:
        out.extend(b[j:])
    return tuple(out)


def reduce_through_gates(
    circuit: Circuit,
    engine: SubstitutionEngine,
    ordering: RatoOrdering,
    word_relations: Optional[List[tuple]] = None,
) -> None:
    """Run the guided reduction: eliminate every gate variable from ``engine``.

    Repeatedly substitutes the highest-ranked gate variable present (smaller
    id == higher RATO rank). Under RATO tails only mention lower-ranked
    variables, so this is a single forward sweep; under an unrefined order
    re-introduced variables are re-scheduled, mirroring how plain lex
    division would thrash. Shared by the abstraction flow and the Lv-style
    ideal-membership baseline.

    The sweep runs on a compact monomial encoding rather than on the
    engine's frozensets. RATO ids place the gate nets in the dense prefix
    ``0..num_gates-1``, so a monomial splits into ``(mask, gates)``: the
    non-gate variables packed into an int bitmask (a few machine words —
    primary inputs and words only) and the gate variables as a small sorted
    tuple. Monomials are *staged* under their smallest gate variable — the
    next one the ascending-id schedule will substitute — so each elimination
    pops exactly the affected terms with no occurrence sets and no stale
    entries, and the product loop costs an int ``|`` plus a tiny tuple merge
    instead of a wide frozenset union. Gate-free products land in the
    remainder and are never rescanned. The result (and the engine's usual
    substitution counters) is written back to ``engine`` at the end.

    ``word_relations`` optionally appends trailing division steps by the
    input word relations, applied to the gate-free remainder while it is
    still in the compact encoding. Each entry is ``(var_id, tail_items)``
    with ``tail_items`` a list of ``(var_id, coeff)`` pairs; all ids must
    be non-gate variables. Counter accounting matches running the same
    steps through ``engine.substitute`` afterwards.
    """
    remainder, substitutions, traffic, peak = _reduce_to_masks(
        circuit, engine.terms, engine.field, ordering, word_relations
    )
    _write_back_masks(engine, remainder, len(ordering.gate_nets))
    engine.substitutions += substitutions
    engine.term_traffic += traffic
    if peak > engine.peak_terms:
        engine.peak_terms = peak


def _reduce_to_masks(
    circuit: Circuit,
    seed_terms: Dict[FrozenSet[int], int],
    field: GF2m,
    ordering: RatoOrdering,
    word_relations: Optional[List[tuple]] = None,
) -> "tuple[Dict[int, int], int, int, int]":
    """The sweep behind :func:`reduce_through_gates`, remainder kept packed.

    Takes the seed as a plain ``frozenset -> coeff`` dict and returns
    ``(remainder, substitutions, term_traffic, peak_terms)`` with the
    gate-free remainder still in mask encoding (``bit i`` == non-gate
    variable ``num_gates + i``). The per-cone parallel path calls this
    directly so cone remainders can travel between processes as packed
    ints instead of frozensets; :func:`reduce_through_gates` wraps it with
    the engine write-back.

    Dispatches to the batched kernel (:func:`_reduce_to_masks_batched`)
    unless ``REPRO_BATCH_KERNELS=0`` selects the retained legacy kernel.
    Both are term-for-term identical and emit byte-identical REDTRACE
    streams.
    """
    if kernels.batch_enabled():
        return _reduce_to_masks_batched(
            circuit, seed_terms, field, ordering, word_relations
        )
    return _reduce_to_masks_legacy(
        circuit, seed_terms, field, ordering, word_relations
    )


def _reduce_to_masks_legacy(
    circuit: Circuit,
    seed_terms: Dict[FrozenSet[int], int],
    field: GF2m,
    ordering: RatoOrdering,
    word_relations: Optional[List[tuple]] = None,
) -> "tuple[Dict[int, int], int, int, int]":
    """The pre-batching sweep, kept verbatim as the differential oracle."""
    id_of = ordering.var_ids
    num_gates = len(ordering.gate_nets)

    # Gates whose tail is a *single* monomial with coefficient 1 (AND, BUF —
    # the bulk of a multiplier netlist) never need a substitution step of
    # their own: their division step is a pure monomial rewrite that cannot
    # change term counts, so the gate variable is *resolved* — inlined into
    # every tail and seed monomial that mentions it as it is encoded. Only
    # multi-term gates (XOR, OR, NOT, ...) stay in the staged schedule.
    # Tails are built in topological order, so resolutions are transitive.
    # Gate ids are dense (0..num_gates-1), so the per-gate side tables are
    # flat lists, not dicts.
    resolved: list = [None] * num_gates

    def encode(monomial) -> "tuple[int, tuple]":
        mask = 0
        gs = ()
        for v in monomial:
            if v < num_gates:
                r = resolved[v]
                if r is None:
                    gs = _merge_sorted(gs, (v,)) if gs else (v,)
                else:
                    mask |= r[0]
                    if r[1]:
                        gs = _merge_sorted(gs, r[1]) if gs else r[1]
            else:
                mask |= 1 << (v - num_gates)
        return mask, gs

    # A second fusion handles XOR trees: a multi-term gate feeding exactly
    # one consumer (and not referenced by the seed) contributes its tail
    # *additively* inside that consumer's XOR, so its items are spliced in
    # at build time. A 32-input XOR tree then costs one 32-item
    # substitution instead of 31 cascaded 2-item ones.
    fanout = Counter(
        chain.from_iterable(g.inputs for g in circuit.topological_order())
    )
    pinned = [False] * num_gates
    for monomial in seed_terms:
        for v in monomial:
            if v < num_gates:
                pinned[v] = True

    # Tails in encoded form. AND/XOR are built directly without the
    # intermediate frozenset dicts; everything else goes through the
    # generic gate_tail translation.
    tails: Dict[int, Dict[tuple, int]] = {}
    for gate in circuit.topological_order():
        out = id_of[gate.output]
        gtype = gate.gate_type
        if gtype is GateType.AND or gtype is GateType.BUF:
            mask = 0
            gs = ()
            for net in gate.inputs:
                v = id_of[net]
                if v < num_gates:
                    r = resolved[v]
                    if r is None:
                        if not gs:
                            gs = (v,)
                        elif len(gs) == 1:  # dominant shapes, merged inline
                            g0 = gs[0]
                            if v > g0:
                                gs = (g0, v)
                            elif v < g0:
                                gs = (v, g0)
                        else:
                            gs = _merge_sorted(gs, (v,))
                    else:
                        mask |= r[0]
                        rg = r[1]
                        if rg:
                            if not gs:
                                gs = rg
                            elif len(gs) == 1 and len(rg) == 1:
                                g0 = gs[0]
                                w = rg[0]
                                if w > g0:
                                    gs = (g0, w)
                                elif w < g0:
                                    gs = (w, g0)
                            else:
                                gs = _merge_sorted(gs, rg)
                else:
                    mask |= 1 << (v - num_gates)
            resolved[out] = (mask, gs)
            continue
        if gtype is GateType.XOR:
            acc: Dict[tuple, int] = {}
            for net in gate.inputs:
                v = id_of[net]
                if v < num_gates:
                    r = resolved[v]
                    if r is None:
                        spliced = (
                            tails.pop(v)
                            if fanout[net] == 1 and not pinned[v] and v in tails
                            else None
                        )
                        if spliced is not None:
                            # Steal the first child's dict outright; after
                            # that merge the smaller side into the larger,
                            # which keeps XOR-tree collapse near-linear.
                            if not acc:
                                acc = spliced
                                continue
                            if len(spliced) > len(acc):
                                acc, spliced = spliced, acc
                            for skey, scoeff in spliced.items():
                                cur = acc.get(skey, 0) ^ scoeff
                                if cur:
                                    acc[skey] = cur
                                else:
                                    del acc[skey]
                            continue
                        key = (0, (v,))
                    else:
                        key = r
                else:
                    key = (1 << (v - num_gates), ())
                cur = acc.get(key, 0) ^ 1  # XOR parity on repeats
                if cur:
                    acc[key] = cur
                else:
                    del acc[key]
        else:
            acc = {}
            for tm, tc in gate_tail(gate, id_of).items():
                key = encode(tm)  # encode is not injective: XOR-merge
                cur = acc.get(key, 0) ^ tc
                if cur:
                    acc[key] = cur
                else:
                    del acc[key]
        if len(acc) == 1:
            (key, coeff), = acc.items()
            if coeff == 1:
                resolved[out] = key
                continue
        tails[out] = acc

    # Stage every seed term under its smallest gate variable; gate-free
    # terms go straight to the remainder. Buckets are two-level — gate
    # tuple, then mask — so per-product work in the sweep is int-keyed
    # dict traffic only. Resolution can make distinct seed monomials
    # encode to the same key, so staging XOR-merges.
    staged: Dict[int, Dict[tuple, Dict[int, int]]] = {}
    remainder: Dict[int, int] = {}
    for monomial, coeff in seed_terms.items():
        mask, gates = encode(monomial)
        sub = remainder if not gates else (
            staged.setdefault(gates[0], {}).setdefault(gates, {})
        )
        cur = sub.get(mask)
        if cur is None:
            sub[mask] = coeff
        else:
            merged = cur ^ coeff
            if merged:
                sub[mask] = merged
            else:
                del sub[mask]

    mul = field.mul
    substitutions = 0
    traffic = 0
    live = len(remainder) + sum(
        len(sub) for bucket in staged.values() for sub in bucket.values()
    )
    peak = 0
    heap = [v for v, bucket in staged.items() if bucket]
    heapq.heapify(heap)
    queued = set(heap)
    staged_get = staged.get
    # REDTRACE hook, hoisted so the disabled per-pop cost is one None test.
    rtw = redtrace.active_writer()
    while heap:
        var = heapq.heappop(heap)
        queued.discard(var)
        bucket = staged.pop(var, None)
        if not bucket:
            continue
        tail_items = tails[var]
        if rtw is not None:
            rtw.emit(
                "mask_sweep",
                var=var,
                groups=len(bucket),
                tail=len(tail_items),
                live=live,
            )
        substitutions_here = 0
        # Resolve each tail monomial's target bucket once per pop: groups
        # whose gate tuple is just ``(var,)`` (the common case) route every
        # product straight into that bucket, so the innermost loop is an
        # int ``|`` plus one int-keyed dict merge. Buckets are mutated in
        # place, so the precomputed references stay valid as the pop
        # introduces further terms.
        routed = []
        slim = []
        for (tmask, tgates), tcoeff in tail_items.items():
            if tgates:
                g0 = tgates[0]
                outer = staged_get(g0)
                if outer is None:
                    staged[g0] = outer = {}
                if g0 not in queued:
                    heapq.heappush(heap, g0)
                    queued.add(g0)
                tgt = outer.get(tgates)
                if tgt is None:
                    outer[tgates] = tgt = {}
            else:
                tgt = remainder
            routed.append((tmask, tgates, tcoeff, tgt))
            if tcoeff == 1:
                slim.append((tmask, tgt))
        # Gate tails over F2 logic are all coefficient 1, so the slim
        # no-merge no-multiply path is the one that actually runs hot.
        use_slim = len(slim) == len(routed)
        for gates, sub in bucket.items():
            if not sub:
                continue
            substitutions_here = 1
            live -= len(sub)
            traffic += len(sub) * len(routed)
            rest = gates[1:]  # gates[0] == var by the staging invariant
            if not rest and use_slim:
                if len(sub) == 1:
                    (mask, coeff), = sub.items()
                    for tmask, tgt in slim:
                        kmask = mask | tmask
                        cur = tgt.get(kmask)
                        if cur is None:
                            tgt[kmask] = coeff
                            live += 1
                        else:
                            merged = cur ^ coeff
                            if merged:
                                tgt[kmask] = merged
                            else:
                                del tgt[kmask]
                                live -= 1
                else:
                    sub_items = list(sub.items())
                    for tmask, tgt in slim:
                        for mask, coeff in sub_items:
                            kmask = mask | tmask
                            cur = tgt.get(kmask)
                            if cur is None:
                                tgt[kmask] = coeff
                                live += 1
                            else:
                                merged = cur ^ coeff
                                if merged:
                                    tgt[kmask] = merged
                                else:
                                    del tgt[kmask]
                                    live -= 1
                continue
            for tmask, tgates, tcoeff, tgt in routed:
                if rest:
                    if not tgates:
                        kgates = rest
                    elif len(rest) == 1 and len(tgates) == 1:
                        a = rest[0]
                        b = tgates[0]
                        kgates = (
                            (a, b) if a < b else ((b, a) if b < a else rest)
                        )
                    else:
                        kgates = _merge_sorted(rest, tgates)
                    g0 = kgates[0]
                    outer = staged_get(g0)
                    if outer is None:
                        staged[g0] = outer = {}
                    if g0 not in queued:
                        heapq.heappush(heap, g0)
                        queued.add(g0)
                    tgt = outer.get(kgates)
                    if tgt is None:
                        outer[kgates] = tgt = {}
                if tcoeff == 1:
                    for mask, coeff in sub.items():
                        kmask = mask | tmask
                        cur = tgt.get(kmask)
                        if cur is None:
                            tgt[kmask] = coeff
                            live += 1
                        else:
                            merged = cur ^ coeff
                            if merged:
                                tgt[kmask] = merged
                            else:
                                del tgt[kmask]
                                live -= 1
                else:
                    for mask, coeff in sub.items():
                        kmask = mask | tmask
                        cc = mul(coeff, tcoeff)
                        cur = tgt.get(kmask)
                        if cur is None:
                            tgt[kmask] = cc
                            live += 1
                        else:
                            merged = cur ^ cc
                            if merged:
                                tgt[kmask] = merged
                            else:
                                del tgt[kmask]
                                live -= 1
        substitutions += substitutions_here
        if live > peak:
            peak = live

    # Trailing division by the input word relations, still in mask space:
    # the remainder at this point is a dense bit-monomial polynomial (a
    # thousand terms at k=32), so substituting each word's leading bit here
    # avoids building frozensets only to immediately rewrite them.
    if word_relations:
        div_subs, div_traffic, div_peak = _divide_word_relations_legacy(
            remainder, word_relations, num_gates, mul
        )
        substitutions += div_subs
        traffic += div_traffic
        if div_peak > peak:
            peak = div_peak
    return remainder, substitutions, traffic, peak


def _reduce_to_masks_batched(
    circuit: Circuit,
    seed_terms: Dict[FrozenSet[int], int],
    field: GF2m,
    ordering: RatoOrdering,
    word_relations: Optional[List[tuple]] = None,
) -> "tuple[Dict[int, int], int, int, int]":
    """Frontier-batched sweep: one Python op advances a whole term group.

    Gate tails over boolean logic carry coefficient 1 on every monomial, so
    tails are stored as plain *sets* of ``(mask, gates)`` keys and a
    substitution step becomes set algebra. For a coefficient-free seed
    (every seed coefficient 1 — the per-cone parallel path) the staged
    groups themselves are mask sets and each tail monomial folds a whole
    group into its target with one ``symmetric_difference_update``; for the
    alpha-weighted serial seed groups stay ``mask -> coeff`` dicts and the
    fold is one :func:`~repro.gf.xor_accumulate` sweep per tail monomial.
    Either way the interpreter dispatches per *tail item*, not per product.

    Shifting a group by a tail mask is not injective — two masks differing
    only inside the tail mask collide, and that pair must *cancel*, so the
    batch is parity-folded through a Counter whenever ``set(shifted)``
    loses elements; a bare ``set()`` would dedupe instead.

    Term-for-term identical to :func:`_reduce_to_masks_legacy` and emits
    the same REDTRACE stream byte-for-byte: events carry content-based
    counts sampled at pop boundaries (group/tail/live sizes), all invariant
    under batching and under set iteration order. In the (never observed)
    event a gate tail surfaces a non-1 coefficient, the whole call defers
    to the legacy kernel rather than running a mixed-mode frontier.
    """
    id_of = ordering.var_ids
    num_gates = len(ordering.gate_nets)

    # AND/BUF resolution is identical to the legacy kernel: single-monomial
    # coefficient-1 tails are inlined at encode time and never scheduled.
    resolved: list = [None] * num_gates

    def encode(monomial) -> "tuple[int, tuple]":
        mask = 0
        gs = ()
        for v in monomial:
            if v < num_gates:
                r = resolved[v]
                if r is None:
                    gs = _merge_sorted(gs, (v,)) if gs else (v,)
                else:
                    mask |= r[0]
                    if r[1]:
                        gs = _merge_sorted(gs, r[1]) if gs else r[1]
            else:
                mask |= 1 << (v - num_gates)
        return mask, gs

    fanout = Counter(
        chain.from_iterable(g.inputs for g in circuit.topological_order())
    )
    pinned = [False] * num_gates
    for monomial in seed_terms:
        for v in monomial:
            if v < num_gates:
                pinned[v] = True

    # Tails as sets of (mask, gates) keys. XOR-tree splicing steals the
    # single-consumer child's set outright and merges smaller-into-larger;
    # set symmetric difference is exactly the coefficient-1 XOR merge.
    tails: Dict[int, set] = {}
    for gate in circuit.topological_order():
        out = id_of[gate.output]
        gtype = gate.gate_type
        if gtype is GateType.AND or gtype is GateType.BUF:
            mask = 0
            gs = ()
            for net in gate.inputs:
                v = id_of[net]
                if v < num_gates:
                    r = resolved[v]
                    if r is None:
                        if not gs:
                            gs = (v,)
                        elif len(gs) == 1:  # dominant shapes, merged inline
                            g0 = gs[0]
                            if v > g0:
                                gs = (g0, v)
                            elif v < g0:
                                gs = (v, g0)
                        else:
                            gs = _merge_sorted(gs, (v,))
                    else:
                        mask |= r[0]
                        rg = r[1]
                        if rg:
                            if not gs:
                                gs = rg
                            elif len(gs) == 1 and len(rg) == 1:
                                g0 = gs[0]
                                w = rg[0]
                                if w > g0:
                                    gs = (g0, w)
                                elif w < g0:
                                    gs = (w, g0)
                            else:
                                gs = _merge_sorted(gs, rg)
                else:
                    mask |= 1 << (v - num_gates)
            resolved[out] = (mask, gs)
            continue
        if gtype is GateType.XOR:
            acc: set = set()
            for net in gate.inputs:
                v = id_of[net]
                if v < num_gates:
                    r = resolved[v]
                    if r is None:
                        spliced = (
                            tails.pop(v)
                            if fanout[net] == 1 and not pinned[v] and v in tails
                            else None
                        )
                        if spliced is not None:
                            if not acc:
                                acc = spliced
                                continue
                            if len(spliced) > len(acc):
                                acc, spliced = spliced, acc
                            acc.symmetric_difference_update(spliced)
                            continue
                        key = (0, (v,))
                    else:
                        key = r
                else:
                    key = (1 << (v - num_gates), ())
                if key in acc:  # XOR parity on repeats
                    acc.remove(key)
                else:
                    acc.add(key)
        else:
            dacc: Dict[tuple, int] = {}
            for tm, tc in gate_tail(gate, id_of).items():
                key = encode(tm)  # encode is not injective: XOR-merge
                cur = dacc.get(key, 0) ^ tc
                if cur:
                    dacc[key] = cur
                else:
                    del dacc[key]
            if any(c != 1 for c in dacc.values()):
                # A non-boolean tail coefficient would need field products
                # inside the set sweep; no supported gate produces one, but
                # if it ever happens run the whole call on the legacy
                # kernel instead.
                return _reduce_to_masks_legacy(
                    circuit, seed_terms, field, ordering, word_relations
                )
            acc = set(dacc)
        if len(acc) == 1:
            resolved[out] = next(iter(acc))
            continue
        tails[out] = acc

    # Stage the seed. A coefficient-free seed keeps every bucket a pure
    # mask set for the whole sweep (no stored coefficient can ever differ
    # from 1 when both the seed and all tails are coefficient-1); any other
    # seed stages mask -> coeff dicts. ``remainder`` follows suit and the
    # set variant is converted to a dict at the end.
    pure = True
    for c in seed_terms.values():
        if c != 1:
            pure = False
            break

    staged: Dict[int, dict] = {}
    if pure:
        rem_set: set = set()
        for monomial in seed_terms:
            mask, gates = encode(monomial)
            sub = rem_set if not gates else (
                staged.setdefault(gates[0], {}).setdefault(gates, set())
            )
            if mask in sub:
                sub.remove(mask)
            else:
                sub.add(mask)
        frontier = rem_set
    else:
        remainder = {}
        for monomial, coeff in seed_terms.items():
            mask, gates = encode(monomial)
            sub = remainder if not gates else (
                staged.setdefault(gates[0], {}).setdefault(gates, {})
            )
            cur = sub.get(mask)
            if cur is None:
                sub[mask] = coeff
            else:
                merged = cur ^ coeff
                if merged:
                    sub[mask] = merged
                else:
                    del sub[mask]
        frontier = remainder

    substitutions = 0
    traffic = 0
    live = len(frontier) + sum(
        len(sub) for bucket in staged.values() for sub in bucket.values()
    )
    peak = 0
    heap = [v for v, bucket in staged.items() if bucket]
    heapq.heapify(heap)
    queued = set(heap)
    staged_get = staged.get
    new_group = set if pure else dict
    rtw = redtrace.active_writer()
    while heap:
        var = heapq.heappop(heap)
        queued.discard(var)
        bucket = staged.pop(var, None)
        if not bucket:
            continue
        tail_set = tails[var]
        if rtw is not None:
            rtw.emit(
                "mask_sweep",
                var=var,
                groups=len(bucket),
                tail=len(tail_set),
                live=live,
            )
        substitutions_here = 0
        # Route each tail monomial once per pop; buckets are mutated in
        # place so the references stay valid while the pop adds terms.
        # Set iteration order is replay-safe: the heap schedule dedupes
        # pushes and every emitted figure is a content-based count.
        # ``routed`` keeps the gate tuples for multi-gate groups; the hot
        # loops unpack the slimmer ``pairs``.
        routed = []
        pairs = []
        for tmask, tgates in tail_set:
            if tgates:
                g0 = tgates[0]
                outer = staged_get(g0)
                if outer is None:
                    staged[g0] = outer = {}
                if g0 not in queued:
                    heapq.heappush(heap, g0)
                    queued.add(g0)
                tgt = outer.get(tgates)
                if tgt is None:
                    outer[tgates] = tgt = new_group()
            else:
                tgt = frontier
            routed.append((tmask, tgates, tgt))
            pairs.append((tmask, tgt))
        ntail = len(routed)
        for gates, sub in bucket.items():
            if not sub:
                continue
            substitutions_here = 1
            nsub = len(sub)
            live -= nsub
            traffic += nsub * ntail
            rest = gates[1:]  # gates[0] == var by the staging invariant
            if not rest:
                targets = pairs
            else:
                targets = []
                for tmask, tgates, _ in routed:
                    if not tgates:
                        kgates = rest
                    elif len(rest) == 1 and len(tgates) == 1:
                        a = rest[0]
                        b = tgates[0]
                        kgates = (
                            (a, b) if a < b else ((b, a) if b < a else rest)
                        )
                    else:
                        kgates = _merge_sorted(rest, tgates)
                    g0 = kgates[0]
                    outer = staged_get(g0)
                    if outer is None:
                        staged[g0] = outer = {}
                    if g0 not in queued:
                        heapq.heappush(heap, g0)
                        queued.add(g0)
                    tgt = outer.get(kgates)
                    if tgt is None:
                        outer[kgates] = tgt = new_group()
                    targets.append((tmask, tgt))
            if pure:
                if nsub == 1:
                    (mask0,) = sub
                    for tmask, tgt in targets:
                        key = mask0 | tmask
                        if key in tgt:
                            tgt.remove(key)
                            live -= 1
                        else:
                            tgt.add(key)
                            live += 1
                else:
                    for tmask, tgt in targets:
                        if tmask:
                            shifted = [m | tmask for m in sub]
                            batch = set(shifted)
                            if len(batch) != nsub:
                                # Colliding shifts must cancel pairwise,
                                # not dedupe: keep odd-parity masks only.
                                batch = {
                                    m
                                    for m, n in Counter(shifted).items()
                                    if n & 1
                                }
                        else:
                            batch = sub
                        before = len(tgt)
                        tgt.symmetric_difference_update(batch)
                        live += len(tgt) - before
            elif nsub == 1:
                (mask0, coeff0), = sub.items()
                for tmask, tgt in targets:
                    key = mask0 | tmask
                    cur = tgt.get(key)
                    if cur is None:
                        tgt[key] = coeff0
                        live += 1
                    else:
                        merged = cur ^ coeff0
                        if merged:
                            tgt[key] = merged
                        else:
                            del tgt[key]
                            live -= 1
            else:
                masks = list(sub)
                coeffs = list(sub.values())
                for tmask, tgt in targets:
                    live += xor_accumulate(
                        tgt, [m | tmask for m in masks], coeffs
                    )
        substitutions += substitutions_here
        if live > peak:
            peak = live

    if pure:
        remainder = dict.fromkeys(frontier, 1)
    if word_relations:
        div_subs, div_traffic, div_peak = _divide_word_relations_batched(
            remainder, word_relations, num_gates, field
        )
        substitutions += div_subs
        traffic += div_traffic
        if div_peak > peak:
            peak = div_peak
    return remainder, substitutions, traffic, peak


def _divide_word_relations(
    remainder: Dict[int, int],
    word_relations: List[tuple],
    num_gates: int,
    field: GF2m,
) -> "tuple[int, int, int]":
    """Divide a mask-space remainder by the input word relations, in place.

    Substitutes each relation's leading bit by its tail (the word variable
    plus the alpha-scaled higher bits). Returns ``(substitutions,
    term_traffic, peak_terms)`` deltas. Dispatches on the kernel switch,
    like :func:`_reduce_to_masks`; the parallel merge calls this on the
    combined remainder and each sweep kernel calls its own variant
    directly.
    """
    if kernels.batch_enabled():
        return _divide_word_relations_batched(
            remainder, word_relations, num_gates, field
        )
    return _divide_word_relations_legacy(
        remainder, word_relations, num_gates, field.mul
    )


def _divide_word_relations_batched(
    remainder: Dict[int, int],
    word_relations: List[tuple],
    num_gates: int,
    field: GF2m,
) -> "tuple[int, int, int]":
    """Word-relation division, vectorised tail-major through ``mul_vec``.

    Where the legacy variant walks affected-term × tail-item pairs one
    merge at a time, this scales *all* affected coefficients by one tail
    coefficient per :meth:`~repro.gf.GF2m.mul_vec` call and folds each
    shifted batch in with one :func:`~repro.gf.xor_accumulate` sweep. XOR
    accumulation commutes, so the result and every emitted figure match
    the legacy order exactly.
    """
    substitutions = 0
    traffic = 0
    peak = 0
    mul_vec = field.mul_vec
    rtw = redtrace.active_writer()
    for var, rel_tail in word_relations:
        bit = 1 << (var - num_gates)
        affected = [item for item in remainder.items() if item[0] & bit]
        if not affected:
            continue
        if rtw is not None:
            rtw.emit(
                "word_relation_division",
                var=var,
                affected=len(affected),
                tail=len(rel_tail),
                remainder=len(remainder),
            )
        for mask, _ in affected:
            del remainder[mask]
        traffic += len(affected) * len(rel_tail)
        bases = [mask ^ bit for mask, _ in affected]
        coeffs = [coeff for _, coeff in affected]
        for tv, tcoeff in rel_tail:
            tmask = 1 << (tv - num_gates)
            xor_accumulate(
                remainder,
                [base | tmask for base in bases],
                coeffs if tcoeff == 1 else mul_vec(coeffs, tcoeff),
            )
        substitutions += 1
        if len(remainder) > peak:
            peak = len(remainder)
    return substitutions, traffic, peak


def _divide_word_relations_legacy(
    remainder: Dict[int, int],
    word_relations: List[tuple],
    num_gates: int,
    mul,
) -> "tuple[int, int, int]":
    """The pre-batching division loop, kept verbatim as the oracle."""
    substitutions = 0
    traffic = 0
    peak = 0
    rtw = redtrace.active_writer()
    for var, rel_tail in word_relations:
        bit = 1 << (var - num_gates)
        affected = [item for item in remainder.items() if item[0] & bit]
        if not affected:
            continue
        if rtw is not None:
            rtw.emit(
                "word_relation_division",
                var=var,
                affected=len(affected),
                tail=len(rel_tail),
                remainder=len(remainder),
            )
        titems = [(1 << (tv - num_gates), tc) for tv, tc in rel_tail]
        for mask, _ in affected:
            del remainder[mask]
        traffic += len(affected) * len(titems)
        rget = remainder.get
        for mask, coeff in affected:
            base = mask ^ bit
            for tmask, tcoeff in titems:
                key = base | tmask
                cc = coeff if tcoeff == 1 else mul(coeff, tcoeff)
                cur = rget(key)
                if cur is None:
                    remainder[key] = cc
                else:
                    merged = cur ^ cc
                    if merged:
                        remainder[key] = merged
                    else:
                        del remainder[key]
        substitutions += 1
        if len(remainder) > peak:
            peak = len(remainder)
    return substitutions, traffic, peak


def _write_back_masks(
    engine: SubstitutionEngine, remainder: Dict[int, int], num_gates: int
) -> None:
    """Install a gate-free mask-space remainder as engine state (terms + index)."""
    terms = engine.terms
    occ = engine.occ
    indexed = engine.indexed
    terms.clear()
    occ.clear()
    indexed_mask = 0
    if indexed is not None:
        for v in indexed:
            if v >= num_gates:
                indexed_mask |= 1 << (v - num_gates)
    for mask, coeff in remainder.items():
        vars_: list = []
        hits = mask & indexed_mask if indexed is not None else mask
        while mask:
            low = mask & -mask
            vars_.append(num_gates + low.bit_length() - 1)
            mask ^= low
        key = frozenset(vars_)
        terms[key] = coeff
        while hits:
            low = hits & -hits
            v = num_gates + low.bit_length() - 1
            hits ^= low
            b = occ.get(v)
            if b is None:
                occ[v] = {key}
            else:
                b.add(key)


def _resolve_output_word(
    circuit: Circuit, field: GF2m, output_word: Optional[str]
) -> str:
    if not circuit.output_words:
        raise ValueError("circuit has no output words to abstract")
    if output_word is None:
        if len(circuit.output_words) != 1:
            raise ValueError("output_word must be named for multi-word circuits")
        output_word = next(iter(circuit.output_words))
    for word, bits in {**circuit.input_words, **circuit.output_words}.items():
        if len(bits) != field.k:
            raise ValueError(
                f"word {word!r} has {len(bits)} bits; field is F_2^{field.k}"
            )
    return output_word


def _word_relation_tables(
    circuit: Circuit, ordering: RatoOrdering, alpha_powers: List[int]
) -> "tuple[List[tuple], Dict[int, str], Dict[int, tuple]]":
    """Input word relations ``f_wi = b_0 + alpha*b_1 + ... + W`` as id tuples.

    Returns ``(word_relations, id_to_word, bit_owner)``: the division steps
    for each relation's leading bit, the word-variable id map used by the
    finishing steps, and each input bit's ``(word, position)``.
    """
    id_of = ordering.var_ids
    word_relations: List[tuple] = []
    id_to_word: Dict[int, str] = {}
    bit_owner: Dict[int, "tuple[str, int]"] = {}
    for word in ordering.input_words:
        bits = circuit.input_words[word]
        word_id = id_of[word]
        id_to_word[word_id] = word
        for i, bit in enumerate(bits):
            bit_owner[id_of[bit]] = (word, i)
        rel_tail = [(word_id, 1)]
        for i in range(1, len(bits)):
            rel_tail.append((id_of[bits[i]], alpha_powers[i]))
        word_relations.append((id_of[bits[0]], rel_tail))
    return word_relations, id_to_word, bit_owner


def _finish_polynomial(
    circuit: Circuit,
    field: GF2m,
    ordering: RatoOrdering,
    output_word: str,
    case2: str,
    engine: SubstitutionEngine,
    id_to_word: Dict[int, str],
    bit_owner: Dict[int, "tuple[str, int]"],
    stats: AbstractionStats,
) -> "tuple[Polynomial, PolynomialRing]":
    """Case-1/Case-2 finishing shared by the serial and parallel paths."""
    word_ring = word_ring_for(field, ordering.input_words)
    leftover_bits = sorted(
        var for var in engine.variables_present() if var not in id_to_word
    )
    if not leftover_bits:
        stats.case = 1
        polynomial = _case1_polynomial(engine, word_ring, id_to_word)
    else:
        stats.case = 2
        stats.case2_method = case2
        stats.remainder_bits = [ordering.variables[v] for v in leftover_bits]
        with span("case2_finish", method=case2, leftover_bits=len(leftover_bits)):
            if case2 == "linearized":
                polynomial = _case2_linearized(
                    engine, field, word_ring, id_to_word, bit_owner
                )
            else:
                small = _case2_groebner(
                    engine, field, circuit, ordering, output_word,
                    ordering.var_ids,
                )
                polynomial = _map_words(small, word_ring)
    return polynomial, word_ring


def _report_metrics(stats: AbstractionStats) -> None:
    if not metrics.is_enabled():
        return
    metrics.counter_add(metrics.ABSTRACTION_SUBSTITUTIONS, stats.substitutions)
    metrics.counter_add(metrics.ABSTRACTION_TERM_TRAFFIC, stats.term_traffic)
    metrics.gauge_max(metrics.ABSTRACTION_PEAK_TERMS, stats.peak_terms)
    if stats.jobs:
        metrics.counter_add(metrics.PARALLEL_CONES, stats.cones)
        metrics.counter_add(
            metrics.PARALLEL_CONE_DIVISION_STEPS, sum(stats.cone_division_steps)
        )
        if stats.cone_division_steps:
            metrics.gauge_max(
                metrics.PARALLEL_MAX_CONE_DIVISION_STEPS,
                max(stats.cone_division_steps),
            )
        metrics.gauge_max(metrics.PARALLEL_POOL_WORKERS, stats.jobs)
        metrics.gauge_max(
            metrics.PARALLEL_POOL_UTILIZATION_PCT, stats.pool_utilization_pct
        )
        metrics.counter_add(
            metrics.PARALLEL_POOL_IDLE_MS, int(stats.pool_idle_seconds * 1000)
        )
        metrics.counter_add(metrics.PARALLEL_TABLE_REBUILDS, stats.table_rebuilds)


#: Below this gate count the fork/pickle overhead of the pool outweighs the
#: reduction work and ``extract_canonical`` stays serial regardless of
#: ``jobs``. Roughly a k=48 multiplier; override with REPRO_PARALLEL_MIN_GATES.
DEFAULT_PARALLEL_MIN_GATES = 4000


def _parallel_min_gates() -> int:
    return int(os.environ.get("REPRO_PARALLEL_MIN_GATES", DEFAULT_PARALLEL_MIN_GATES))


def _resolve_workers(jobs: Optional[int]) -> int:
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def extract_canonical(
    circuit: Circuit,
    field: GF2m,
    output_word: Optional[str] = None,
    case2: str = "linearized",
    ordering: Optional[RatoOrdering] = None,
    jobs: Optional[int] = None,
) -> AbstractionResult:
    """Derive the canonical polynomial ``Z = G(input words)`` of a circuit.

    Parameters
    ----------
    circuit:
        Gate-level netlist with word annotations (all words ``field.k`` bits).
    output_word:
        Which output word to abstract (defaults to the only one).
    case2:
        ``"linearized"`` (default, scalable) or ``"groebner"`` (the paper's
        Case-2 computation, exact but exponential in the worst case).
    ordering:
        Variable ordering; defaults to RATO. Pass
        :func:`~repro.core.rato.build_unrefined_order` output for ablations.
        A custom ordering forces the serial path — cone slicing assumes the
        standard RATO layout.
    jobs:
        Worker processes for the cone-sliced parallel path: ``None``/``1``
        stays serial, ``0`` means one per CPU, ``N >= 2`` uses a pool of
        ``N``. Small circuits (gate count below ``REPRO_PARALLEL_MIN_GATES``,
        default ``4000``) fall back to serial — slicing overhead would
        dominate. Above the threshold the engage decision is a cost
        comparison (:func:`repro.core.engage.parallel_engage`): predicted
        serial seconds vs. the worker plane's measured dispatch overhead,
        with ``REPRO_PARALLEL_FORCE=1``/``0`` as the hard override. Any
        :class:`~repro.jobs.pool.PoolError` also falls back to serial.
        Both paths produce bit-identical polynomials.
    """
    start = time.perf_counter()
    metrics.counter_add(metrics.ABSTRACTION_EXTRACTIONS, 1)
    if case2 not in ("linearized", "groebner"):
        raise ValueError(f"unknown case2 strategy {case2!r}")
    output_word = _resolve_output_word(circuit, field, output_word)
    workers = _resolve_workers(jobs)
    if workers > 1 and multiprocessing.current_process().daemon:
        # Batch-runner job processes and plane workers are daemonic, and
        # daemonic processes cannot fork children — a nested pool would die
        # on startup. Serial is the only viable path here; the layer above
        # already parallelises across jobs.
        logger.debug(
            "parallel abstraction requested inside a daemonic process; "
            "running serially"
        )
        workers = 1
    if (
        workers > 1
        and ordering is None
        and circuit.num_gates() >= _parallel_min_gates()
    ):
        from ..jobs.pool import PoolError
        from .engage import parallel_engage

        engaged, reason = parallel_engage(workers, circuit.num_gates(), field.k)
        if engaged:
            try:
                return _extract_parallel(
                    circuit, field, output_word, case2, workers, start
                )
            except PoolError as exc:
                logger.warning(
                    "parallel abstraction of %r failed (%s); rerunning serially",
                    output_word,
                    exc,
                )
        else:
            logger.debug(
                "parallel abstraction of %r not engaged (%s)", output_word, reason
            )
    return _extract_serial(circuit, field, output_word, case2, ordering, start)


def abstract_circuit(
    circuit: Circuit,
    field: GF2m,
    output_word: Optional[str] = None,
    case2: str = "linearized",
    ordering: Optional[RatoOrdering] = None,
    jobs: Optional[int] = None,
) -> AbstractionResult:
    """Alias of :func:`extract_canonical` (the original entry-point name)."""
    return extract_canonical(
        circuit,
        field,
        output_word=output_word,
        case2=case2,
        ordering=ordering,
        jobs=jobs,
    )


def _extract_serial(
    circuit: Circuit,
    field: GF2m,
    output_word: str,
    case2: str,
    ordering: Optional[RatoOrdering],
    start: float,
) -> AbstractionResult:
    ordering = ordering or build_rato(circuit, output_words=[output_word])
    id_of = ordering.var_ids

    # Seed with Spoly(f_w, f_g)'s surviving part: sum_i alpha^i * z_i.
    # Only gate variables and each input word's leading bit are ever
    # substituted, so the occurrence index tracks just those.
    substitutable = {id_of[net] for net in ordering.gate_nets}
    for word in ordering.input_words:
        substitutable.add(id_of[circuit.input_words[word][0]])
    engine = SubstitutionEngine(field, indexed_vars=substitutable)
    alpha_powers = field.alpha_powers()
    for i, bit in enumerate(circuit.output_words[output_word]):
        engine.add_term(frozenset((id_of[bit],)), alpha_powers[i])

    rtw = redtrace.active_writer()
    if rtw is not None:
        rtw.emit(
            "spoly_selected",
            source="abstraction",
            output=output_word,
            gates=circuit.num_gates(),
            seed_terms=len(engine.terms),
            case2=case2,
        )
    with span("spoly_reduction", gates=circuit.num_gates(), output=output_word):
        # Division by the input word relations f_wi = b_0 + b_1*alpha + ...
        # + W substitutes each relation's leading bit b_0; handing the
        # relations to the sweep keeps those steps in its compact encoding.
        word_relations, id_to_word, bit_owner = _word_relation_tables(
            circuit, ordering, alpha_powers
        )
        reduce_through_gates(
            circuit, engine, ordering, word_relations=word_relations
        )

    stats = AbstractionStats(
        gate_count=circuit.num_gates(),
        substitutions=engine.substitutions,
        peak_terms=engine.peak_terms,
        term_traffic=engine.term_traffic,
    )
    polynomial, word_ring = _finish_polynomial(
        circuit, field, ordering, output_word, case2, engine,
        id_to_word, bit_owner, stats,
    )
    stats.seconds = time.perf_counter() - start
    # Feed the engage policy's serial-rate EMA so the next request for the
    # same field sizes its parallel decision from measured data.
    note_serial_run(field.k, stats.gate_count, stats.seconds)
    _report_metrics(stats)
    return AbstractionResult(
        polynomial=polynomial,
        output_word=output_word,
        input_words=list(ordering.input_words),
        ring=word_ring,
        stats=stats,
    )


def _reduce_cone(
    cone: "FaninCone",
    field: GF2m,
    bitmap: List[int],
    derived: "Optional[tuple]" = None,
) -> "tuple[List[int], int, int, int]":
    """Reduce one output-bit cone; masks come back in the *parent* layout.

    The cone's subcircuit gets its own RATO (gate nets only — a cone carries
    no word annotations), is seeded with the bare root variable at
    coefficient 1 and swept with :func:`_reduce_to_masks`. Over GF(2) logic
    every gate-tail coefficient is 1 and the word-relation division hasn't
    happened yet, so every surviving cone coefficient is exactly 1 — the
    remainder is a pure *set* of input-bit masks, and the alpha-power
    scaling waits for the parent merge. ``bitmap[j]`` is the parent-layout
    mask bit of ``cone.inputs[j]``; returns
    ``(masks, substitutions, term_traffic, peak_terms)``.

    ``derived`` optionally supplies a precomputed ``(subcircuit, ordering)``
    pair — resident plane workers memoise these per cone across maps, where
    they otherwise dominate the re-run cost of an unchanged circuit.
    """
    if not cone.gates:
        # Output bit wired straight to a primary input.
        return [bitmap[cone.inputs.index(cone.root)]], 0, 0, 1
    if derived is None:
        sub = cone.subcircuit()
        sub_ordering = build_rato(sub, output_words=[])
    else:
        sub, sub_ordering = derived
    seed = {frozenset((sub_ordering.var_ids[cone.root],)): 1}
    remainder, substitutions, traffic, peak = _reduce_to_masks(
        sub, seed, field, sub_ordering
    )
    masks: List[int] = []
    for mask, coeff in remainder.items():
        if coeff != 1:  # unreachable for boolean gate tails; guard the merge
            raise RuntimeError(
                f"cone {cone.root!r} produced coefficient {coeff:#x}, expected 1"
            )
        out = 0
        while mask:
            low = mask & -mask
            out |= bitmap[low.bit_length() - 1]
            mask ^= low
        masks.append(out)
    return masks, substitutions, traffic, peak


def _cone_task(context: Dict, index: int) -> "tuple[bytes, Dict]":
    """Plane-worker task: reduce one cone of the shipped context.

    ``context`` travels to the worker once per circuit (epoch-tagged — see
    :mod:`repro.jobs.plane`); tasks are bare cone indices. The worker's
    context copy is resident for the epoch's lifetime, so per-circuit
    derived state is memoised on it: the field object (its GF tables were
    warmed when the context was published), each cone's extracted
    subcircuit + RATO, and — because the context identity is the content
    hash of its packed bytes, making every cone reduction a pure function
    of ``(context, index)`` — the finished cone results themselves. A
    worker asked to re-reduce a cone of a circuit it already holds answers
    from memory; the memo dies with the context when a new epoch is
    published. This is what makes repeated maps of an unchanged circuit
    (the resident-service steady state) pay: they cost pipe traffic and
    the parent merge, not re-sweeps.
    """
    memo = context.get("_results")
    if memo is None:
        memo = context["_results"] = {}
    hit = memo.get(index)
    if hit is not None:
        return hit
    field = context.get("_field")
    if field is None:
        field = GF2m(context["k"], context["modulus"])
        context["_field"] = field
    cone = context["cones"][index]
    derived_cache = context.get("_derived")
    if derived_cache is None:
        derived_cache = context["_derived"] = {}
    derived = derived_cache.get(index)
    if derived is None and cone.gates:
        sub = cone.subcircuit()
        derived = derived_cache[index] = (sub, build_rato(sub, output_words=[]))
    with span(
        "cone_reduction", root=cone.root, bit=index, gates=cone.num_gates()
    ):
        masks, steps, traffic, peak = _reduce_cone(
            cone, field, context["bitmaps"][index], derived=derived
        )
    mask_bytes = context["mask_bytes"]
    payload = b"".join(m.to_bytes(mask_bytes, "little") for m in masks)
    result = (
        payload,
        {
            "bit": index,
            "root": cone.root,
            "gates": cone.num_gates(),
            "division_steps": steps,
            "term_traffic": traffic,
            "peak_terms": peak,
            "terms": len(masks),
        },
    )
    memo[index] = result
    return result


def _plane_slices(circuit: Circuit, field: GF2m, output_word: str):
    """RATO + cone slices + the packed plane context, cached on the circuit.

    Slicing and context packing cost tens of milliseconds on k=96-sized
    multipliers — per *circuit* costs, not per map. The cache lives on the
    circuit object and is invalidated by every structural edit (see
    ``Circuit._plane_cache``), keyed on the things that change the packed
    bytes: output word, field, gate count and the tracing flag (the
    context embeds it).
    """
    tracing = metrics.is_enabled()
    token = (output_word, field.k, field.modulus, circuit.num_gates(), tracing)
    cached = getattr(circuit, "_plane_cache", None)
    if cached is not None and cached[0] == token:
        return cached[1]

    ordering = build_rato(circuit, output_words=[output_word])
    id_of = ordering.var_ids
    num_gates = len(ordering.gate_nets)
    mask_bytes = (len(ordering.variables) - num_gates + 7) // 8
    with span("cone_slicing", output=output_word):
        cones = circuit.output_cones(word=output_word)
        # Parent-layout mask bit of each cone input, precomputed so workers
        # remap without needing the parent id tables.
        bitmaps = [
            [1 << (id_of[name] - num_gates) for name in cone.inputs]
            for cone in cones
        ]
    from ..jobs.plane import pack_context

    context = {
        "cones": cones,
        "bitmaps": bitmaps,
        "k": field.k,
        "modulus": field.modulus,
        "mask_bytes": mask_bytes,
    }
    packed = pack_context(
        _cone_task, context, field_key=(field.k, field.modulus), tracing=tracing
    )
    value = (ordering, cones, bitmaps, mask_bytes, context, packed)
    circuit._plane_cache = (token, value)
    return value


def _extract_parallel(
    circuit: Circuit,
    field: GF2m,
    output_word: str,
    case2: str,
    workers: int,
    start: float,
) -> AbstractionResult:
    """Cone-sliced abstraction across ``workers`` plane processes.

    Slices the circuit into per-output-bit fanin cones, reduces each cone
    independently (coefficient-free — see :func:`_reduce_cone`), then
    rebuilds ``sum_i alpha^i * r_i`` by scaling each cone's masks at merge
    time and finishes with the same trailing word-relation division and
    Case-1/Case-2 steps as the serial path. Because substitution rewriting
    is confluent and the seed is linear in the ``z_i``, this is term-for-term
    identical to reducing the whole seed in one sweep.
    """
    from ..jobs.pool import run_pool

    ordering, cones, bitmaps, mask_bytes, context, packed = _plane_slices(
        circuit, field, output_word
    )
    num_gates = len(ordering.gate_nets)
    alpha_powers = field.alpha_powers()

    stats = AbstractionStats(
        gate_count=circuit.num_gates(), jobs=workers, cones=len(cones)
    )
    collector = active_collector()
    with span(
        "spoly_reduction",
        gates=circuit.num_gates(),
        output=output_word,
        workers=workers,
        cones=len(cones),
    ):
        # Heaviest cones first: the high output bits of a multiplier own the
        # deepest fanin, and scheduling them early keeps the pool's tail
        # short when cone costs are skewed.
        heavy_first = sorted(
            range(len(cones)), key=lambda i: -cones[i].num_gates()
        )
        # Cone events are recorded by the parent (forked workers never
        # write — see redtrace.reset_after_fork): cone_start here in
        # dispatch order, cone_end below in bit order, so a parallel
        # recording replays byte-identically regardless of completion
        # order.
        rtw = redtrace.active_writer()
        if rtw is not None:
            for i in heavy_first:
                rtw.emit(
                    "cone_start",
                    bit=i,
                    root=cones[i].root,
                    gates=cones[i].num_gates(),
                )
        pool_start = time.perf_counter()
        results = run_pool(
            _cone_task,
            heavy_first,
            workers,
            field_key=(field.k, field.modulus),
            context=context,
            packed=packed,
        )
        pool_wall = time.perf_counter() - pool_start

        merged: Dict[int, int] = {}
        cone_steps = [0] * len(cones)
        substitutions = traffic = peak = 0
        busy = 0.0
        rebuilds_by_pid: Dict[int, int] = {}
        # Merge in bit order (not completion order): the XOR-accumulated
        # contents are order-independent, and a deterministic iteration
        # keeps the recorded cone_end stream replayable.
        for res in sorted(results, key=lambda r: r.index):
            info = res.stats
            index = res.index
            if rtw is not None:
                rtw.emit(
                    "cone_end",
                    bit=index,
                    root=info["root"],
                    gates=info["gates"],
                    division_steps=info["division_steps"],
                    terms=info["terms"],
                )
            cone_steps[index] = info["division_steps"]
            substitutions += info["division_steps"]
            traffic += info["term_traffic"]
            if info["peak_terms"] > peak:
                peak = info["peak_terms"]
            busy += info["seconds"]
            pid = info["pid"]
            if info["table_rebuilds"] > rebuilds_by_pid.get(pid, 0):
                rebuilds_by_pid[pid] = info["table_rebuilds"]
            if res.spans and collector is not None:
                collector.merge({"spans": res.spans})
            scale = alpha_powers[index]
            payload = res.payload
            for off in range(0, len(payload), mask_bytes):
                mask = int.from_bytes(payload[off : off + mask_bytes], "little")
                cur = merged.get(mask, 0) ^ scale
                if cur:
                    merged[mask] = cur
                else:
                    del merged[mask]
        if len(merged) > peak:
            peak = len(merged)

        word_relations, id_to_word, bit_owner = _word_relation_tables(
            circuit, ordering, alpha_powers
        )
        div_subs, div_traffic, div_peak = _divide_word_relations(
            merged, word_relations, num_gates, field
        )
        substitutions += div_subs
        traffic += div_traffic
        if div_peak > peak:
            peak = div_peak

    engine = SubstitutionEngine(field, indexed_vars=set())
    terms = engine.terms
    for mask, coeff in merged.items():
        vars_: List[int] = []
        while mask:
            low = mask & -mask
            vars_.append(num_gates + low.bit_length() - 1)
            mask ^= low
        terms[frozenset(vars_)] = coeff

    stats.substitutions = substitutions
    stats.term_traffic = traffic
    stats.peak_terms = peak
    stats.cone_division_steps = cone_steps
    stats.table_rebuilds = sum(rebuilds_by_pid.values())
    capacity = workers * pool_wall
    if capacity > 0:
        stats.pool_idle_seconds = max(0.0, capacity - busy)
        stats.pool_utilization_pct = min(100.0, 100.0 * busy / capacity)

    polynomial, word_ring = _finish_polynomial(
        circuit, field, ordering, output_word, case2, engine,
        id_to_word, bit_owner, stats,
    )
    stats.seconds = time.perf_counter() - start
    _report_metrics(stats)
    return AbstractionResult(
        polynomial=polynomial,
        output_word=output_word,
        input_words=list(ordering.input_words),
        ring=word_ring,
        stats=stats,
    )


def abstract_all_outputs(
    circuit: Circuit,
    field: GF2m,
    case2: str = "linearized",
    jobs: Optional[int] = None,
) -> Dict[str, AbstractionResult]:
    """Abstract every output word of a multi-output circuit.

    Datapaths such as ECC point operations produce several word results
    (``X3``, ``Y3``); this derives each canonical polynomial independently
    and returns ``{output word: AbstractionResult}``.
    """
    return {
        word: extract_canonical(
            circuit, field, output_word=word, case2=case2, jobs=jobs
        )
        for word in circuit.output_words
    }
