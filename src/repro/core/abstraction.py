"""Word-level abstraction via guided Gröbner-basis reduction (Sections 4-5).

Given a circuit computing ``Z = F(A, B, ...)`` over ``F_{2^k}``, derive the
unique canonical polynomial ``F``. By the Abstraction Theorem (Thm 4.2) a
reduced Gröbner basis of ``J + J_0`` under the abstraction term order
contains exactly one polynomial ``Z + G(A)`` and ``G`` is canonical
(Cor 4.1). Computing that full basis is hopeless for real circuits, so —
following Section 5 — the refined order (RATO) plus the product criterion
single out one critical pair ``(f_w, f_g)``, and the whole computation
collapses to ``Spoly(f_w, f_g) ->_{F, F0}+ r``: a cascade of per-net
substitutions performed by :class:`~repro.core.bitpoly.SubstitutionEngine`.

Two outcomes (Section 5, step 3):

- **Case 1** — ``r`` contains only word variables: ``r = Z + G(A)`` and we
  are done.
- **Case 2** — ``r`` retains primary-input bits. The paper finishes with a
  small reduced-GB computation on ``{r, input word relations} ∪ F_0``
  (``case2="groebner"`` here, faithful). The default ``case2="linearized"``
  reaches the same unique polynomial by substituting each leftover bit with
  its dual-basis coordinate polynomial ``a_i = sum_j (beta_i A)^{2^j}`` —
  algebraically equivalent by Cor 4.1 uniqueness, and polynomial-time.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, FrozenSet, List, Optional

from ..algebra import (
    LexOrder,
    Polynomial,
    PolynomialRing,
    reduced_groebner_basis,
    vanishing_ideal,
)
from ..circuits import Circuit
from ..gf import GF2m, coordinate_coefficients
from ..obs import metrics
from ..obs.spans import span
from .bitpoly import SubstitutionEngine
from .gate_polys import gate_tail
from .rato import RatoOrdering, build_rato

__all__ = [
    "AbstractionResult",
    "AbstractionStats",
    "abstract_circuit",
    "abstract_all_outputs",
    "reduce_through_gates",
    "word_ring_for",
]


@dataclass
class AbstractionStats:
    """Cost counters for one abstraction run."""

    seconds: float = 0.0
    gate_count: int = 0
    substitutions: int = 0
    peak_terms: int = 0
    term_traffic: int = 0
    case: int = 1
    case2_method: Optional[str] = None
    remainder_bits: List[str] = dataclass_field(default_factory=list)


@dataclass
class AbstractionResult:
    """The derived canonical word-level polynomial ``Z = G(words)``."""

    polynomial: Polynomial  # G, in a ring over the input words
    output_word: str
    input_words: List[str]
    ring: PolynomialRing
    stats: AbstractionStats

    def __str__(self) -> str:
        return f"{self.output_word} = {self.polynomial}"


def word_ring_for(field: GF2m, input_words: List[str]) -> PolynomialRing:
    """The ring ``F_{2^k}[input words]`` canonical polynomials live in."""
    return PolynomialRing(
        field, list(input_words), order=LexOrder(range(len(input_words)))
    )


def _case1_polynomial(
    engine: SubstitutionEngine,
    word_ring: PolynomialRing,
    id_to_word: Dict[int, str],
) -> Polynomial:
    data = {}
    for monomial, coeff in engine.terms.items():
        key = tuple(
            sorted((word_ring.index[id_to_word[var]], 1) for var in monomial)
        )
        data[key] = coeff
    return Polynomial(word_ring, data)


def _case2_linearized(
    engine: SubstitutionEngine,
    field: GF2m,
    word_ring: PolynomialRing,
    id_to_word: Dict[int, str],
    bit_owner: Dict[int, "tuple[str, int]"],
) -> Polynomial:
    """Eliminate leftover input bits with dual-basis coordinate polynomials.

    Works directly on term dictionaries: buggy circuits can produce dense
    canonical polynomials (up to q^n terms), so the expansion accumulates
    in place rather than through repeated immutable-polynomial additions.
    """
    mul = field.mul
    monomial_mul = word_ring.monomial_mul
    coord_cache: Dict[int, Dict] = {}

    def coordinate_terms(bit_id: int) -> Dict:
        cached = coord_cache.get(bit_id)
        if cached is None:
            word, position = bit_owner[bit_id]
            word_index = word_ring.index[word]
            coeffs = coordinate_coefficients(field, position)
            cached = {
                ((word_index, word_ring.fold_exponent(word_index, 1 << j)),): c
                for j, c in enumerate(coeffs)
                if c
            }
            coord_cache[bit_id] = cached
        return cached

    result: Dict = {}
    for monomial, coeff in engine.terms.items():
        partial: Dict = {(): coeff}
        for var in monomial:
            if var in id_to_word:
                factor = {((word_ring.index[id_to_word[var]], 1),): 1}
            else:
                factor = coordinate_terms(var)
            expanded: Dict = {}
            for m1, c1 in partial.items():
                for m2, c2 in factor.items():
                    key = monomial_mul(m1, m2)
                    c = c1 if c2 == 1 else mul(c1, c2)
                    merged = expanded.get(key, 0) ^ c
                    if merged:
                        expanded[key] = merged
                    else:
                        del expanded[key]
            partial = expanded
        for m, c in partial.items():
            merged = result.get(m, 0) ^ c
            if merged:
                result[m] = merged
            else:
                del result[m]
    return Polynomial(word_ring, result)


def _case2_groebner(
    engine: SubstitutionEngine,
    field: GF2m,
    circuit: Circuit,
    ordering: RatoOrdering,
    output_word: str,
    id_of: Dict[str, int],
) -> Polynomial:
    """Faithful Case 2: reduced GB of {r, word relations} ∪ vanishing polys.

    Returns ``G`` from the unique basis polynomial ``Z + G(words)``
    guaranteed by Corollary 4.1; the result ring has variables
    ``bits > Z > input words`` (lex).
    """
    bits = [b for word in ordering.input_words for b in circuit.input_words[word]]
    variables = bits + [output_word] + ordering.input_words
    domains = {b: 2 for b in bits}
    ring = PolynomialRing(
        field,
        variables,
        order=LexOrder(range(len(variables))),
        domains=domains,
        fold=False,  # honest free-ring arithmetic; J_0 enters as generators
    )

    # r = Z + (engine terms translated into the small ring).
    reverse = {id_of[name]: name for name in variables if name in id_of}
    data: Dict[tuple, int] = {((ring.index[output_word], 1),): 1}
    for monomial, coeff in engine.terms.items():
        key = tuple(sorted((ring.index[reverse[var]], 1) for var in monomial))
        data[key] = data.get(key, 0) ^ coeff
    r = Polynomial(ring, {m: c for m, c in data.items() if c})

    alpha_powers = [field.pow(field.alpha, i) for i in range(field.k)]
    relations = []
    for word in ordering.input_words:
        terms = {((ring.index[word], 1),): 1}
        for i, bit in enumerate(circuit.input_words[word]):
            key = ((ring.index[bit], 1),)
            terms[key] = terms.get(key, 0) ^ alpha_powers[i]
        relations.append(Polynomial(ring, {m: c for m, c in terms.items() if c}))

    generators = [r] + relations + vanishing_ideal(ring)
    basis = reduced_groebner_basis(generators)
    z_index = ring.index[output_word]
    matches = [
        p for p in basis if p.leading_monomial() == ((z_index, 1),)
    ]
    if len(matches) != 1:
        raise RuntimeError(
            f"expected exactly one basis polynomial with leading term "
            f"{output_word}; found {len(matches)}"
        )
    return matches[0] + ring.var(output_word)


def _map_words(
    poly: Polynomial, word_ring: PolynomialRing
) -> Polynomial:
    """Re-home a polynomial that uses only word variables into ``word_ring``."""
    source = poly.ring
    data = {}
    for monomial, coeff in poly.terms.items():
        key = tuple(
            sorted((word_ring.index[source.variables[var]], exp) for var, exp in monomial)
        )
        data[key] = coeff
    return Polynomial(word_ring, data)


def reduce_through_gates(
    circuit: Circuit,
    engine: SubstitutionEngine,
    ordering: RatoOrdering,
) -> None:
    """Run the guided reduction: eliminate every gate variable from ``engine``.

    Repeatedly substitutes the highest-ranked gate variable present (smaller
    id == higher RATO rank). Under RATO tails only mention lower-ranked
    variables, so this is a single forward sweep; under an unrefined order
    the heap re-schedules re-introduced variables, mirroring how plain lex
    division would thrash. Shared by the abstraction flow and the Lv-style
    ideal-membership baseline.
    """
    id_of = ordering.var_ids
    gate_ids = {id_of[net] for net in ordering.gate_nets}
    tails = {
        id_of[gate.output]: gate_tail(gate, id_of)
        for gate in circuit.topological_order()
    }
    heap = [var for var in engine.variables_present() if var in gate_ids]
    heapq.heapify(heap)
    queued = set(heap)
    while heap:
        var = heapq.heappop(heap)
        queued.discard(var)
        if not engine.contains_var(var):
            continue
        engine.substitute(var, tails[var])
        for tail_monomial in tails[var]:
            for v in tail_monomial:
                if v in gate_ids and v not in queued and engine.contains_var(v):
                    heapq.heappush(heap, v)
                    queued.add(v)


def abstract_circuit(
    circuit: Circuit,
    field: GF2m,
    output_word: Optional[str] = None,
    case2: str = "linearized",
    ordering: Optional[RatoOrdering] = None,
) -> AbstractionResult:
    """Derive the canonical polynomial ``Z = G(input words)`` of a circuit.

    Parameters
    ----------
    circuit:
        Gate-level netlist with word annotations (all words ``field.k`` bits).
    output_word:
        Which output word to abstract (defaults to the only one).
    case2:
        ``"linearized"`` (default, scalable) or ``"groebner"`` (the paper's
        Case-2 computation, exact but exponential in the worst case).
    ordering:
        Variable ordering; defaults to RATO. Pass
        :func:`~repro.core.rato.build_unrefined_order` output for ablations.
    """
    start = time.perf_counter()
    if case2 not in ("linearized", "groebner"):
        raise ValueError(f"unknown case2 strategy {case2!r}")
    if not circuit.output_words:
        raise ValueError("circuit has no output words to abstract")
    if output_word is None:
        if len(circuit.output_words) != 1:
            raise ValueError("output_word must be named for multi-word circuits")
        output_word = next(iter(circuit.output_words))
    for word, bits in {**circuit.input_words, **circuit.output_words}.items():
        if len(bits) != field.k:
            raise ValueError(
                f"word {word!r} has {len(bits)} bits; field is F_2^{field.k}"
            )

    ordering = ordering or build_rato(circuit, output_words=[output_word])
    id_of = ordering.var_ids

    # Seed with Spoly(f_w, f_g)'s surviving part: sum_i alpha^i * z_i.
    engine = SubstitutionEngine(field)
    alpha_powers = [field.pow(field.alpha, i) for i in range(field.k)]
    for i, bit in enumerate(circuit.output_words[output_word]):
        engine.add_term(frozenset((id_of[bit],)), alpha_powers[i])

    bit_owner: Dict[int, "tuple[str, int]"] = {}
    id_to_word: Dict[int, str] = {}
    with span("spoly_reduction", gates=circuit.num_gates(), output=output_word):
        reduce_through_gates(circuit, engine, ordering)

        # Divide by the input word relations f_wi = b_0 + b_1*alpha + ... + W:
        # each division step substitutes the relation's leading bit b_0.
        for word in ordering.input_words:
            bits = circuit.input_words[word]
            word_id = id_of[word]
            id_to_word[word_id] = word
            for i, bit in enumerate(bits):
                bit_owner[id_of[bit]] = (word, i)
            replacement = {frozenset((word_id,)): 1}
            for i in range(1, len(bits)):
                key = frozenset((id_of[bits[i]],))
                replacement[key] = replacement.get(key, 0) ^ alpha_powers[i]
            engine.substitute(id_of[bits[0]], replacement)

    word_ring = word_ring_for(field, ordering.input_words)
    leftover_bits = sorted(
        var for var in engine.variables_present() if var not in id_to_word
    )
    stats = AbstractionStats(
        gate_count=circuit.num_gates(),
        substitutions=engine.substitutions,
        peak_terms=engine.peak_terms,
        term_traffic=engine.term_traffic,
    )
    if not leftover_bits:
        stats.case = 1
        polynomial = _case1_polynomial(engine, word_ring, id_to_word)
    else:
        stats.case = 2
        stats.case2_method = case2
        stats.remainder_bits = [ordering.variables[v] for v in leftover_bits]
        with span("case2_finish", method=case2, leftover_bits=len(leftover_bits)):
            if case2 == "linearized":
                polynomial = _case2_linearized(
                    engine, field, word_ring, id_to_word, bit_owner
                )
            else:
                small = _case2_groebner(
                    engine, field, circuit, ordering, output_word, id_of
                )
                polynomial = _map_words(small, word_ring)
    stats.seconds = time.perf_counter() - start
    if metrics.is_enabled():
        metrics.counter_add(metrics.ABSTRACTION_SUBSTITUTIONS, stats.substitutions)
        metrics.counter_add(metrics.ABSTRACTION_TERM_TRAFFIC, stats.term_traffic)
        metrics.gauge_max(metrics.ABSTRACTION_PEAK_TERMS, stats.peak_terms)
    return AbstractionResult(
        polynomial=polynomial,
        output_word=output_word,
        input_words=list(ordering.input_words),
        ring=word_ring,
        stats=stats,
    )


def abstract_all_outputs(
    circuit: Circuit,
    field: GF2m,
    case2: str = "linearized",
) -> Dict[str, AbstractionResult]:
    """Abstract every output word of a multi-output circuit.

    Datapaths such as ECC point operations produce several word results
    (``X3``, ``Y3``); this derives each canonical polynomial independently
    and returns ``{output word: AbstractionResult}``.
    """
    return {
        word: abstract_circuit(circuit, field, output_word=word, case2=case2)
        for word in circuit.output_words
    }
