"""Word-level composition of block abstractions (hierarchical verification).

Section 6 / Table 2: for a hierarchical design each block is abstracted
gate-level -> word-level, "and then the approach is re-applied at word level
to derive the input-output relation (solved trivially)". This module is that
re-application: each block contributes a word-level polynomial; blocks are
composed in dependency order by polynomial substitution, with exponents
folded modulo ``X^q - X`` so the composite stays canonical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional

from ..algebra import Polynomial, PolynomialRing
from ..circuits import HierarchicalCircuit
from ..gf import GF2m
from .abstraction import AbstractionResult, abstract_circuit, word_ring_for

__all__ = ["HierarchicalAbstraction", "abstract_hierarchy", "compose_polynomials"]


@dataclass
class HierarchicalAbstraction:
    """Canonical polynomials of a hierarchy and its per-block breakdown."""

    polynomials: Dict[str, Polynomial]  # hierarchy output word -> G(inputs)
    ring: PolynomialRing  # over the hierarchy's input words
    block_results: Dict[str, AbstractionResult]
    compose_seconds: float = 0.0
    block_seconds: Dict[str, float] = dataclass_field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.compose_seconds + sum(self.block_seconds.values())


def compose_polynomials(
    block_poly: Polynomial,
    bindings: Dict[str, Polynomial],
    target_ring: PolynomialRing,
) -> Polynomial:
    """Evaluate a block polynomial on word-level expressions.

    ``bindings`` maps each variable of ``block_poly`` to a polynomial of
    ``target_ring``; exponent folding in the target ring keeps the result
    canonical (degrees < q per variable).
    """
    source = block_poly.ring
    result = target_ring.zero()
    power_cache: Dict["tuple[str, int]", Polynomial] = {}

    def bound_power(name: str, exp: int) -> Polynomial:
        key = (name, exp)
        if key not in power_cache:
            power_cache[key] = bindings[name] ** exp
        return power_cache[key]

    for monomial, coeff in block_poly.terms.items():
        term = target_ring.constant(coeff)
        for var, exp in monomial:
            term = term * bound_power(source.variables[var], exp)
            if term.is_zero():
                break
        result = result + term
    return result


def abstract_hierarchy(
    hierarchy: HierarchicalCircuit,
    field: GF2m,
    case2: str = "linearized",
    block_results: Optional[Dict[str, AbstractionResult]] = None,
) -> HierarchicalAbstraction:
    """Abstract every block, then compose word-level polynomials.

    ``block_results`` allows reusing already-computed block abstractions
    (e.g. when the same block circuit instantiates several times).
    """
    ring = word_ring_for(field, hierarchy.input_words)
    values: Dict[str, Polynomial] = {
        word: ring.var(word) for word in hierarchy.input_words
    }
    results: Dict[str, AbstractionResult] = {}
    block_seconds: Dict[str, float] = {}
    compose_seconds = 0.0
    for block in hierarchy.topological_blocks():
        provided = block_results.get(block.name) if block_results else None
        inner_result = None
        if provided is None and block.is_nested:
            # Hierarchies are trees: recurse, then compose the child's
            # word-level polynomials like any other block polynomial.
            inner_result = abstract_hierarchy(block.circuit, field, case2=case2)
            block_seconds[block.name] = inner_result.total_seconds
        for circ_word, hier_word in block.output_bindings.items():
            if provided is not None:
                results[block.name] = provided
                block_seconds[block.name] = provided.stats.seconds
                polynomial = provided.polynomial
            elif inner_result is not None:
                polynomial = inner_result.polynomials[circ_word]
            else:
                result = abstract_circuit(
                    block.circuit, field, output_word=circ_word, case2=case2
                )
                results[block.name] = result
                block_seconds[block.name] = result.stats.seconds
                polynomial = result.polynomial
            start = time.perf_counter()
            bindings = {
                circ_in: values[hier_in]
                for circ_in, hier_in in block.input_bindings.items()
            }
            values[hier_word] = compose_polynomials(polynomial, bindings, ring)
            compose_seconds += time.perf_counter() - start
    return HierarchicalAbstraction(
        polynomials={w: values[w] for w in hierarchy.output_words},
        ring=ring,
        block_results=results,
        compose_seconds=compose_seconds,
        block_seconds=block_seconds,
    )
