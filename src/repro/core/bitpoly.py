"""Sparse polynomial accumulator for the guided S-polynomial reduction.

Under RATO every circuit polynomial is ``x + tail``, so each division step
of ``Spoly(f_w, f_g) ->_{F, F0}+ r`` *substitutes* a net variable by its
gate tail. This engine performs those substitutions on a sparse polynomial
over idempotent variables (monomials are ``frozenset`` of variable ids,
coefficients live in F_{2^k}), maintaining an occurrence index so each
substitution touches only the monomials that actually contain the variable.

The reduction modulo the vanishing polynomials ``x^2 - x`` is implicit in
the representation: set-union multiplication is exactly idempotent
multiplication. This mirrors the paper's F4-style custom reduction — same
normal forms, batch per-variable elimination.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set, Tuple

from ..gf import GF2m
from .gate_polys import BitTerms

__all__ = ["SubstitutionEngine"]

_EMPTY: FrozenSet[int] = frozenset()


class SubstitutionEngine:
    """Mutable sparse polynomial with per-variable substitution."""

    __slots__ = ("field", "terms", "occ", "peak_terms", "substitutions", "term_traffic")

    def __init__(self, field: GF2m):
        self.field = field
        self.terms: Dict[FrozenSet[int], int] = {}
        self.occ: Dict[int, Set[FrozenSet[int]]] = {}
        self.peak_terms = 0
        self.substitutions = 0
        self.term_traffic = 0  # total monomials written (work measure)

    def add_term(self, monomial: FrozenSet[int], coeff: int) -> None:
        """XOR-accumulate ``coeff * monomial`` into the polynomial."""
        if not coeff:
            return
        terms = self.terms
        current = terms.get(monomial, 0)
        merged = current ^ coeff
        self.term_traffic += 1
        if merged:
            terms[monomial] = merged
            if not current:
                occ = self.occ
                for var in monomial:
                    bucket = occ.get(var)
                    if bucket is None:
                        occ[var] = {monomial}
                    else:
                        bucket.add(monomial)
        else:
            del terms[monomial]
            occ = self.occ
            for var in monomial:
                occ[var].discard(monomial)

    def add_terms(self, items: Iterable[Tuple[FrozenSet[int], int]]) -> None:
        for monomial, coeff in items:
            self.add_term(monomial, coeff)

    def contains_var(self, var: int) -> bool:
        bucket = self.occ.get(var)
        return bool(bucket)

    def variables_present(self) -> Set[int]:
        return {var for var, bucket in self.occ.items() if bucket}

    def substitute(self, var: int, tail: BitTerms) -> int:
        """Replace ``var`` by ``tail`` everywhere; returns monomials touched.

        Implements one batch of division steps ``... ->_{x+tail}+ ...``: for
        every monomial ``var * base`` the term becomes ``tail * base`` (with
        idempotent monomial union and field-coefficient products).
        """
        bucket = self.occ.pop(var, None)
        if not bucket:
            return 0
        affected = list(bucket)
        terms = self.terms
        occ = self.occ
        saved = []
        for monomial in affected:
            coeff = terms.pop(monomial)
            for v in monomial:
                if v != var:
                    occ[v].discard(monomial)
            saved.append((monomial, coeff))
        mul = self.field.mul
        var_singleton = frozenset((var,))
        for monomial, coeff in saved:
            base = monomial - var_singleton
            for tail_monomial, tail_coeff in tail.items():
                self.add_term(
                    base | tail_monomial,
                    coeff if tail_coeff == 1 else mul(coeff, tail_coeff),
                )
        self.substitutions += 1
        if len(terms) > self.peak_terms:
            self.peak_terms = len(terms)
        return len(affected)

    def snapshot(self) -> Dict[FrozenSet[int], int]:
        return dict(self.terms)

    def __len__(self) -> int:
        return len(self.terms)
